#!/usr/bin/env bash
# The full CI gate, runnable locally: build, test, lint, format.
# Keep this byte-for-byte in sync with .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> chaos (fault-injection differential, seed matrix)"
cargo run --release -q -p grout-bench --bin chaos -- --seeds 8

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI green."
