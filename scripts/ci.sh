#!/usr/bin/env bash
# The full CI gate, runnable locally: build, test, lint, format.
# Keep this byte-for-byte in sync with .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> chaos (fault-injection differential, seed matrix)"
cargo run --release -q -p grout-bench --bin chaos -- --seeds 8

echo "==> telemetry artifacts (Chrome trace + metrics dump, schema-checked)"
cargo run --release -q -p grout-bench --bin trace -- cg 8 grout:rr \
  --trace-out target/ci-trace.json --metrics-out target/ci-metrics.json
if command -v python3 >/dev/null; then
  python3 -m json.tool target/ci-trace.json >/dev/null
  python3 -m json.tool target/ci-metrics.json >/dev/null
else
  echo "(python3 unavailable; JSON validated by the telemetry test suite)"
fi

echo "==> distributed loopback (two grout-workerd processes over TCP)"
./target/release/grout-workerd --listen 127.0.0.1:7401 & WORKERD1=$!
./target/release/grout-workerd --listen 127.0.0.1:7402 & WORKERD2=$!
trap 'kill "$WORKERD1" "$WORKERD2" 2>/dev/null || true' EXIT
sleep 1
timeout 120 ./target/release/grout-run \
  --workers tcp:127.0.0.1:7401,127.0.0.1:7402 \
  -e '
    build = polyglot.eval("grout", "buildkernel")
    square = build("__global__ void square(float* x, int n) { int i = blockIdx.x * blockDim.x + threadIdx.x; if (i < n) { x[i] = x[i] * x[i]; } }", "square(x: inout pointer float, n: sint32)")
    x = polyglot.eval("grout", "float[64]")
    for i in range(64) { x[i] = i }
    square(2, 32)(x, 64)
    print(x)
'
# The daemons exit on their own when the controller hangs up; force-kill
# any straggler so a wedged teardown cannot hang the job.
kill "$WORKERD1" "$WORKERD2" 2>/dev/null || true
wait "$WORKERD1" "$WORKERD2" 2>/dev/null || true
trap - EXIT

echo "==> chaos --kill-process (SIGKILL a live grout-workerd; lineage replay)"
timeout 120 cargo run --release -q -p grout-bench --bin chaos -- --kill-process

echo "==> cargo clippy --all-targets -- -D warnings -D deprecated"
cargo clippy --all-targets -- -D warnings -D deprecated

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI green."
