#!/usr/bin/env bash
# The full CI gate, runnable locally: build, test, lint, format.
# Keep this byte-for-byte in sync with .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> chaos (fault-injection differential, seed matrix)"
cargo run --release -q -p grout-bench --bin chaos -- --seeds 8

echo "==> telemetry artifacts (Chrome trace + metrics dump, schema-checked)"
cargo run --release -q -p grout-bench --bin trace -- cg 8 grout:rr \
  --trace-out target/ci-trace.json --metrics-out target/ci-metrics.json
if command -v python3 >/dev/null; then
  python3 -m json.tool target/ci-trace.json >/dev/null
  python3 -m json.tool target/ci-metrics.json >/dev/null
else
  echo "(python3 unavailable; JSON validated by the telemetry test suite)"
fi

echo "==> distributed loopback (two grout-workerd processes over TCP, traced)"
./target/release/grout-workerd --listen 127.0.0.1:7401 & WORKERD1=$!
./target/release/grout-workerd --listen 127.0.0.1:7402 & WORKERD2=$!
trap 'kill "$WORKERD1" "$WORKERD2" 2>/dev/null || true' EXIT
sleep 1
# Two arrays, four kernels: round-robin gives both workers real work, so
# the merged trace must carry execute spans from both remote processes.
timeout 120 ./target/release/grout-run \
  --workers tcp:127.0.0.1:7401,127.0.0.1:7402 \
  --trace-out target/ci-dist-trace.json \
  --metrics-out target/ci-dist-metrics.json \
  --stats \
  -e '
    build = polyglot.eval("grout", "buildkernel")
    square = build("__global__ void square(float* x, int n) { int i = blockIdx.x * blockDim.x + threadIdx.x; if (i < n) { x[i] = x[i] * x[i]; } }", "square(x: inout pointer float, n: sint32)")
    x = polyglot.eval("grout", "float[64]")
    y = polyglot.eval("grout", "float[64]")
    for i in range(64) { x[i] = i }
    for i in range(64) { y[i] = 64 - i }
    square(2, 32)(x, 64)
    square(2, 32)(y, 64)
    square(2, 32)(x, 64)
    square(2, 32)(y, 64)
    print(x)
    print(y)
'
# The daemons exit on their own when the controller hangs up; force-kill
# any straggler so a wedged teardown cannot hang the job.
kill "$WORKERD1" "$WORKERD2" 2>/dev/null || true
wait "$WORKERD1" "$WORKERD2" 2>/dev/null || true
trap - EXIT
if command -v python3 >/dev/null; then
  python3 - <<'EOF'
import json
trace = json.load(open("target/ci-dist-trace.json"))
pids = {e["pid"] for e in trace["traceEvents"]
        if e.get("ph") == "X" and e.get("cat") == "execute"}
assert {1, 2} <= pids, f"merged trace lacks worker execute lanes: {sorted(pids)}"
metrics = json.load(open("target/ci-dist-metrics.json"))
wire = metrics["wire"]
assert len(wire) == 2, f"expected 2 wire peers, got {len(wire)}"
assert any(w["hb_rtt"]["count"] >= 1 for w in wire), "no heartbeat RTT samples"
print("distributed trace/metrics schema OK")
EOF
else
  echo "(python3 unavailable; dist trace schema checked by tests/dist_loopback.rs)"
fi

echo "==> chaos --kill-process (SIGKILL a live grout-workerd; lineage replay)"
timeout 120 cargo run --release -q -p grout-bench --bin chaos -- --kill-process

echo "==> chaos --net-seeds (seeded omission faults; bit-identical, zero quarantines)"
timeout 300 cargo run --release -q -p grout-bench --bin chaos -- --net-seeds 8

echo "==> chaos --net-sever (sever a live TCP session mid-chain; session resume)"
timeout 120 cargo run --release -q -p grout-bench --bin chaos -- --net-sever

echo "==> chaos --elastic (join a 3rd workerd mid-run, clean-Leave one; bit-identical)"
timeout 120 cargo run --release -q -p grout-bench --bin chaos -- --elastic

echo "==> SIGSTOP e2e (freeze one workerd past the grace window; resume, no quarantine)"
cat > target/ci-sigstop.gs <<'EOF'
build = polyglot.eval("grout", "buildkernel")
step = build("__global__ void step(float* x, int n) { int i = blockIdx.x * blockDim.x + threadIdx.x; if (i < n) { x[i] = x[i] * 0.999 + 1.0; } }", "step(x: inout pointer float, n: sint32)")
x = polyglot.eval("grout", "float[16384]")
for i in range(16384) { x[i] = i }
for r in range(240) {
  step(64, 256)(x, 16384)
}
print(x[0])
print(x[16383])
EOF
# Uninterrupted reference run. The single dependent chain alternates
# workers each CE (round-robin), so freezing either worker stalls the
# whole pipeline — the controller must starve, suspect, and resume.
./target/release/grout-workerd --listen 127.0.0.1:7421 & SS_W1=$!
./target/release/grout-workerd --listen 127.0.0.1:7422 & SS_W2=$!
trap 'kill "$SS_W1" "$SS_W2" 2>/dev/null || true' EXIT
sleep 1
timeout 120 ./target/release/grout-run \
  --workers tcp:127.0.0.1:7421,127.0.0.1:7422 \
  --heartbeat-ms 20 --stale-after 3 --reconnect-window-ms 15000 \
  target/ci-sigstop.gs > target/ci-sigstop-ref.out
wait "$SS_W1" "$SS_W2" 2>/dev/null || true
# Chaos run on a fresh pair: freeze w0 mid-chain for a full second —
# ~17× the 60 ms staleness window — then thaw it. The session must
# resume; nothing may be quarantined; stdout must not change. The STOP
# is anchored to w0's "adopted" log line (plus a beat for the chain to
# get going), not wall-clock, so run-duration variance can't miss.
./target/release/grout-workerd --listen 127.0.0.1:7423 \
  > target/ci-sigstop-w0.log 2>&1 & SS_W1=$!
./target/release/grout-workerd --listen 127.0.0.1:7424 & SS_W2=$!
sleep 1
timeout 120 ./target/release/grout-run \
  --workers tcp:127.0.0.1:7423,127.0.0.1:7424 \
  --heartbeat-ms 20 --stale-after 3 --reconnect-window-ms 15000 \
  --stats --metrics-out target/ci-sigstop-metrics.json \
  target/ci-sigstop.gs > target/ci-sigstop.out 2> target/ci-sigstop.err & SS_RUN=$!
for _ in $(seq 100); do
  grep -q "adopted by controller" target/ci-sigstop-w0.log 2>/dev/null && break
  sleep 0.1
done
sleep 0.5
kill -STOP "$SS_W1"
sleep 1
kill -CONT "$SS_W1"
wait "$SS_RUN"
kill "$SS_W1" "$SS_W2" 2>/dev/null || true
wait "$SS_W1" "$SS_W2" 2>/dev/null || true
trap - EXIT
diff target/ci-sigstop-ref.out target/ci-sigstop.out
# resumes is column 7 of the --stats table; the freeze must have forced ≥1.
awk '$2 ~ /^w[0-9]+$/ { sum += $7 } END { exit !(sum >= 1) }' target/ci-sigstop.err
grep -q '"quarantines": 0' target/ci-sigstop-metrics.json
echo "SIGSTOP e2e OK: bit-identical output, >=1 resume, zero quarantines"

echo "==> controller failover (SIGKILL the primary mid-run; hot standby takes over)"
cat > target/ci-failover.gs <<'EOF'
build = polyglot.eval("grout", "buildkernel")
square = build("__global__ void square(float* x, int n) { int i = blockIdx.x * blockDim.x + threadIdx.x; if (i < n) { x[i] = x[i] * x[i]; } }", "square(x: inout pointer float, n: sint32)")
x = polyglot.eval("grout", "float[64]")
y = polyglot.eval("grout", "float[64]")
for i in range(64) { x[i] = i }
for i in range(64) { y[i] = 64 - i }
square(2, 32)(x, 64)
square(2, 32)(y, 64)
square(2, 32)(x, 64)
square(2, 32)(y, 64)
print(x)
print(y)
EOF
# Uninterrupted reference run on its own workerd pair (the clean shutdown
# stops the daemons, so the failover run gets a fresh pair below).
./target/release/grout-workerd --listen 127.0.0.1:7411 & FO_W1=$!
./target/release/grout-workerd --listen 127.0.0.1:7412 & FO_W2=$!
trap 'kill "$FO_W1" "$FO_W2" 2>/dev/null || true' EXIT
sleep 1
timeout 120 ./target/release/grout-run \
  --workers tcp:127.0.0.1:7411,127.0.0.1:7412 \
  target/ci-failover.gs > target/ci-failover-ref.out
wait "$FO_W1" "$FO_W2" 2>/dev/null || true
# Failover run: standby first, then a primary doomed to SIGKILL itself
# mid-run. The workerds lose their controller, await re-adoption, and the
# standby adopts them to finish the job.
./target/release/grout-workerd --listen 127.0.0.1:7413 & FO_W1=$!
./target/release/grout-workerd --listen 127.0.0.1:7414 & FO_W2=$!
sleep 1
timeout 180 ./target/release/grout-run \
  --standby 127.0.0.1:7431 \
  --workers tcp:127.0.0.1:7413,127.0.0.1:7414 \
  target/ci-failover.gs > target/ci-failover-standby.out 2> target/ci-failover-standby.err & FO_SB=$!
for _ in $(seq 100); do
  grep -q "STANDBY LISTENING" target/ci-failover-standby.err 2>/dev/null && break
  sleep 0.1
done
timeout 120 ./target/release/grout-run \
  --workers tcp:127.0.0.1:7413,127.0.0.1:7414 \
  --ship-log 127.0.0.1:7431 \
  --die-after-ops 12 \
  target/ci-failover.gs > target/ci-failover-primary.out || true # dies by SIGKILL (137)
wait "$FO_SB"
kill "$FO_W1" "$FO_W2" 2>/dev/null || true
wait "$FO_W1" "$FO_W2" 2>/dev/null || true
trap - EXIT
test ! -s target/ci-failover-primary.out # the primary died before it could print
grep -q "taking over" target/ci-failover-standby.err
diff target/ci-failover-ref.out target/ci-failover-standby.out
echo "controller failover OK: standby output bit-identical to the uninterrupted run"

echo "==> grout-ctld e2e (two concurrent tenant clients, CE batching, bit-identical)"
cat > target/ci-ctld.gs <<'EOF'
build = polyglot.eval("grout", "buildkernel")
square = build("__global__ void square(float* x, int n) { int i = blockIdx.x * blockDim.x + threadIdx.x; if (i < n) { x[i] = x[i] * x[i]; } }", "square(x: inout pointer float, n: sint32)")
x = polyglot.eval("grout", "float[256]")
for i in range(256) { x[i] = i }
square(8, 32)(x, 256)
square(8, 32)(x, 256)
print(x[0])
print(x[128])
print(x[255])
EOF
# Solo reference run: tenant isolation means every ctld client must get
# exactly these bytes back.
timeout 120 ./target/release/grout-run --workers 2 target/ci-ctld.gs > target/ci-ctld-ref.out
./target/release/grout-ctld --listen 127.0.0.1:7441 --threads 2 --batch --accept 2 \
  > target/ci-ctld.log 2>&1 & CTLD=$!
trap 'kill "$CTLD" 2>/dev/null || true' EXIT
for _ in $(seq 100); do
  grep -q "CTLD LISTENING" target/ci-ctld.log 2>/dev/null && break
  sleep 0.1
done
timeout 120 ./target/release/grout-run --connect 127.0.0.1:7441 \
  target/ci-ctld.gs > target/ci-ctld-a.out & CTLD_CA=$!
timeout 120 ./target/release/grout-run --connect 127.0.0.1:7441 --priority high \
  target/ci-ctld.gs > target/ci-ctld-b.out & CTLD_CB=$!
wait "$CTLD_CA" "$CTLD_CB"
# --accept 2: the daemon drains both sessions and exits on its own; the
# timeout caps a wedged teardown, the kill reaps any straggler.
timeout 60 tail --pid="$CTLD" -f /dev/null || kill "$CTLD" 2>/dev/null || true
trap - EXIT
diff target/ci-ctld-ref.out target/ci-ctld-a.out
diff target/ci-ctld-ref.out target/ci-ctld-b.out
echo "grout-ctld e2e OK: both tenants bit-identical to the solo run"

echo "==> introspection e2e (live /metrics + /healthz + grout-top against grout-ctld --http)"
./target/release/grout-ctld --listen 127.0.0.1:7451 --threads 2 \
  --http 127.0.0.1:7452 --accept 2 \
  > target/ci-obs.log 2> target/ci-obs.err & OBS=$!
trap 'kill "$OBS" 2>/dev/null || true' EXIT
for _ in $(seq 100); do
  grep -q "CTLD HTTP" target/ci-obs.log 2>/dev/null && break
  sleep 0.1
done
curl -fsS http://127.0.0.1:7452/healthz > target/ci-obs-healthz.json
timeout 120 ./target/release/grout-run --connect 127.0.0.1:7451 \
  target/ci-ctld.gs > target/ci-obs-client.out
curl -fsS http://127.0.0.1:7452/metrics > target/ci-obs-metrics.txt
curl -fsS http://127.0.0.1:7452/sessions > target/ci-obs-sessions.json
./target/release/grout-top 127.0.0.1:7452 --once > target/ci-obs-top.out
grep -q "sessions (1)" target/ci-obs-top.out
# A trivial second client reaches the --accept cap so the daemon exits.
timeout 120 ./target/release/grout-run --connect 127.0.0.1:7451 \
  -e 'print(1)' > /dev/null
timeout 60 tail --pid="$OBS" -f /dev/null || kill "$OBS" 2>/dev/null || true
trap - EXIT
# Introspection must not perturb the tenant: bit-identical to the solo run.
diff target/ci-ctld-ref.out target/ci-obs-client.out
if command -v python3 >/dev/null; then
  python3 - <<'EOF'
import json, math, re
health = json.load(open("target/ci-obs-healthz.json"))
assert health["healthy"] is True, health
assert health["fleet"]["alive"] >= 1, health
sessions = json.load(open("target/ci-obs-sessions.json"))
assert any(s["state"] == "finished" for s in sessions), sessions
line_re = re.compile(r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9][0-9eE.+-]*$')
session_label = False
for raw in open("target/ci-obs-metrics.txt"):
    line = raw.rstrip("\n")
    if not line or line.startswith("#"):
        continue
    assert line_re.match(line), f"invalid exposition line: {line!r}"
    value = float(line.rsplit(" ", 1)[1])
    assert math.isfinite(value), f"non-finite sample: {line!r}"
    if 'session="' in line:
        session_label = True
assert session_label, "no per-session labels in the exposition"
print("introspection exposition schema OK")
EOF
else
  echo "(python3 unavailable; exposition schema checked by tests/ctld.rs)"
fi
echo "introspection e2e OK: live endpoints answered with per-session labels"

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI green."
