#!/usr/bin/env bash
# The full CI gate, runnable locally: build, test, lint, format.
# Keep this byte-for-byte in sync with .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> chaos (fault-injection differential, seed matrix)"
cargo run --release -q -p grout-bench --bin chaos -- --seeds 8

echo "==> telemetry artifacts (Chrome trace + metrics dump, schema-checked)"
cargo run --release -q -p grout-bench --bin trace -- cg 8 grout:rr \
  --trace-out target/ci-trace.json --metrics-out target/ci-metrics.json
if command -v python3 >/dev/null; then
  python3 -m json.tool target/ci-trace.json >/dev/null
  python3 -m json.tool target/ci-metrics.json >/dev/null
else
  echo "(python3 unavailable; JSON validated by the telemetry test suite)"
fi

echo "==> cargo clippy --all-targets -- -D warnings -D deprecated"
cargo clippy --all-targets -- -D warnings -D deprecated

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI green."
