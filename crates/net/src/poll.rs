//! A minimal readiness-multiplexing layer over `poll(2)`, plus the two
//! building blocks every event-loop endpoint needs: an incremental
//! length-prefixed frame decoder ([`FrameBuf`]) and a nonblocking write
//! queue ([`WriteQueue`]).
//!
//! The workspace deliberately carries no async runtime and no `libc`
//! crate; `poll(2)` is one `extern "C"` symbol with a stable ABI on every
//! libc, which keeps the controller and the workerd at exactly one I/O
//! thread each regardless of peer count. Wakeups from other threads go
//! through a connected loopback [`UdpSocket`] pair ([`Waker`]) — datagram
//! sockets never short-write and never block the waker, and a full
//! receive buffer is harmless because one pending datagram already makes
//! the loop drain its whole command queue.

use std::io::{self, Read, Write};
use std::net::UdpSocket;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

/// Readable readiness (POLLIN).
pub const POLLIN: i16 = 0x001;
/// Writable readiness (POLLOUT).
pub const POLLOUT: i16 = 0x004;
/// Error condition (always polled, reported in `revents` only).
pub const POLLERR: i16 = 0x008;
/// Hangup (reported in `revents` only).
pub const POLLHUP: i16 = 0x010;

/// `struct pollfd` — identical layout on every supported libc.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch (negative entries are skipped by the
    /// kernel, which this wrapper never relies on).
    pub fd: i32,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Returned events.
    pub revents: i16,
}

#[cfg(target_os = "linux")]
type NFds = u64;
#[cfg(not(target_os = "linux"))]
type NFds = u32;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: NFds, timeout: i32) -> i32;
}

/// Blocks until at least one descriptor in `fds` is ready, `timeout`
/// elapses (`None` = forever), or a signal interrupts. Returns the number
/// of ready descriptors (0 on timeout); `EINTR` is reported as `Ok(0)` so
/// callers treat it like a timeout and re-arm.
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let ms: i32 = match timeout {
        None => -1,
        // Round up so a 0.5ms deadline does not become a busy-loop.
        Some(d) => d
            .as_millis()
            .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
            .min(i32::MAX as u128) as i32,
    };
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NFds, ms) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(rc as usize)
}

/// Cross-thread wakeup for a poll loop: a connected UDP socket pair on
/// 127.0.0.1. The loop polls [`Waker::fd`] for POLLIN; any thread calls
/// [`WakeHandle::wake`]. Lost datagrams (full receive buffer) are safe by
/// construction — see the module docs.
pub struct Waker {
    rx: UdpSocket,
    tx: UdpSocket,
}

/// The sending half handed to other threads (clonable).
pub struct WakeHandle(UdpSocket);

impl Waker {
    /// Binds the loopback pair. Ephemeral ports; nothing is reachable from
    /// off-host because both ends connect to each other first.
    pub fn new() -> io::Result<Waker> {
        let rx = UdpSocket::bind("127.0.0.1:0")?;
        let tx = UdpSocket::bind("127.0.0.1:0")?;
        tx.connect(rx.local_addr()?)?;
        rx.connect(tx.local_addr()?)?;
        rx.set_nonblocking(true)?;
        tx.set_nonblocking(true)?;
        Ok(Waker { rx, tx })
    }

    /// The descriptor the loop includes in its poll set (POLLIN).
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// A sender other threads keep.
    pub fn handle(&self) -> io::Result<WakeHandle> {
        Ok(WakeHandle(self.tx.try_clone()?))
    }

    /// Discards every pending wake datagram (call once per loop turn
    /// after the command queue has been drained).
    pub fn drain(&self) {
        let mut buf = [0u8; 16];
        while self.rx.recv(&mut buf).is_ok() {}
    }
}

impl WakeHandle {
    /// Nudges the loop. Failure is ignorable: either the buffer is full
    /// (a wake is already pending) or the loop is gone.
    pub fn wake(&self) {
        let _ = self.0.send(&[1u8]);
    }
}

impl Clone for WakeHandle {
    fn clone(&self) -> WakeHandle {
        WakeHandle(self.0.try_clone().expect("clone waker socket"))
    }
}

/// Frames larger than this are a protocol error (matches the wire codec's
/// sanity limit): 1 GiB.
pub const MAX_FRAME: usize = 1 << 30;

/// Incremental decoder for the `u32`-LE length-prefixed framing used on
/// every GrOUT socket. Push whatever the socket yields; pull complete
/// frames out.
#[derive(Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    /// Read position within `buf` (compacted opportunistically).
    pos: usize,
}

impl FrameBuf {
    /// An empty decoder.
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    /// Appends raw bytes from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing: long-lived peers must not accrete the
        // prefix of every frame they ever received.
        if self.pos > 0 && (self.pos == self.buf.len() || self.buf.len() >= (1 << 20)) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, if one has fully arrived. Returns an
    /// error for an over-limit length prefix (corrupt or hostile peer).
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds the {MAX_FRAME} cap"),
            ));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let frame = avail[4..4 + len].to_vec();
        self.pos += 4 + len;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        Ok(Some(frame))
    }

    /// Bytes buffered but not yet consumed (tests/diagnostics).
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Drains a nonblocking stream into `frames`. Returns `Ok(true)` while
/// the connection is open, `Ok(false)` on orderly EOF; `WouldBlock` ends
/// the drain without error.
pub fn read_available(stream: &mut impl Read, frames: &mut FrameBuf) -> io::Result<bool> {
    let mut chunk = [0u8; 64 * 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(false),
            Ok(n) => frames.push(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(true),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Queued outbound frames for one nonblocking socket. Enqueue whole
/// frames; flush writes as much as the kernel accepts. A non-empty queue
/// is the loop's cue to request POLLOUT for the socket.
#[derive(Default)]
pub struct WriteQueue {
    queue: std::collections::VecDeque<Vec<u8>>,
    /// Bytes of the front frame already written.
    offset: usize,
}

impl WriteQueue {
    /// An empty queue.
    pub fn new() -> WriteQueue {
        WriteQueue::default()
    }

    /// Queues one payload, prepending the 4-byte LE length prefix.
    pub fn enqueue(&mut self, payload: &[u8]) {
        let mut framed = Vec::with_capacity(4 + payload.len());
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(payload);
        self.queue.push_back(framed);
    }

    /// Queues bytes that already carry their framing (resume replay).
    pub fn enqueue_raw(&mut self, framed: Vec<u8>) {
        self.queue.push_back(framed);
    }

    /// Writes as much as the socket accepts right now. `Ok(true)` when
    /// the queue drained completely, `Ok(false)` when bytes remain
    /// (request POLLOUT); an error means the connection is gone.
    pub fn flush(&mut self, stream: &mut impl Write) -> io::Result<bool> {
        while let Some(front) = self.queue.front() {
            match stream.write(&front[self.offset..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.offset += n;
                    if self.offset == front.len() {
                        self.queue.pop_front();
                        self.offset = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Whether frames are still queued (POLLOUT interest).
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Queued frame count (backpressure diagnostics).
    pub fn len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_buf_reassembles_split_frames() {
        let mut fb = FrameBuf::new();
        let payload = b"hello, mesh".to_vec();
        let mut framed = (payload.len() as u32).to_le_bytes().to_vec();
        framed.extend_from_slice(&payload);
        // Feed one byte at a time: no frame until the last byte lands.
        for b in &framed {
            assert!(fb.next_frame().unwrap().is_none());
            fb.push(&[*b]);
        }
        assert_eq!(fb.next_frame().unwrap().as_deref(), Some(&payload[..]));
        assert!(fb.next_frame().unwrap().is_none());
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn frame_buf_yields_back_to_back_frames() {
        let mut fb = FrameBuf::new();
        let mut bytes = Vec::new();
        for p in [b"a".to_vec(), b"bb".to_vec(), b"ccc".to_vec()] {
            bytes.extend_from_slice(&(p.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&p);
        }
        fb.push(&bytes);
        assert_eq!(fb.next_frame().unwrap().as_deref(), Some(&b"a"[..]));
        assert_eq!(fb.next_frame().unwrap().as_deref(), Some(&b"bb"[..]));
        assert_eq!(fb.next_frame().unwrap().as_deref(), Some(&b"ccc"[..]));
        assert!(fb.next_frame().unwrap().is_none());
    }

    #[test]
    fn frame_buf_rejects_oversized_prefix() {
        let mut fb = FrameBuf::new();
        fb.push(&u32::MAX.to_le_bytes());
        assert!(fb.next_frame().is_err());
    }

    #[test]
    fn write_queue_frames_and_flushes() {
        let mut wq = WriteQueue::new();
        wq.enqueue(b"xyz");
        let mut sink = Cursor::new(Vec::new());
        assert!(wq.flush(&mut sink).unwrap());
        let written = sink.into_inner();
        assert_eq!(&written[..4], &3u32.to_le_bytes());
        assert_eq!(&written[4..], b"xyz");
        assert!(wq.is_empty());
    }

    #[test]
    fn waker_round_trip() {
        let waker = Waker::new().unwrap();
        let handle = waker.handle().unwrap();
        handle.wake();
        let mut fds = [PollFd {
            fd: waker.fd(),
            events: POLLIN,
            revents: 0,
        }];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].revents & POLLIN != 0);
        waker.drain();
        // Drained: poll now times out.
        fds[0].revents = 0;
        let n = poll_fds(&mut fds, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn poll_times_out_on_idle_socket() {
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        let mut fds = [PollFd {
            fd: sock.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        }];
        let n = poll_fds(&mut fds, Some(Duration::from_millis(5))).unwrap();
        assert_eq!(n, 0);
    }
}
