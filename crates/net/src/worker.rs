//! The worker side of the TCP mesh: [`serve`], the body of the
//! `grout-workerd` binary.
//!
//! One process hosts one [`WorkerEngine`] — the same transport-agnostic
//! state machine the in-process threads run — driven by a **single
//! thread**: a `poll(2)` event loop (see [`crate::poll`]) multiplexes the
//! listener, the controller socket, every inbound peer socket and every
//! not-yet-classified accepted socket. Message handling stays sequential
//! exactly like the crossbeam worker loop; heartbeats, clock pings and
//! telemetry flush ticks are poll-timeout deadlines instead of dedicated
//! threads, and controller-bound writes go through a nonblocking
//! [`WriteQueue`] flushed as the kernel accepts bytes.
//!
//! - the controller connection (an accepted socket carrying a controller
//!   hello) delivers plan traffic,
//! - inbound peer sockets (accepted, peer hello) deliver P2P data,
//! - outbound peer traffic dials `peers[j]` on demand; each direction of
//!   each worker pair gets its own one-way socket, which avoids any
//!   dial/dial race without a connection-brokering protocol.
//!
//! ## Session resume (wire v4) and re-adoption
//!
//! Every accepted socket is classified by its hello, so a controller
//! hello is welcome at any time, not just first. Against a v4 controller
//! the session is *resumable*: losing the controller socket parks the
//! session — the engine, both reliable-stream cursors and the outbound
//! peer sockets survive — and the worker keeps driving peer traffic
//! through the parked engine, buffering controller-bound output in its
//! [`SendBuffer`]. A controller hello carrying the same session id and a
//! resume cursor revives the parked session: the worker acks with its own
//! receive cursor, both sides replay their unacked tails, and the run
//! continues as if the socket had never died. A hello *without* a resume
//! cursor (a fresh adoption — standby takeover, or a rejoin after
//! quarantine) discards any parked state and starts a clean session, as
//! does any hello from a pre-v4 controller.
//!
//! ## Elastic membership (wire v5)
//!
//! [`CtrlMsg::Peers`] re-announces the (grown) peer address list when a
//! worker joins the mesh mid-run; the session extends its outbound peer
//! table so P2P data reaches the newcomer. [`CtrlMsg::Leave`] asks for a
//! clean departure: the engine flushes telemetry, acks with
//! [`WorkerMsg::Leave`] and halts — the process exits `Ok` exactly like a
//! `Shutdown` frame.
//!
//! Only a clean `Shutdown` frame, a [`CtrlMsg::Leave`], SIGTERM (see
//! [`serve_shutdown`]) or an injected crash exits the process.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use grout_core::eventlog::{global as log, Value};
use grout_core::{
    monotonic_ns, CtrlMsg, Flow, Outbound, WorkerEngine, WorkerMsg, TELEMETRY_FLUSH_TICK,
};

use crate::poll::{poll_fds, read_available, FrameBuf, PollFd, WriteQueue};
use crate::poll::{POLLERR, POLLHUP, POLLIN, POLLOUT};
use crate::session::{RecvCursor, SendBuffer, ACK_EVERY};
use crate::wire;

/// Upper bound on one poll sleep, so the SIGTERM flag is observed
/// promptly even while idle and parked.
const MAX_POLL: Duration = Duration::from_millis(200);
/// Bound on the final blocking flush of the controller write queue on
/// exit (clean `Leave`/`Shutdown` acks should reach a live controller; a
/// dead one must not wedge the process).
const EXIT_FLUSH_TIMEOUT: Duration = Duration::from_millis(500);

/// A controller connection classified from an accepted socket.
struct Adoption {
    stream: TcpStream,
    /// Bytes that arrived after the hello in the same read.
    carry: FrameBuf,
    me: usize,
    total: usize,
    heartbeat_ms: u32,
    peers: Vec<String>,
    version: u16,
    /// The controller instance's session id (v4; 0 from older peers).
    session_id: u64,
    /// `Some(cursor)` = resume request: the controller has every reliable
    /// frame below `cursor` and wants the rest replayed.
    resume: Option<u64>,
}

/// The live controller socket plus its timers and buffers.
struct CtrlSock {
    stream: TcpStream,
    frames: FrameBuf,
    wq: WriteQueue,
    version: u16,
    cadence: Duration,
    next_beat: Instant,
}

impl CtrlSock {
    fn v4(&self) -> bool {
        self.version >= 4
    }
}

/// An accepted socket whose hello has not fully arrived yet.
struct Pending {
    stream: TcpStream,
    frames: FrameBuf,
}

/// An inbound peer socket (read-only; peers never expect replies).
struct PeerIn {
    from: usize,
    stream: TcpStream,
    frames: FrameBuf,
}

/// One worker session: the engine plus everything that must survive a
/// controller-socket loss for a resume to be lossless.
struct Session {
    session_id: u64,
    me: usize,
    v4: bool,
    engine: WorkerEngine,
    /// Outbound reliable frames awaiting cumulative ack — and the replay
    /// source on resume.
    send_buf: SendBuffer,
    /// Inbound reliable dedupe cursor.
    recv_cursor: RecvCursor,
    peer_addrs: Vec<String>,
    /// Outbound peer sockets, dialed on demand (worker index → stream).
    /// Survive parking so P2P keeps flowing through a controller outage.
    peer_out: Vec<Option<TcpStream>>,
}

impl Session {
    fn fresh(a: &Adoption) -> Session {
        Session {
            session_id: a.session_id,
            me: a.me,
            v4: a.version >= 4,
            engine: WorkerEngine::new(a.me),
            send_buf: SendBuffer::default(),
            recv_cursor: RecvCursor::new(),
            peer_addrs: a.peers.clone(),
            peer_out: (0..a.peers.len()).map(|_| None).collect(),
        }
    }

    /// Applies a [`CtrlMsg::Peers`] membership update: the address list
    /// only ever grows (indices are stable), and existing outbound
    /// sockets are kept.
    fn set_peers(&mut self, addrs: Vec<String>) {
        if addrs.len() > self.peer_out.len() {
            self.peer_out.resize_with(addrs.len(), || None);
        }
        log().info(
            "peer_list_updated",
            None,
            &format!(
                "[grout-workerd w{}] peer list updated: {} workers",
                self.me,
                addrs.len()
            ),
            &[
                ("worker", Value::U64(self.me as u64)),
                ("peers", Value::U64(addrs.len() as u64)),
            ],
        );
        self.peer_addrs = addrs;
    }

    /// Drives one message through the engine while no controller socket
    /// exists: controller-bound output is sealed into the send buffer
    /// (replayed on resume), peer output flows normally.
    fn handle_offline(&mut self, msg: CtrlMsg) {
        let Session {
            me,
            engine,
            send_buf,
            peer_addrs,
            peer_out,
            ..
        } = self;
        let me = *me;
        let _ = engine.handle(msg, &mut |o| match o {
            Outbound::Controller(m) => {
                let payload = wire::encode_worker(&m);
                send_buf.seal(&payload);
            }
            Outbound::Peer(j, m) => send_to_peer(me, j, peer_addrs, peer_out, &m),
        });
    }

    /// Telemetry flush tick while parked: batches land in the send
    /// buffer and ship on resume.
    fn flush_offline(&mut self) {
        let Session {
            engine, send_buf, ..
        } = self;
        engine.flush_telemetry(&mut |o| {
            if let Outbound::Controller(m) = o {
                let payload = wire::encode_worker(&m);
                send_buf.seal(&payload);
            }
        });
    }
}

/// Serves one worker endpoint on `listener` until a clean shutdown.
/// Equivalent to [`serve_shutdown`] with a flag that never fires.
pub fn serve(listener: TcpListener) -> Result<(), wire::WireError> {
    serve_shutdown(listener, Arc::new(AtomicBool::new(false)))
}

/// What one dispatched message asks of the serve loop.
#[derive(PartialEq)]
enum Step {
    Continue,
    /// Clean exit (Shutdown frame, Leave, engine halt).
    Exit,
    /// The controller socket is gone (EOF, write error, bad frame): park
    /// the session (v4) or drop it and wait to be adopted again.
    CtrlGone,
}

/// Serves one worker endpoint until a clean `Shutdown` frame or
/// [`CtrlMsg::Leave`] — or until `shutdown` is set (the binary's SIGTERM
/// handler), upon which buffered telemetry is flushed, a clean
/// [`WorkerMsg::Leave`] is sent so the controller re-plans immediately
/// instead of waiting out the staleness window, and the function returns
/// `Ok(())`.
///
/// The whole endpoint is **one thread**: listener, controller socket,
/// peer sockets, heartbeats and telemetry ticks all multiplex over one
/// `poll(2)` loop — a 64-worker host runs 64 serve threads, not hundreds
/// of per-socket ones.
///
/// Survives controller loss: a v4 session is parked and can be resumed by
/// a controller hello carrying the same session id (see the module docs);
/// a pre-v4 session is dropped and the process waits for the next
/// adoption. Errors only if the listener itself dies.
pub fn serve_shutdown(
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
) -> Result<(), wire::WireError> {
    listener.set_nonblocking(true)?;
    let mut session: Option<Session> = None;
    let mut ctrl: Option<CtrlSock> = None;
    let mut pending: Vec<Pending> = Vec::new();
    let mut peers_in: Vec<PeerIn> = Vec::new();
    let mut next_flush = Instant::now() + TELEMETRY_FLUSH_TICK;

    loop {
        if shutdown.load(Ordering::SeqCst) {
            if let (Some(s), Some(c)) = (session.as_mut(), ctrl.as_mut()) {
                graceful_leave(s, c);
            }
            return Ok(());
        }

        // Deadline-driven timers: telemetry flush always, heartbeat while
        // a controller is attached; capped so SIGTERM is noticed.
        let now = Instant::now();
        let mut deadline = next_flush.min(now + MAX_POLL);
        if let Some(c) = ctrl.as_ref() {
            deadline = deadline.min(c.next_beat);
        }
        let timeout = deadline.saturating_duration_since(now);

        // Poll set: listener, controller, pending handshakes, peers.
        use std::os::fd::AsRawFd as _;
        let mut fds = vec![PollFd {
            fd: listener.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        }];
        let ctrl_at = ctrl.as_ref().map(|c| {
            let mut events = POLLIN;
            if !c.wq.is_empty() {
                events |= POLLOUT;
            }
            fds.push(PollFd {
                fd: c.stream.as_raw_fd(),
                events,
                revents: 0,
            });
            fds.len() - 1
        });
        let pending_at = fds.len();
        for p in &pending {
            fds.push(PollFd {
                fd: p.stream.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
        }
        let peers_at = fds.len();
        for p in &peers_in {
            fds.push(PollFd {
                fd: p.stream.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
        }
        poll_fds(&mut fds, Some(timeout))?;

        // New connections.
        if fds[0].revents & POLLIN != 0 {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nodelay(true).is_err()
                            || stream.set_nonblocking(true).is_err()
                        {
                            continue;
                        }
                        pending.push(Pending {
                            stream,
                            frames: FrameBuf::new(),
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e.into()),
                }
            }
        }

        // Controller traffic.
        if let Some(at) = ctrl_at {
            let rev = fds[at].revents;
            if rev != 0 {
                let c = ctrl.as_mut().expect("ctrl present");
                let step = if rev & (POLLIN | POLLHUP | POLLERR) != 0 {
                    drive_ctrl_readable(c, &mut session)
                } else if c.wq.flush(&mut c.stream).is_err() {
                    Step::CtrlGone
                } else {
                    Step::Continue
                };
                match step {
                    Step::Continue => {}
                    Step::Exit => {
                        if let Some(c) = ctrl.as_mut() {
                            exit_flush(c);
                        }
                        return Ok(());
                    }
                    Step::CtrlGone => ctrl_gone(&mut ctrl, &mut session),
                }
            }
        }

        // Handshakes: classify each readable pending socket by its hello.
        let mut verdicts: Vec<(usize, Classified)> = Vec::new();
        for (i, p) in pending.iter_mut().enumerate() {
            let at = pending_at + i;
            if fds.get(at).map_or(0, |f| f.revents) & (POLLIN | POLLHUP | POLLERR) == 0 {
                continue;
            }
            verdicts.push((i, classify(p)));
        }
        for (i, verdict) in verdicts.into_iter().rev() {
            let mut p = pending.swap_remove(i);
            match verdict {
                Classified::NotYet => {
                    pending.push(p); // hello still incomplete; keep waiting
                }
                Classified::Drop => {}
                Classified::Peer { from } => {
                    let me = session.as_ref().map_or(usize::MAX, |s| s.me);
                    log().info(
                        "peer_connected",
                        None,
                        &format!("[grout-workerd w{me}] peer {from} connected"),
                        &[("peer", Value::U64(from as u64))],
                    );
                    let mut peer = PeerIn {
                        from,
                        stream: p.stream,
                        frames: p.frames,
                    };
                    // Frames may have ridden in behind the hello; drain
                    // them now (no new bytes, no POLLIN).
                    if drive_peer_frames(&mut peer, &mut session, &mut ctrl) == Step::Exit {
                        if let Some(c) = ctrl.as_mut() {
                            exit_flush(c);
                        }
                        return Ok(());
                    }
                    peers_in.push(peer);
                }
                Classified::Controller(hello) => {
                    let a = Adoption {
                        stream: p.stream,
                        carry: std::mem::take(&mut p.frames),
                        me: hello.me,
                        total: hello.total,
                        heartbeat_ms: hello.heartbeat_ms,
                        peers: hello.peers,
                        version: hello.version,
                        session_id: hello.session_id,
                        resume: hello.resume,
                    };
                    match adopt(a, &mut session, &mut ctrl) {
                        Step::Exit => return Ok(()),
                        Step::Continue | Step::CtrlGone => {}
                    }
                }
            }
        }

        // Peer traffic.
        let mut gone: Vec<usize> = Vec::new();
        let mut exit = false;
        for (i, p) in peers_in.iter_mut().enumerate() {
            let at = peers_at + i;
            if fds.get(at).map_or(0, |f| f.revents) & (POLLIN | POLLHUP | POLLERR) == 0 {
                continue;
            }
            let open = matches!(read_available(&mut p.stream, &mut p.frames), Ok(true));
            if drive_peer_frames(p, &mut session, &mut ctrl) == Step::Exit {
                exit = true;
                break;
            }
            if !open {
                let me = session.as_ref().map_or(usize::MAX, |s| s.me);
                log().warn(
                    "peer_disconnected",
                    None,
                    &format!("[grout-workerd w{me}] peer {} disconnected", p.from),
                    &[("peer", Value::U64(p.from as u64))],
                );
                gone.push(i);
            }
        }
        if exit {
            if let Some(c) = ctrl.as_mut() {
                exit_flush(c);
            }
            return Ok(());
        }
        for i in gone.into_iter().rev() {
            peers_in.swap_remove(i);
        }

        // Timers.
        let now = Instant::now();
        if let (Some(c), Some(s)) = (ctrl.as_mut(), session.as_mut()) {
            if now >= c.next_beat {
                heartbeat(c, s);
                while c.next_beat <= now {
                    c.next_beat += c.cadence;
                }
                if c.wq.flush(&mut c.stream).is_err() {
                    ctrl_gone(&mut ctrl, &mut session);
                }
            }
        }
        if now >= next_flush {
            next_flush = now + TELEMETRY_FLUSH_TICK;
            match (ctrl.as_mut(), session.as_mut()) {
                (Some(c), Some(s)) => {
                    flush_telemetry_online(c, s);
                    if c.wq.flush(&mut c.stream).is_err() {
                        ctrl_gone(&mut ctrl, &mut session);
                    }
                }
                (None, Some(s)) => s.flush_offline(),
                _ => {}
            }
        }
    }
}

/// A decoded controller hello, minus the socket it arrived on.
struct CtrlHello {
    me: usize,
    total: usize,
    heartbeat_ms: u32,
    peers: Vec<String>,
    version: u16,
    session_id: u64,
    resume: Option<u64>,
}

/// Outcome of reading a pending socket's hello.
enum Classified {
    /// Hello incomplete; keep the socket pending.
    NotYet,
    /// EOF, error or garbage hello; drop the socket.
    Drop,
    Peer {
        from: usize,
    },
    Controller(Box<CtrlHello>),
}

fn classify(p: &mut Pending) -> Classified {
    let open = matches!(read_available(&mut p.stream, &mut p.frames), Ok(true));
    match p.frames.next_frame() {
        Ok(Some(hello)) => match wire::decode_hello(&hello) {
            Ok((wire::Hello::Peer { from }, _)) => Classified::Peer { from },
            Ok((
                wire::Hello::Controller {
                    index,
                    total,
                    heartbeat_ms,
                    peers,
                    session_id,
                    resume,
                },
                version,
            )) => Classified::Controller(Box::new(CtrlHello {
                me: index,
                total,
                heartbeat_ms,
                peers,
                version,
                session_id,
                resume,
            })),
            // Tenant clients belong on a `grout-ctld` control plane, not
            // on a worker's data plane.
            Ok((wire::Hello::Client, _)) => Classified::Drop,
            Err(_) => Classified::Drop,
        },
        Ok(None) => {
            if open {
                Classified::NotYet
            } else {
                Classified::Drop
            }
        }
        Err(_) => Classified::Drop,
    }
}

/// Handles a controller hello: fresh adoption, in-place session revival,
/// or supersession of the current socket. On success `ctrl` holds the
/// new socket with the handshake ack (and any resume replay) queued.
fn adopt(a: Adoption, session: &mut Option<Session>, ctrl: &mut Option<CtrlSock>) -> Step {
    let resumable = a.version >= 4
        && a.resume.is_some()
        && session
            .as_ref()
            .is_some_and(|s| s.v4 && s.session_id == a.session_id);
    if !resumable {
        *session = Some(Session::fresh(&a));
    }
    let s = session.as_mut().expect("session");
    // Quiesce any current socket: the new hello supersedes it (the
    // controller severed a stale or injected-dead socket and re-dialed,
    // or a standby took over).
    if let Some(old) = ctrl.take() {
        let _ = old.stream.shutdown(std::net::Shutdown::Both);
    }
    let mut wq = WriteQueue::new();
    let resumed = if resumable {
        let cursor = a.resume.expect("resume cursor");
        match s.send_buf.replay_from(cursor) {
            Some(frames) => {
                wq.enqueue(&wire::encode_ack_ex(s.me, true, s.recv_cursor.cursor()));
                for f in &frames {
                    wq.enqueue(f);
                }
                true
            }
            None => {
                // Window trimmed past the controller's cursor: this
                // session can never resume losslessly. Tell the
                // controller (it goes to quarantine + fresh rejoin) and
                // drop the socket; the session stays parked.
                let mut stream = a.stream;
                let mut t = WriteQueue::new();
                t.enqueue(&wire::encode_ack_ex(s.me, false, s.recv_cursor.cursor()));
                let _ = t.flush(&mut stream);
                return Step::CtrlGone;
            }
        }
    } else {
        wq.enqueue(&wire::encode_ack_ex(s.me, false, s.recv_cursor.cursor()));
        false
    };
    // The "adopted by controller" phrasing inside `msg` is a stable
    // contract: CI's distributed smoke test greps for it.
    log().info(
        if resumed {
            "controller_resumed"
        } else {
            "controller_adopted"
        },
        None,
        &format!(
            "[grout-workerd w{}] {} controller (wire v{}, {} workers, heartbeat {}ms{})",
            s.me,
            if resumed { "resumed" } else { "adopted by" },
            a.version,
            a.total,
            a.heartbeat_ms,
            if resumed { ", session revived" } else { "" },
        ),
        &[
            ("worker", Value::U64(s.me as u64)),
            ("wire_version", Value::U64(a.version as u64)),
            ("total_workers", Value::U64(a.total as u64)),
        ],
    );
    let mut c = CtrlSock {
        stream: a.stream,
        frames: a.carry,
        wq,
        version: a.version,
        cadence: Duration::from_millis(a.heartbeat_ms.max(1) as u64),
        // Beat immediately so even a run shorter than one cadence yields
        // an RTT sample.
        next_beat: Instant::now(),
    };
    if c.wq.flush(&mut c.stream).is_err() {
        ctrl_gone_inner(session);
        return Step::CtrlGone;
    }
    // Frames may have ridden in behind the hello (none today — the
    // controller waits for our ack — but the decoder must not rely on
    // that).
    let step = drive_ctrl_frames(&mut c, session);
    match step {
        Step::Continue => *ctrl = Some(c),
        Step::Exit => exit_flush(&mut c),
        Step::CtrlGone => ctrl_gone_inner(session),
    }
    step
}

/// The controller socket died or misbehaved: park the session (v4) or
/// drop it (legacy).
fn ctrl_gone(ctrl: &mut Option<CtrlSock>, session: &mut Option<Session>) {
    *ctrl = None;
    ctrl_gone_inner(session);
}

fn ctrl_gone_inner(session: &mut Option<Session>) {
    match session {
        Some(s) if s.v4 => {
            log().warn(
                "controller_lost",
                None,
                &format!(
                    "[grout-workerd w{}] controller lost; session parked, awaiting resume",
                    s.me
                ),
                &[("worker", Value::U64(s.me as u64))],
            );
        }
        Some(s) => {
            log().warn(
                "controller_lost",
                None,
                &format!(
                    "[grout-workerd w{}] controller lost; awaiting re-adoption",
                    s.me
                ),
                &[("worker", Value::U64(s.me as u64))],
            );
            *session = None;
        }
        None => {}
    }
}

/// Reads whatever the controller socket has, decodes and dispatches every
/// complete frame, then flushes replies.
fn drive_ctrl_readable(c: &mut CtrlSock, session: &mut Option<Session>) -> Step {
    let open = matches!(read_available(&mut c.stream, &mut c.frames), Ok(true));
    let step = drive_ctrl_frames(c, session);
    if step != Step::Continue {
        return step;
    }
    if !open || c.wq.flush(&mut c.stream).is_err() {
        return Step::CtrlGone;
    }
    Step::Continue
}

/// Decodes and dispatches every complete frame buffered for the
/// controller socket.
fn drive_ctrl_frames(c: &mut CtrlSock, session: &mut Option<Session>) -> Step {
    loop {
        let raw = match c.frames.next_frame() {
            Ok(Some(raw)) => raw,
            Ok(None) => return Step::Continue,
            Err(e) => {
                log().warn(
                    "ctrl_bad_framing",
                    None,
                    &format!("[grout-workerd] bad controller framing: {e}"),
                    &[],
                );
                return Step::CtrlGone;
            }
        };
        let step = if c.v4() {
            match wire::open_envelope(raw) {
                Ok(wire::Envelope::Ephemeral(inner)) => handle_ctrl_payload(inner, c, session),
                Ok(wire::Envelope::Reliable { seq, payload }) => {
                    let Some(s) = session.as_mut() else {
                        return Step::CtrlGone; // no session: protocol error
                    };
                    let before = s.recv_cursor.cursor();
                    let ready = s.recv_cursor.accept(seq, payload);
                    let after = s.recv_cursor.cursor();
                    let mut step = Step::Continue;
                    for payload in ready {
                        step = handle_ctrl_payload(payload, c, session);
                        if step != Step::Continue {
                            break;
                        }
                    }
                    if step == Step::Continue && before / ACK_EVERY != after / ACK_EVERY {
                        let framed = wire::seal_ephemeral(&wire::encode_session_ack(after));
                        c.wq.enqueue(&framed);
                    }
                    step
                }
                Err(e) => {
                    log().warn(
                        "ctrl_bad_envelope",
                        None,
                        &format!("[grout-workerd] bad controller envelope: {e}"),
                        &[],
                    );
                    Step::CtrlGone
                }
            }
        } else {
            handle_ctrl_payload(raw, c, session)
        };
        if step != Step::Continue {
            return step;
        }
    }
}

/// Handles one logical (post-envelope) controller payload:
/// transport-internal frames (clock pongs, session acks) inline, plan
/// traffic through the engine.
fn handle_ctrl_payload(inner: Vec<u8>, c: &mut CtrlSock, session: &mut Option<Session>) -> Step {
    // Clock pongs complete the NTP-style exchange immediately — t4 is
    // stamped in the same loop turn the bytes arrived.
    if inner.first() == Some(&wire::CLOCK_PONG_TAG) {
        let t4 = monotonic_ns();
        if let Ok((t1, t2)) = wire::decode_clock_pong(&inner) {
            let offset = t2 as i64 - ((t1 + t4) / 2) as i64;
            let rtt = t4.saturating_sub(t1);
            if let Some(s) = session.as_ref() {
                let sample = wire::encode_clock_sample(s.me, offset, rtt);
                enqueue_ctrl(c, &sample);
            }
        }
        return Step::Continue;
    }
    if inner.first() == Some(&wire::SESSION_ACK_TAG) {
        if let (Ok(cursor), Some(s)) = (wire::decode_session_ack(&inner), session.as_mut()) {
            s.send_buf.ack(cursor);
        }
        return Step::Continue;
    }
    let msg = match wire::decode_ctrl(&inner) {
        Ok(msg) => msg,
        Err(e) => {
            log().warn(
                "ctrl_bad_frame",
                None,
                &format!("[grout-workerd] bad controller frame: {e}"),
                &[],
            );
            return Step::CtrlGone;
        }
    };
    let Some(s) = session.as_mut() else {
        return Step::CtrlGone;
    };
    drive_msg(msg, s, Some(c))
}

/// Drains and dispatches every complete frame buffered on one inbound
/// peer socket. Peer messages never write to the controller
/// synchronously, so the only non-Continue outcome is an engine halt.
fn drive_peer_frames(
    p: &mut PeerIn,
    session: &mut Option<Session>,
    ctrl: &mut Option<CtrlSock>,
) -> Step {
    loop {
        let raw = match p.frames.next_frame() {
            Ok(Some(raw)) => raw,
            Ok(None) => return Step::Continue,
            Err(e) => {
                log().warn(
                    "peer_bad_framing",
                    None,
                    &format!("[grout-workerd] peer {} bad framing: {e}", p.from),
                    &[("peer", Value::U64(p.from as u64))],
                );
                return Step::Continue; // socket dropped by caller on EOF
            }
        };
        let Ok(msg) = wire::decode_ctrl(&raw) else {
            log().warn(
                "peer_bad_frame",
                None,
                &format!(
                    "[grout-workerd] peer {} sent a bad frame; dropping it",
                    p.from
                ),
                &[("peer", Value::U64(p.from as u64))],
            );
            return Step::Continue;
        };
        let step = match session.as_mut() {
            Some(s) => drive_msg(msg, s, ctrl.as_mut()),
            None => Step::Continue, // no session yet: drop stray peer data
        };
        if step == Step::Exit {
            return step;
        }
    }
}

/// Dispatches one [`CtrlMsg`] into the session: membership updates are
/// transport-level, everything else drives the engine with output routed
/// to the controller write queue (or the parked send buffer).
fn drive_msg(msg: CtrlMsg, s: &mut Session, ctrl: Option<&mut CtrlSock>) -> Step {
    if let CtrlMsg::Peers { addrs } = msg {
        s.set_peers(addrs);
        return Step::Continue;
    }
    match ctrl {
        Some(c) => {
            let Session {
                me,
                v4,
                engine,
                send_buf,
                peer_addrs,
                peer_out,
                ..
            } = s;
            let me = *me;
            let v4 = *v4;
            let wq = &mut c.wq;
            let flow = engine.handle(msg, &mut |o| match o {
                Outbound::Controller(m) => {
                    let payload = wire::encode_worker(&m);
                    if v4 {
                        wq.enqueue(&send_buf.seal(&payload));
                    } else {
                        wq.enqueue(&payload);
                    }
                }
                Outbound::Peer(j, m) => send_to_peer(me, j, peer_addrs, peer_out, &m),
            });
            if flow == Flow::Halt {
                Step::Exit
            } else {
                Step::Continue
            }
        }
        None => {
            s.handle_offline(msg);
            Step::Continue
        }
    }
}

/// One heartbeat tick: beat, clock ping (v2+), piggybacked cumulative ack
/// (v4) — all queued on the controller socket.
fn heartbeat(c: &mut CtrlSock, s: &mut Session) {
    let beat = wire::encode_worker(&WorkerMsg::Heartbeat { worker: s.me });
    enqueue_ctrl(c, &beat);
    if c.version >= 2 {
        let ping = wire::encode_clock_ping(s.me, monotonic_ns());
        enqueue_ctrl(c, &ping);
    }
    if c.v4() {
        // Piggyback a cumulative ack so an idle stream still gets its
        // controller-side send window trimmed.
        let ack = wire::encode_session_ack(s.recv_cursor.cursor());
        enqueue_ctrl(c, &ack);
    }
}

/// Queues one ephemeral (v4) or bare transport frame for the controller.
fn enqueue_ctrl(c: &mut CtrlSock, payload: &[u8]) {
    if c.v4() {
        c.wq.enqueue(&wire::seal_ephemeral(payload));
    } else {
        c.wq.enqueue(payload);
    }
}

/// Idle flush tick with a live controller: ship buffered telemetry even
/// when no plan traffic arrives to trigger a flush.
fn flush_telemetry_online(c: &mut CtrlSock, s: &mut Session) {
    let Session {
        v4,
        engine,
        send_buf,
        ..
    } = s;
    let v4 = *v4;
    let wq = &mut c.wq;
    engine.flush_telemetry(&mut |o| {
        if let Outbound::Controller(m) = o {
            let payload = wire::encode_worker(&m);
            if v4 {
                wq.enqueue(&send_buf.seal(&payload));
            } else {
                wq.enqueue(&payload);
            }
        }
    });
}

/// SIGTERM path: flush buffered telemetry, announce a clean departure so
/// the controller re-plans immediately, flush the socket.
fn graceful_leave(s: &mut Session, c: &mut CtrlSock) {
    flush_telemetry_online(c, s);
    let payload = wire::encode_worker(&WorkerMsg::Leave { worker: s.me });
    if s.v4 {
        let framed = s.send_buf.seal(&payload);
        c.wq.enqueue(&framed);
    } else {
        c.wq.enqueue(&payload);
    }
    exit_flush(c);
    log().info(
        "sigterm_drained",
        None,
        &format!(
            "[grout-workerd w{}] SIGTERM: telemetry flushed, clean leave sent",
            s.me
        ),
        &[("worker", Value::U64(s.me as u64))],
    );
}

/// Final bounded blocking flush of the controller write queue before the
/// process exits — the clean `Leave`/final completions should reach a
/// live controller, but a dead one must not wedge the exit.
fn exit_flush(c: &mut CtrlSock) {
    if c.wq.is_empty() {
        return;
    }
    let _ = c.stream.set_nonblocking(false);
    let _ = c.stream.set_write_timeout(Some(EXIT_FLUSH_TIMEOUT));
    let _ = c.wq.flush(&mut c.stream);
}

/// Writes `msg` to peer `j`, dialing its listen address on first use. A
/// dead or unreachable peer drops the message silently — exactly the
/// in-process semantics (`let _ = peers[j].send(..)`), and the controller's
/// failure detector handles the fallout.
fn send_to_peer(
    me: usize,
    j: usize,
    peer_addrs: &[String],
    peer_out: &mut [Option<TcpStream>],
    msg: &CtrlMsg,
) {
    let Some(slot) = peer_out.get_mut(j) else {
        log().warn(
            "peer_no_address",
            None,
            &format!("[grout-workerd w{me}] no address for peer {j} yet; dropping"),
            &[("peer", Value::U64(j as u64))],
        );
        return;
    };
    if slot.is_none() {
        match dial_peer(me, &peer_addrs[j]) {
            Ok(s) => *slot = Some(s),
            Err(e) => {
                log().warn(
                    "peer_unreachable",
                    None,
                    &format!("[grout-workerd w{me}] cannot reach peer {j}: {e}"),
                    &[("peer", Value::U64(j as u64))],
                );
                return;
            }
        }
    }
    let payload = wire::encode_ctrl(msg);
    if let Some(stream) = slot.as_mut() {
        if wire::write_frame(stream, &payload).is_err() {
            *slot = None;
        }
    }
}

fn dial_peer(me: usize, addr: &str) -> Result<TcpStream, wire::WireError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    wire::write_frame(
        &mut stream,
        &wire::encode_hello(&wire::Hello::Peer { from: me }),
    )?;
    Ok(stream)
}
