//! The worker side of the TCP mesh: [`serve`], the body of the
//! `grout-workerd` binary.
//!
//! One process hosts one [`WorkerEngine`] — the same transport-agnostic
//! state machine the in-process threads run — fed from a single merged
//! queue, so message handling is sequential exactly like the crossbeam
//! worker loop:
//!
//! - the controller connection (first accepted socket carrying a
//!   controller hello) delivers plan traffic; its write half is shared
//!   with a heartbeat thread beating at the handshake's cadence,
//! - inbound peer sockets (accepted, peer hello) deliver P2P data,
//! - outbound peer traffic dials `peers[j]` on demand; each direction of
//!   each worker pair gets its own one-way socket, which avoids any
//!   dial/dial race without a connection-brokering protocol.
//!
//! The process exits when the engine halts (a `Shutdown` frame or an
//! injected crash) or when the controller connection drops — a worker
//! without a controller can never receive work again.

use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crossbeam_channel::{unbounded, RecvTimeoutError, Sender};
use grout_core::{
    monotonic_ns, CtrlMsg, Flow, Outbound, WorkerEngine, WorkerMsg, TELEMETRY_FLUSH_TICK,
};

use crate::wire;

/// What [`serve`] feeds the engine: decoded plan/peer traffic, or the end
/// of the controller connection.
enum Event {
    Msg(CtrlMsg),
    ControllerGone,
}

/// Serves one worker endpoint on `listener` until shutdown. Returns
/// `Ok(())` on a clean shutdown (or controller disconnect) and an error
/// only if the handshake never completes.
pub fn serve(listener: TcpListener) -> Result<(), wire::WireError> {
    // Accept the controller first: the handshake tells us who we are.
    let (mut ctrl_stream, _) = listener.accept()?;
    ctrl_stream.set_nodelay(true)?;
    let hello = wire::read_frame(&mut ctrl_stream)?
        .ok_or_else(|| wire::WireError::Handshake("controller closed during handshake".into()))?;
    let (decoded, ctrl_version) = wire::decode_hello(&hello)?;
    let (me, total, heartbeat_ms, peer_addrs) = match decoded {
        wire::Hello::Controller {
            index,
            total,
            heartbeat_ms,
            peers,
        } => (index, total, heartbeat_ms, peers),
        wire::Hello::Peer { .. } => {
            return Err(wire::WireError::Handshake(
                "first connection must be the controller".into(),
            ))
        }
    };
    wire::write_frame(&mut ctrl_stream, &wire::encode_ack(me))?;
    eprintln!(
        "[grout-workerd w{me}] adopted by controller (wire v{ctrl_version}, {total} workers, \
         heartbeat {heartbeat_ms}ms)"
    );

    let (tx, rx) = unbounded::<Event>();

    // Controller write half, shared between the main loop (completions,
    // data returns), the heartbeat thread (beats + clock pings) and the
    // controller reader (clock samples).
    let ctrl_read = ctrl_stream.try_clone()?;
    let ctrl_write = Arc::new(Mutex::new(ctrl_stream));

    // Controller reader: plan traffic into the merged queue.
    spawn_ctrl_reader(me, ctrl_read, tx.clone(), Arc::clone(&ctrl_write));
    spawn_heartbeat(me, Arc::clone(&ctrl_write), heartbeat_ms, ctrl_version);

    // Acceptor: every further connection is a peer's one-way data socket.
    spawn_acceptor(me, listener, tx.clone());

    let mut engine = WorkerEngine::new(me);
    // Outbound peer sockets, dialed on demand (worker index → stream).
    let mut peer_out: Vec<Option<TcpStream>> = (0..peer_addrs.len()).map(|_| None).collect();

    loop {
        let event = match rx.recv_timeout(TELEMETRY_FLUSH_TICK) {
            Ok(ev) => ev,
            Err(RecvTimeoutError::Timeout) => {
                // Idle flush tick: ship buffered telemetry even when no
                // plan traffic arrives to trigger a flush.
                let mut halt = false;
                engine.flush_telemetry(&mut |o| {
                    deliver(o, me, &ctrl_write, &peer_addrs, &mut peer_out, &mut halt)
                });
                if halt {
                    return Ok(());
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return Ok(()),
        };
        let msg = match event {
            Event::Msg(m) => m,
            // A worker without a controller can never be given work (or
            // asked to forward any) again; exit so the process is reaped.
            Event::ControllerGone => return Ok(()),
        };
        let mut halt = false;
        let flow = engine.handle(msg, &mut |o| {
            deliver(o, me, &ctrl_write, &peer_addrs, &mut peer_out, &mut halt)
        });
        if flow == Flow::Halt || halt {
            return Ok(());
        }
    }
}

/// Routes one engine-emitted message to the controller or a peer; flips
/// `halt` when the controller socket is gone.
fn deliver(
    o: Outbound,
    me: usize,
    ctrl_write: &Arc<Mutex<TcpStream>>,
    peer_addrs: &[String],
    peer_out: &mut [Option<TcpStream>],
    halt: &mut bool,
) {
    match o {
        Outbound::Controller(m) => {
            if send_to_controller(ctrl_write, &m).is_err() {
                *halt = true;
            }
        }
        Outbound::Peer(j, m) => {
            send_to_peer(me, j, peer_addrs, peer_out, &m);
        }
    }
}

fn send_to_controller(
    ctrl_write: &Arc<Mutex<TcpStream>>,
    msg: &WorkerMsg,
) -> Result<(), wire::WireError> {
    let payload = wire::encode_worker(msg);
    let mut stream = ctrl_write.lock().expect("controller write lock");
    wire::write_frame(&mut *stream, &payload)
}

/// Writes `msg` to peer `j`, dialing its listen address on first use. A
/// dead or unreachable peer drops the message silently — exactly the
/// in-process semantics (`let _ = peers[j].send(..)`), and the controller's
/// failure detector handles the fallout.
fn send_to_peer(
    me: usize,
    j: usize,
    peer_addrs: &[String],
    peer_out: &mut [Option<TcpStream>],
    msg: &CtrlMsg,
) {
    if peer_out[j].is_none() {
        match dial_peer(me, &peer_addrs[j]) {
            Ok(s) => peer_out[j] = Some(s),
            Err(e) => {
                eprintln!("[grout-workerd w{me}] cannot reach peer {j}: {e}");
                return;
            }
        }
    }
    let payload = wire::encode_ctrl(msg);
    if let Some(stream) = peer_out[j].as_mut() {
        if wire::write_frame(stream, &payload).is_err() {
            peer_out[j] = None;
        }
    }
}

fn dial_peer(me: usize, addr: &str) -> Result<TcpStream, wire::WireError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    wire::write_frame(
        &mut stream,
        &wire::encode_hello(&wire::Hello::Peer { from: me }),
    )?;
    Ok(stream)
}

fn spawn_ctrl_reader(
    me: usize,
    mut stream: TcpStream,
    tx: Sender<Event>,
    ctrl_write: Arc<Mutex<TcpStream>>,
) {
    std::thread::Builder::new()
        .name("workerd-ctrl-rx".into())
        .spawn(move || loop {
            match wire::read_frame(&mut stream) {
                Ok(Some(payload)) => {
                    // Clock pongs complete the NTP-style exchange here,
                    // on the arrival thread — queueing them behind plan
                    // traffic would inflate t4 and ruin the estimate.
                    if payload.first() == Some(&wire::CLOCK_PONG_TAG) {
                        let t4 = monotonic_ns();
                        if let Ok((t1, t2)) = wire::decode_clock_pong(&payload) {
                            let offset = t2 as i64 - ((t1 + t4) / 2) as i64;
                            let rtt = t4.saturating_sub(t1);
                            let sample = wire::encode_clock_sample(me, offset, rtt);
                            let mut w = ctrl_write.lock().expect("controller write lock");
                            if wire::write_frame(&mut *w, &sample).is_err() {
                                let _ = tx.send(Event::ControllerGone);
                                return;
                            }
                        }
                        continue;
                    }
                    match wire::decode_ctrl(&payload) {
                        Ok(msg) => {
                            if tx.send(Event::Msg(msg)).is_err() {
                                return;
                            }
                        }
                        Err(e) => {
                            eprintln!("[grout-workerd] bad controller frame: {e}");
                            let _ = tx.send(Event::ControllerGone);
                            return;
                        }
                    }
                }
                Ok(None) | Err(_) => {
                    let _ = tx.send(Event::ControllerGone);
                    return;
                }
            }
        })
        .expect("spawn controller reader");
}

fn spawn_heartbeat(
    me: usize,
    ctrl_write: Arc<Mutex<TcpStream>>,
    heartbeat_ms: u32,
    ctrl_version: u16,
) {
    let cadence = Duration::from_millis(heartbeat_ms.max(1) as u64);
    std::thread::Builder::new()
        .name("workerd-heartbeat".into())
        .spawn(move || loop {
            // Beat (and ping) *before* the first sleep so even a run
            // shorter than one cadence yields an RTT sample.
            let beat = WorkerMsg::Heartbeat { worker: me };
            if send_to_controller(&ctrl_write, &beat).is_err() {
                return;
            }
            if ctrl_version >= 2 {
                let ping = wire::encode_clock_ping(me, monotonic_ns());
                let mut w = ctrl_write.lock().expect("controller write lock");
                if wire::write_frame(&mut *w, &ping).is_err() {
                    return;
                }
            }
            std::thread::sleep(cadence);
        })
        .expect("spawn heartbeat thread");
}

fn spawn_acceptor(me: usize, listener: TcpListener, tx: Sender<Event>) {
    std::thread::Builder::new()
        .name("workerd-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut stream) = conn else { return };
                if stream.set_nodelay(true).is_err() {
                    continue;
                }
                let tx = tx.clone();
                // Handshake + decode loop per peer socket.
                let spawned = std::thread::Builder::new()
                    .name("workerd-peer-rx".into())
                    .spawn(move || {
                        let Ok(Some(hello)) = wire::read_frame(&mut stream) else {
                            return;
                        };
                        let from = match wire::decode_hello(&hello) {
                            Ok((wire::Hello::Peer { from }, _)) => from,
                            Ok((wire::Hello::Controller { .. }, _)) | Err(_) => return,
                        };
                        eprintln!("[grout-workerd w{me}] peer {from} connected");
                        loop {
                            match wire::read_frame(&mut stream) {
                                Ok(Some(payload)) => {
                                    let Ok(msg) = wire::decode_ctrl(&payload) else {
                                        eprintln!(
                                            "[grout-workerd w{me}] peer {from} sent a bad \
                                             frame; dropping the socket"
                                        );
                                        return;
                                    };
                                    if tx.send(Event::Msg(msg)).is_err() {
                                        return;
                                    }
                                }
                                Ok(None) | Err(_) => {
                                    eprintln!("[grout-workerd w{me}] peer {from} disconnected");
                                    return;
                                }
                            }
                        }
                    });
                if spawned.is_err() {
                    return;
                }
            }
        })
        .expect("spawn acceptor thread");
}
