//! The worker side of the TCP mesh: [`serve`], the body of the
//! `grout-workerd` binary.
//!
//! One process hosts one [`WorkerEngine`] — the same transport-agnostic
//! state machine the in-process threads run — fed from a single merged
//! queue, so message handling is sequential exactly like the crossbeam
//! worker loop:
//!
//! - the controller connection (first accepted socket carrying a
//!   controller hello) delivers plan traffic; its write half is shared
//!   with a heartbeat thread beating at the handshake's cadence,
//! - inbound peer sockets (accepted, peer hello) deliver P2P data,
//! - outbound peer traffic dials `peers[j]` on demand; each direction of
//!   each worker pair gets its own one-way socket, which avoids any
//!   dial/dial race without a connection-brokering protocol.
//!
//! The process exits when the engine halts (a `Shutdown` frame or an
//! injected crash) or when the controller connection drops — a worker
//! without a controller can never receive work again.

use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crossbeam_channel::{unbounded, Sender};
use grout_core::{CtrlMsg, Flow, Outbound, WorkerEngine, WorkerMsg};

use crate::wire;

/// What [`serve`] feeds the engine: decoded plan/peer traffic, or the end
/// of the controller connection.
enum Event {
    Msg(CtrlMsg),
    ControllerGone,
}

/// Serves one worker endpoint on `listener` until shutdown. Returns
/// `Ok(())` on a clean shutdown (or controller disconnect) and an error
/// only if the handshake never completes.
pub fn serve(listener: TcpListener) -> Result<(), wire::WireError> {
    // Accept the controller first: the handshake tells us who we are.
    let (mut ctrl_stream, _) = listener.accept()?;
    ctrl_stream.set_nodelay(true)?;
    let hello = wire::read_frame(&mut ctrl_stream)?
        .ok_or_else(|| wire::WireError::Handshake("controller closed during handshake".into()))?;
    let (me, _total, heartbeat_ms, peer_addrs) = match wire::decode_hello(&hello)? {
        wire::Hello::Controller {
            index,
            total,
            heartbeat_ms,
            peers,
        } => (index, total, heartbeat_ms, peers),
        wire::Hello::Peer { .. } => {
            return Err(wire::WireError::Handshake(
                "first connection must be the controller".into(),
            ))
        }
    };
    wire::write_frame(&mut ctrl_stream, &wire::encode_ack(me))?;

    let (tx, rx) = unbounded::<Event>();

    // Controller reader: plan traffic into the merged queue.
    let ctrl_read = ctrl_stream.try_clone()?;
    spawn_ctrl_reader(ctrl_read, tx.clone());

    // Controller write half, shared between the main loop (completions,
    // data returns) and the heartbeat thread.
    let ctrl_write = Arc::new(Mutex::new(ctrl_stream));
    spawn_heartbeat(me, Arc::clone(&ctrl_write), heartbeat_ms);

    // Acceptor: every further connection is a peer's one-way data socket.
    spawn_acceptor(listener, tx.clone());

    let mut engine = WorkerEngine::new(me);
    // Outbound peer sockets, dialed on demand (worker index → stream).
    let mut peer_out: Vec<Option<TcpStream>> = (0..peer_addrs.len()).map(|_| None).collect();

    while let Ok(event) = rx.recv() {
        let msg = match event {
            Event::Msg(m) => m,
            // A worker without a controller can never be given work (or
            // asked to forward any) again; exit so the process is reaped.
            Event::ControllerGone => return Ok(()),
        };
        let mut halt = false;
        let flow = engine.handle(msg, &mut |o| match o {
            Outbound::Controller(m) => {
                if send_to_controller(&ctrl_write, &m).is_err() {
                    halt = true;
                }
            }
            Outbound::Peer(j, m) => {
                send_to_peer(me, j, &peer_addrs, &mut peer_out, &m);
            }
        });
        if flow == Flow::Halt || halt {
            return Ok(());
        }
    }
    Ok(())
}

fn send_to_controller(
    ctrl_write: &Arc<Mutex<TcpStream>>,
    msg: &WorkerMsg,
) -> Result<(), wire::WireError> {
    let payload = wire::encode_worker(msg);
    let mut stream = ctrl_write.lock().expect("controller write lock");
    wire::write_frame(&mut *stream, &payload)
}

/// Writes `msg` to peer `j`, dialing its listen address on first use. A
/// dead or unreachable peer drops the message silently — exactly the
/// in-process semantics (`let _ = peers[j].send(..)`), and the controller's
/// failure detector handles the fallout.
fn send_to_peer(
    me: usize,
    j: usize,
    peer_addrs: &[String],
    peer_out: &mut [Option<TcpStream>],
    msg: &CtrlMsg,
) {
    if peer_out[j].is_none() {
        match dial_peer(me, &peer_addrs[j]) {
            Ok(s) => peer_out[j] = Some(s),
            Err(e) => {
                eprintln!("[grout-workerd w{me}] cannot reach peer {j}: {e}");
                return;
            }
        }
    }
    let payload = wire::encode_ctrl(msg);
    if let Some(stream) = peer_out[j].as_mut() {
        if wire::write_frame(stream, &payload).is_err() {
            peer_out[j] = None;
        }
    }
}

fn dial_peer(me: usize, addr: &str) -> Result<TcpStream, wire::WireError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    wire::write_frame(
        &mut stream,
        &wire::encode_hello(&wire::Hello::Peer { from: me }),
    )?;
    Ok(stream)
}

fn spawn_ctrl_reader(mut stream: TcpStream, tx: Sender<Event>) {
    std::thread::Builder::new()
        .name("workerd-ctrl-rx".into())
        .spawn(move || loop {
            match wire::read_frame(&mut stream) {
                Ok(Some(payload)) => match wire::decode_ctrl(&payload) {
                    Ok(msg) => {
                        if tx.send(Event::Msg(msg)).is_err() {
                            return;
                        }
                    }
                    Err(e) => {
                        eprintln!("[grout-workerd] bad controller frame: {e}");
                        let _ = tx.send(Event::ControllerGone);
                        return;
                    }
                },
                Ok(None) | Err(_) => {
                    let _ = tx.send(Event::ControllerGone);
                    return;
                }
            }
        })
        .expect("spawn controller reader");
}

fn spawn_heartbeat(me: usize, ctrl_write: Arc<Mutex<TcpStream>>, heartbeat_ms: u32) {
    let cadence = Duration::from_millis(heartbeat_ms.max(1) as u64);
    std::thread::Builder::new()
        .name("workerd-heartbeat".into())
        .spawn(move || loop {
            std::thread::sleep(cadence);
            let beat = WorkerMsg::Heartbeat { worker: me };
            if send_to_controller(&ctrl_write, &beat).is_err() {
                return;
            }
        })
        .expect("spawn heartbeat thread");
}

fn spawn_acceptor(listener: TcpListener, tx: Sender<Event>) {
    std::thread::Builder::new()
        .name("workerd-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut stream) = conn else { return };
                if stream.set_nodelay(true).is_err() {
                    continue;
                }
                let tx = tx.clone();
                // Handshake + decode loop per peer socket.
                let spawned = std::thread::Builder::new()
                    .name("workerd-peer-rx".into())
                    .spawn(move || {
                        let Ok(Some(hello)) = wire::read_frame(&mut stream) else {
                            return;
                        };
                        match wire::decode_hello(&hello) {
                            Ok(wire::Hello::Peer { .. }) => {}
                            Ok(wire::Hello::Controller { .. }) | Err(_) => return,
                        }
                        loop {
                            match wire::read_frame(&mut stream) {
                                Ok(Some(payload)) => {
                                    let Ok(msg) = wire::decode_ctrl(&payload) else {
                                        return;
                                    };
                                    if tx.send(Event::Msg(msg)).is_err() {
                                        return;
                                    }
                                }
                                Ok(None) | Err(_) => return,
                            }
                        }
                    });
                if spawned.is_err() {
                    return;
                }
            }
        })
        .expect("spawn acceptor thread");
}
