//! The worker side of the TCP mesh: [`serve`], the body of the
//! `grout-workerd` binary.
//!
//! One process hosts one [`WorkerEngine`] — the same transport-agnostic
//! state machine the in-process threads run — fed from a single merged
//! queue, so message handling is sequential exactly like the crossbeam
//! worker loop:
//!
//! - a controller connection (accepted socket carrying a controller
//!   hello) delivers plan traffic; its write half is shared with a
//!   heartbeat thread beating at the handshake's cadence,
//! - inbound peer sockets (accepted, peer hello) deliver P2P data,
//! - outbound peer traffic dials `peers[j]` on demand; each direction of
//!   each worker pair gets its own one-way socket, which avoids any
//!   dial/dial race without a connection-brokering protocol.
//!
//! ## Re-adoption (controller failover)
//!
//! The acceptor classifies *every* accepted socket by its hello, so a
//! controller hello is welcome at any time, not just first: losing the
//! controller connection ends the current *session* (the engine state is
//! dropped — a standby controller re-drives the run from scratch) and the
//! process waits to be adopted again. A controller hello arriving while a
//! session is live supersedes it the same way — latest controller wins.
//! Only a clean `Shutdown` frame (or an injected crash) exits the
//! process.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use grout_core::{
    monotonic_ns, CtrlMsg, Flow, Outbound, WorkerEngine, WorkerMsg, TELEMETRY_FLUSH_TICK,
};

use crate::wire;

/// A controller connection handed from the acceptor to the main loop.
struct Adoption {
    stream: TcpStream,
    me: usize,
    total: usize,
    heartbeat_ms: u32,
    peers: Vec<String>,
    version: u16,
}

/// What [`serve`] feeds the engine: decoded plan/peer traffic, a fresh
/// controller connection, or the end of the current one.
enum Event {
    Msg(CtrlMsg),
    NewController(Box<Adoption>),
    /// The session's controller socket died. Tagged with the adoption
    /// generation so a stale reader thread cannot end its successor's
    /// session.
    ControllerGone {
        gen: u64,
    },
}

/// How one controller session ended.
enum SessionEnd {
    /// Clean `Shutdown` frame (or engine halt): exit the process.
    Shutdown,
    /// The controller socket died: wait to be adopted again.
    ControllerGone,
    /// Another controller hello arrived mid-session: adopt it instead.
    Superseded(Box<Adoption>),
}

/// Serves one worker endpoint on `listener` until a clean shutdown.
/// Survives controller loss: the engine state of the orphaned session is
/// dropped and the process waits for the next controller hello (a standby
/// taking over re-drives the run from scratch). Returns `Ok(())` on a
/// clean shutdown; errors only if the accept loop itself dies before any
/// adoption.
pub fn serve(listener: TcpListener) -> Result<(), wire::WireError> {
    let (tx, rx) = unbounded::<Event>();
    // Worker index, for log lines from threads that outlive sessions
    // (usize::MAX = not yet adopted).
    let me_label = Arc::new(AtomicUsize::new(usize::MAX));
    spawn_acceptor(listener, tx.clone(), Arc::clone(&me_label));

    let mut gen: u64 = 0;
    let mut next: Option<Box<Adoption>> = None;
    loop {
        let mut adoption = match next.take() {
            Some(a) => a,
            None => loop {
                match rx.recv() {
                    Ok(Event::NewController(a)) => break a,
                    // Peer traffic / stale gone-events between sessions
                    // belong to no engine; drop them.
                    Ok(_) => continue,
                    Err(_) => return Ok(()),
                }
            },
        };
        // Drop events queued for the previous session; keep only the
        // newest controller if several raced in.
        while let Ok(ev) = rx.try_recv() {
            if let Event::NewController(a) = ev {
                adoption = a;
            }
        }
        gen += 1;
        me_label.store(adoption.me, Ordering::Relaxed);
        match run_session(gen, *adoption, &rx, &tx) {
            SessionEnd::Shutdown => return Ok(()),
            SessionEnd::ControllerGone => {
                eprintln!("[grout-workerd] controller lost; awaiting re-adoption");
            }
            SessionEnd::Superseded(a) => next = Some(a),
        }
    }
}

/// Runs one controller session: ack the adoption, spawn the session's
/// reader and heartbeat threads, and drive a fresh [`WorkerEngine`] until
/// the session ends.
fn run_session(
    gen: u64,
    adoption: Adoption,
    rx: &Receiver<Event>,
    tx: &Sender<Event>,
) -> SessionEnd {
    let Adoption {
        mut stream,
        me,
        total,
        heartbeat_ms,
        peers: peer_addrs,
        version: ctrl_version,
    } = adoption;
    if wire::write_frame(&mut stream, &wire::encode_ack(me)).is_err() {
        return SessionEnd::ControllerGone;
    }
    eprintln!(
        "[grout-workerd w{me}] adopted by controller (wire v{ctrl_version}, {total} workers, \
         heartbeat {heartbeat_ms}ms, session {gen})"
    );

    // Controller write half, shared between the main loop (completions,
    // data returns), the heartbeat thread (beats + clock pings) and the
    // controller reader (clock samples).
    let ctrl_read = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return SessionEnd::ControllerGone,
    };
    let ctrl_write = Arc::new(Mutex::new(stream));

    spawn_ctrl_reader(me, gen, ctrl_read, tx.clone(), Arc::clone(&ctrl_write));
    spawn_heartbeat(me, Arc::clone(&ctrl_write), heartbeat_ms, ctrl_version);

    let mut engine = WorkerEngine::new(me);
    // Outbound peer sockets, dialed on demand (worker index → stream).
    // Per-session: dropping them at session end closes the sockets, which
    // ends the matching peer-rx threads on the receiving workers.
    let mut peer_out: Vec<Option<TcpStream>> = (0..peer_addrs.len()).map(|_| None).collect();

    loop {
        let event = match rx.recv_timeout(TELEMETRY_FLUSH_TICK) {
            Ok(ev) => ev,
            Err(RecvTimeoutError::Timeout) => {
                // Idle flush tick: ship buffered telemetry even when no
                // plan traffic arrives to trigger a flush.
                let mut halt = false;
                engine.flush_telemetry(&mut |o| {
                    deliver(o, me, &ctrl_write, &peer_addrs, &mut peer_out, &mut halt)
                });
                if halt {
                    return SessionEnd::ControllerGone;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return SessionEnd::Shutdown,
        };
        let msg = match event {
            Event::Msg(m) => m,
            Event::NewController(a) => return SessionEnd::Superseded(a),
            Event::ControllerGone { gen: g } if g == gen => return SessionEnd::ControllerGone,
            Event::ControllerGone { .. } => continue, // stale session's reader
        };
        let mut halt = false;
        let flow = engine.handle(msg, &mut |o| {
            deliver(o, me, &ctrl_write, &peer_addrs, &mut peer_out, &mut halt)
        });
        if flow == Flow::Halt {
            return SessionEnd::Shutdown;
        }
        if halt {
            return SessionEnd::ControllerGone;
        }
    }
}

/// Routes one engine-emitted message to the controller or a peer; flips
/// `halt` when the controller socket is gone.
fn deliver(
    o: Outbound,
    me: usize,
    ctrl_write: &Arc<Mutex<TcpStream>>,
    peer_addrs: &[String],
    peer_out: &mut [Option<TcpStream>],
    halt: &mut bool,
) {
    match o {
        Outbound::Controller(m) => {
            if send_to_controller(ctrl_write, &m).is_err() {
                *halt = true;
            }
        }
        Outbound::Peer(j, m) => {
            send_to_peer(me, j, peer_addrs, peer_out, &m);
        }
    }
}

fn send_to_controller(
    ctrl_write: &Arc<Mutex<TcpStream>>,
    msg: &WorkerMsg,
) -> Result<(), wire::WireError> {
    let payload = wire::encode_worker(msg);
    let mut stream = ctrl_write.lock().expect("controller write lock");
    wire::write_frame(&mut *stream, &payload)
}

/// Writes `msg` to peer `j`, dialing its listen address on first use. A
/// dead or unreachable peer drops the message silently — exactly the
/// in-process semantics (`let _ = peers[j].send(..)`), and the controller's
/// failure detector handles the fallout.
fn send_to_peer(
    me: usize,
    j: usize,
    peer_addrs: &[String],
    peer_out: &mut [Option<TcpStream>],
    msg: &CtrlMsg,
) {
    if peer_out[j].is_none() {
        match dial_peer(me, &peer_addrs[j]) {
            Ok(s) => peer_out[j] = Some(s),
            Err(e) => {
                eprintln!("[grout-workerd w{me}] cannot reach peer {j}: {e}");
                return;
            }
        }
    }
    let payload = wire::encode_ctrl(msg);
    if let Some(stream) = peer_out[j].as_mut() {
        if wire::write_frame(stream, &payload).is_err() {
            peer_out[j] = None;
        }
    }
}

fn dial_peer(me: usize, addr: &str) -> Result<TcpStream, wire::WireError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    wire::write_frame(
        &mut stream,
        &wire::encode_hello(&wire::Hello::Peer { from: me }),
    )?;
    Ok(stream)
}

fn spawn_ctrl_reader(
    me: usize,
    gen: u64,
    mut stream: TcpStream,
    tx: Sender<Event>,
    ctrl_write: Arc<Mutex<TcpStream>>,
) {
    std::thread::Builder::new()
        .name("workerd-ctrl-rx".into())
        .spawn(move || loop {
            match wire::read_frame(&mut stream) {
                Ok(Some(payload)) => {
                    // Clock pongs complete the NTP-style exchange here,
                    // on the arrival thread — queueing them behind plan
                    // traffic would inflate t4 and ruin the estimate.
                    if payload.first() == Some(&wire::CLOCK_PONG_TAG) {
                        let t4 = monotonic_ns();
                        if let Ok((t1, t2)) = wire::decode_clock_pong(&payload) {
                            let offset = t2 as i64 - ((t1 + t4) / 2) as i64;
                            let rtt = t4.saturating_sub(t1);
                            let sample = wire::encode_clock_sample(me, offset, rtt);
                            let mut w = ctrl_write.lock().expect("controller write lock");
                            if wire::write_frame(&mut *w, &sample).is_err() {
                                let _ = tx.send(Event::ControllerGone { gen });
                                return;
                            }
                        }
                        continue;
                    }
                    match wire::decode_ctrl(&payload) {
                        Ok(msg) => {
                            if tx.send(Event::Msg(msg)).is_err() {
                                return;
                            }
                        }
                        Err(e) => {
                            eprintln!("[grout-workerd] bad controller frame: {e}");
                            let _ = tx.send(Event::ControllerGone { gen });
                            return;
                        }
                    }
                }
                Ok(None) | Err(_) => {
                    let _ = tx.send(Event::ControllerGone { gen });
                    return;
                }
            }
        })
        .expect("spawn controller reader");
}

fn spawn_heartbeat(
    me: usize,
    ctrl_write: Arc<Mutex<TcpStream>>,
    heartbeat_ms: u32,
    ctrl_version: u16,
) {
    let cadence = Duration::from_millis(heartbeat_ms.max(1) as u64);
    std::thread::Builder::new()
        .name("workerd-heartbeat".into())
        .spawn(move || loop {
            // Beat (and ping) *before* the first sleep so even a run
            // shorter than one cadence yields an RTT sample.
            let beat = WorkerMsg::Heartbeat { worker: me };
            if send_to_controller(&ctrl_write, &beat).is_err() {
                return;
            }
            if ctrl_version >= 2 {
                let ping = wire::encode_clock_ping(me, monotonic_ns());
                let mut w = ctrl_write.lock().expect("controller write lock");
                if wire::write_frame(&mut *w, &ping).is_err() {
                    return;
                }
            }
            std::thread::sleep(cadence);
        })
        .expect("spawn heartbeat thread");
}

/// Accepts every inbound socket and classifies it by hello: controller
/// hellos go to the main loop as adoptions; peer hellos get a decode loop
/// feeding the merged queue.
fn spawn_acceptor(listener: TcpListener, tx: Sender<Event>, me_label: Arc<AtomicUsize>) {
    std::thread::Builder::new()
        .name("workerd-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut stream) = conn else { return };
                if stream.set_nodelay(true).is_err() {
                    continue;
                }
                let tx = tx.clone();
                let me_label = Arc::clone(&me_label);
                // Handshake + (for peers) decode loop per socket.
                let spawned = std::thread::Builder::new()
                    .name("workerd-peer-rx".into())
                    .spawn(move || {
                        let Ok(Some(hello)) = wire::read_frame(&mut stream) else {
                            return;
                        };
                        let from = match wire::decode_hello(&hello) {
                            Ok((wire::Hello::Peer { from }, _)) => from,
                            Ok((
                                wire::Hello::Controller {
                                    index,
                                    total,
                                    heartbeat_ms,
                                    peers,
                                },
                                version,
                            )) => {
                                let _ = tx.send(Event::NewController(Box::new(Adoption {
                                    stream,
                                    me: index,
                                    total,
                                    heartbeat_ms,
                                    peers,
                                    version,
                                })));
                                return;
                            }
                            Err(_) => return,
                        };
                        let me = me_label.load(Ordering::Relaxed);
                        eprintln!("[grout-workerd w{me}] peer {from} connected");
                        loop {
                            match wire::read_frame(&mut stream) {
                                Ok(Some(payload)) => {
                                    let Ok(msg) = wire::decode_ctrl(&payload) else {
                                        eprintln!(
                                            "[grout-workerd w{me}] peer {from} sent a bad \
                                             frame; dropping the socket"
                                        );
                                        return;
                                    };
                                    if tx.send(Event::Msg(msg)).is_err() {
                                        return;
                                    }
                                }
                                Ok(None) | Err(_) => {
                                    eprintln!("[grout-workerd w{me}] peer {from} disconnected");
                                    return;
                                }
                            }
                        }
                    });
                if spawned.is_err() {
                    return;
                }
            }
        })
        .expect("spawn acceptor thread");
}
