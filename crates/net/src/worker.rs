//! The worker side of the TCP mesh: [`serve`], the body of the
//! `grout-workerd` binary.
//!
//! One process hosts one [`WorkerEngine`] — the same transport-agnostic
//! state machine the in-process threads run — fed from a single merged
//! queue, so message handling is sequential exactly like the crossbeam
//! worker loop:
//!
//! - a controller connection (accepted socket carrying a controller
//!   hello) delivers plan traffic; its write half is shared with a
//!   heartbeat thread beating at the handshake's cadence,
//! - inbound peer sockets (accepted, peer hello) deliver P2P data,
//! - outbound peer traffic dials `peers[j]` on demand; each direction of
//!   each worker pair gets its own one-way socket, which avoids any
//!   dial/dial race without a connection-brokering protocol.
//!
//! ## Session resume (wire v4) and re-adoption
//!
//! The acceptor classifies *every* accepted socket by its hello, so a
//! controller hello is welcome at any time, not just first. Against a v4
//! controller the session is *resumable*: losing the controller socket
//! parks the session — the engine, both reliable-stream cursors and the
//! outbound peer sockets survive — and the worker keeps driving peer
//! traffic through the parked engine, buffering controller-bound output
//! in its [`SendBuffer`]. A controller hello carrying the same session id
//! and a resume cursor revives the parked session: the worker acks with
//! its own receive cursor, both sides replay their unacked tails, and the
//! run continues as if the socket had never died. A hello *without* a
//! resume cursor (a fresh adoption — standby takeover, or a rejoin after
//! quarantine) discards any parked state and starts a clean session, as
//! does any hello from a pre-v4 controller.
//!
//! Only a clean `Shutdown` frame, SIGTERM (see [`serve_shutdown`]) or an
//! injected crash exits the process.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use grout_core::{
    monotonic_ns, CtrlMsg, Flow, Outbound, WorkerEngine, WorkerMsg, TELEMETRY_FLUSH_TICK,
};

use crate::session::{RecvCursor, SendBuffer, ACK_EVERY};
use crate::wire;

/// A controller connection handed from the acceptor to the main loop.
struct Adoption {
    stream: TcpStream,
    me: usize,
    total: usize,
    heartbeat_ms: u32,
    peers: Vec<String>,
    version: u16,
    /// The controller instance's session id (v4; 0 from older peers).
    session_id: u64,
    /// `Some(cursor)` = resume request: the controller has every reliable
    /// frame below `cursor` and wants the rest replayed.
    resume: Option<u64>,
}

/// What [`serve`] feeds the engine: decoded plan/peer traffic, a fresh
/// controller connection, or the end of the current one.
enum Event {
    Msg(CtrlMsg),
    NewController(Box<Adoption>),
    /// A controller socket died. Tagged with the socket token so a stale
    /// reader thread cannot end its successor's session.
    ControllerGone {
        token: u64,
    },
}

/// How one controller session ended.
enum SessionEnd {
    /// Clean `Shutdown` frame, SIGTERM, or engine halt: exit the process.
    Shutdown,
    /// The controller socket died: park the session (v4) or drop it and
    /// wait to be adopted again.
    ControllerGone,
    /// Another controller hello arrived mid-session that cannot revive
    /// this session: adopt it instead.
    Superseded(Box<Adoption>),
}

/// One worker session: the engine plus everything that must survive a
/// controller-socket loss for a resume to be lossless.
struct Session {
    session_id: u64,
    me: usize,
    v4: bool,
    engine: WorkerEngine,
    /// Outbound reliable frames awaiting cumulative ack; shared with the
    /// controller reader (acks) — and the replay source on resume.
    send_buf: Arc<Mutex<SendBuffer>>,
    /// Inbound reliable dedupe cursor; shared with the controller reader
    /// and the heartbeat thread (piggybacked acks).
    recv_cursor: Arc<Mutex<RecvCursor>>,
    peer_addrs: Vec<String>,
    /// Outbound peer sockets, dialed on demand (worker index → stream).
    /// Survive parking so P2P keeps flowing through a controller outage.
    peer_out: Vec<Option<TcpStream>>,
}

impl Session {
    fn fresh(a: &Adoption) -> Session {
        Session {
            session_id: a.session_id,
            me: a.me,
            v4: a.version >= 4,
            engine: WorkerEngine::new(a.me),
            send_buf: Arc::new(Mutex::new(SendBuffer::default())),
            recv_cursor: Arc::new(Mutex::new(RecvCursor::new())),
            peer_addrs: a.peers.clone(),
            peer_out: (0..a.peers.len()).map(|_| None).collect(),
        }
    }

    /// Drives one message through the engine while no controller socket
    /// exists: controller-bound output is sealed into the send buffer
    /// (replayed on resume), peer output flows normally.
    fn handle_offline(&mut self, msg: CtrlMsg) {
        let Session {
            me,
            engine,
            send_buf,
            peer_addrs,
            peer_out,
            ..
        } = self;
        let me = *me;
        let _ = engine.handle(msg, &mut |o| match o {
            Outbound::Controller(m) => {
                let payload = wire::encode_worker(&m);
                send_buf.lock().expect("send_buf").seal(&payload);
            }
            Outbound::Peer(j, m) => send_to_peer(me, j, peer_addrs, peer_out, &m),
        });
    }

    /// Telemetry flush tick while parked: batches land in the send
    /// buffer and ship on resume.
    fn flush_offline(&mut self) {
        let Session {
            engine, send_buf, ..
        } = self;
        engine.flush_telemetry(&mut |o| {
            if let Outbound::Controller(m) = o {
                let payload = wire::encode_worker(&m);
                send_buf.lock().expect("send_buf").seal(&payload);
            }
        });
    }
}

/// Serves one worker endpoint on `listener` until a clean shutdown.
/// Equivalent to [`serve_shutdown`] with a flag that never fires.
pub fn serve(listener: TcpListener) -> Result<(), wire::WireError> {
    serve_shutdown(listener, Arc::new(AtomicBool::new(false)))
}

/// Serves one worker endpoint until a clean `Shutdown` frame — or until
/// `shutdown` is set (the binary's SIGTERM handler), upon which buffered
/// telemetry is flushed, a clean [`WorkerMsg::Leave`] is sent so the
/// controller re-plans immediately instead of waiting out the staleness
/// window, and the function returns `Ok(())`.
///
/// Survives controller loss: a v4 session is parked and can be resumed by
/// a controller hello carrying the same session id (see the module docs);
/// a pre-v4 session is dropped and the process waits for the next
/// adoption. Errors only if the accept loop itself dies before any
/// adoption.
pub fn serve_shutdown(
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
) -> Result<(), wire::WireError> {
    let (tx, rx) = unbounded::<Event>();
    // Worker index, for log lines from threads that outlive sessions
    // (usize::MAX = not yet adopted).
    let me_label = Arc::new(AtomicUsize::new(usize::MAX));
    spawn_acceptor(listener, tx.clone(), Arc::clone(&me_label));

    // Socket-token allocator for ControllerGone attribution (a resume
    // swaps sockets mid-session, so tokens are per socket, not per
    // session).
    let sock_gen = Arc::new(AtomicU64::new(0));
    let mut session: Option<Session> = None;
    let mut next: Option<Box<Adoption>> = None;
    loop {
        let mut adoption = match next.take() {
            Some(a) => a,
            None => {
                // Wait for (re-)adoption, driving any parked session's
                // peer traffic meanwhile.
                let mut got: Option<Box<Adoption>> = None;
                while got.is_none() {
                    if shutdown.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                    match rx.recv_timeout(TELEMETRY_FLUSH_TICK) {
                        Ok(Event::NewController(a)) => got = Some(a),
                        Ok(Event::Msg(m)) => {
                            if let Some(s) = session.as_mut() {
                                s.handle_offline(m);
                            }
                        }
                        Ok(Event::ControllerGone { .. }) => {}
                        Err(RecvTimeoutError::Timeout) => {
                            if let Some(s) = session.as_mut() {
                                s.flush_offline();
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => return Ok(()),
                    }
                }
                got.expect("adoption")
            }
        };
        // Drain the queue: keep the newest controller if several raced
        // in, and keep a parked engine fed.
        while let Ok(ev) = rx.try_recv() {
            match ev {
                Event::NewController(a) => adoption = a,
                Event::Msg(m) => {
                    if let Some(s) = session.as_mut() {
                        s.handle_offline(m);
                    }
                }
                Event::ControllerGone { .. } => {}
            }
        }
        me_label.store(adoption.me, Ordering::Relaxed);
        let v4 = adoption.version >= 4;
        let resumable = v4
            && adoption.resume.is_some()
            && session
                .as_ref()
                .is_some_and(|s| s.session_id == adoption.session_id);
        if !resumable {
            session = Some(Session::fresh(&adoption));
        }
        let s = session.as_mut().expect("session");
        match run_session(*adoption, resumable, s, &rx, &tx, &shutdown, &sock_gen) {
            SessionEnd::Shutdown => return Ok(()),
            SessionEnd::ControllerGone => {
                if v4 {
                    eprintln!("[grout-workerd] controller lost; session parked, awaiting resume");
                } else {
                    session = None;
                    eprintln!("[grout-workerd] controller lost; awaiting re-adoption");
                }
            }
            SessionEnd::Superseded(a) => next = Some(a),
        }
    }
}

/// Acks an adoption (fresh or resume) on `stream` and replays the unacked
/// tail when resuming. Returns the stream ready for session traffic, or
/// `None` if the handshake could not complete.
fn ack_and_replay(
    mut stream: TcpStream,
    s: &Session,
    resume_cursor: Option<u64>,
) -> Option<TcpStream> {
    let replay = match resume_cursor {
        Some(cursor) => {
            match s.send_buf.lock().expect("send_buf").replay_from(cursor) {
                Some(frames) => Some(frames),
                None => {
                    // Window trimmed past the controller's cursor: this
                    // session can never resume losslessly. Tell the
                    // controller (it goes to quarantine + fresh rejoin).
                    let cursor = s.recv_cursor.lock().expect("cursor").cursor();
                    let _ =
                        wire::write_frame(&mut stream, &wire::encode_ack_ex(s.me, false, cursor));
                    return None;
                }
            }
        }
        None => None,
    };
    let cursor = s.recv_cursor.lock().expect("cursor").cursor();
    let ack = wire::encode_ack_ex(s.me, replay.is_some(), cursor);
    if wire::write_frame(&mut stream, &ack).is_err() {
        return None;
    }
    for frame in replay.iter().flatten() {
        if wire::write_frame(&mut stream, frame).is_err() {
            return None;
        }
    }
    Some(stream)
}

/// Runs one controller session: ack the adoption (replaying on resume),
/// spawn the socket's reader and heartbeat threads, and drive the
/// session's [`WorkerEngine`] until the session ends. A mid-session
/// resume hello for the same session swaps sockets in place.
fn run_session(
    adoption: Adoption,
    resumed: bool,
    s: &mut Session,
    rx: &Receiver<Event>,
    tx: &Sender<Event>,
    shutdown: &Arc<AtomicBool>,
    sock_gen: &Arc<AtomicU64>,
) -> SessionEnd {
    let Adoption {
        stream,
        me,
        total,
        heartbeat_ms,
        peers: _,
        version: ctrl_version,
        session_id: _,
        resume,
    } = adoption;
    let v4 = s.v4;
    let Some(stream) = ack_and_replay(stream, s, if resumed { resume } else { None }) else {
        return SessionEnd::ControllerGone;
    };
    eprintln!(
        "[grout-workerd w{me}] {} controller (wire v{ctrl_version}, {total} workers, \
         heartbeat {heartbeat_ms}ms{})",
        if resumed { "resumed" } else { "adopted by" },
        if resumed { ", session revived" } else { "" },
    );

    // Controller write half, shared between the main loop (completions,
    // data returns), the heartbeat thread (beats + clock pings + acks)
    // and the controller reader (clock samples, session acks).
    let mut ctrl_write = match attach_socket(s, stream, heartbeat_ms, ctrl_version, tx, sock_gen) {
        Some(w) => w,
        None => return SessionEnd::ControllerGone,
    };
    let mut cur_token = sock_gen.load(Ordering::SeqCst);

    loop {
        if shutdown.load(Ordering::SeqCst) {
            graceful_leave(s, &ctrl_write);
            return SessionEnd::Shutdown;
        }
        let event = match rx.recv_timeout(TELEMETRY_FLUSH_TICK) {
            Ok(ev) => ev,
            Err(RecvTimeoutError::Timeout) => {
                // Idle flush tick: ship buffered telemetry even when no
                // plan traffic arrives to trigger a flush.
                let mut halt = false;
                let Session {
                    engine,
                    send_buf,
                    peer_addrs,
                    peer_out,
                    ..
                } = &mut *s;
                engine.flush_telemetry(&mut |o| {
                    deliver(
                        o,
                        me,
                        v4,
                        send_buf,
                        &ctrl_write,
                        peer_addrs,
                        peer_out,
                        &mut halt,
                    )
                });
                if halt {
                    return SessionEnd::ControllerGone;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return SessionEnd::Shutdown,
        };
        let msg = match event {
            Event::Msg(m) => m,
            Event::NewController(a) => {
                let revivable =
                    a.version >= 4 && a.resume.is_some() && a.session_id == s.session_id && v4;
                if !revivable {
                    return SessionEnd::Superseded(a);
                }
                // In-place revival: the controller re-dialed (it severed a
                // stale or injected-dead socket). Quiesce the old socket,
                // handshake on the new one, swap.
                {
                    let g = ctrl_write.lock().expect("controller write lock");
                    let _ = g.shutdown(std::net::Shutdown::Both);
                }
                let Some(new_stream) = ack_and_replay(a.stream, s, a.resume) else {
                    return SessionEnd::ControllerGone;
                };
                match attach_socket(s, new_stream, a.heartbeat_ms, a.version, tx, sock_gen) {
                    Some(w) => {
                        ctrl_write = w;
                        cur_token = sock_gen.load(Ordering::SeqCst);
                        eprintln!("[grout-workerd w{me}] session resumed in place");
                        continue;
                    }
                    None => return SessionEnd::ControllerGone,
                }
            }
            Event::ControllerGone { token } if token == cur_token => {
                return SessionEnd::ControllerGone
            }
            Event::ControllerGone { .. } => continue, // stale socket's reader
        };
        let mut halt = false;
        let Session {
            engine,
            send_buf,
            peer_addrs,
            peer_out,
            ..
        } = &mut *s;
        let flow = engine.handle(msg, &mut |o| {
            deliver(
                o,
                me,
                v4,
                send_buf,
                &ctrl_write,
                peer_addrs,
                peer_out,
                &mut halt,
            )
        });
        if flow == Flow::Halt {
            return SessionEnd::Shutdown;
        }
        if halt {
            return SessionEnd::ControllerGone;
        }
    }
}

/// Wraps a freshly handshaken controller socket: allocates its token,
/// spawns its reader and heartbeat threads, returns the shared write
/// half.
fn attach_socket(
    s: &Session,
    stream: TcpStream,
    heartbeat_ms: u32,
    ctrl_version: u16,
    tx: &Sender<Event>,
    sock_gen: &Arc<AtomicU64>,
) -> Option<Arc<Mutex<TcpStream>>> {
    let token = sock_gen.fetch_add(1, Ordering::SeqCst) + 1;
    let ctrl_read = stream.try_clone().ok()?;
    let ctrl_write = Arc::new(Mutex::new(stream));
    spawn_ctrl_reader(
        s.me,
        token,
        ctrl_read,
        tx.clone(),
        Arc::clone(&ctrl_write),
        s.v4,
        Arc::clone(&s.send_buf),
        Arc::clone(&s.recv_cursor),
    );
    spawn_heartbeat(
        s.me,
        Arc::clone(&ctrl_write),
        heartbeat_ms,
        ctrl_version,
        Arc::clone(&s.recv_cursor),
    );
    Some(ctrl_write)
}

/// SIGTERM path: flush buffered telemetry, announce a clean departure so
/// the controller re-plans immediately, flush the socket.
fn graceful_leave(s: &mut Session, ctrl_write: &Arc<Mutex<TcpStream>>) {
    let me = s.me;
    let v4 = s.v4;
    let mut halt = false;
    {
        let Session {
            engine,
            send_buf,
            peer_addrs,
            peer_out,
            ..
        } = &mut *s;
        engine.flush_telemetry(&mut |o| {
            deliver(
                o, me, v4, send_buf, ctrl_write, peer_addrs, peer_out, &mut halt,
            )
        });
    }
    let payload = wire::encode_worker(&WorkerMsg::Leave { worker: me });
    let framed = if v4 {
        s.send_buf.lock().expect("send_buf").seal(&payload)
    } else {
        payload
    };
    let mut stream = ctrl_write.lock().expect("controller write lock");
    let _ = wire::write_frame(&mut *stream, &framed);
    use std::io::Write as _;
    let _ = stream.flush();
    eprintln!("[grout-workerd w{me}] SIGTERM: telemetry flushed, clean leave sent");
}

/// Routes one engine-emitted message to the controller or a peer; flips
/// `halt` when the controller socket is gone. Controller-bound traffic is
/// sealed reliable under v4 — a failed write leaves the frame in the send
/// buffer, so it is parked, not lost.
#[allow(clippy::too_many_arguments)]
fn deliver(
    o: Outbound,
    me: usize,
    v4: bool,
    send_buf: &Arc<Mutex<SendBuffer>>,
    ctrl_write: &Arc<Mutex<TcpStream>>,
    peer_addrs: &[String],
    peer_out: &mut [Option<TcpStream>],
    halt: &mut bool,
) {
    match o {
        Outbound::Controller(m) => {
            let payload = wire::encode_worker(&m);
            let framed = if v4 {
                send_buf.lock().expect("send_buf").seal(&payload)
            } else {
                payload
            };
            let mut stream = ctrl_write.lock().expect("controller write lock");
            if wire::write_frame(&mut *stream, &framed).is_err() {
                *halt = true;
            }
        }
        Outbound::Peer(j, m) => {
            send_to_peer(me, j, peer_addrs, peer_out, &m);
        }
    }
}

/// Writes `msg` to peer `j`, dialing its listen address on first use. A
/// dead or unreachable peer drops the message silently — exactly the
/// in-process semantics (`let _ = peers[j].send(..)`), and the controller's
/// failure detector handles the fallout.
fn send_to_peer(
    me: usize,
    j: usize,
    peer_addrs: &[String],
    peer_out: &mut [Option<TcpStream>],
    msg: &CtrlMsg,
) {
    if peer_out[j].is_none() {
        match dial_peer(me, &peer_addrs[j]) {
            Ok(s) => peer_out[j] = Some(s),
            Err(e) => {
                eprintln!("[grout-workerd w{me}] cannot reach peer {j}: {e}");
                return;
            }
        }
    }
    let payload = wire::encode_ctrl(msg);
    if let Some(stream) = peer_out[j].as_mut() {
        if wire::write_frame(stream, &payload).is_err() {
            peer_out[j] = None;
        }
    }
}

fn dial_peer(me: usize, addr: &str) -> Result<TcpStream, wire::WireError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    wire::write_frame(
        &mut stream,
        &wire::encode_hello(&wire::Hello::Peer { from: me }),
    )?;
    Ok(stream)
}

/// Writes an ephemeral (v4) or bare frame to the controller socket.
fn write_ctrl(
    ctrl_write: &Arc<Mutex<TcpStream>>,
    v4: bool,
    payload: &[u8],
) -> Result<(), wire::WireError> {
    let framed = if v4 {
        wire::seal_ephemeral(payload)
    } else {
        payload.to_vec()
    };
    let mut stream = ctrl_write.lock().expect("controller write lock");
    wire::write_frame(&mut *stream, &framed)
}

#[allow(clippy::too_many_arguments)]
fn spawn_ctrl_reader(
    me: usize,
    token: u64,
    mut stream: TcpStream,
    tx: Sender<Event>,
    ctrl_write: Arc<Mutex<TcpStream>>,
    v4: bool,
    send_buf: Arc<Mutex<SendBuffer>>,
    recv_cursor: Arc<Mutex<RecvCursor>>,
) {
    std::thread::Builder::new()
        .name("workerd-ctrl-rx".into())
        .spawn(move || {
            let gone = |tx: &Sender<Event>| {
                let _ = tx.send(Event::ControllerGone { token });
            };
            // Handles one logical (post-envelope) payload; false = stop.
            let handle_inner = |inner: Vec<u8>, tx: &Sender<Event>| -> bool {
                // Clock pongs complete the NTP-style exchange here, on
                // the arrival thread — queueing them behind plan traffic
                // would inflate t4 and ruin the estimate.
                if inner.first() == Some(&wire::CLOCK_PONG_TAG) {
                    let t4 = monotonic_ns();
                    if let Ok((t1, t2)) = wire::decode_clock_pong(&inner) {
                        let offset = t2 as i64 - ((t1 + t4) / 2) as i64;
                        let rtt = t4.saturating_sub(t1);
                        let sample = wire::encode_clock_sample(me, offset, rtt);
                        if write_ctrl(&ctrl_write, v4, &sample).is_err() {
                            return false;
                        }
                    }
                    return true;
                }
                if inner.first() == Some(&wire::SESSION_ACK_TAG) {
                    if let Ok(cursor) = wire::decode_session_ack(&inner) {
                        send_buf.lock().expect("send_buf").ack(cursor);
                    }
                    return true;
                }
                match wire::decode_ctrl(&inner) {
                    Ok(msg) => tx.send(Event::Msg(msg)).is_ok(),
                    Err(e) => {
                        eprintln!("[grout-workerd] bad controller frame: {e}");
                        false
                    }
                }
            };
            loop {
                match wire::read_frame(&mut stream) {
                    Ok(Some(raw)) => {
                        if !v4 {
                            if !handle_inner(raw, &tx) {
                                gone(&tx);
                                return;
                            }
                            continue;
                        }
                        match wire::open_envelope(raw) {
                            Ok(wire::Envelope::Ephemeral(inner)) => {
                                if !handle_inner(inner, &tx) {
                                    gone(&tx);
                                    return;
                                }
                            }
                            Ok(wire::Envelope::Reliable { seq, payload }) => {
                                let (ready, ack_due, cursor) = {
                                    let mut rc = recv_cursor.lock().expect("cursor");
                                    let before = rc.cursor();
                                    let ready = rc.accept(seq, payload);
                                    let after = rc.cursor();
                                    (ready, before / ACK_EVERY != after / ACK_EVERY, after)
                                };
                                for p in ready {
                                    if !handle_inner(p, &tx) {
                                        gone(&tx);
                                        return;
                                    }
                                }
                                if ack_due
                                    && write_ctrl(
                                        &ctrl_write,
                                        true,
                                        &wire::encode_session_ack(cursor),
                                    )
                                    .is_err()
                                {
                                    gone(&tx);
                                    return;
                                }
                            }
                            Err(e) => {
                                eprintln!("[grout-workerd] bad controller envelope: {e}");
                                gone(&tx);
                                return;
                            }
                        }
                    }
                    Ok(None) | Err(_) => {
                        gone(&tx);
                        return;
                    }
                }
            }
        })
        .expect("spawn controller reader");
}

fn spawn_heartbeat(
    me: usize,
    ctrl_write: Arc<Mutex<TcpStream>>,
    heartbeat_ms: u32,
    ctrl_version: u16,
    recv_cursor: Arc<Mutex<RecvCursor>>,
) {
    let cadence = Duration::from_millis(heartbeat_ms.max(1) as u64);
    let v4 = ctrl_version >= 4;
    std::thread::Builder::new()
        .name("workerd-heartbeat".into())
        .spawn(move || loop {
            // Beat (and ping) *before* the first sleep so even a run
            // shorter than one cadence yields an RTT sample.
            let beat = wire::encode_worker(&WorkerMsg::Heartbeat { worker: me });
            if write_ctrl(&ctrl_write, v4, &beat).is_err() {
                return;
            }
            if ctrl_version >= 2 {
                let ping = wire::encode_clock_ping(me, monotonic_ns());
                if write_ctrl(&ctrl_write, v4, &ping).is_err() {
                    return;
                }
            }
            if v4 {
                // Piggyback a cumulative ack so an idle stream still gets
                // its controller-side send window trimmed.
                let cursor = recv_cursor.lock().expect("cursor").cursor();
                if write_ctrl(&ctrl_write, true, &wire::encode_session_ack(cursor)).is_err() {
                    return;
                }
            }
            std::thread::sleep(cadence);
        })
        .expect("spawn heartbeat thread");
}

/// Accepts every inbound socket and classifies it by hello: controller
/// hellos go to the main loop as adoptions; peer hellos get a decode loop
/// feeding the merged queue.
fn spawn_acceptor(listener: TcpListener, tx: Sender<Event>, me_label: Arc<AtomicUsize>) {
    std::thread::Builder::new()
        .name("workerd-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut stream) = conn else { return };
                if stream.set_nodelay(true).is_err() {
                    continue;
                }
                let tx = tx.clone();
                let me_label = Arc::clone(&me_label);
                // Handshake + (for peers) decode loop per socket.
                let spawned = std::thread::Builder::new()
                    .name("workerd-peer-rx".into())
                    .spawn(move || {
                        let Ok(Some(hello)) = wire::read_frame(&mut stream) else {
                            return;
                        };
                        let from = match wire::decode_hello(&hello) {
                            Ok((wire::Hello::Peer { from }, _)) => from,
                            Ok((
                                wire::Hello::Controller {
                                    index,
                                    total,
                                    heartbeat_ms,
                                    peers,
                                    session_id,
                                    resume,
                                },
                                version,
                            )) => {
                                let _ = tx.send(Event::NewController(Box::new(Adoption {
                                    stream,
                                    me: index,
                                    total,
                                    heartbeat_ms,
                                    peers,
                                    version,
                                    session_id,
                                    resume,
                                })));
                                return;
                            }
                            Err(_) => return,
                        };
                        let me = me_label.load(Ordering::Relaxed);
                        eprintln!("[grout-workerd w{me}] peer {from} connected");
                        loop {
                            match wire::read_frame(&mut stream) {
                                Ok(Some(payload)) => {
                                    let Ok(msg) = wire::decode_ctrl(&payload) else {
                                        eprintln!(
                                            "[grout-workerd w{me}] peer {from} sent a bad \
                                             frame; dropping the socket"
                                        );
                                        return;
                                    };
                                    if tx.send(Event::Msg(msg)).is_err() {
                                        return;
                                    }
                                }
                                Ok(None) | Err(_) => {
                                    eprintln!("[grout-workerd w{me}] peer {from} disconnected");
                                    return;
                                }
                            }
                        }
                    });
                if spawned.is_err() {
                    return;
                }
            }
        })
        .expect("spawn acceptor thread");
}
