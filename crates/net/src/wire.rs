//! The wire protocol: framing, handshake and the message codec.
//!
//! Everything is hand-rolled little-endian binary — the vendored `serde`
//! shim is serialize-only, and a byte-exact float encoding
//! (`f32::to_le_bytes`) is what makes the TCP loopback differential test
//! bit-identical to the in-process run anyway.
//!
//! ## Frame layout
//!
//! Every message after the handshake travels as one frame:
//!
//! ```text
//! +----------------+---------------------+
//! | len: u32 LE    | payload (len bytes) |
//! +----------------+---------------------+
//! ```
//!
//! `len` counts the payload only and is capped at [`MAX_FRAME`] (a corrupt
//! or hostile peer cannot make us allocate unbounded memory). The payload's
//! first byte is a message tag; the remaining fields are fixed-width LE
//! integers, length-prefixed strings/byte-vectors, or nested encodings
//! (see the `encode_*`/`decode_*` pairs below).
//!
//! ## Handshake
//!
//! The first frame on every fresh connection identifies the dialer:
//!
//! - controller → worker: magic `b"GRNT"`, [`WIRE_VERSION`], role byte `0`,
//!   then the worker's index, the total worker count, the heartbeat cadence
//!   in milliseconds, and the full peer address list. The worker answers
//!   with an ack frame (magic, version, echoed index) and only then reads
//!   plan traffic.
//! - worker → worker: magic, version, role byte `1`, then the dialing
//!   worker's index. No ack — peer sockets are write-one-way; the reverse
//!   direction gets its own dialed socket.
//!
//! A magic mismatch aborts the connection with a
//! [`WireError::Handshake`]. Versions *are* negotiated, minimally: each
//! end announces its own [`WIRE_VERSION`] in the hello/ack, any version
//! in `1..=WIRE_VERSION` is accepted, and the effective protocol is the
//! minimum of the two. v2-only traffic (telemetry batches, the observe
//! toggle, clock-sync frames) is silently skipped against a v1 peer, so
//! a traced controller degrades to controller-side-only observability
//! instead of refusing the connection.
//!
//! ## Clock-sync frames
//!
//! Workers estimate their clock offset against the controller with an
//! NTP-style exchange piggybacked on the heartbeat cadence: the worker
//! sends [`encode_clock_ping`] carrying its send stamp `t1`, the
//! controller's reader stamps arrival `t2` and answers
//! [`encode_clock_pong`] `{t1, t2}`, and the worker stamps arrival `t4`,
//! deriving `offset = t2 - (t1 + t4)/2` and `rtt = t4 - t1`, which it
//! reports with [`encode_clock_sample`]. These frames use high tag
//! values ([`CLOCK_PING_TAG`]/[`CLOCK_PONG_TAG`]/[`CLOCK_SAMPLE_TAG`]);
//! both ends peek the tag byte and handle them inside the transport —
//! they never surface as [`CtrlMsg`]/[`WorkerMsg`] traffic.

use std::io::{Read, Write};

use grout_core::{
    AccessMode, AccessPattern, AdmissionError, ArrayId, Ce, CeArg, CeId, CeKind, CtrlMsg,
    ExecFault, ExecSpec, ExplorationLevel, FaultConfig, FaultEvent, FaultKind, FaultPlan, HostBuf,
    KernelCost, LinkMatrix, LocalArg, MemAdvise, PlannerConfig, PlannerOp, PolicyKind, Priority,
    SimDuration, WorkerCounters, WorkerMsg, WorkerSpan, WorkerSpanKind,
};
use kernelc::LaunchError;

/// Protocol magic: the first four bytes of every handshake frame.
pub const MAGIC: [u8; 4] = *b"GRNT";

/// Wire protocol version; bumped on any frame-layout change.
/// v2 added telemetry batches, the observe toggle and clock-sync frames;
/// v3 added the controller-replication log-shipping frames
/// ([`CtrlMsg::ShipInit`], [`CtrlMsg::ShipOp`], [`WorkerMsg::ShipAck`]);
/// v4 added the session-resume layer: a session id + resume cursor in
/// the controller hello, a resumed flag + receive cursor in the worker
/// ack, the reliable/ephemeral frame envelope with per-peer sequence
/// numbers, the cumulative-ack frame ([`SESSION_ACK_TAG`]) and the clean
/// departure announcement ([`WorkerMsg::Leave`]);
/// v5 added elastic membership: the controller-requested clean departure
/// ([`CtrlMsg::Leave`]), the peer-address re-broadcast on join
/// ([`CtrlMsg::Peers`]) and the [`PlannerOp::Join`]/[`PlannerOp::Leave`]
/// membership ops in the op codec;
/// v6 added the multi-tenant control plane: the client handshake role
/// ([`Hello::Client`]), the ctld client protocol
/// ([`ClientMsg`]/[`CtldMsg`] with the typed [`AdmissionError`]), CE
/// batching ([`CtrlMsg::Batch`]) and session teardown
/// ([`CtrlMsg::Reclaim`]).
pub const WIRE_VERSION: u16 = 6;

/// Oldest peer version this build still talks to.
pub const MIN_WIRE_VERSION: u16 = 1;

/// Worker→controller clock-sync ping (`t1`), and controller→worker pong
/// (`t1, t2`) — the tag is reused across the two directions' tag spaces.
pub const CLOCK_PING_TAG: u8 = 0xF0;

/// Controller→worker clock-sync pong (same value as [`CLOCK_PING_TAG`],
/// in the ctrl tag space).
pub const CLOCK_PONG_TAG: u8 = 0xF0;

/// Worker→controller clock-offset sample (`offset, rtt`).
pub const CLOCK_SAMPLE_TAG: u8 = 0xF1;

/// Cumulative receive-cursor acknowledgement for the v4 reliable layer
/// (both directions; ephemeral — never sequenced or replayed itself).
pub const SESSION_ACK_TAG: u8 = 0xF2;

/// Envelope kind byte: an ephemeral frame (clock sync, session acks,
/// heartbeats) — delivered best-effort, never buffered for resume replay.
pub const ENVELOPE_EPHEMERAL: u8 = 0;

/// Envelope kind byte: a reliable frame — carries a per-direction
/// monotonic sequence number, is buffered until cumulatively acked, and
/// is replayed across a session resume. The receiver's cursor dedupes
/// replayed frames, so the delivered stream is exactly-once in-order.
pub const ENVELOPE_RELIABLE: u8 = 1;

/// Spans cap a decoder accepts in one telemetry batch (a corrupt or
/// hostile length cannot force unbounded allocation; honest senders
/// chunk at `TELEMETRY_MAX_BATCH`, far below this).
pub const TELEMETRY_DECODE_CAP: usize = 4096;

/// Hard cap on a single frame's payload (1 GiB): large enough for any
/// array the host-CPU kernels can hold, small enough to bound the damage
/// of a corrupt length prefix.
pub const MAX_FRAME: u32 = 1 << 30;

/// Anything that can go wrong on the wire.
#[derive(Debug)]
pub enum WireError {
    /// The socket failed.
    Io(std::io::Error),
    /// A frame decoded to garbage (unknown tag, truncated field, ...).
    Malformed(&'static str),
    /// A frame announced a payload beyond [`MAX_FRAME`].
    TooLarge(u32),
    /// The handshake failed (bad magic, version mismatch, wrong role).
    Handshake(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::TooLarge(len) => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            WireError::Handshake(why) => write!(f, "handshake failed: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(payload.len()).map_err(|_| WireError::TooLarge(u32::MAX))?;
    if len > MAX_FRAME {
        return Err(WireError::TooLarge(len));
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF at a frame
/// boundary (the peer closed the connection).
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(WireError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Primitive encoders/decoders.

/// Append-only byte writer for message payloads.
#[derive(Default)]
pub struct Enc(Vec<u8>);

impl Enc {
    /// Fresh buffer.
    pub fn new() -> Self {
        Enc(Vec::new())
    }

    /// The finished payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }

    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn i32(&mut self, v: i32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.0.extend_from_slice(v);
    }
    fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Cursor over a received payload.
pub struct Dec<'a> {
    buf: &'a [u8],
}

impl<'a> Dec<'a> {
    /// Wrap a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf }
    }

    /// Every byte consumed?
    pub fn finished(&self) -> bool {
        self.buf.is_empty()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Malformed("truncated field"));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i32(&mut self) -> Result<i32, WireError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u64()?;
        let len = usize::try_from(len).map_err(|_| WireError::Malformed("length overflow"))?;
        self.take(len)
    }
    fn str(&mut self) -> Result<String, WireError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::Malformed("non-utf8 string"))
    }
}

fn enc_hostbuf(e: &mut Enc, buf: &HostBuf) {
    match buf {
        HostBuf::F32(v) => {
            e.u8(0);
            e.u64(v.len() as u64);
            for x in v {
                e.f32(*x);
            }
        }
        HostBuf::I32(v) => {
            e.u8(1);
            e.u64(v.len() as u64);
            for x in v {
                e.i32(*x);
            }
        }
    }
}

fn dec_hostbuf(d: &mut Dec) -> Result<HostBuf, WireError> {
    let tag = d.u8()?;
    let n = d.u64()? as usize;
    match tag {
        0 => {
            let raw = d.take(n.checked_mul(4).ok_or(WireError::Malformed("buf len"))?)?;
            Ok(HostBuf::F32(
                raw.chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            ))
        }
        1 => {
            let raw = d.take(n.checked_mul(4).ok_or(WireError::Malformed("buf len"))?)?;
            Ok(HostBuf::I32(
                raw.chunks_exact(4)
                    .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            ))
        }
        _ => Err(WireError::Malformed("hostbuf tag")),
    }
}

fn enc_args(e: &mut Enc, args: &[LocalArg]) {
    e.u64(args.len() as u64);
    for a in args {
        match a {
            LocalArg::Buf(id) => {
                e.u8(0);
                e.u64(id.0);
            }
            LocalArg::F32(v) => {
                e.u8(1);
                e.f32(*v);
            }
            LocalArg::I32(v) => {
                e.u8(2);
                e.i32(*v);
            }
        }
    }
}

fn dec_args(d: &mut Dec) -> Result<Vec<LocalArg>, WireError> {
    let n = d.u64()? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(match d.u8()? {
            0 => LocalArg::Buf(ArrayId(d.u64()?)),
            1 => LocalArg::F32(d.f32()?),
            2 => LocalArg::I32(d.i32()?),
            _ => return Err(WireError::Malformed("arg tag")),
        });
    }
    Ok(out)
}

fn enc_versions(e: &mut Enc, v: &[(ArrayId, u64)]) {
    e.u64(v.len() as u64);
    for (a, ver) in v {
        e.u64(a.0);
        e.u64(*ver);
    }
}

fn dec_versions(d: &mut Dec) -> Result<Vec<(ArrayId, u64)>, WireError> {
    let n = d.u64()? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push((ArrayId(d.u64()?), d.u64()?));
    }
    Ok(out)
}

fn enc_launch_error(e: &mut Enc, err: &LaunchError) {
    match err {
        LaunchError::Arity { expected, got } => {
            e.u8(0);
            e.u64(*expected as u64);
            e.u64(*got as u64);
        }
        LaunchError::ArgType { index, expected } => {
            e.u8(1);
            e.u64(*index as u64);
            e.str(expected);
        }
        LaunchError::OutOfBounds { param, index, len } => {
            e.u8(2);
            e.u64(*param as u64);
            e.i64(*index);
            e.u64(*len as u64);
        }
        LaunchError::DivideByZero => e.u8(3),
        LaunchError::StepBudgetExceeded => e.u8(4),
        LaunchError::EmptyLaunch => e.u8(5),
    }
}

fn dec_launch_error(d: &mut Dec) -> Result<LaunchError, WireError> {
    Ok(match d.u8()? {
        0 => LaunchError::Arity {
            expected: d.u64()? as usize,
            got: d.u64()? as usize,
        },
        1 => LaunchError::ArgType {
            index: d.u64()? as usize,
            expected: d.str()?,
        },
        2 => LaunchError::OutOfBounds {
            param: d.u64()? as usize,
            index: d.i64()?,
            len: d.u64()? as usize,
        },
        3 => LaunchError::DivideByZero,
        4 => LaunchError::StepBudgetExceeded,
        5 => LaunchError::EmptyLaunch,
        _ => return Err(WireError::Malformed("launch-error tag")),
    })
}

// ---------------------------------------------------------------------------
// Planner-op codec (log shipping and the on-disk journal share it).

fn enc_access_mode(e: &mut Enc, m: AccessMode) {
    e.u8(match m {
        AccessMode::Read => 0,
        AccessMode::Write => 1,
        AccessMode::ReadWrite => 2,
    });
}

fn dec_access_mode(d: &mut Dec) -> Result<AccessMode, WireError> {
    Ok(match d.u8()? {
        0 => AccessMode::Read,
        1 => AccessMode::Write,
        2 => AccessMode::ReadWrite,
        _ => return Err(WireError::Malformed("access-mode tag")),
    })
}

fn enc_access_pattern(e: &mut Enc, p: &AccessPattern) {
    match p {
        AccessPattern::Streamed { sweeps } => {
            e.u8(0);
            e.f64(*sweeps);
        }
        AccessPattern::Gather { touches_per_page } => {
            e.u8(1);
            e.f64(*touches_per_page);
        }
        AccessPattern::Strided { touches_per_page } => {
            e.u8(2);
            e.f64(*touches_per_page);
        }
    }
}

fn dec_access_pattern(d: &mut Dec) -> Result<AccessPattern, WireError> {
    Ok(match d.u8()? {
        0 => AccessPattern::Streamed { sweeps: d.f64()? },
        1 => AccessPattern::Gather {
            touches_per_page: d.f64()?,
        },
        2 => AccessPattern::Strided {
            touches_per_page: d.f64()?,
        },
        _ => return Err(WireError::Malformed("access-pattern tag")),
    })
}

fn enc_advise(e: &mut Enc, a: MemAdvise) {
    e.u8(match a {
        MemAdvise::None => 0,
        MemAdvise::ReadMostly => 1,
        MemAdvise::PreferredHost => 2,
    });
}

fn dec_advise(d: &mut Dec) -> Result<MemAdvise, WireError> {
    Ok(match d.u8()? {
        0 => MemAdvise::None,
        1 => MemAdvise::ReadMostly,
        2 => MemAdvise::PreferredHost,
        _ => return Err(WireError::Malformed("advise tag")),
    })
}

fn enc_ce(e: &mut Enc, ce: &Ce) {
    e.u64(ce.id.0);
    match &ce.kind {
        CeKind::Kernel { name, cost } => {
            e.u8(0);
            e.str(name);
            e.f64(cost.flops);
            e.u64(cost.bytes_read);
            e.u64(cost.bytes_written);
        }
        CeKind::HostRead => e.u8(1),
        CeKind::HostWrite => e.u8(2),
    }
    e.u64(ce.args.len() as u64);
    for a in &ce.args {
        e.u64(a.array.0);
        e.u64(a.bytes);
        e.u64(a.alloc_bytes);
        enc_access_mode(e, a.mode);
        enc_access_pattern(e, &a.pattern);
        enc_advise(e, a.advise);
    }
}

fn dec_ce(d: &mut Dec) -> Result<Ce, WireError> {
    let id = CeId(d.u64()?);
    let kind = match d.u8()? {
        0 => CeKind::Kernel {
            name: d.str()?,
            cost: KernelCost {
                flops: d.f64()?,
                bytes_read: d.u64()?,
                bytes_written: d.u64()?,
            },
        },
        1 => CeKind::HostRead,
        2 => CeKind::HostWrite,
        _ => return Err(WireError::Malformed("ce-kind tag")),
    };
    let n = d.u64()? as usize;
    let mut args = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        args.push(CeArg {
            array: ArrayId(d.u64()?),
            bytes: d.u64()?,
            alloc_bytes: d.u64()?,
            mode: dec_access_mode(d)?,
            pattern: dec_access_pattern(d)?,
            advise: dec_advise(d)?,
        });
    }
    Ok(Ce { id, kind, args })
}

fn enc_links(e: &mut Enc, links: &LinkMatrix) {
    let n = links.endpoints();
    e.u32(n as u32);
    for src in 0..n {
        for dst in 0..n {
            e.f64(links.raw(src, dst));
        }
    }
}

fn dec_links(d: &mut Dec) -> Result<LinkMatrix, WireError> {
    let n = d.u32()? as usize;
    if n == 0 || n > 4096 {
        return Err(WireError::Malformed("link-matrix size"));
    }
    let mut bw = Vec::with_capacity(n);
    for _ in 0..n {
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(d.f64()?);
        }
        bw.push(row);
    }
    Ok(LinkMatrix::new(bw))
}

fn enc_opt_links(e: &mut Enc, links: &Option<LinkMatrix>) {
    match links {
        None => e.u8(0),
        Some(m) => {
            e.u8(1);
            enc_links(e, m);
        }
    }
}

fn dec_opt_links(d: &mut Dec) -> Result<Option<LinkMatrix>, WireError> {
    Ok(match d.u8()? {
        0 => None,
        1 => Some(dec_links(d)?),
        _ => return Err(WireError::Malformed("opt-links tag")),
    })
}

fn enc_exploration(e: &mut Enc, lvl: ExplorationLevel) {
    e.u8(match lvl {
        ExplorationLevel::Low => 0,
        ExplorationLevel::Medium => 1,
        ExplorationLevel::High => 2,
    });
}

fn dec_exploration(d: &mut Dec) -> Result<ExplorationLevel, WireError> {
    Ok(match d.u8()? {
        0 => ExplorationLevel::Low,
        1 => ExplorationLevel::Medium,
        2 => ExplorationLevel::High,
        _ => return Err(WireError::Malformed("exploration tag")),
    })
}

fn enc_fault_kind(e: &mut Enc, k: &FaultKind) {
    match k {
        FaultKind::KillWorker => e.u8(0),
        FaultKind::FailLaunch { times } => {
            e.u8(1);
            e.u32(*times);
        }
        FaultKind::DropTransfer => e.u8(2),
        FaultKind::DelayTransfer { delay } => {
            e.u8(3);
            e.u64(delay.0);
        }
    }
}

fn dec_fault_kind(d: &mut Dec) -> Result<FaultKind, WireError> {
    Ok(match d.u8()? {
        0 => FaultKind::KillWorker,
        1 => FaultKind::FailLaunch { times: d.u32()? },
        2 => FaultKind::DropTransfer,
        3 => FaultKind::DelayTransfer {
            delay: SimDuration(d.u64()?),
        },
        _ => return Err(WireError::Malformed("fault-kind tag")),
    })
}

/// Encodes a full planner configuration (the planner's construction
/// input, shipped in [`CtrlMsg::ShipInit`] and stored in journal headers).
pub fn encode_planner_config(cfg: &PlannerConfig) -> Vec<u8> {
    let mut e = Enc::new();
    enc_planner_config(&mut e, cfg);
    e.into_bytes()
}

/// Decodes a [`encode_planner_config`] payload.
pub fn decode_planner_config(payload: &[u8]) -> Result<PlannerConfig, WireError> {
    let mut d = Dec::new(payload);
    let cfg = dec_planner_config(&mut d)?;
    if !d.finished() {
        return Err(WireError::Malformed("trailing bytes"));
    }
    Ok(cfg)
}

fn enc_planner_config(e: &mut Enc, cfg: &PlannerConfig) {
    e.u32(cfg.workers as u32);
    match &cfg.policy {
        PolicyKind::RoundRobin => e.u8(0),
        PolicyKind::VectorStep(v) => {
            e.u8(1);
            e.u64(v.len() as u64);
            for c in v {
                e.u32(*c);
            }
        }
        PolicyKind::MinTransferSize(lvl) => {
            e.u8(2);
            enc_exploration(e, *lvl);
        }
        PolicyKind::MinTransferTime(lvl) => {
            e.u8(3);
            enc_exploration(e, *lvl);
        }
    }
    e.u8(u8::from(cfg.p2p_enabled));
    e.u8(u8::from(cfg.flat_scheduling));
    e.u8(u8::from(cfg.controller_colocated));
    e.u64(cfg.faults.events().len() as u64);
    for ev in cfg.faults.events() {
        e.u64(ev.at_ce as u64);
        enc_fault_kind(e, &ev.kind);
    }
    e.u32(cfg.fault_cfg.max_retries);
    e.u64(cfg.fault_cfg.backoff_base.0);
    e.u64(cfg.fault_cfg.backoff_cap.0);
    e.u64(cfg.fault_cfg.detection_timeout.0);
    e.u8(u8::from(cfg.fault_cfg.recovery));
    e.u32(cfg.fault_cfg.heartbeat_ms);
    e.u32(cfg.fault_cfg.stale_after_beats);
    e.u64(cfg.fault_cfg.reconnect_window.0);
}

fn dec_planner_config(d: &mut Dec) -> Result<PlannerConfig, WireError> {
    let workers = d.u32()? as usize;
    let policy = match d.u8()? {
        0 => PolicyKind::RoundRobin,
        1 => {
            let n = d.u64()? as usize;
            let mut v = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                v.push(d.u32()?);
            }
            PolicyKind::VectorStep(v)
        }
        2 => PolicyKind::MinTransferSize(dec_exploration(d)?),
        3 => PolicyKind::MinTransferTime(dec_exploration(d)?),
        _ => return Err(WireError::Malformed("policy tag")),
    };
    let p2p_enabled = d.u8()? != 0;
    let flat_scheduling = d.u8()? != 0;
    let controller_colocated = d.u8()? != 0;
    let n = d.u64()? as usize;
    let mut events = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        events.push(FaultEvent {
            at_ce: d.u64()? as usize,
            kind: dec_fault_kind(d)?,
        });
    }
    let fault_cfg = FaultConfig {
        max_retries: d.u32()?,
        backoff_base: SimDuration(d.u64()?),
        backoff_cap: SimDuration(d.u64()?),
        detection_timeout: SimDuration(d.u64()?),
        recovery: d.u8()? != 0,
        heartbeat_ms: d.u32()?,
        stale_after_beats: d.u32()?,
        reconnect_window: SimDuration(d.u64()?),
    };
    Ok(PlannerConfig {
        workers,
        policy,
        p2p_enabled,
        flat_scheduling,
        controller_colocated,
        faults: FaultPlan::with_events(events),
        fault_cfg,
    })
}

/// Encodes a planner's construction inputs — configuration plus the
/// (possibly probed, run-specific) link matrix — as one payload: the
/// journal header of [`crate::oplog`].
pub fn encode_journal_header(cfg: &PlannerConfig, links: &Option<LinkMatrix>) -> Vec<u8> {
    let mut e = Enc::new();
    enc_planner_config(&mut e, cfg);
    enc_opt_links(&mut e, links);
    e.into_bytes()
}

/// Decodes a [`encode_journal_header`] payload.
pub fn decode_journal_header(
    payload: &[u8],
) -> Result<(PlannerConfig, Option<LinkMatrix>), WireError> {
    let mut d = Dec::new(payload);
    let cfg = dec_planner_config(&mut d)?;
    let links = dec_opt_links(&mut d)?;
    if !d.finished() {
        return Err(WireError::Malformed("trailing bytes"));
    }
    Ok((cfg, links))
}

/// Encodes one [`PlannerOp`] (standalone payload: log shipping nests it
/// in [`CtrlMsg::ShipOp`]; the journal stores it per frame).
pub fn encode_op(op: &PlannerOp) -> Vec<u8> {
    let mut e = Enc::new();
    enc_op(&mut e, op);
    e.into_bytes()
}

/// Decodes a [`encode_op`] payload.
pub fn decode_op(payload: &[u8]) -> Result<PlannerOp, WireError> {
    let mut d = Dec::new(payload);
    let op = dec_op(&mut d)?;
    if !d.finished() {
        return Err(WireError::Malformed("trailing bytes"));
    }
    Ok(op)
}

fn enc_op(e: &mut Enc, op: &PlannerOp) {
    match op {
        PlannerOp::Alloc { bytes } => {
            e.u8(0);
            e.u64(*bytes);
        }
        PlannerOp::Free { array } => {
            e.u8(1);
            e.u64(array.0);
        }
        PlannerOp::PlanCe { ce } => {
            e.u8(2);
            enc_ce(e, ce);
        }
        PlannerOp::MarkCompleted { dag_index } => {
            e.u8(3);
            e.u64(*dag_index as u64);
        }
        PlannerOp::Quarantine { worker } => {
            e.u8(4);
            e.u32(*worker as u32);
        }
        PlannerOp::Recover { dead, incomplete } => {
            e.u8(5);
            e.u32(*dead as u32);
            e.u64(incomplete.len() as u64);
            for i in incomplete {
                e.u64(*i as u64);
            }
        }
        PlannerOp::ReprobeLinks { links } => {
            e.u8(6);
            enc_links(e, links);
        }
        PlannerOp::Suspect { worker } => {
            e.u8(7);
            e.u32(*worker as u32);
        }
        PlannerOp::Reinstate { worker } => {
            e.u8(8);
            e.u32(*worker as u32);
        }
        PlannerOp::Rejoin { worker } => {
            e.u8(9);
            e.u32(*worker as u32);
        }
        PlannerOp::Join { worker } => {
            e.u8(10);
            e.u32(*worker as u32);
        }
        PlannerOp::Leave { worker } => {
            e.u8(11);
            e.u32(*worker as u32);
        }
    }
}

fn dec_op(d: &mut Dec) -> Result<PlannerOp, WireError> {
    Ok(match d.u8()? {
        0 => PlannerOp::Alloc { bytes: d.u64()? },
        1 => PlannerOp::Free {
            array: ArrayId(d.u64()?),
        },
        2 => PlannerOp::PlanCe { ce: dec_ce(d)? },
        3 => PlannerOp::MarkCompleted {
            dag_index: d.u64()? as usize,
        },
        4 => PlannerOp::Quarantine {
            worker: d.u32()? as usize,
        },
        5 => {
            let dead = d.u32()? as usize;
            let n = d.u64()? as usize;
            let mut incomplete = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                incomplete.push(d.u64()? as usize);
            }
            PlannerOp::Recover { dead, incomplete }
        }
        6 => PlannerOp::ReprobeLinks {
            links: dec_links(d)?,
        },
        7 => PlannerOp::Suspect {
            worker: d.u32()? as usize,
        },
        8 => PlannerOp::Reinstate {
            worker: d.u32()? as usize,
        },
        9 => PlannerOp::Rejoin {
            worker: d.u32()? as usize,
        },
        10 => PlannerOp::Join {
            worker: d.u32()? as usize,
        },
        11 => PlannerOp::Leave {
            worker: d.u32()? as usize,
        },
        _ => return Err(WireError::Malformed("op tag")),
    })
}

// ---------------------------------------------------------------------------
// Message codecs.

/// Encodes a controller→worker (or peer) message. `LoadKernel` drops the
/// in-process `compiled` fast path at the wire: only `(source, name)`
/// travel, and the receiving worker recompiles (deterministically).
pub fn encode_ctrl(msg: &CtrlMsg) -> Vec<u8> {
    let mut e = Enc::new();
    match msg {
        CtrlMsg::Data {
            array,
            version,
            buf,
        } => {
            e.u8(0);
            e.u64(array.0);
            e.u64(*version);
            enc_hostbuf(&mut e, buf);
        }
        CtrlMsg::LoadKernel {
            id, name, source, ..
        } => {
            e.u8(1);
            e.u64(*id);
            e.str(name);
            e.str(source);
        }
        CtrlMsg::Exec(spec) => {
            e.u8(2);
            e.u64(spec.dag_index as u64);
            e.u64(spec.kernel);
            e.u32(spec.grid.0);
            e.u32(spec.grid.1);
            e.u32(spec.block.0);
            e.u32(spec.block.1);
            enc_args(&mut e, &spec.args);
            enc_versions(&mut e, &spec.needs);
            enc_versions(&mut e, &spec.bumps);
            match spec.fault {
                None => e.u8(0),
                Some(ExecFault::Crash) => e.u8(1),
                Some(ExecFault::FailTransient) => e.u8(2),
            }
        }
        CtrlMsg::Send {
            array,
            min_version,
            to,
        } => {
            e.u8(3);
            e.u64(array.0);
            e.u64(*min_version);
            match to {
                None => e.u8(0),
                Some(w) => {
                    e.u8(1);
                    e.u32(*w as u32);
                }
            }
        }
        CtrlMsg::Probe { token, payload } => {
            e.u8(4);
            e.u64(*token);
            e.bytes(payload);
        }
        CtrlMsg::ProbePeer { token, to, bytes } => {
            e.u8(5);
            e.u64(*token);
            e.u32(*to as u32);
            e.u64(*bytes);
        }
        CtrlMsg::PeerProbe {
            token,
            from,
            payload,
        } => {
            e.u8(6);
            e.u64(*token);
            e.u32(*from as u32);
            e.bytes(payload);
        }
        CtrlMsg::PeerProbeEcho { token, payload } => {
            e.u8(7);
            e.u64(*token);
            e.bytes(payload);
        }
        CtrlMsg::Shutdown => e.u8(8),
        CtrlMsg::Observe { enabled } => {
            e.u8(9);
            e.u8(u8::from(*enabled));
        }
        CtrlMsg::ShipInit { cfg, links } => {
            e.u8(10);
            enc_planner_config(&mut e, cfg);
            enc_opt_links(&mut e, links);
        }
        CtrlMsg::ShipOp { seq, op } => {
            e.u8(11);
            e.u64(*seq);
            enc_op(&mut e, op);
        }
        CtrlMsg::Leave => e.u8(12),
        CtrlMsg::Peers { addrs } => {
            e.u8(13);
            e.u32(addrs.len() as u32);
            for a in addrs {
                e.str(a);
            }
        }
        CtrlMsg::Batch(msgs) => {
            e.u8(14);
            e.u32(msgs.len() as u32);
            // Length-prefixed sub-payloads: the inner codec is reused
            // verbatim, one level deep (nested batches are rejected).
            for m in msgs {
                e.bytes(&encode_ctrl(m));
            }
        }
        CtrlMsg::Reclaim { arrays, kernels } => {
            e.u8(15);
            e.u32(arrays.len() as u32);
            for a in arrays {
                e.u64(a.0);
            }
            e.u32(kernels.len() as u32);
            for k in kernels {
                e.u64(*k);
            }
        }
    }
    e.into_bytes()
}

/// Decodes a controller→worker (or peer) message.
pub fn decode_ctrl(payload: &[u8]) -> Result<CtrlMsg, WireError> {
    let mut d = Dec::new(payload);
    let msg = match d.u8()? {
        0 => CtrlMsg::Data {
            array: ArrayId(d.u64()?),
            version: d.u64()?,
            buf: dec_hostbuf(&mut d)?,
        },
        1 => CtrlMsg::LoadKernel {
            id: d.u64()?,
            name: d.str()?,
            source: d.str()?,
            compiled: None,
        },
        2 => CtrlMsg::Exec(ExecSpec {
            dag_index: d.u64()? as usize,
            kernel: d.u64()?,
            grid: (d.u32()?, d.u32()?),
            block: (d.u32()?, d.u32()?),
            args: dec_args(&mut d)?,
            needs: dec_versions(&mut d)?,
            bumps: dec_versions(&mut d)?,
            fault: match d.u8()? {
                0 => None,
                1 => Some(ExecFault::Crash),
                2 => Some(ExecFault::FailTransient),
                _ => return Err(WireError::Malformed("fault tag")),
            },
        }),
        3 => CtrlMsg::Send {
            array: ArrayId(d.u64()?),
            min_version: d.u64()?,
            to: match d.u8()? {
                0 => None,
                1 => Some(d.u32()? as usize),
                _ => return Err(WireError::Malformed("send-to tag")),
            },
        },
        4 => CtrlMsg::Probe {
            token: d.u64()?,
            payload: d.bytes()?.to_vec(),
        },
        5 => CtrlMsg::ProbePeer {
            token: d.u64()?,
            to: d.u32()? as usize,
            bytes: d.u64()?,
        },
        6 => CtrlMsg::PeerProbe {
            token: d.u64()?,
            from: d.u32()? as usize,
            payload: d.bytes()?.to_vec(),
        },
        7 => CtrlMsg::PeerProbeEcho {
            token: d.u64()?,
            payload: d.bytes()?.to_vec(),
        },
        8 => CtrlMsg::Shutdown,
        9 => CtrlMsg::Observe {
            enabled: match d.u8()? {
                0 => false,
                1 => true,
                _ => return Err(WireError::Malformed("observe flag")),
            },
        },
        10 => CtrlMsg::ShipInit {
            cfg: dec_planner_config(&mut d)?,
            links: dec_opt_links(&mut d)?,
        },
        11 => CtrlMsg::ShipOp {
            seq: d.u64()?,
            op: dec_op(&mut d)?,
        },
        12 => CtrlMsg::Leave,
        13 => {
            let n = d.u32()? as usize;
            if n > 65_536 {
                return Err(WireError::Malformed("peer list length"));
            }
            let mut addrs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                addrs.push(d.str()?);
            }
            CtrlMsg::Peers { addrs }
        }
        14 => {
            let n = d.u32()? as usize;
            if n > 65_536 {
                return Err(WireError::Malformed("batch length"));
            }
            let mut msgs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let inner = d.bytes()?;
                // One level deep: a batch inside a batch is malformed (a
                // hostile sender could otherwise force unbounded
                // recursion).
                if inner.first() == Some(&14) {
                    return Err(WireError::Malformed("nested batch"));
                }
                msgs.push(decode_ctrl(inner)?);
            }
            CtrlMsg::Batch(msgs)
        }
        15 => {
            let na = d.u32()? as usize;
            if na > 1 << 20 {
                return Err(WireError::Malformed("reclaim array count"));
            }
            let mut arrays = Vec::with_capacity(na.min(1024));
            for _ in 0..na {
                arrays.push(ArrayId(d.u64()?));
            }
            let nk = d.u32()? as usize;
            if nk > 1 << 20 {
                return Err(WireError::Malformed("reclaim kernel count"));
            }
            let mut kernels = Vec::with_capacity(nk.min(1024));
            for _ in 0..nk {
                kernels.push(d.u64()?);
            }
            CtrlMsg::Reclaim { arrays, kernels }
        }
        _ => return Err(WireError::Malformed("ctrl tag")),
    };
    if !d.finished() {
        return Err(WireError::Malformed("trailing bytes"));
    }
    Ok(msg)
}

/// Encodes a worker→controller message.
pub fn encode_worker(msg: &WorkerMsg) -> Vec<u8> {
    let mut e = Enc::new();
    match msg {
        WorkerMsg::Done {
            dag_index,
            worker,
            elapsed_ns,
        } => {
            e.u8(0);
            e.u64(*dag_index as u64);
            e.u32(*worker as u32);
            e.u64(*elapsed_ns);
        }
        WorkerMsg::Data {
            array,
            version,
            buf,
        } => {
            e.u8(1);
            e.u64(array.0);
            e.u64(*version);
            enc_hostbuf(&mut e, buf);
        }
        WorkerMsg::Failed {
            dag_index,
            worker,
            error,
        } => {
            e.u8(2);
            e.u64(*dag_index as u64);
            e.u32(*worker as u32);
            match error {
                None => e.u8(0),
                Some(err) => {
                    e.u8(1);
                    enc_launch_error(&mut e, err);
                }
            }
        }
        WorkerMsg::Heartbeat { worker } => {
            e.u8(3);
            e.u32(*worker as u32);
        }
        WorkerMsg::ProbeEcho {
            worker,
            token,
            payload,
        } => {
            e.u8(4);
            e.u32(*worker as u32);
            e.u64(*token);
            e.bytes(payload);
        }
        WorkerMsg::ProbeReport {
            worker,
            to,
            bytes,
            elapsed_ns,
        } => {
            e.u8(5);
            e.u32(*worker as u32);
            e.u32(*to as u32);
            e.u64(*bytes);
            e.u64(*elapsed_ns);
        }
        WorkerMsg::Telemetry {
            worker,
            seq,
            backlog,
            counters,
            spans,
        } => {
            e.u8(6);
            // Batch-format version, for future span-field evolution
            // without another WIRE_VERSION bump.
            e.u16(1);
            e.u32(*worker as u32);
            e.u64(*seq);
            e.u64(*backlog);
            e.u64(counters.kernels);
            e.u64(counters.recompiles);
            e.u64(counters.sends);
            e.u64(counters.recvs);
            e.u64(counters.bytes_out);
            e.u64(counters.bytes_in);
            e.u64(counters.dropped);
            e.u32(spans.len() as u32);
            for s in spans {
                e.u8(match s.kind {
                    WorkerSpanKind::Execute => 0,
                    WorkerSpanKind::Transfer => 1,
                    WorkerSpanKind::Recompile => 2,
                });
                e.str(&s.name);
                e.u64(s.start_ns);
                e.u64(s.dur_ns);
                e.u64(s.dag_index);
                e.u64(s.bytes);
            }
        }
        WorkerMsg::ShipAck { seq, digest } => {
            e.u8(7);
            e.u64(*seq);
            e.u64(*digest);
        }
        WorkerMsg::Leave { worker } => {
            e.u8(8);
            e.u32(*worker as u32);
        }
    }
    e.into_bytes()
}

/// Decodes a worker→controller message.
pub fn decode_worker(payload: &[u8]) -> Result<WorkerMsg, WireError> {
    let mut d = Dec::new(payload);
    let msg = match d.u8()? {
        0 => WorkerMsg::Done {
            dag_index: d.u64()? as usize,
            worker: d.u32()? as usize,
            elapsed_ns: d.u64()?,
        },
        1 => WorkerMsg::Data {
            array: ArrayId(d.u64()?),
            version: d.u64()?,
            buf: dec_hostbuf(&mut d)?,
        },
        2 => WorkerMsg::Failed {
            dag_index: d.u64()? as usize,
            worker: d.u32()? as usize,
            error: match d.u8()? {
                0 => None,
                1 => Some(dec_launch_error(&mut d)?),
                _ => return Err(WireError::Malformed("failed-error tag")),
            },
        },
        3 => WorkerMsg::Heartbeat {
            worker: d.u32()? as usize,
        },
        4 => WorkerMsg::ProbeEcho {
            worker: d.u32()? as usize,
            token: d.u64()?,
            payload: d.bytes()?.to_vec(),
        },
        5 => WorkerMsg::ProbeReport {
            worker: d.u32()? as usize,
            to: d.u32()? as usize,
            bytes: d.u64()?,
            elapsed_ns: d.u64()?,
        },
        6 => {
            let batch_version = d.u16()?;
            if batch_version != 1 {
                return Err(WireError::Malformed("telemetry batch version"));
            }
            let worker = d.u32()? as usize;
            let seq = d.u64()?;
            let backlog = d.u64()?;
            let counters = WorkerCounters {
                kernels: d.u64()?,
                recompiles: d.u64()?,
                sends: d.u64()?,
                recvs: d.u64()?,
                bytes_out: d.u64()?,
                bytes_in: d.u64()?,
                dropped: d.u64()?,
            };
            let n = d.u32()? as usize;
            if n > TELEMETRY_DECODE_CAP {
                return Err(WireError::Malformed("telemetry batch too large"));
            }
            let mut spans = Vec::with_capacity(n);
            for _ in 0..n {
                spans.push(WorkerSpan {
                    kind: match d.u8()? {
                        0 => WorkerSpanKind::Execute,
                        1 => WorkerSpanKind::Transfer,
                        2 => WorkerSpanKind::Recompile,
                        _ => return Err(WireError::Malformed("span kind")),
                    },
                    name: d.str()?,
                    start_ns: d.u64()?,
                    dur_ns: d.u64()?,
                    dag_index: d.u64()?,
                    bytes: d.u64()?,
                });
            }
            WorkerMsg::Telemetry {
                worker,
                seq,
                backlog,
                counters,
                spans,
            }
        }
        7 => WorkerMsg::ShipAck {
            seq: d.u64()?,
            digest: d.u64()?,
        },
        8 => WorkerMsg::Leave {
            worker: d.u32()? as usize,
        },
        _ => return Err(WireError::Malformed("worker tag")),
    };
    if !d.finished() {
        return Err(WireError::Malformed("trailing bytes"));
    }
    Ok(msg)
}

// ---------------------------------------------------------------------------
// Clock-sync frames (transport-internal; see the module docs).

/// Worker → controller: "my clock read `t1_ns` when I sent this".
pub fn encode_clock_ping(worker: usize, t1_ns: u64) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(CLOCK_PING_TAG);
    e.u32(worker as u32);
    e.u64(t1_ns);
    e.into_bytes()
}

/// Decodes a clock ping: `(worker, t1_ns)`.
pub fn decode_clock_ping(payload: &[u8]) -> Result<(usize, u64), WireError> {
    let mut d = Dec::new(payload);
    if d.u8()? != CLOCK_PING_TAG {
        return Err(WireError::Malformed("clock-ping tag"));
    }
    let worker = d.u32()? as usize;
    let t1 = d.u64()?;
    if !d.finished() {
        return Err(WireError::Malformed("trailing bytes"));
    }
    Ok((worker, t1))
}

/// Controller → worker: echo of the ping's `t1_ns` plus the controller's
/// receive stamp `t2_ns`.
pub fn encode_clock_pong(t1_ns: u64, t2_ns: u64) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(CLOCK_PONG_TAG);
    e.u64(t1_ns);
    e.u64(t2_ns);
    e.into_bytes()
}

/// Decodes a clock pong: `(t1_ns, t2_ns)`.
pub fn decode_clock_pong(payload: &[u8]) -> Result<(u64, u64), WireError> {
    let mut d = Dec::new(payload);
    if d.u8()? != CLOCK_PONG_TAG {
        return Err(WireError::Malformed("clock-pong tag"));
    }
    let t1 = d.u64()?;
    let t2 = d.u64()?;
    if !d.finished() {
        return Err(WireError::Malformed("trailing bytes"));
    }
    Ok((t1, t2))
}

/// Worker → controller: one finished offset/RTT measurement.
pub fn encode_clock_sample(worker: usize, offset_ns: i64, rtt_ns: u64) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(CLOCK_SAMPLE_TAG);
    e.u32(worker as u32);
    e.i64(offset_ns);
    e.u64(rtt_ns);
    e.into_bytes()
}

/// Decodes a clock sample: `(worker, offset_ns, rtt_ns)`.
pub fn decode_clock_sample(payload: &[u8]) -> Result<(usize, i64, u64), WireError> {
    let mut d = Dec::new(payload);
    if d.u8()? != CLOCK_SAMPLE_TAG {
        return Err(WireError::Malformed("clock-sample tag"));
    }
    let worker = d.u32()? as usize;
    let offset = d.i64()?;
    let rtt = d.u64()?;
    if !d.finished() {
        return Err(WireError::Malformed("trailing bytes"));
    }
    Ok((worker, offset, rtt))
}

// ---------------------------------------------------------------------------
// v4 reliable-session envelope (controller↔worker sockets only; peer
// data sockets and pre-v4 connections carry bare payloads).

/// A v4 post-handshake frame, opened ([`open_envelope`]) into its kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Envelope {
    /// Best-effort traffic (clock sync, session acks, heartbeats): not
    /// sequenced, not buffered, lost across a resume without consequence.
    Ephemeral(Vec<u8>),
    /// Sequenced traffic: buffered by the sender until cumulatively
    /// acked, replayed on resume, deduped by the receiver's cursor.
    Reliable {
        /// Per-direction monotonic sequence number (0-based).
        seq: u64,
        /// The inner message payload ([`encode_ctrl`]/[`encode_worker`]).
        payload: Vec<u8>,
    },
}

/// Wraps an ephemeral payload in a v4 envelope.
pub fn seal_ephemeral(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + payload.len());
    out.push(ENVELOPE_EPHEMERAL);
    out.extend_from_slice(payload);
    out
}

/// Wraps a reliable payload + sequence number in a v4 envelope.
pub fn seal_reliable(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + payload.len());
    out.push(ENVELOPE_RELIABLE);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Opens a v4 envelope into its kind + inner payload.
pub fn open_envelope(frame: Vec<u8>) -> Result<Envelope, WireError> {
    match frame.first() {
        Some(&ENVELOPE_EPHEMERAL) => Ok(Envelope::Ephemeral(frame[1..].to_vec())),
        Some(&ENVELOPE_RELIABLE) => {
            if frame.len() < 9 {
                return Err(WireError::Malformed("truncated reliable envelope"));
            }
            let seq = u64::from_le_bytes(frame[1..9].try_into().unwrap());
            Ok(Envelope::Reliable {
                seq,
                payload: frame[9..].to_vec(),
            })
        }
        _ => Err(WireError::Malformed("envelope kind")),
    }
}

/// Encodes a cumulative session ack: "I have received every reliable
/// frame with `seq < cursor` from you". Ephemeral.
pub fn encode_session_ack(cursor: u64) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(SESSION_ACK_TAG);
    e.u64(cursor);
    e.into_bytes()
}

/// Decodes a session ack into the sender's receive cursor.
pub fn decode_session_ack(payload: &[u8]) -> Result<u64, WireError> {
    let mut d = Dec::new(payload);
    if d.u8()? != SESSION_ACK_TAG {
        return Err(WireError::Malformed("session-ack tag"));
    }
    let cursor = d.u64()?;
    if !d.finished() {
        return Err(WireError::Malformed("trailing bytes"));
    }
    Ok(cursor)
}

// ---------------------------------------------------------------------------
// Handshake.

/// The first frame on a fresh connection.
#[derive(Debug, Clone, PartialEq)]
pub enum Hello {
    /// The controller adopting a worker endpoint.
    Controller {
        /// The worker's index in the mesh.
        index: usize,
        /// Total worker count.
        total: usize,
        /// Liveness beacon cadence the worker must hold.
        heartbeat_ms: u32,
        /// Listen address of every worker, by index (for P2P dialing).
        peers: Vec<String>,
        /// Controller-chosen session identifier (v4+; 0 against older
        /// peers). A re-dial carrying the same id with `resume` set asks
        /// the worker to revive its parked session state instead of
        /// starting fresh.
        session_id: u64,
        /// `Some(cursor)` to resume an interrupted session: the
        /// controller has received every reliable worker→controller
        /// frame with `seq < cursor`. `None` for a fresh adoption, which
        /// resets all session state on the worker.
        resume: Option<u64>,
    },
    /// A peer worker opening its one-way data socket.
    Peer {
        /// The dialing worker's index.
        from: usize,
    },
    /// A tenant client attaching to a `grout-ctld` control plane (v6+;
    /// role byte `2`). The attach request proper ([`ClientMsg::Attach`])
    /// follows as the first post-handshake frame.
    Client,
}

/// Encodes a handshake frame.
pub fn encode_hello(h: &Hello) -> Vec<u8> {
    let mut e = Enc::new();
    e.0.extend_from_slice(&MAGIC);
    e.u16(WIRE_VERSION);
    match h {
        Hello::Controller {
            index,
            total,
            heartbeat_ms,
            peers,
            session_id,
            resume,
        } => {
            e.u8(0);
            e.u32(*index as u32);
            e.u32(*total as u32);
            e.u32(*heartbeat_ms);
            e.u64(peers.len() as u64);
            for p in peers {
                e.str(p);
            }
            // v4 fields; pre-v4 decoders ignore the trailing bytes.
            e.u64(*session_id);
            match resume {
                None => e.u8(0),
                Some(cursor) => {
                    e.u8(1);
                    e.u64(*cursor);
                }
            }
        }
        Hello::Peer { from } => {
            e.u8(1);
            e.u32(*from as u32);
        }
        Hello::Client => e.u8(2),
    }
    e.into_bytes()
}

/// Decodes and validates a handshake frame; returns the hello plus the
/// peer's announced wire version (anything in
/// `MIN_WIRE_VERSION..=WIRE_VERSION` is accepted — the effective protocol
/// is the minimum of the two ends' versions).
pub fn decode_hello(payload: &[u8]) -> Result<(Hello, u16), WireError> {
    let mut d = Dec::new(payload);
    let magic = d.take(4)?;
    if magic != MAGIC {
        return Err(WireError::Handshake(format!(
            "bad magic {magic:02x?} (not a GrOUT endpoint?)"
        )));
    }
    let version = d.u16()?;
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
        return Err(WireError::Handshake(format!(
            "wire version {version} outside our supported {MIN_WIRE_VERSION}..={WIRE_VERSION}"
        )));
    }
    let hello = match d.u8()? {
        0 => {
            let index = d.u32()? as usize;
            let total = d.u32()? as usize;
            let heartbeat_ms = d.u32()?;
            let n = d.u64()? as usize;
            let mut peers = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                peers.push(d.str()?);
            }
            let (session_id, resume) = if version >= 4 {
                let id = d.u64()?;
                let resume = match d.u8()? {
                    0 => None,
                    1 => Some(d.u64()?),
                    _ => return Err(WireError::Handshake("bad resume flag".into())),
                };
                (id, resume)
            } else {
                (0, None)
            };
            Hello::Controller {
                index,
                total,
                heartbeat_ms,
                peers,
                session_id,
                resume,
            }
        }
        1 => Hello::Peer {
            from: d.u32()? as usize,
        },
        2 if version >= 6 => Hello::Client,
        _ => return Err(WireError::Handshake("unknown role byte".into())),
    };
    Ok((hello, version))
}

/// A decoded worker ack: the echoed index, the worker's announced wire
/// version, and the v4 session-resume outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerAck {
    /// The worker index echoed from the hello.
    pub index: usize,
    /// The worker's announced wire version.
    pub version: u16,
    /// Whether the worker revived the parked session named by the hello's
    /// `(session_id, resume)` (always false for fresh adoptions and
    /// pre-v4 workers).
    pub resumed: bool,
    /// The worker's controller→worker receive cursor: it has seen every
    /// reliable frame with `seq < cursor`. The controller replays its
    /// unacked buffer from here on a resume. 0 for fresh sessions.
    pub cursor: u64,
}

/// Encodes the worker's ack to a fresh (non-resume) controller hello.
pub fn encode_ack(index: usize) -> Vec<u8> {
    encode_ack_ex(index, false, 0)
}

/// Encodes the worker's ack with an explicit resume outcome + cursor.
pub fn encode_ack_ex(index: usize, resumed: bool, cursor: u64) -> Vec<u8> {
    let mut e = Enc::new();
    e.0.extend_from_slice(&MAGIC);
    e.u16(WIRE_VERSION);
    e.u32(index as u32);
    // v4 fields; pre-v4 decoders ignore the trailing bytes.
    e.u8(u8::from(resumed));
    e.u64(cursor);
    e.into_bytes()
}

/// Decodes and validates a worker's ack (same acceptance window as
/// [`decode_hello`]).
pub fn decode_ack(payload: &[u8]) -> Result<WorkerAck, WireError> {
    let mut d = Dec::new(payload);
    let magic = d.take(4)?;
    if magic != MAGIC {
        return Err(WireError::Handshake("bad ack magic".into()));
    }
    let version = d.u16()?;
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
        return Err(WireError::Handshake(format!(
            "ack wire version {version} outside our supported {MIN_WIRE_VERSION}..={WIRE_VERSION}"
        )));
    }
    let index = d.u32()? as usize;
    let (resumed, cursor) = if version >= 4 {
        (d.u8()? != 0, d.u64()?)
    } else {
        (false, 0)
    };
    Ok(WorkerAck {
        index,
        version,
        resumed,
        cursor,
    })
}

// ---------------------------------------------------------------------------
// The ctld client protocol (v6+): what travels on a [`Hello::Client`]
// connection after the handshake.

/// Client → `grout-ctld` messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMsg {
    /// Attach a session: run `source` on the shared fleet.
    Attach {
        /// The GuestScript program to execute.
        source: String,
        /// Admission/scheduling priority class.
        priority: Priority,
        /// Declared working-set bytes (0 = unknown; charged nothing
        /// against the resident budget).
        declared_bytes: u64,
    },
    /// Detach early (abandon a queued or running session). EOF works
    /// too; this makes the intent explicit.
    Detach,
}

/// `grout-ctld` → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum CtldMsg {
    /// The session was admitted and is running.
    Attached {
        /// The daemon-assigned session id.
        session: u64,
    },
    /// The fleet is saturated; the session waits its turn.
    Queued {
        /// Requests ahead (0-based).
        position: u32,
    },
    /// Admission refused the session — the typed error explains why.
    /// The connection closes after this frame.
    Rejected(AdmissionError),
    /// Script output lines (the bit-identity surface: exactly what a
    /// solo `grout-run` would print to stdout).
    Output {
        /// The lines, in emission order.
        lines: Vec<String>,
    },
    /// The script finished cleanly; the connection closes after this.
    Finished {
        /// Kernels the session executed (cheap sanity stat).
        kernels: u64,
    },
    /// The script failed; the connection closes after this.
    Failed {
        /// Human-readable failure description.
        message: String,
    },
}

fn enc_priority(e: &mut Enc, p: Priority) {
    e.u8(match p {
        Priority::Low => 0,
        Priority::Normal => 1,
        Priority::High => 2,
    });
}

fn dec_priority(d: &mut Dec) -> Result<Priority, WireError> {
    Ok(match d.u8()? {
        0 => Priority::Low,
        1 => Priority::Normal,
        2 => Priority::High,
        _ => return Err(WireError::Malformed("priority tag")),
    })
}

fn enc_admission_error(e: &mut Enc, err: &AdmissionError) {
    match err {
        AdmissionError::Saturated { active, max } => {
            e.u8(0);
            e.u32(*active);
            e.u32(*max);
        }
        AdmissionError::QueueFull { queued, max } => {
            e.u8(1);
            e.u32(*queued);
            e.u32(*max);
        }
        AdmissionError::ResidentBytes { declared, max } => {
            e.u8(2);
            e.u64(*declared);
            e.u64(*max);
        }
    }
}

fn dec_admission_error(d: &mut Dec) -> Result<AdmissionError, WireError> {
    Ok(match d.u8()? {
        0 => AdmissionError::Saturated {
            active: d.u32()?,
            max: d.u32()?,
        },
        1 => AdmissionError::QueueFull {
            queued: d.u32()?,
            max: d.u32()?,
        },
        2 => AdmissionError::ResidentBytes {
            declared: d.u64()?,
            max: d.u64()?,
        },
        _ => return Err(WireError::Malformed("admission-error tag")),
    })
}

/// Encodes a client → ctld message.
pub fn encode_client(msg: &ClientMsg) -> Vec<u8> {
    let mut e = Enc::new();
    match msg {
        ClientMsg::Attach {
            source,
            priority,
            declared_bytes,
        } => {
            e.u8(0);
            e.str(source);
            enc_priority(&mut e, *priority);
            e.u64(*declared_bytes);
        }
        ClientMsg::Detach => e.u8(1),
    }
    e.into_bytes()
}

/// Decodes a client → ctld message.
pub fn decode_client(payload: &[u8]) -> Result<ClientMsg, WireError> {
    let mut d = Dec::new(payload);
    let msg = match d.u8()? {
        0 => ClientMsg::Attach {
            source: d.str()?,
            priority: dec_priority(&mut d)?,
            declared_bytes: d.u64()?,
        },
        1 => ClientMsg::Detach,
        _ => return Err(WireError::Malformed("client tag")),
    };
    if !d.finished() {
        return Err(WireError::Malformed("trailing bytes"));
    }
    Ok(msg)
}

/// Encodes a ctld → client message.
pub fn encode_ctld(msg: &CtldMsg) -> Vec<u8> {
    let mut e = Enc::new();
    match msg {
        CtldMsg::Attached { session } => {
            e.u8(0);
            e.u64(*session);
        }
        CtldMsg::Queued { position } => {
            e.u8(1);
            e.u32(*position);
        }
        CtldMsg::Rejected(err) => {
            e.u8(2);
            enc_admission_error(&mut e, err);
        }
        CtldMsg::Output { lines } => {
            e.u8(3);
            e.u32(lines.len() as u32);
            for l in lines {
                e.str(l);
            }
        }
        CtldMsg::Finished { kernels } => {
            e.u8(4);
            e.u64(*kernels);
        }
        CtldMsg::Failed { message } => {
            e.u8(5);
            e.str(message);
        }
    }
    e.into_bytes()
}

/// Decodes a ctld → client message.
pub fn decode_ctld(payload: &[u8]) -> Result<CtldMsg, WireError> {
    let mut d = Dec::new(payload);
    let msg = match d.u8()? {
        0 => CtldMsg::Attached { session: d.u64()? },
        1 => CtldMsg::Queued { position: d.u32()? },
        2 => CtldMsg::Rejected(dec_admission_error(&mut d)?),
        3 => {
            let n = d.u32()? as usize;
            if n > 1 << 20 {
                return Err(WireError::Malformed("output line count"));
            }
            let mut lines = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                lines.push(d.str()?);
            }
            CtldMsg::Output { lines }
        }
        4 => CtldMsg::Finished { kernels: d.u64()? },
        5 => CtldMsg::Failed { message: d.str()? },
        _ => return Err(WireError::Malformed("ctld tag")),
    };
    if !d.finished() {
        return Err(WireError::Malformed("trailing bytes"));
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_ctrl(msg: CtrlMsg) -> CtrlMsg {
        decode_ctrl(&encode_ctrl(&msg)).expect("roundtrip")
    }

    fn roundtrip_worker(msg: WorkerMsg) -> WorkerMsg {
        decode_worker(&encode_worker(&msg)).expect("roundtrip")
    }

    #[test]
    fn ctrl_data_roundtrips_bit_exact() {
        let buf = HostBuf::F32(vec![1.5, -0.0, f32::NAN, 3.25e-12]);
        let out = roundtrip_ctrl(CtrlMsg::Data {
            array: ArrayId(7),
            version: 42,
            buf,
        });
        match out {
            CtrlMsg::Data {
                array,
                version,
                buf: HostBuf::F32(v),
            } => {
                assert_eq!(array, ArrayId(7));
                assert_eq!(version, 42);
                let bits: Vec<u32> = v.iter().map(|x| x.to_bits()).collect();
                assert_eq!(
                    bits,
                    vec![
                        1.5f32.to_bits(),
                        (-0.0f32).to_bits(),
                        f32::NAN.to_bits(),
                        3.25e-12f32.to_bits()
                    ]
                );
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn exec_spec_roundtrips() {
        let spec = ExecSpec {
            dag_index: 9,
            kernel: 3,
            grid: (16, 2),
            block: (128, 1),
            args: vec![
                LocalArg::Buf(ArrayId(1)),
                LocalArg::F32(0.5),
                LocalArg::I32(-7),
            ],
            needs: vec![(ArrayId(1), 4)],
            bumps: vec![(ArrayId(1), 5)],
            fault: Some(ExecFault::FailTransient),
        };
        match roundtrip_ctrl(CtrlMsg::Exec(spec.clone())) {
            CtrlMsg::Exec(out) => {
                assert_eq!(out.dag_index, spec.dag_index);
                assert_eq!(out.kernel, spec.kernel);
                assert_eq!(out.grid, spec.grid);
                assert_eq!(out.block, spec.block);
                assert_eq!(out.needs, spec.needs);
                assert_eq!(out.bumps, spec.bumps);
                assert_eq!(out.fault, spec.fault);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn load_kernel_drops_the_compiled_fast_path() {
        let msg = CtrlMsg::LoadKernel {
            id: 5,
            name: "k".into(),
            source: "__global__ void k(float* x, int n) {}".into(),
            compiled: None,
        };
        match roundtrip_ctrl(msg) {
            CtrlMsg::LoadKernel {
                id,
                name,
                source,
                compiled,
            } => {
                assert_eq!(id, 5);
                assert_eq!(name, "k");
                assert!(source.contains("__global__"));
                assert!(compiled.is_none());
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn worker_failed_carries_launch_errors() {
        let out = roundtrip_worker(WorkerMsg::Failed {
            dag_index: 3,
            worker: 1,
            error: Some(LaunchError::OutOfBounds {
                param: 0,
                index: -4,
                len: 16,
            }),
        });
        match out {
            WorkerMsg::Failed {
                dag_index: 3,
                worker: 1,
                error:
                    Some(LaunchError::OutOfBounds {
                        param: 0,
                        index: -4,
                        len: 16,
                    }),
            } => {}
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn hello_roundtrips_and_rejects_bad_versions() {
        let h = Hello::Controller {
            index: 1,
            total: 2,
            heartbeat_ms: 100,
            peers: vec!["127.0.0.1:4000".into(), "127.0.0.1:4001".into()],
            session_id: 0xDEAD_BEEF,
            resume: Some(17),
        };
        assert_eq!(
            decode_hello(&encode_hello(&h)).unwrap(),
            (h.clone(), WIRE_VERSION)
        );

        let mut bad = encode_hello(&h);
        bad[4] = 0xFF; // corrupt the version: 0xFF is beyond ours
        assert!(matches!(decode_hello(&bad), Err(WireError::Handshake(_))));

        let mut worse = encode_hello(&h);
        worse[0] = b'X'; // corrupt the magic
        assert!(matches!(decode_hello(&worse), Err(WireError::Handshake(_))));
    }

    #[test]
    fn handshake_tolerates_older_supported_versions() {
        let h = Hello::Peer { from: 3 };
        let mut old = encode_hello(&h);
        old[4] = 1; // a v1 peer (u16 LE low byte)
        old[5] = 0;
        assert_eq!(decode_hello(&old).unwrap(), (h, 1));

        let mut ack = encode_ack(7);
        ack[4] = 1;
        ack[5] = 0;
        // A v1 ack: index decodes, the v4 tail is ignored.
        let got = decode_ack(&ack).unwrap();
        assert_eq!(
            (got.index, got.version, got.resumed, got.cursor),
            (7, 1, false, 0)
        );

        // Version 0 predates the protocol — still refused.
        let mut ancient = encode_ack(7);
        ancient[4] = 0;
        ancient[5] = 0;
        assert!(matches!(decode_ack(&ancient), Err(WireError::Handshake(_))));
    }

    #[test]
    fn resume_handshake_and_session_frames_roundtrip() {
        // A resuming ack carries the outcome + cursor.
        let ack = decode_ack(&encode_ack_ex(3, true, 42)).unwrap();
        assert_eq!(
            (ack.index, ack.version, ack.resumed, ack.cursor),
            (3, WIRE_VERSION, true, 42)
        );

        // Session acks and both envelope kinds roundtrip.
        assert_eq!(decode_session_ack(&encode_session_ack(99)).unwrap(), 99);
        let inner = encode_worker(&WorkerMsg::Heartbeat { worker: 2 });
        assert_eq!(
            open_envelope(seal_ephemeral(&inner)).unwrap(),
            Envelope::Ephemeral(inner.clone())
        );
        assert_eq!(
            open_envelope(seal_reliable(7, &inner)).unwrap(),
            Envelope::Reliable {
                seq: 7,
                payload: inner
            }
        );

        // The clean-departure frame roundtrips.
        match roundtrip_worker(WorkerMsg::Leave { worker: 5 }) {
            WorkerMsg::Leave { worker: 5 } => {}
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn membership_ops_roundtrip() {
        for op in [
            PlannerOp::Suspect { worker: 1 },
            PlannerOp::Reinstate { worker: 1 },
            PlannerOp::Rejoin { worker: 2 },
        ] {
            assert_eq!(decode_op(&encode_op(&op)).unwrap(), op);
        }
    }

    #[test]
    fn observe_and_telemetry_roundtrip() {
        match roundtrip_ctrl(CtrlMsg::Observe { enabled: true }) {
            CtrlMsg::Observe { enabled } => assert!(enabled),
            other => panic!("wrong variant: {other:?}"),
        }

        let msg = WorkerMsg::Telemetry {
            worker: 1,
            seq: 42,
            backlog: 3,
            counters: WorkerCounters {
                kernels: 9,
                recompiles: 2,
                sends: 4,
                recvs: 5,
                bytes_out: 4096,
                bytes_in: 8192,
                dropped: 1,
            },
            spans: vec![
                WorkerSpan {
                    kind: WorkerSpanKind::Execute,
                    name: "saxpy".into(),
                    start_ns: 1_000_000,
                    dur_ns: 250,
                    dag_index: 7,
                    bytes: 0,
                },
                WorkerSpan {
                    kind: WorkerSpanKind::Transfer,
                    name: "recv".into(),
                    start_ns: 999_000,
                    dur_ns: 80,
                    dag_index: u64::MAX,
                    bytes: 4096,
                },
            ],
        };
        match roundtrip_worker(msg.clone()) {
            WorkerMsg::Telemetry {
                worker,
                seq,
                backlog,
                counters,
                spans,
            } => {
                assert_eq!(worker, 1);
                assert_eq!(seq, 42);
                assert_eq!(backlog, 3);
                assert_eq!(counters.kernels, 9);
                assert_eq!(counters.dropped, 1);
                match &msg {
                    WorkerMsg::Telemetry { spans: orig, .. } => assert_eq!(&spans, orig),
                    _ => unreachable!(),
                }
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn telemetry_decoder_caps_span_count() {
        let mut e = Enc::new();
        e.u8(6);
        e.u16(1);
        e.u32(0);
        e.u64(1);
        e.u64(0);
        for _ in 0..7 {
            e.u64(0); // counters
        }
        e.u32(u32::MAX); // hostile span count
        assert!(decode_worker(&e.into_bytes()).is_err());
    }

    #[test]
    fn clock_frames_roundtrip_and_stay_out_of_message_space() {
        let ping = encode_clock_ping(2, 12_345);
        assert_eq!(decode_clock_ping(&ping).unwrap(), (2, 12_345));
        // A reader that forgot to peek must fail loudly, not misparse.
        assert!(decode_worker(&ping).is_err());

        let pong = encode_clock_pong(12_345, 67_890);
        assert_eq!(decode_clock_pong(&pong).unwrap(), (12_345, 67_890));
        assert!(decode_ctrl(&pong).is_err());

        let sample = encode_clock_sample(1, -5_000, 900);
        assert_eq!(decode_clock_sample(&sample).unwrap(), (1, -5_000, 900));
        assert!(decode_worker(&sample).is_err());
    }

    #[test]
    fn planner_ops_roundtrip_bit_exact() {
        let ops = vec![
            PlannerOp::Alloc { bytes: 1 << 20 },
            PlannerOp::Free { array: ArrayId(3) },
            PlannerOp::PlanCe {
                ce: Ce {
                    id: CeId(9),
                    kind: CeKind::Kernel {
                        name: "saxpy".into(),
                        cost: KernelCost {
                            flops: 2.5e9,
                            bytes_read: 1 << 22,
                            bytes_written: 1 << 21,
                        },
                    },
                    args: vec![CeArg {
                        array: ArrayId(1),
                        bytes: 4096,
                        alloc_bytes: 1 << 16,
                        mode: AccessMode::ReadWrite,
                        pattern: AccessPattern::Gather {
                            touches_per_page: 3.75,
                        },
                        advise: MemAdvise::ReadMostly,
                    }],
                },
            },
            PlannerOp::PlanCe {
                ce: Ce {
                    id: CeId(10),
                    kind: CeKind::HostRead,
                    args: vec![],
                },
            },
            PlannerOp::MarkCompleted { dag_index: 7 },
            PlannerOp::Quarantine { worker: 2 },
            PlannerOp::Recover {
                dead: 1,
                incomplete: vec![4, 6],
            },
            PlannerOp::ReprobeLinks {
                links: LinkMatrix::new(vec![vec![1.0, 2.5], vec![3.25, 4.0]]),
            },
        ];
        for op in &ops {
            assert_eq!(&decode_op(&encode_op(op)).expect("roundtrip"), op);
        }
        assert!(decode_op(&[99]).is_err());
    }

    #[test]
    fn planner_config_roundtrips() {
        let cfg = PlannerConfig {
            workers: 3,
            policy: PolicyKind::MinTransferTime(ExplorationLevel::High),
            p2p_enabled: false,
            flat_scheduling: true,
            controller_colocated: false,
            faults: FaultPlan::with_events(vec![
                FaultEvent {
                    at_ce: 2,
                    kind: FaultKind::KillWorker,
                },
                FaultEvent {
                    at_ce: 5,
                    kind: FaultKind::FailLaunch { times: 4 },
                },
                FaultEvent {
                    at_ce: 6,
                    kind: FaultKind::DelayTransfer {
                        delay: SimDuration(1_000_000),
                    },
                },
            ]),
            fault_cfg: FaultConfig {
                max_retries: 7,
                ..FaultConfig::default()
            },
        };
        let out = decode_planner_config(&encode_planner_config(&cfg)).expect("roundtrip");
        assert_eq!(out, cfg);

        let vs = PlannerConfig::new(2, PolicyKind::VectorStep(vec![1, 2, 3]));
        assert_eq!(
            decode_planner_config(&encode_planner_config(&vs)).unwrap(),
            vs
        );
    }

    #[test]
    fn ship_frames_roundtrip() {
        let init = CtrlMsg::ShipInit {
            cfg: PlannerConfig::new(2, grout_core::PolicyKind::RoundRobin),
            links: Some(LinkMatrix::uniform(3, 1e9)),
        };
        match roundtrip_ctrl(init) {
            CtrlMsg::ShipInit { cfg, links } => {
                assert_eq!(cfg.workers, 2);
                assert_eq!(links.unwrap().raw(0, 1), 1e9);
            }
            other => panic!("wrong variant: {other:?}"),
        }

        let op = CtrlMsg::ShipOp {
            seq: 42,
            op: PlannerOp::Alloc { bytes: 4096 },
        };
        match roundtrip_ctrl(op) {
            CtrlMsg::ShipOp { seq, op } => {
                assert_eq!(seq, 42);
                assert_eq!(op, PlannerOp::Alloc { bytes: 4096 });
            }
            other => panic!("wrong variant: {other:?}"),
        }

        match roundtrip_worker(WorkerMsg::ShipAck {
            seq: 42,
            digest: 0xDEADBEEF,
        }) {
            WorkerMsg::ShipAck { seq, digest } => {
                assert_eq!(seq, 42);
                assert_eq!(digest, 0xDEADBEEF);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn frames_roundtrip_and_cap_length() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());

        let huge = [(MAX_FRAME + 1).to_le_bytes()].concat();
        assert!(matches!(
            read_frame(&mut &huge[..]),
            Err(WireError::TooLarge(_))
        ));
    }

    #[test]
    fn garbage_decodes_to_errors_not_panics() {
        assert!(decode_ctrl(&[]).is_err());
        assert!(decode_ctrl(&[200]).is_err());
        assert!(decode_worker(&[9, 1, 2, 3]).is_err());
        // Truncated Data frame.
        let mut good = encode_ctrl(&CtrlMsg::Data {
            array: ArrayId(0),
            version: 1,
            buf: HostBuf::F32(vec![1.0; 8]),
        });
        good.truncate(good.len() - 3);
        assert!(decode_ctrl(&good).is_err());
        // Trailing bytes.
        let mut long = encode_ctrl(&CtrlMsg::Shutdown);
        long.push(0);
        assert!(decode_ctrl(&long).is_err());
    }

    #[test]
    fn batch_roundtrips_and_rejects_nesting() {
        let inner = vec![
            CtrlMsg::Data {
                array: ArrayId(3),
                version: 2,
                buf: HostBuf::I32(vec![1, 2, 3]),
            },
            CtrlMsg::Send {
                array: ArrayId(3),
                min_version: 2,
                to: Some(1),
            },
        ];
        match roundtrip_ctrl(CtrlMsg::Batch(inner.clone())) {
            CtrlMsg::Batch(out) => {
                assert_eq!(out.len(), 2);
                assert!(matches!(&out[0], CtrlMsg::Data { array, .. } if *array == ArrayId(3)));
                assert!(matches!(&out[1], CtrlMsg::Send { to: Some(1), .. }));
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // A batch inside a batch is malformed, not a recursion.
        let nested = encode_ctrl(&CtrlMsg::Batch(vec![CtrlMsg::Batch(inner)]));
        assert!(decode_ctrl(&nested).is_err());
    }

    #[test]
    fn reclaim_roundtrips() {
        let msg = CtrlMsg::Reclaim {
            arrays: vec![ArrayId(1 << 40 | 7), ArrayId(1 << 40 | 9)],
            kernels: vec![1 << 40 | 1],
        };
        match roundtrip_ctrl(msg) {
            CtrlMsg::Reclaim { arrays, kernels } => {
                assert_eq!(arrays, vec![ArrayId(1 << 40 | 7), ArrayId(1 << 40 | 9)]);
                assert_eq!(kernels, vec![1 << 40 | 1]);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn client_hello_roundtrips() {
        let (hello, version) = decode_hello(&encode_hello(&Hello::Client)).expect("decode");
        assert_eq!(hello, Hello::Client);
        assert_eq!(version, WIRE_VERSION);
    }

    #[test]
    fn client_protocol_roundtrips() {
        let attach = ClientMsg::Attach {
            source: "let x = 1".into(),
            priority: Priority::High,
            declared_bytes: 4096,
        };
        assert_eq!(decode_client(&encode_client(&attach)).unwrap(), attach);
        assert_eq!(
            decode_client(&encode_client(&ClientMsg::Detach)).unwrap(),
            ClientMsg::Detach
        );
        for msg in [
            CtldMsg::Attached { session: 3 },
            CtldMsg::Queued { position: 2 },
            CtldMsg::Rejected(AdmissionError::Saturated { active: 4, max: 4 }),
            CtldMsg::Rejected(AdmissionError::QueueFull { queued: 8, max: 8 }),
            CtldMsg::Rejected(AdmissionError::ResidentBytes {
                declared: 1 << 30,
                max: 1 << 20,
            }),
            CtldMsg::Output {
                lines: vec!["a".into(), "b".into()],
            },
            CtldMsg::Finished { kernels: 12 },
            CtldMsg::Failed {
                message: "script error".into(),
            },
        ] {
            assert_eq!(decode_ctld(&encode_ctld(&msg)).unwrap(), msg);
        }
    }
}
