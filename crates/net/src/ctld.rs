//! Client-side and shared plumbing for the `grout-ctld` control plane.
//!
//! The daemon itself lives in the `grout-ctld` binary (it needs the
//! guest-script interpreter); this module holds everything protocol- and
//! persistence-shaped:
//!
//! - the v6 client handshake ([`client_connect`] / [`accept_client`]),
//! - [`CtldClient`]: the typed connection `grout-run --connect` drives
//!   (attach a script, stream [`CtldMsg`] frames back),
//! - [`SessionJournal`]: the multi-session op journal — every planner
//!   mutation of every tenant lands in one file as `(SessionId, seq,
//!   PlannerOp)`, so journals and replay stay session-aware
//!   ([`read_session_journal`] splits it back per tenant).
//!
//! ## Session journal file format
//!
//! ```text
//! magic b"GRSJ" | version: u16 LE
//! frame*: len: u32 LE | payload: sid u64 | seq u64 | op ([`wire::encode_op`])
//! ```
//!
//! Append-only, crash-tolerant like the single-tenant journal: a torn
//! tail frame is ignored on read.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Read as _, Write as _};
use std::net::TcpStream;
use std::path::Path;

use grout_core::{AdmissionError, PlannerOp, Priority, SessionId, SessionOpLog};

use crate::wire::{self, ClientMsg, CtldMsg, WireError};

/// Session-journal file magic: the first four bytes.
pub const SESSION_JOURNAL_MAGIC: [u8; 4] = *b"GRSJ";

/// Session-journal format version.
pub const SESSION_JOURNAL_VERSION: u16 = 1;

// ---------------------------------------------------------------------------
// Client handshake + typed connection.

/// Dials a `grout-ctld` endpoint and performs the v6 client handshake.
/// Fails against pre-v6 peers (and against `grout-workerd`, which drops
/// client hellos).
pub fn client_connect(addr: &str) -> Result<TcpStream, WireError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    wire::write_frame(&mut stream, &wire::encode_hello(&wire::Hello::Client))?;
    let ack = wire::read_frame(&mut stream)?
        .ok_or_else(|| WireError::Handshake("ctld closed during handshake".into()))?;
    let ack = wire::decode_ack(&ack)?;
    if ack.version < 6 {
        return Err(WireError::Handshake(format!(
            "peer speaks wire v{} but the client protocol needs v6",
            ack.version
        )));
    }
    Ok(stream)
}

/// Server side of the client handshake: reads the hello off a freshly
/// accepted socket, validates the role, and acks. Returns the client's
/// announced wire version.
pub fn accept_client(stream: &mut TcpStream) -> Result<u16, WireError> {
    stream.set_nodelay(true)?;
    let hello = wire::read_frame(stream)?
        .ok_or_else(|| WireError::Handshake("client closed during handshake".into()))?;
    match wire::decode_hello(&hello)? {
        (wire::Hello::Client, version) => {
            wire::write_frame(stream, &wire::encode_ack(0))?;
            Ok(version)
        }
        _ => Err(WireError::Handshake(
            "expected a client hello (role 2)".into(),
        )),
    }
}

/// What a [`CtldClient`] run ended as.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientOutcome {
    /// The script ran; its output lines (bit-identical to a solo run).
    Finished {
        /// Script output, in emission order.
        lines: Vec<String>,
        /// Kernels executed, as reported by the daemon.
        kernels: u64,
        /// Queue positions announced while waiting (empty = admitted
        /// immediately).
        queued_at: Vec<u32>,
    },
    /// Admission refused the session with the typed error.
    Rejected(AdmissionError),
    /// The script failed on the daemon.
    Failed(String),
}

/// A typed client connection to `grout-ctld`: the engine behind
/// `grout-run --connect`.
pub struct CtldClient {
    stream: TcpStream,
}

impl CtldClient {
    /// Connects and handshakes.
    pub fn connect(addr: &str) -> Result<Self, WireError> {
        Ok(CtldClient {
            stream: client_connect(addr)?,
        })
    }

    /// Ships the attach request.
    pub fn attach(
        &mut self,
        source: &str,
        priority: Priority,
        declared_bytes: u64,
    ) -> Result<(), WireError> {
        wire::write_frame(
            &mut self.stream,
            &wire::encode_client(&ClientMsg::Attach {
                source: source.to_string(),
                priority,
                declared_bytes,
            }),
        )
    }

    /// Reads the next daemon frame.
    pub fn next_msg(&mut self) -> Result<Option<CtldMsg>, WireError> {
        match wire::read_frame(&mut self.stream)? {
            Some(payload) => Ok(Some(wire::decode_ctld(&payload)?)),
            None => Ok(None),
        }
    }

    /// Runs an attach to completion: attaches `source`, streams frames
    /// (`on_event` sees each as it arrives — print queue positions,
    /// output lines as they come) and returns the terminal outcome.
    pub fn run(
        &mut self,
        source: &str,
        priority: Priority,
        declared_bytes: u64,
        mut on_event: impl FnMut(&CtldMsg),
    ) -> Result<ClientOutcome, WireError> {
        self.attach(source, priority, declared_bytes)?;
        let mut lines = Vec::new();
        let mut queued_at = Vec::new();
        loop {
            let Some(msg) = self.next_msg()? else {
                return Err(WireError::Handshake(
                    "ctld closed before a terminal frame".into(),
                ));
            };
            on_event(&msg);
            match msg {
                CtldMsg::Attached { .. } => {}
                CtldMsg::Queued { position } => queued_at.push(position),
                CtldMsg::Rejected(err) => return Ok(ClientOutcome::Rejected(err)),
                CtldMsg::Output { lines: batch } => lines.extend(batch),
                CtldMsg::Finished { kernels } => {
                    return Ok(ClientOutcome::Finished {
                        lines,
                        kernels,
                        queued_at,
                    })
                }
                CtldMsg::Failed { message } => return Ok(ClientOutcome::Failed(message)),
            }
        }
    }

    /// Announces an early detach (abandon a queued or running session).
    pub fn detach(&mut self) -> Result<(), WireError> {
        wire::write_frame(&mut self.stream, &wire::encode_client(&ClientMsg::Detach))
    }
}

// ---------------------------------------------------------------------------
// The multi-session op journal.

/// One shared, session-tagged op journal for the whole control plane.
/// Implements [`SessionOpLog`]; attach one
/// [`grout_core::SessionOpSink`] per session runtime and every tenant's
/// planner mutations land here in arrival order, each tagged with its
/// owner.
pub struct SessionJournal {
    out: BufWriter<File>,
}

impl SessionJournal {
    /// Creates (truncates) the journal at `path` and writes the header.
    pub fn create(path: &Path) -> Result<Self, WireError> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(&SESSION_JOURNAL_MAGIC)?;
        out.write_all(&SESSION_JOURNAL_VERSION.to_le_bytes())?;
        out.flush()?;
        Ok(SessionJournal { out })
    }
}

impl SessionOpLog for SessionJournal {
    fn append(&mut self, sid: SessionId, seq: u64, op: &PlannerOp, _digest: Option<u64>) {
        let op_bytes = wire::encode_op(op);
        let mut payload = Vec::with_capacity(16 + op_bytes.len());
        payload.extend_from_slice(&sid.0.to_le_bytes());
        payload.extend_from_slice(&seq.to_le_bytes());
        payload.extend_from_slice(&op_bytes);
        // Write-ahead semantics: the frame is on its way to disk before
        // the planner proceeds; a failing disk surfaces on the next
        // append's flush. Same best-effort stance as the single-tenant
        // journal sink.
        let _ = wire::write_frame(&mut self.out, &payload);
    }
}

/// Reads a [`SessionJournal`] back, split per session: each entry is the
/// session's `(seq, op)` stream in append order — feed it to
/// [`grout_core::replay_ops`] to rebuild that tenant's planner. A torn
/// tail frame (crashed writer) is ignored.
pub fn read_session_journal(
    path: &Path,
) -> Result<BTreeMap<SessionId, Vec<(u64, PlannerOp)>>, WireError> {
    let mut raw = Vec::new();
    File::open(path)?.read_to_end(&mut raw)?;
    if raw.len() < 6 || raw[..4] != SESSION_JOURNAL_MAGIC {
        return Err(WireError::Malformed("not a session journal"));
    }
    let version = u16::from_le_bytes([raw[4], raw[5]]);
    if version == 0 || version > SESSION_JOURNAL_VERSION {
        return Err(WireError::Malformed("session journal version"));
    }
    let mut cursor = &raw[6..];
    let mut per_session: BTreeMap<SessionId, Vec<(u64, PlannerOp)>> = BTreeMap::new();
    while cursor.len() >= 4 {
        let len = u32::from_le_bytes(cursor[..4].try_into().unwrap()) as usize;
        if cursor.len() < 4 + len {
            break; // torn tail frame: the writer crashed mid-append
        }
        let payload = &cursor[4..4 + len];
        cursor = &cursor[4 + len..];
        if payload.len() < 16 {
            return Err(WireError::Malformed("session journal record"));
        }
        let sid = SessionId(u64::from_le_bytes(payload[..8].try_into().unwrap()));
        let seq = u64::from_le_bytes(payload[8..16].try_into().unwrap());
        let op = wire::decode_op(&payload[16..])?;
        per_session.entry(sid).or_default().push((seq, op));
    }
    Ok(per_session)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grout_core::ArrayId;

    #[test]
    fn session_journal_roundtrips_per_tenant() {
        let dir = std::env::temp_dir().join(format!(
            "grout-ctld-journal-{}-{:x}",
            std::process::id(),
            grout_core::monotonic_ns()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sessions.grsj");
        {
            let mut j = SessionJournal::create(&path).unwrap();
            j.append(SessionId(1), 0, &PlannerOp::Alloc { bytes: 64 }, None);
            j.append(SessionId(2), 0, &PlannerOp::Alloc { bytes: 128 }, None);
            j.append(
                SessionId(1),
                1,
                &PlannerOp::Free { array: ArrayId(0) },
                None,
            );
            use std::io::Write as _;
            j.out.flush().unwrap();
        }
        let back = read_session_journal(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[&SessionId(1)].len(), 2);
        assert_eq!(back[&SessionId(1)][1].0, 1);
        assert_eq!(back[&SessionId(2)].len(), 1);
        assert!(matches!(
            back[&SessionId(2)][0].1,
            PlannerOp::Alloc { bytes: 128 }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
