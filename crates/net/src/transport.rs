//! The controller side of the TCP mesh: [`TcpTransport`].
//!
//! One socket per worker. A reader thread per socket decodes
//! [`WorkerMsg`] frames into a single merged queue (mirroring the
//! crossbeam mesh of the in-process transport), swallows heartbeats after
//! stamping a shared last-seen instant, and flips a shared link flag on
//! EOF or socket error.
//!
//! ## Reliable sessions (wire v4)
//!
//! Against a v4 worker every post-handshake frame is an
//! [`wire::Envelope`]: plan traffic rides *reliable* frames (sequenced,
//! buffered in a [`SendBuffer`] until cumulatively acked, deduplicated by
//! a [`RecvCursor`]); heartbeats, clock sync and session acks ride
//! *ephemeral* frames. A dead socket no longer kills the worker — the
//! connection enters a *resuming* state: sends buffer, reconnect attempts
//! run with exponential backoff inside [`TcpConfig::reconnect_window`],
//! and a successful resume handshake (same session id, both cursors
//! exchanged) replays the unacked tails in both directions. The runtime
//! sees [`Liveness::Suspect`] while resuming — new CEs avoid the node —
//! and only a blown window (or a worker that lost its session state)
//! degrades to [`Liveness::Dead`] and the quarantine + lineage-replay
//! path. Liveness combines socket state and staleness: a SIGKILLed
//! process is caught by EOF within milliseconds, a wedged-but-connected
//! one (SIGSTOP, network partition) by missed heartbeats
//! ([`TcpConfig::stale_after_beats`] × cadence), which severs the socket
//! and enters the same resume path.
//!
//! Construction runs the startup bandwidth-probe round of the paper's
//! min-transfer-time policy: timed ballast echoes controller↔worker and
//! worker↔worker populate a measured [`LinkMatrix`] that
//! [`grout_core::LocalRuntime`] hands to the planner in place of the
//! uniform model.

use std::io::Write as _;
use std::net::TcpStream;
use std::process::Child;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use grout_core::{
    monotonic_ns, ClockSync, CtrlMsg, FaultConfig, LatencyStat, LinkMatrix, Liveness, NetFaultKind,
    NetFaultPlan, PeerWireStats, SendLost, Transport, TransportRecvError, WorkerMsg,
};

use crate::session::{RecvCursor, SendBuffer, ACK_EVERY};
use crate::wire;

/// First reconnect backoff; doubles per failed attempt up to
/// [`RESUME_BACKOFF_MAX`].
const RESUME_BACKOFF_START: Duration = Duration::from_millis(25);
/// Backoff ceiling between reconnect attempts.
const RESUME_BACKOFF_MAX: Duration = Duration::from_millis(400);
/// Read timeout on the resume handshake ack, so a stopped (SIGSTOP) or
/// wedged worker cannot block the controller past one attempt.
const RESUME_ACK_TIMEOUT: Duration = Duration::from_millis(300);

/// Transport knobs (cadence, staleness, resume window, probe sizing).
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Worker heartbeat cadence (carried in the handshake).
    pub heartbeat: Duration,
    /// Heartbeats a worker may miss before its socket is severed and the
    /// connection enters the resume path.
    pub stale_after_beats: u32,
    /// How long a severed connection may keep trying to resume before it
    /// is declared dead (quarantine + lineage replay take over).
    pub reconnect_window: Duration,
    /// Ballast bytes per startup bandwidth probe (per direction).
    pub probe_bytes: u64,
    /// How long to wait for each probe echo before giving up on the pair
    /// (its matrix entry falls back to the controller↔worker estimate).
    pub probe_timeout: Duration,
    /// How long to wait for a spawned `grout-workerd` to announce its
    /// listen address.
    pub spawn_timeout: Duration,
    /// Deterministic network chaos to inject below the session layer
    /// (only [`NetFaultKind::Sever`] and [`NetFaultKind::Partition`] act
    /// on a real socket; drop/duplicate/delay are modeled by the
    /// in-process transport).
    pub net_faults: NetFaultPlan,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            heartbeat: Duration::from_millis(100),
            stale_after_beats: 10,
            reconnect_window: Duration::from_secs(2),
            probe_bytes: 1 << 20,
            probe_timeout: Duration::from_secs(5),
            spawn_timeout: Duration::from_secs(10),
            net_faults: NetFaultPlan::none(),
        }
    }
}

impl TcpConfig {
    /// Derives the timing knobs from the planner's [`FaultConfig`] so
    /// `--heartbeat-ms` / `--stale-after` / `--reconnect-window-ms` tune
    /// one surface for both deployments.
    pub fn from_fault_config(fc: &FaultConfig) -> Self {
        TcpConfig {
            heartbeat: Duration::from_millis(fc.heartbeat_ms.max(1) as u64),
            stale_after_beats: fc.stale_after_beats.max(1),
            reconnect_window: Duration::from_nanos(fc.reconnect_window.0),
            ..TcpConfig::default()
        }
    }
}

/// Per-connection wire counters and clock state, shared between the
/// controller thread (sends, snapshots) and the reader thread (receives,
/// clock-sync frames).
#[derive(Default)]
struct ConnStats {
    frames_sent: AtomicU64,
    bytes_sent: AtomicU64,
    frames_recv: AtomicU64,
    bytes_recv: AtomicU64,
    telemetry_batches: AtomicU64,
    telemetry_spans: AtomicU64,
    telemetry_backlog: AtomicU64,
    resumes: AtomicU64,
    /// Heartbeat RTT histogram + running clock-offset estimate, both fed
    /// by the worker's clock samples.
    clock: Mutex<(LatencyStat, ClockSync)>,
}

/// Everything about one connection that the reader thread shares with the
/// controller thread.
struct ConnShared {
    /// Session-level liveness: false once the connection is definitively
    /// dead (clean Leave, blown resume window, lost worker state). Never
    /// comes back except through [`Transport::reconnect`].
    open: AtomicBool,
    /// Socket-level liveness: flipped off by the reader on EOF/error and
    /// back on by a successful resume.
    link_up: AtomicBool,
    /// The worker announced a clean departure ([`WorkerMsg::Leave`]); no
    /// resume will be attempted.
    departed: AtomicBool,
    /// Stamped by the reader thread on every inbound frame.
    last_seen: Mutex<Instant>,
    /// Write half, shared with the reader thread (clock-pong and
    /// session-ack replies must serialize with plan traffic). `None` once
    /// severed or shut down.
    writer: Mutex<Option<TcpStream>>,
    /// Outbound reliable frames awaiting cumulative ack (v4 only).
    send_buf: Mutex<SendBuffer>,
    /// Inbound reliable-frame dedupe cursor (v4 only).
    recv_cursor: Mutex<RecvCursor>,
    stats: ConnStats,
}

impl ConnShared {
    fn fresh() -> Self {
        ConnShared {
            open: AtomicBool::new(true),
            link_up: AtomicBool::new(true),
            departed: AtomicBool::new(false),
            last_seen: Mutex::new(Instant::now()),
            writer: Mutex::new(None),
            send_buf: Mutex::new(SendBuffer::default()),
            recv_cursor: Mutex::new(RecvCursor::new()),
            stats: ConnStats::default(),
        }
    }

    fn count_write(&self, frame_len: usize) {
        self.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_sent
            .fetch_add(frame_len as u64 + 4, Ordering::Relaxed);
    }
}

/// Reconnect-loop state of a severed connection.
struct Resuming {
    /// Past this instant the session is declared dead.
    deadline: Instant,
    /// Earliest instant for the next dial attempt.
    next_attempt: Instant,
    /// Current backoff between attempts.
    backoff: Duration,
}

struct Conn {
    shared: Arc<ConnShared>,
    reader: Option<JoinHandle<()>>,
    /// The `grout-workerd` child when this transport spawned it.
    child: Option<Child>,
    /// The worker's announced wire version (version-gated traffic is
    /// skipped for older peers).
    peer_version: u16,
    /// The worker's listen address, kept for resume re-dials and rejoin.
    addr: String,
    /// `Some` while the connection is severed and retrying.
    resuming: Option<Resuming>,
    /// Logical count of reliable control frames sent — the deterministic
    /// key for [`NetFaultPlan`] injection (retransmits and acks are not
    /// counted, so injection points never shift when a fault fires).
    ctrl_frames: u64,
    /// Injected partition: reconnect attempts are suppressed until this
    /// instant.
    partition_until: Option<Instant>,
}

/// The controller-side TCP transport; plug into
/// [`grout_core::RuntimeBuilder::build_with_transport`] (or use
/// [`crate::TcpExt::tcp`] which does it for you).
pub struct TcpTransport {
    conns: Vec<Conn>,
    from_workers: Receiver<WorkerMsg>,
    /// Kept alive to clone into reader threads spawned on resume/rejoin;
    /// also the injection point for the probe round.
    to_controller: Sender<WorkerMsg>,
    failures: Vec<(usize, String)>,
    measured: Option<LinkMatrix>,
    stale_after: Duration,
    reconnect_window: Duration,
    heartbeat: Duration,
    net_faults: NetFaultPlan,
    /// All worker listen addresses (re-sent in every hello).
    peer_addrs: Vec<String>,
    /// Identifies this controller instance to workers; a resume hello
    /// carrying the same id revives the worker's parked session.
    session_id: u64,
}

impl TcpTransport {
    /// Connects to `addrs[i]` as worker `i`, performs the handshake, runs
    /// the bandwidth-probe round and returns the ready mesh. A worker that
    /// cannot be reached is recorded as a spawn failure (degraded start)
    /// rather than failing construction; the runtime quarantines it.
    ///
    /// `children[i]`, when given, is the spawned `grout-workerd` process
    /// backing worker `i`; the transport owns and reaps it.
    pub fn connect(addrs: &[String], mut children: Vec<Option<Child>>, cfg: &TcpConfig) -> Self {
        children.resize_with(addrs.len(), || None);
        let (to_controller, from_workers) = unbounded::<WorkerMsg>();
        let session_id = monotonic_ns() ^ (std::process::id() as u64) << 32;
        let mut failures = Vec::new();
        let mut conns = Vec::with_capacity(addrs.len());
        for (i, addr) in addrs.iter().enumerate() {
            let shared = Arc::new(ConnShared::fresh());
            let child = children[i].take();
            match Self::adopt(i, addr, addrs, cfg.heartbeat, session_id, None) {
                Ok((stream, ack)) => {
                    *shared.writer.lock().expect("writer lock") =
                        Some(stream.try_clone().expect("clone TCP write half"));
                    let reader = spawn_reader(
                        i,
                        stream,
                        to_controller.clone(),
                        Arc::clone(&shared),
                        ack.version >= 4,
                    );
                    conns.push(Conn {
                        shared,
                        reader: Some(reader),
                        child,
                        peer_version: ack.version,
                        addr: addr.clone(),
                        resuming: None,
                        ctrl_frames: 0,
                        partition_until: None,
                    });
                }
                Err(e) => {
                    shared.open.store(false, Ordering::SeqCst);
                    shared.link_up.store(false, Ordering::SeqCst);
                    failures.push((i, e.to_string()));
                    conns.push(Conn {
                        shared,
                        reader: None,
                        child,
                        peer_version: wire::WIRE_VERSION,
                        addr: addr.clone(),
                        resuming: None,
                        ctrl_frames: 0,
                        partition_until: None,
                    });
                }
            }
        }
        let mut t = TcpTransport {
            conns,
            from_workers,
            to_controller,
            failures,
            measured: None,
            stale_after: cfg.heartbeat * cfg.stale_after_beats,
            reconnect_window: cfg.reconnect_window,
            heartbeat: cfg.heartbeat,
            net_faults: cfg.net_faults.clone(),
            peer_addrs: addrs.to_vec(),
            session_id,
        };
        t.measured = Some(t.probe_round(cfg));
        t
    }

    /// Dial + handshake one worker endpoint; returns the stream and the
    /// worker's ack (version, resume outcome, cursor).
    fn adopt(
        index: usize,
        addr: &str,
        peers: &[String],
        heartbeat: Duration,
        session_id: u64,
        resume: Option<u64>,
    ) -> Result<(TcpStream, wire::WorkerAck), wire::WireError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(RESUME_ACK_TIMEOUT))?;
        wire::write_frame(
            &mut stream,
            &wire::encode_hello(&wire::Hello::Controller {
                index,
                total: peers.len(),
                heartbeat_ms: heartbeat.as_millis() as u32,
                peers: peers.to_vec(),
                session_id,
                resume,
            }),
        )?;
        let ack = wire::read_frame(&mut stream)?
            .ok_or_else(|| wire::WireError::Handshake("worker closed during handshake".into()))?;
        let ack = wire::decode_ack(&ack)?;
        if ack.index != index {
            return Err(wire::WireError::Handshake(format!(
                "worker acked index {}, expected {index}",
                ack.index
            )));
        }
        stream.set_read_timeout(None)?;
        Ok((stream, ack))
    }

    fn v4(&self, w: usize) -> bool {
        self.conns[w].peer_version >= 4
    }

    /// Severs the socket of worker `w` (if any), joins its reader thread
    /// so the receive cursor is quiesced, and enters the resuming state.
    fn sever(&mut self, w: usize) {
        {
            let mut guard = self.conns[w].shared.writer.lock().expect("writer lock");
            if let Some(s) = guard.as_mut() {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            *guard = None;
        }
        self.conns[w].shared.link_up.store(false, Ordering::SeqCst);
        if let Some(j) = self.conns[w].reader.take() {
            let _ = j.join();
        }
        self.enter_resuming(w);
    }

    fn enter_resuming(&mut self, w: usize) {
        if self.conns[w].resuming.is_none() {
            let now = Instant::now();
            self.conns[w].resuming = Some(Resuming {
                deadline: now + self.reconnect_window,
                next_attempt: now,
                backoff: RESUME_BACKOFF_START,
            });
        }
    }

    fn mark_dead(&mut self, w: usize) {
        self.conns[w].shared.open.store(false, Ordering::SeqCst);
        self.conns[w].shared.link_up.store(false, Ordering::SeqCst);
        *self.conns[w].shared.writer.lock().expect("writer lock") = None;
        self.conns[w].resuming = None;
        if let Some(j) = self.conns[w].reader.take() {
            let _ = j.join();
        }
    }

    /// Drives the reconnect loop of a resuming connection. Returns the
    /// liveness the runtime should see right now.
    fn try_resume(&mut self, w: usize) -> Liveness {
        let now = Instant::now();
        let Some(r) = self.conns[w].resuming.as_ref() else {
            return Liveness::Alive;
        };
        let deadline = r.deadline;
        if let Some(until) = self.conns[w].partition_until {
            if now < until {
                // Injected partition: the peer is deterministically
                // unreachable; don't burn dial attempts.
                if now >= deadline {
                    self.mark_dead(w);
                    return Liveness::Dead;
                }
                return Liveness::Suspect;
            }
            self.conns[w].partition_until = None;
        }
        if now
            < self.conns[w]
                .resuming
                .as_ref()
                .expect("resuming")
                .next_attempt
        {
            return Liveness::Suspect;
        }
        match self.dial_resume(w) {
            Ok(()) => Liveness::Alive,
            Err(ResumeFail::Terminal(reason)) => {
                eprintln!("[grout-net] worker {w}: session unresumable ({reason})");
                self.mark_dead(w);
                Liveness::Dead
            }
            Err(ResumeFail::Retry) => {
                let now = Instant::now();
                if now >= deadline {
                    self.mark_dead(w);
                    return Liveness::Dead;
                }
                let r = self.conns[w].resuming.as_mut().expect("resuming");
                r.next_attempt = now + r.backoff;
                r.backoff = (r.backoff * 2).min(RESUME_BACKOFF_MAX);
                Liveness::Suspect
            }
        }
    }

    /// One resume attempt: dial, resume handshake, replay the unacked
    /// tail, reinstall writer + reader.
    fn dial_resume(&mut self, w: usize) -> Result<(), ResumeFail> {
        let addr = self.conns[w].addr.clone();
        let cursor = {
            let rc = self.conns[w].shared.recv_cursor.lock().expect("cursor");
            rc.cursor()
        };
        let (stream, ack) = Self::adopt(
            w,
            &addr,
            &self.peer_addrs,
            self.heartbeat,
            self.session_id,
            Some(cursor),
        )
        .map_err(|e| {
            let _ = e;
            ResumeFail::Retry
        })?;
        if !ack.resumed {
            return Err(ResumeFail::Terminal(
                "worker has no session state (restarted?)".into(),
            ));
        }
        // Replay everything the worker has not seen. A window that no
        // longer reaches back to the worker's cursor cannot resume
        // losslessly.
        let replay = {
            let sb = self.conns[w].shared.send_buf.lock().expect("send_buf");
            sb.replay_from(ack.cursor).ok_or_else(|| {
                ResumeFail::Terminal("send window trimmed past peer cursor".into())
            })?
        };
        let mut write_half = stream.try_clone().map_err(|e| {
            let _ = e;
            ResumeFail::Retry
        })?;
        for frame in &replay {
            wire::write_frame(&mut write_half, frame).map_err(|e| {
                let _ = e;
                ResumeFail::Retry
            })?;
            self.conns[w].shared.count_write(frame.len());
        }
        let shared = &self.conns[w].shared;
        *shared.writer.lock().expect("writer lock") = Some(write_half);
        *shared.last_seen.lock().expect("last_seen lock") = Instant::now();
        shared.link_up.store(true, Ordering::SeqCst);
        shared.stats.resumes.fetch_add(1, Ordering::Relaxed);
        let reader = spawn_reader(
            w,
            stream,
            self.to_controller.clone(),
            Arc::clone(shared),
            true,
        );
        self.conns[w].reader = Some(reader);
        self.conns[w].resuming = None;
        Ok(())
    }

    /// The startup probe round. Controller↔worker pairs are timed
    /// directly; worker↔worker pairs ride [`CtrlMsg::ProbePeer`] and come
    /// back as [`WorkerMsg::ProbeReport`]s. Bandwidth is `2·bytes/rtt`
    /// (ballast travels both directions). Unreachable pairs keep a
    /// conservative floor so min-transfer-time never divides by zero.
    fn probe_round(&mut self, cfg: &TcpConfig) -> LinkMatrix {
        let n = self.conns.len();
        let floor = 1e6; // 1 MB/s: pessimistic but non-zero.
        let mut bw = vec![vec![floor; n + 1]; n + 1];
        let ballast = vec![0u8; cfg.probe_bytes as usize];
        let mut token = 0u64;

        // Controller <-> worker.
        for w in 0..n {
            if !self.endpoint_usable(w) {
                continue;
            }
            token += 1;
            let started = Instant::now();
            if self
                .send(
                    w,
                    CtrlMsg::Probe {
                        token,
                        payload: ballast.clone(),
                    },
                )
                .is_err()
            {
                continue;
            }
            if let Some(WorkerMsg::ProbeEcho { .. }) = self.await_probe(
                cfg.probe_timeout,
                |m| matches!(m, WorkerMsg::ProbeEcho { token: t, .. } if *t == token),
            ) {
                let elapsed = started.elapsed().as_secs_f64().max(1e-9);
                let bps = (2 * cfg.probe_bytes) as f64 / elapsed;
                bw[0][w + 1] = bps;
                bw[w + 1][0] = bps;
            }
        }

        // Worker <-> worker (each ordered pair measured once, symmetric).
        for i in 0..n {
            for j in (i + 1)..n {
                if !self.endpoint_usable(i) || !self.endpoint_usable(j) {
                    continue;
                }
                token += 1;
                if self
                    .send(
                        i,
                        CtrlMsg::ProbePeer {
                            token,
                            to: j,
                            bytes: cfg.probe_bytes,
                        },
                    )
                    .is_err()
                {
                    continue;
                }
                if let Some(WorkerMsg::ProbeReport {
                    bytes, elapsed_ns, ..
                }) = self.await_probe(cfg.probe_timeout, |m| {
                    matches!(m, WorkerMsg::ProbeReport { worker, to, .. } if *worker == i && *to == j)
                }) {
                    let elapsed = (elapsed_ns as f64 / 1e9).max(1e-9);
                    let bps = (2 * bytes) as f64 / elapsed;
                    bw[i + 1][j + 1] = bps;
                    bw[j + 1][i + 1] = bps;
                }
            }
        }
        LinkMatrix::new(bw)
    }

    /// Waits for the probe reply matching `pred`; any other traffic that
    /// arrives meanwhile would be plan traffic — impossible during the
    /// startup round — so it is dropped with a breadcrumb.
    fn await_probe(
        &mut self,
        timeout: Duration,
        pred: impl Fn(&WorkerMsg) -> bool,
    ) -> Option<WorkerMsg> {
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.checked_duration_since(Instant::now())?;
            match self.from_workers.recv_timeout(left) {
                Ok(m) if pred(&m) => return Some(m),
                Ok(_) => {} // stale echo from a slower pair; ignore
                Err(_) => return None,
            }
        }
    }

    fn endpoint_usable(&self, w: usize) -> bool {
        let sh = &self.conns[w].shared;
        sh.writer.lock().expect("writer lock").is_some() && sh.open.load(Ordering::SeqCst)
    }

    /// Pid of the spawned `grout-workerd` backing worker `w`, when this
    /// transport spawned one (chaos harness: real SIGKILL targets).
    pub fn child_pid(&self, w: usize) -> Option<u32> {
        self.conns
            .get(w)
            .and_then(|c| c.child.as_ref())
            .map(|c| c.id())
    }

    /// Pids of all spawned workers, by index (`None` = connected, not
    /// spawned).
    pub fn child_pids(&self) -> Vec<Option<u32>> {
        (0..self.conns.len()).map(|w| self.child_pid(w)).collect()
    }

    /// Forget the spawned child backing worker `w` without reaping it —
    /// the chaos harness uses this after it has killed and restarted the
    /// process itself.
    pub fn forget_child(&mut self, w: usize) -> Option<Child> {
        self.conns.get_mut(w).and_then(|c| c.child.take())
    }
}

/// Why a resume attempt failed.
enum ResumeFail {
    /// Transient — retry with backoff inside the window.
    Retry,
    /// The session can never resume (worker restarted fresh, replay
    /// window trimmed); go straight to dead.
    Terminal(String),
}

/// Handles one logical (post-envelope) inbound payload. Returns false
/// when the reader should stop.
fn handle_payload(
    worker: usize,
    inner: Vec<u8>,
    v4: bool,
    out: &Sender<WorkerMsg>,
    shared: &ConnShared,
) -> bool {
    // Clock-sync + session frames live above the message tag space; peek
    // the tag and keep them inside the transport.
    match inner.first().copied() {
        Some(wire::CLOCK_PING_TAG) => {
            let t2 = monotonic_ns();
            if let Ok((_, t1)) = wire::decode_clock_ping(&inner) {
                let pong = wire::encode_clock_pong(t1, t2);
                let framed = if v4 {
                    wire::seal_ephemeral(&pong)
                } else {
                    pong
                };
                let mut w = shared.writer.lock().expect("writer lock");
                if let Some(s) = w.as_mut() {
                    if wire::write_frame(s, &framed).is_ok() {
                        shared.count_write(framed.len());
                    }
                }
            }
            return true;
        }
        Some(wire::CLOCK_SAMPLE_TAG) => {
            if let Ok((_, offset, rtt)) = wire::decode_clock_sample(&inner) {
                let mut clock = shared.stats.clock.lock().expect("clock lock");
                clock.0.record(rtt);
                clock.1.observe(monotonic_ns(), offset, rtt);
            }
            return true;
        }
        Some(wire::SESSION_ACK_TAG) => {
            if let Ok(cursor) = wire::decode_session_ack(&inner) {
                shared.send_buf.lock().expect("send_buf").ack(cursor);
            }
            return true;
        }
        _ => {}
    }
    match wire::decode_worker(&inner) {
        Ok(WorkerMsg::Heartbeat { .. }) => true, // liveness only
        Ok(WorkerMsg::Leave { .. }) => {
            // Clean departure: definitive — no resume, no staleness
            // ambiguity. Forward so the runtime re-plans its work.
            shared.departed.store(true, Ordering::SeqCst);
            shared.open.store(false, Ordering::SeqCst);
            shared.link_up.store(false, Ordering::SeqCst);
            let _ = out.send(WorkerMsg::Leave { worker });
            false
        }
        Ok(msg) => {
            if let WorkerMsg::Telemetry { backlog, spans, .. } = &msg {
                shared
                    .stats
                    .telemetry_batches
                    .fetch_add(1, Ordering::Relaxed);
                shared
                    .stats
                    .telemetry_spans
                    .fetch_add(spans.len() as u64, Ordering::Relaxed);
                shared
                    .stats
                    .telemetry_backlog
                    .store(*backlog, Ordering::Relaxed);
            }
            out.send(msg).is_ok()
        }
        Err(e) => {
            eprintln!("[grout-net] worker {worker}: {e}; closing");
            shared.link_up.store(false, Ordering::SeqCst);
            if !v4 {
                shared.open.store(false, Ordering::SeqCst);
            }
            false
        }
    }
}

fn spawn_reader(
    worker: usize,
    mut stream: TcpStream,
    out: Sender<WorkerMsg>,
    shared: Arc<ConnShared>,
    v4: bool,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("grout-net-rx-{worker}"))
        .spawn(move || loop {
            match wire::read_frame(&mut stream) {
                Ok(Some(raw)) => {
                    *shared.last_seen.lock().expect("last_seen lock") = Instant::now();
                    shared.stats.frames_recv.fetch_add(1, Ordering::Relaxed);
                    shared
                        .stats
                        .bytes_recv
                        .fetch_add(raw.len() as u64 + 4, Ordering::Relaxed);
                    if !v4 {
                        if !handle_payload(worker, raw, false, &out, &shared) {
                            return;
                        }
                        continue;
                    }
                    match wire::open_envelope(raw) {
                        Ok(wire::Envelope::Ephemeral(inner)) => {
                            if !handle_payload(worker, inner, true, &out, &shared) {
                                return;
                            }
                        }
                        Ok(wire::Envelope::Reliable { seq, payload }) => {
                            let (ready, ack_due, cursor) = {
                                let mut rc = shared.recv_cursor.lock().expect("cursor");
                                let before = rc.cursor();
                                let ready = rc.accept(seq, payload);
                                let after = rc.cursor();
                                (ready, before / ACK_EVERY != after / ACK_EVERY, after)
                            };
                            for p in ready {
                                if !handle_payload(worker, p, true, &out, &shared) {
                                    return;
                                }
                            }
                            if ack_due {
                                let framed =
                                    wire::seal_ephemeral(&wire::encode_session_ack(cursor));
                                let mut w = shared.writer.lock().expect("writer lock");
                                if let Some(s) = w.as_mut() {
                                    if wire::write_frame(s, &framed).is_ok() {
                                        shared.count_write(framed.len());
                                    }
                                }
                            }
                        }
                        Err(e) => {
                            eprintln!("[grout-net] worker {worker}: bad envelope: {e}");
                            shared.link_up.store(false, Ordering::SeqCst);
                            return;
                        }
                    }
                }
                Ok(None) | Err(_) => {
                    shared.link_up.store(false, Ordering::SeqCst);
                    if !v4 {
                        shared.open.store(false, Ordering::SeqCst);
                    }
                    return;
                }
            }
        })
        .expect("spawn reader thread")
}

impl Transport for TcpTransport {
    fn workers(&self) -> usize {
        self.conns.len()
    }

    fn kind(&self) -> &'static str {
        "tcp"
    }

    fn send(&mut self, worker: usize, msg: CtrlMsg) -> Result<(), SendLost> {
        let sh = &self.conns[worker].shared;
        if sh.departed.load(Ordering::SeqCst) || !sh.open.load(Ordering::SeqCst) {
            return Err(SendLost);
        }
        // Version-gated traffic silently degrades against an older
        // worker: a v1 peer can run every plan, it just cannot stream
        // telemetry; a v2 peer cannot receive log-shipping frames (which
        // only ever target a standby controller anyway).
        if matches!(msg, CtrlMsg::Observe { .. }) && self.conns[worker].peer_version < 2 {
            return Ok(());
        }
        if matches!(msg, CtrlMsg::ShipInit { .. } | CtrlMsg::ShipOp { .. })
            && self.conns[worker].peer_version < 3
        {
            return Ok(());
        }
        let payload = wire::encode_ctrl(&msg);
        if !self.v4(worker) {
            // Legacy path: bare frame, no session layer, socket death is
            // definitive.
            if !self.endpoint_usable(worker) {
                return Err(SendLost);
            }
            let wrote = {
                let mut guard = self.conns[worker]
                    .shared
                    .writer
                    .lock()
                    .expect("writer lock");
                let stream = guard.as_mut().expect("usable");
                wire::write_frame(stream, &payload)
            };
            if wrote.is_err() {
                self.conns[worker]
                    .shared
                    .open
                    .store(false, Ordering::SeqCst);
                return Err(SendLost);
            }
            self.conns[worker].shared.count_write(payload.len());
            return Ok(());
        }

        // Deterministic chaos, keyed on the logical frame index so
        // injection points never shift when an earlier fault fires.
        let idx = self.conns[worker].ctrl_frames;
        self.conns[worker].ctrl_frames += 1;
        let mut severed = false;
        let mut partition_frames = None;
        for f in self.net_faults.at(worker, idx) {
            match f {
                NetFaultKind::Sever => severed = true,
                NetFaultKind::Partition { frames } => {
                    severed = true;
                    partition_frames = Some(frames);
                }
                // Drop/duplicate/delay need a lossy medium to model; TCP
                // itself is lossless, so only the in-process transport
                // injects them.
                NetFaultKind::DropFrame
                | NetFaultKind::DupFrame
                | NetFaultKind::DelayFrame { .. } => {}
            }
        }
        if severed && self.conns[worker].resuming.is_none() {
            self.sever(worker);
            if let Some(frames) = partition_frames {
                self.conns[worker].partition_until =
                    Some(Instant::now() + self.heartbeat * frames as u32);
            }
        }

        // Seal + buffer first: once in the send window the frame survives
        // any socket fate until cumulatively acked.
        let frame = {
            let mut sb = self.conns[worker].shared.send_buf.lock().expect("send_buf");
            sb.seal(&payload)
        };
        if self.conns[worker].resuming.is_some() {
            // Try to come back right now — an injected sever against a
            // live worker resumes on the first attempt and stays
            // invisible to the planner.
            if self.try_resume(worker) == Liveness::Dead {
                return Err(SendLost);
            }
            // Resumed: the replay already carried this frame. Still
            // resuming: it will. Either way it is not lost.
            return Ok(());
        }
        let wrote = {
            let mut guard = self.conns[worker]
                .shared
                .writer
                .lock()
                .expect("writer lock");
            match guard.as_mut() {
                Some(stream) => wire::write_frame(stream, &frame),
                None => Err(wire::WireError::Handshake("link down".into())),
            }
        };
        match wrote {
            Ok(()) => {
                self.conns[worker].shared.count_write(frame.len());
                Ok(())
            }
            Err(_) => {
                // Socket died under us: sever cleanly and attempt an
                // immediate resume; the frame is already buffered.
                self.sever(worker);
                if self.try_resume(worker) == Liveness::Dead {
                    return Err(SendLost);
                }
                Ok(())
            }
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<WorkerMsg, TransportRecvError> {
        self.from_workers
            .recv_timeout(timeout)
            .map_err(|e| match e {
                RecvTimeoutError::Timeout => TransportRecvError::Timeout,
                RecvTimeoutError::Disconnected => TransportRecvError::Disconnected,
            })
    }

    fn try_recv(&mut self) -> Option<WorkerMsg> {
        self.from_workers.try_recv().ok()
    }

    fn is_alive(&mut self, worker: usize) -> bool {
        self.liveness(worker) != Liveness::Dead
    }

    fn liveness(&mut self, worker: usize) -> Liveness {
        let sh = &self.conns[worker].shared;
        if sh.departed.load(Ordering::SeqCst) || !sh.open.load(Ordering::SeqCst) {
            return Liveness::Dead;
        }
        if !self.v4(worker) {
            // Legacy liveness: socket + staleness, dead is dead.
            let up = sh.link_up.load(Ordering::SeqCst)
                && sh.writer.lock().expect("writer lock").is_some()
                && sh.last_seen.lock().expect("last_seen lock").elapsed() < self.stale_after;
            return if up { Liveness::Alive } else { Liveness::Dead };
        }
        if self.conns[worker].resuming.is_some() {
            return self.try_resume(worker);
        }
        let link_down =
            !sh.link_up.load(Ordering::SeqCst) || sh.writer.lock().expect("writer lock").is_none();
        let stale = sh.last_seen.lock().expect("last_seen lock").elapsed() >= self.stale_after;
        if link_down {
            // EOF/error was already detected by the reader; join it and
            // start resuming.
            self.sever(worker);
            return self.try_resume(worker);
        }
        if stale {
            // Wedged-but-connected (SIGSTOP, partition): sever the silent
            // socket and re-dial — a worker that wakes inside the window
            // resumes, one that doesn't goes to quarantine.
            self.sever(worker);
            return self.try_resume(worker);
        }
        Liveness::Alive
    }

    fn reconnect(&mut self, worker: usize) -> bool {
        if self.conns[worker].shared.open.load(Ordering::SeqCst) {
            return true;
        }
        // Fresh adoption: the previous session is gone for good, so reset
        // the session state before dialing (resume: None tells the worker
        // to discard any parked engine and start clean).
        let addr = self.conns[worker].addr.clone();
        match Self::adopt(
            worker,
            &addr,
            &self.peer_addrs,
            self.heartbeat,
            self.session_id,
            None,
        ) {
            Ok((stream, ack)) => {
                if let Some(j) = self.conns[worker].reader.take() {
                    let _ = j.join();
                }
                let shared = Arc::new(ConnShared::fresh());
                *shared.writer.lock().expect("writer lock") =
                    Some(stream.try_clone().expect("clone TCP write half"));
                let reader = spawn_reader(
                    worker,
                    stream,
                    self.to_controller.clone(),
                    Arc::clone(&shared),
                    ack.version >= 4,
                );
                self.conns[worker].shared = shared;
                self.conns[worker].reader = Some(reader);
                self.conns[worker].peer_version = ack.version;
                self.conns[worker].resuming = None;
                self.conns[worker].partition_until = None;
                true
            }
            Err(e) => {
                eprintln!("[grout-net] worker {worker}: rejoin failed: {e}");
                false
            }
        }
    }

    fn shutdown(&mut self, worker: usize) {
        // Best-effort clean shutdown frame; the socket may already be dead.
        let payload = wire::encode_ctrl(&CtrlMsg::Shutdown);
        let framed = if self.v4(worker) {
            let mut sb = self.conns[worker].shared.send_buf.lock().expect("send_buf");
            sb.seal(&payload)
        } else {
            payload
        };
        {
            let mut guard = self.conns[worker]
                .shared
                .writer
                .lock()
                .expect("writer lock");
            if let Some(stream) = guard.as_mut() {
                let _ = wire::write_frame(stream, &framed);
                let _ = stream.flush();
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
            *guard = None;
        }
        self.conns[worker]
            .shared
            .open
            .store(false, Ordering::SeqCst);
        self.conns[worker]
            .shared
            .link_up
            .store(false, Ordering::SeqCst);
        self.conns[worker].resuming = None;
        if let Some(j) = self.conns[worker].reader.take() {
            let _ = j.join();
        }
        if let Some(mut child) = self.conns[worker].child.take() {
            // Bounded reap: give the process a moment to exit cleanly,
            // then kill. No zombies either way.
            let deadline = Instant::now() + Duration::from_secs(2);
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            }
        }
    }

    fn spawn_failures(&self) -> &[(usize, String)] {
        &self.failures
    }

    fn measured_links(&self) -> Option<&LinkMatrix> {
        self.measured.as_ref()
    }

    fn clock_offset_ns(&mut self, worker: usize) -> i64 {
        let clock = self.conns[worker]
            .shared
            .stats
            .clock
            .lock()
            .expect("clock lock");
        clock.1.offset_at(monotonic_ns())
    }

    fn wire_stats(&self) -> Vec<PeerWireStats> {
        self.conns
            .iter()
            .map(|c| {
                let clock = c.shared.stats.clock.lock().expect("clock lock");
                PeerWireStats {
                    frames_sent: c.shared.stats.frames_sent.load(Ordering::Relaxed),
                    bytes_sent: c.shared.stats.bytes_sent.load(Ordering::Relaxed),
                    frames_recv: c.shared.stats.frames_recv.load(Ordering::Relaxed),
                    bytes_recv: c.shared.stats.bytes_recv.load(Ordering::Relaxed),
                    hb_rtt: clock.0,
                    clock_offset_ns: clock.1.offset_at(monotonic_ns()),
                    telemetry_batches: c.shared.stats.telemetry_batches.load(Ordering::Relaxed),
                    telemetry_spans: c.shared.stats.telemetry_spans.load(Ordering::Relaxed),
                    telemetry_backlog: c.shared.stats.telemetry_backlog.load(Ordering::Relaxed),
                    resumes: c.shared.stats.resumes.load(Ordering::Relaxed),
                }
            })
            .collect()
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        for w in 0..self.conns.len() {
            self.shutdown(w);
        }
    }
}
