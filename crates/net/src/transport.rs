//! The controller side of the TCP mesh: [`TcpTransport`].
//!
//! One socket per worker. A reader thread per socket decodes
//! [`WorkerMsg`] frames into a single merged queue (mirroring the
//! crossbeam mesh of the in-process transport), swallows heartbeats after
//! stamping a shared last-seen instant, and flips a shared `open` flag on
//! EOF or socket error. Liveness combines both signals: a worker is dead
//! once its socket closed *or* its heartbeats went stale
//! ([`TcpConfig::stale_after_beats`] × cadence), so a SIGKILLed process is
//! detected by EOF within milliseconds while a wedged-but-connected one is
//! caught by staleness.
//!
//! Construction runs the startup bandwidth-probe round of the paper's
//! min-transfer-time policy: timed ballast echoes controller↔worker and
//! worker↔worker populate a measured [`LinkMatrix`] that
//! [`grout_core::LocalRuntime`] hands to the planner in place of the
//! uniform model.

use std::io::Write as _;
use std::net::TcpStream;
use std::process::Child;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use grout_core::{
    monotonic_ns, ClockSync, CtrlMsg, LatencyStat, LinkMatrix, PeerWireStats, SendLost, Transport,
    TransportRecvError, WorkerMsg,
};

use crate::wire;

/// Transport knobs (cadence, staleness, probe sizing).
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Worker heartbeat cadence (carried in the handshake).
    pub heartbeat: Duration,
    /// Heartbeats a worker may miss before being declared dead.
    pub stale_after_beats: u32,
    /// Ballast bytes per startup bandwidth probe (per direction).
    pub probe_bytes: u64,
    /// How long to wait for each probe echo before giving up on the pair
    /// (its matrix entry falls back to the controller↔worker estimate).
    pub probe_timeout: Duration,
    /// How long to wait for a spawned `grout-workerd` to announce its
    /// listen address.
    pub spawn_timeout: Duration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            heartbeat: Duration::from_millis(100),
            stale_after_beats: 10,
            probe_bytes: 1 << 20,
            probe_timeout: Duration::from_secs(5),
            spawn_timeout: Duration::from_secs(10),
        }
    }
}

/// Per-connection wire counters and clock state, shared between the
/// controller thread (sends, snapshots) and the reader thread (receives,
/// clock-sync frames).
#[derive(Default)]
struct ConnStats {
    frames_sent: AtomicU64,
    bytes_sent: AtomicU64,
    frames_recv: AtomicU64,
    bytes_recv: AtomicU64,
    telemetry_batches: AtomicU64,
    telemetry_spans: AtomicU64,
    telemetry_backlog: AtomicU64,
    /// Heartbeat RTT histogram + running clock-offset estimate, both fed
    /// by the worker's clock samples.
    clock: Mutex<(LatencyStat, ClockSync)>,
}

struct Conn {
    /// Write half, shared with the reader thread (clock-pong replies must
    /// serialize with plan traffic — two raw handles would interleave
    /// frames). `None` once shut down.
    writer: Arc<Mutex<Option<TcpStream>>>,
    reader: Option<JoinHandle<()>>,
    /// Flipped off by the reader thread on EOF/error.
    open: Arc<AtomicBool>,
    /// Stamped by the reader thread on every inbound frame.
    last_seen: Arc<Mutex<Instant>>,
    /// The `grout-workerd` child when this transport spawned it.
    child: Option<Child>,
    /// The worker's announced wire version (v2-only traffic is skipped
    /// for older peers).
    peer_version: u16,
    stats: Arc<ConnStats>,
}

/// The controller-side TCP transport; plug into
/// [`grout_core::RuntimeBuilder::build_with_transport`] (or use
/// [`crate::TcpExt::tcp`] which does it for you).
pub struct TcpTransport {
    conns: Vec<Conn>,
    from_workers: Receiver<WorkerMsg>,
    /// Kept alive so reader threads spawned later could clone it; also the
    /// injection point for the probe round.
    _to_controller: Sender<WorkerMsg>,
    failures: Vec<(usize, String)>,
    measured: Option<LinkMatrix>,
    stale_after: Duration,
}

impl TcpTransport {
    /// Connects to `addrs[i]` as worker `i`, performs the handshake, runs
    /// the bandwidth-probe round and returns the ready mesh. A worker that
    /// cannot be reached is recorded as a spawn failure (degraded start)
    /// rather than failing construction; the runtime quarantines it.
    ///
    /// `children[i]`, when given, is the spawned `grout-workerd` process
    /// backing worker `i`; the transport owns and reaps it.
    pub fn connect(addrs: &[String], mut children: Vec<Option<Child>>, cfg: &TcpConfig) -> Self {
        children.resize_with(addrs.len(), || None);
        let (to_controller, from_workers) = unbounded::<WorkerMsg>();
        let mut failures = Vec::new();
        let mut conns = Vec::with_capacity(addrs.len());
        for (i, addr) in addrs.iter().enumerate() {
            let open = Arc::new(AtomicBool::new(true));
            let last_seen = Arc::new(Mutex::new(Instant::now()));
            let stats = Arc::new(ConnStats::default());
            let child = children[i].take();
            match Self::adopt(i, addr, addrs, cfg) {
                Ok((stream, peer_version)) => {
                    let writer = Arc::new(Mutex::new(Some(
                        stream.try_clone().expect("clone TCP write half"),
                    )));
                    let reader = spawn_reader(
                        i,
                        stream,
                        to_controller.clone(),
                        Arc::clone(&open),
                        Arc::clone(&last_seen),
                        Arc::clone(&writer),
                        Arc::clone(&stats),
                    );
                    conns.push(Conn {
                        writer,
                        reader: Some(reader),
                        open,
                        last_seen,
                        child,
                        peer_version,
                        stats,
                    });
                }
                Err(e) => {
                    open.store(false, Ordering::SeqCst);
                    failures.push((i, e.to_string()));
                    conns.push(Conn {
                        writer: Arc::new(Mutex::new(None)),
                        reader: None,
                        open,
                        last_seen,
                        child,
                        peer_version: wire::WIRE_VERSION,
                        stats,
                    });
                }
            }
        }
        let mut t = TcpTransport {
            conns,
            from_workers,
            _to_controller: to_controller,
            failures,
            measured: None,
            stale_after: cfg.heartbeat * cfg.stale_after_beats,
        };
        t.measured = Some(t.probe_round(cfg));
        t
    }

    /// Dial + handshake one worker endpoint; returns the stream and the
    /// worker's announced wire version.
    fn adopt(
        index: usize,
        addr: &str,
        peers: &[String],
        cfg: &TcpConfig,
    ) -> Result<(TcpStream, u16), wire::WireError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        wire::write_frame(
            &mut stream,
            &wire::encode_hello(&wire::Hello::Controller {
                index,
                total: peers.len(),
                heartbeat_ms: cfg.heartbeat.as_millis() as u32,
                peers: peers.to_vec(),
            }),
        )?;
        let ack = wire::read_frame(&mut stream)?
            .ok_or_else(|| wire::WireError::Handshake("worker closed during handshake".into()))?;
        let (echoed, version) = wire::decode_ack(&ack)?;
        if echoed != index {
            return Err(wire::WireError::Handshake(format!(
                "worker acked index {echoed}, expected {index}"
            )));
        }
        Ok((stream, version))
    }

    /// The startup probe round. Controller↔worker pairs are timed
    /// directly; worker↔worker pairs ride [`CtrlMsg::ProbePeer`] and come
    /// back as [`WorkerMsg::ProbeReport`]s. Bandwidth is `2·bytes/rtt`
    /// (ballast travels both directions). Unreachable pairs keep a
    /// conservative floor so min-transfer-time never divides by zero.
    fn probe_round(&mut self, cfg: &TcpConfig) -> LinkMatrix {
        let n = self.conns.len();
        let floor = 1e6; // 1 MB/s: pessimistic but non-zero.
        let mut bw = vec![vec![floor; n + 1]; n + 1];
        let ballast = vec![0u8; cfg.probe_bytes as usize];
        let mut token = 0u64;

        // Controller <-> worker.
        for w in 0..n {
            if !self.endpoint_usable(w) {
                continue;
            }
            token += 1;
            let started = Instant::now();
            if self
                .send(
                    w,
                    CtrlMsg::Probe {
                        token,
                        payload: ballast.clone(),
                    },
                )
                .is_err()
            {
                continue;
            }
            if let Some(WorkerMsg::ProbeEcho { .. }) = self.await_probe(
                cfg.probe_timeout,
                |m| matches!(m, WorkerMsg::ProbeEcho { token: t, .. } if *t == token),
            ) {
                let elapsed = started.elapsed().as_secs_f64().max(1e-9);
                let bps = (2 * cfg.probe_bytes) as f64 / elapsed;
                bw[0][w + 1] = bps;
                bw[w + 1][0] = bps;
            }
        }

        // Worker <-> worker (each ordered pair measured once, symmetric).
        for i in 0..n {
            for j in (i + 1)..n {
                if !self.endpoint_usable(i) || !self.endpoint_usable(j) {
                    continue;
                }
                token += 1;
                if self
                    .send(
                        i,
                        CtrlMsg::ProbePeer {
                            token,
                            to: j,
                            bytes: cfg.probe_bytes,
                        },
                    )
                    .is_err()
                {
                    continue;
                }
                if let Some(WorkerMsg::ProbeReport {
                    bytes, elapsed_ns, ..
                }) = self.await_probe(cfg.probe_timeout, |m| {
                    matches!(m, WorkerMsg::ProbeReport { worker, to, .. } if *worker == i && *to == j)
                }) {
                    let elapsed = (elapsed_ns as f64 / 1e9).max(1e-9);
                    let bps = (2 * bytes) as f64 / elapsed;
                    bw[i + 1][j + 1] = bps;
                    bw[j + 1][i + 1] = bps;
                }
            }
        }
        LinkMatrix::new(bw)
    }

    /// Waits for the probe reply matching `pred`; any other traffic that
    /// arrives meanwhile would be plan traffic — impossible during the
    /// startup round — so it is dropped with a breadcrumb.
    fn await_probe(
        &mut self,
        timeout: Duration,
        pred: impl Fn(&WorkerMsg) -> bool,
    ) -> Option<WorkerMsg> {
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.checked_duration_since(Instant::now())?;
            match self.from_workers.recv_timeout(left) {
                Ok(m) if pred(&m) => return Some(m),
                Ok(_) => {} // stale echo from a slower pair; ignore
                Err(_) => return None,
            }
        }
    }

    fn endpoint_usable(&self, w: usize) -> bool {
        self.conns[w].writer.lock().expect("writer lock").is_some()
            && self.conns[w].open.load(Ordering::SeqCst)
    }

    /// Pid of the spawned `grout-workerd` backing worker `w`, when this
    /// transport spawned one (chaos harness: real SIGKILL targets).
    pub fn child_pid(&self, w: usize) -> Option<u32> {
        self.conns
            .get(w)
            .and_then(|c| c.child.as_ref())
            .map(|c| c.id())
    }

    /// Pids of all spawned workers, by index (`None` = connected, not
    /// spawned).
    pub fn child_pids(&self) -> Vec<Option<u32>> {
        (0..self.conns.len()).map(|w| self.child_pid(w)).collect()
    }
}

fn spawn_reader(
    worker: usize,
    mut stream: TcpStream,
    out: Sender<WorkerMsg>,
    open: Arc<AtomicBool>,
    last_seen: Arc<Mutex<Instant>>,
    writer: Arc<Mutex<Option<TcpStream>>>,
    stats: Arc<ConnStats>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("grout-net-rx-{worker}"))
        .spawn(move || loop {
            match wire::read_frame(&mut stream) {
                Ok(Some(payload)) => {
                    *last_seen.lock().expect("last_seen lock") = Instant::now();
                    stats.frames_recv.fetch_add(1, Ordering::Relaxed);
                    stats
                        .bytes_recv
                        .fetch_add(payload.len() as u64 + 4, Ordering::Relaxed);
                    // Clock-sync frames live above the message tag space;
                    // peek the tag and keep them inside the transport.
                    match payload.first().copied() {
                        Some(wire::CLOCK_PING_TAG) => {
                            let t2 = monotonic_ns();
                            if let Ok((_, t1)) = wire::decode_clock_ping(&payload) {
                                let pong = wire::encode_clock_pong(t1, t2);
                                let mut w = writer.lock().expect("writer lock");
                                if let Some(s) = w.as_mut() {
                                    let _ = wire::write_frame(s, &pong);
                                    stats.frames_sent.fetch_add(1, Ordering::Relaxed);
                                    stats
                                        .bytes_sent
                                        .fetch_add(pong.len() as u64 + 4, Ordering::Relaxed);
                                }
                            }
                            continue;
                        }
                        Some(wire::CLOCK_SAMPLE_TAG) => {
                            if let Ok((_, offset, rtt)) = wire::decode_clock_sample(&payload) {
                                let mut clock = stats.clock.lock().expect("clock lock");
                                clock.0.record(rtt);
                                clock.1.observe(monotonic_ns(), offset, rtt);
                            }
                            continue;
                        }
                        _ => {}
                    }
                    match wire::decode_worker(&payload) {
                        Ok(WorkerMsg::Heartbeat { .. }) => {} // liveness only
                        Ok(msg) => {
                            if let WorkerMsg::Telemetry { backlog, spans, .. } = &msg {
                                stats.telemetry_batches.fetch_add(1, Ordering::Relaxed);
                                stats
                                    .telemetry_spans
                                    .fetch_add(spans.len() as u64, Ordering::Relaxed);
                                stats.telemetry_backlog.store(*backlog, Ordering::Relaxed);
                            }
                            if out.send(msg).is_err() {
                                return; // transport dropped
                            }
                        }
                        Err(e) => {
                            eprintln!("[grout-net] worker {worker}: {e}; closing");
                            open.store(false, Ordering::SeqCst);
                            return;
                        }
                    }
                }
                Ok(None) | Err(_) => {
                    open.store(false, Ordering::SeqCst);
                    return;
                }
            }
        })
        .expect("spawn reader thread")
}

impl Transport for TcpTransport {
    fn workers(&self) -> usize {
        self.conns.len()
    }

    fn kind(&self) -> &'static str {
        "tcp"
    }

    fn send(&mut self, worker: usize, msg: CtrlMsg) -> Result<(), SendLost> {
        if !self.endpoint_usable(worker) {
            return Err(SendLost);
        }
        // Version-gated traffic silently degrades against an older
        // worker: a v1 peer can run every plan, it just cannot stream
        // telemetry; a v2 peer cannot receive log-shipping frames (which
        // only ever target a standby controller anyway).
        if matches!(msg, CtrlMsg::Observe { .. }) && self.conns[worker].peer_version < 2 {
            return Ok(());
        }
        if matches!(msg, CtrlMsg::ShipInit { .. } | CtrlMsg::ShipOp { .. })
            && self.conns[worker].peer_version < 3
        {
            return Ok(());
        }
        let payload = wire::encode_ctrl(&msg);
        let wrote = {
            let mut guard = self.conns[worker].writer.lock().expect("writer lock");
            let stream = guard.as_mut().expect("usable");
            wire::write_frame(stream, &payload)
        };
        if wrote.is_err() {
            self.conns[worker].open.store(false, Ordering::SeqCst);
            return Err(SendLost);
        }
        let stats = &self.conns[worker].stats;
        stats.frames_sent.fetch_add(1, Ordering::Relaxed);
        stats
            .bytes_sent
            .fetch_add(payload.len() as u64 + 4, Ordering::Relaxed);
        Ok(())
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<WorkerMsg, TransportRecvError> {
        self.from_workers
            .recv_timeout(timeout)
            .map_err(|e| match e {
                RecvTimeoutError::Timeout => TransportRecvError::Timeout,
                RecvTimeoutError::Disconnected => TransportRecvError::Disconnected,
            })
    }

    fn try_recv(&mut self) -> Option<WorkerMsg> {
        self.from_workers.try_recv().ok()
    }

    fn is_alive(&mut self, worker: usize) -> bool {
        let c = &self.conns[worker];
        if !c.open.load(Ordering::SeqCst) || c.writer.lock().expect("writer lock").is_none() {
            return false;
        }
        c.last_seen.lock().expect("last_seen lock").elapsed() < self.stale_after
    }

    fn shutdown(&mut self, worker: usize) {
        // Best-effort clean shutdown frame; the socket may already be dead.
        let payload = wire::encode_ctrl(&CtrlMsg::Shutdown);
        {
            let mut guard = self.conns[worker].writer.lock().expect("writer lock");
            if let Some(stream) = guard.as_mut() {
                let _ = wire::write_frame(stream, &payload);
                let _ = stream.flush();
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
            *guard = None;
        }
        self.conns[worker].open.store(false, Ordering::SeqCst);
        if let Some(j) = self.conns[worker].reader.take() {
            let _ = j.join();
        }
        if let Some(mut child) = self.conns[worker].child.take() {
            // Bounded reap: give the process a moment to exit cleanly,
            // then kill. No zombies either way.
            let deadline = Instant::now() + Duration::from_secs(2);
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            }
        }
    }

    fn spawn_failures(&self) -> &[(usize, String)] {
        &self.failures
    }

    fn measured_links(&self) -> Option<&LinkMatrix> {
        self.measured.as_ref()
    }

    fn clock_offset_ns(&mut self, worker: usize) -> i64 {
        let clock = self.conns[worker].stats.clock.lock().expect("clock lock");
        clock.1.offset_at(monotonic_ns())
    }

    fn wire_stats(&self) -> Vec<PeerWireStats> {
        self.conns
            .iter()
            .map(|c| {
                let clock = c.stats.clock.lock().expect("clock lock");
                PeerWireStats {
                    frames_sent: c.stats.frames_sent.load(Ordering::Relaxed),
                    bytes_sent: c.stats.bytes_sent.load(Ordering::Relaxed),
                    frames_recv: c.stats.frames_recv.load(Ordering::Relaxed),
                    bytes_recv: c.stats.bytes_recv.load(Ordering::Relaxed),
                    hb_rtt: clock.0,
                    clock_offset_ns: clock.1.offset_at(monotonic_ns()),
                    telemetry_batches: c.stats.telemetry_batches.load(Ordering::Relaxed),
                    telemetry_spans: c.stats.telemetry_spans.load(Ordering::Relaxed),
                    telemetry_backlog: c.stats.telemetry_backlog.load(Ordering::Relaxed),
                }
            })
            .collect()
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        for w in 0..self.conns.len() {
            self.shutdown(w);
        }
    }
}
