//! The controller side of the TCP mesh: [`TcpTransport`].
//!
//! One socket per worker, all multiplexed on **one I/O thread**: a
//! `poll(2)` event loop (see [`crate::poll`]) owns every peer socket,
//! drains readiness into per-peer [`FrameBuf`]s, decodes [`WorkerMsg`]
//! frames into a single merged queue (mirroring the crossbeam mesh of the
//! in-process transport), swallows heartbeats after stamping a shared
//! last-seen instant, and flips a shared link flag on EOF or socket
//! error. The controller thread never touches a socket after the
//! handshake — it talks to the loop through a command channel
//! ([`Cmd`]) plus a [`WakeHandle`], and sends become nonblocking
//! [`WriteQueue`] entries flushed as the kernel accepts them.
//!
//! Blocking work (dialing, the resume handshake, replaying an unacked
//! tail) stays on the controller thread; only after a socket is fully
//! handshaken is it registered with the loop. Severing is a rendezvous:
//! the controller asks the loop to drop a socket and waits for the reply,
//! at which point the receive cursor is provably quiescent. The loop
//! never blocks on the controller thread (it only posts to unbounded
//! channels and performs nonblocking socket I/O), so the rendezvous
//! cannot deadlock — unlike the previous design, which joined a reader
//! thread while holding connection state.
//!
//! ## Reliable sessions (wire v4)
//!
//! Against a v4 worker every post-handshake frame is an
//! [`wire::Envelope`]: plan traffic rides *reliable* frames (sequenced,
//! buffered in a [`SendBuffer`] until cumulatively acked, deduplicated by
//! a [`RecvCursor`]); heartbeats, clock sync and session acks ride
//! *ephemeral* frames. A dead socket no longer kills the worker — the
//! connection enters a *resuming* state: sends buffer, reconnect attempts
//! run with exponential backoff inside [`TcpConfig::reconnect_window`],
//! and a successful resume handshake (same session id, both cursors
//! exchanged) replays the unacked tails in both directions. The runtime
//! sees [`Liveness::Suspect`] while resuming — new CEs avoid the node —
//! and only a blown window (or a worker that lost its session state)
//! degrades to [`Liveness::Dead`] and the quarantine + lineage-replay
//! path. Liveness combines socket state and staleness: a SIGKILLed
//! process is caught by EOF within milliseconds, a wedged-but-connected
//! one (SIGSTOP, network partition) by missed heartbeats
//! ([`TcpConfig::stale_after_beats`] × cadence), which severs the socket
//! and enters the same resume path.
//!
//! ## Elastic membership (wire v5)
//!
//! [`Transport::join`] dials a fresh worker while the mesh is live: the
//! newcomer is handshaken with the grown peer list, registered with the
//! event loop under the next index, and every existing v5 worker receives
//! a [`CtrlMsg::Peers`] update so P2P traffic reaches the new endpoint.
//! [`Transport::probe_joined`] then re-prices just the links touching the
//! newcomer, reusing the startup probe machinery. A clean departure rides
//! [`CtrlMsg::Leave`] (the worker flushes, acks with [`WorkerMsg::Leave`]
//! and exits); both frames are silently skipped against pre-v5 peers.
//!
//! Construction runs the startup bandwidth-probe round of the paper's
//! min-transfer-time policy: timed ballast echoes controller↔worker and
//! worker↔worker populate a measured [`LinkMatrix`] that
//! [`grout_core::LocalRuntime`] hands to the planner in place of the
//! uniform model.

use std::collections::HashMap;
use std::net::TcpStream;
use std::process::Child;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use grout_core::{
    monotonic_ns, ClockSync, CtrlMsg, FaultConfig, LatencyStat, LinkMatrix, Liveness, NetFaultKind,
    NetFaultPlan, PeerWireStats, SendLost, Transport, TransportRecvError, WorkerMsg,
};

use crate::poll::{poll_fds, read_available, FrameBuf, PollFd, WakeHandle, Waker, WriteQueue};
use crate::poll::{POLLERR, POLLHUP, POLLIN, POLLOUT};
use crate::session::{RecvCursor, SendBuffer, ACK_EVERY};
use crate::wire;

/// First reconnect backoff; doubles per failed attempt up to
/// [`RESUME_BACKOFF_MAX`].
const RESUME_BACKOFF_START: Duration = Duration::from_millis(25);
/// Backoff ceiling between reconnect attempts.
const RESUME_BACKOFF_MAX: Duration = Duration::from_millis(400);
/// Read timeout on the resume handshake ack, so a stopped (SIGSTOP) or
/// wedged worker cannot block the controller past one attempt.
const RESUME_ACK_TIMEOUT: Duration = Duration::from_millis(300);
/// Bound on the blocking flush of a socket's write queue when the loop
/// deregisters it (gets a final `Shutdown`/`Leave` frame out without
/// letting a wedged peer stall the loop).
const DRAIN_TIMEOUT: Duration = Duration::from_millis(250);

/// Transport knobs (cadence, staleness, resume window, probe sizing).
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Worker heartbeat cadence (carried in the handshake).
    pub heartbeat: Duration,
    /// Heartbeats a worker may miss before its socket is severed and the
    /// connection enters the resume path.
    pub stale_after_beats: u32,
    /// How long a severed connection may keep trying to resume before it
    /// is declared dead (quarantine + lineage replay take over).
    pub reconnect_window: Duration,
    /// Ballast bytes per startup bandwidth probe (per direction).
    pub probe_bytes: u64,
    /// How long to wait for each probe echo before giving up on the pair
    /// (its matrix entry falls back to the controller↔worker estimate).
    pub probe_timeout: Duration,
    /// How long to wait for a spawned `grout-workerd` to announce its
    /// listen address.
    pub spawn_timeout: Duration,
    /// Deterministic network chaos to inject below the session layer
    /// (only [`NetFaultKind::Sever`] and [`NetFaultKind::Partition`] act
    /// on a real socket; drop/duplicate/delay are modeled by the
    /// in-process transport).
    pub net_faults: NetFaultPlan,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            heartbeat: Duration::from_millis(100),
            stale_after_beats: 10,
            reconnect_window: Duration::from_secs(2),
            probe_bytes: 1 << 20,
            probe_timeout: Duration::from_secs(5),
            spawn_timeout: Duration::from_secs(10),
            net_faults: NetFaultPlan::none(),
        }
    }
}

impl TcpConfig {
    /// Derives the timing knobs from the planner's [`FaultConfig`] so
    /// `--heartbeat-ms` / `--stale-after` / `--reconnect-window-ms` tune
    /// one surface for both deployments.
    pub fn from_fault_config(fc: &FaultConfig) -> Self {
        TcpConfig {
            heartbeat: Duration::from_millis(fc.heartbeat_ms.max(1) as u64),
            stale_after_beats: fc.stale_after_beats.max(1),
            reconnect_window: Duration::from_nanos(fc.reconnect_window.0),
            ..TcpConfig::default()
        }
    }
}

/// Per-connection wire counters and clock state, shared between the
/// controller thread (snapshots) and the I/O loop (send/receive
/// accounting, clock-sync frames).
#[derive(Default)]
struct ConnStats {
    frames_sent: AtomicU64,
    bytes_sent: AtomicU64,
    frames_recv: AtomicU64,
    bytes_recv: AtomicU64,
    telemetry_batches: AtomicU64,
    telemetry_spans: AtomicU64,
    telemetry_backlog: AtomicU64,
    resumes: AtomicU64,
    /// Heartbeat RTT histogram + running clock-offset estimate, both fed
    /// by the worker's clock samples.
    clock: Mutex<(LatencyStat, ClockSync)>,
}

/// Everything about one connection that the I/O loop shares with the
/// controller thread.
struct ConnShared {
    /// Session-level liveness: false once the connection is definitively
    /// dead (clean Leave, blown resume window, lost worker state). Never
    /// comes back except through [`Transport::reconnect`].
    open: AtomicBool,
    /// Socket-level liveness: flipped off by the loop on EOF/error and
    /// back on by a successful resume.
    link_up: AtomicBool,
    /// The worker announced a clean departure ([`WorkerMsg::Leave`]); no
    /// resume will be attempted.
    departed: AtomicBool,
    /// Stamped by the loop on every inbound frame.
    last_seen: Mutex<Instant>,
    /// Outbound reliable frames awaiting cumulative ack (v4 only).
    send_buf: Mutex<SendBuffer>,
    /// Inbound reliable-frame dedupe cursor (v4 only).
    recv_cursor: Mutex<RecvCursor>,
    stats: ConnStats,
}

impl ConnShared {
    fn fresh() -> Self {
        ConnShared {
            open: AtomicBool::new(true),
            link_up: AtomicBool::new(true),
            departed: AtomicBool::new(false),
            last_seen: Mutex::new(Instant::now()),
            send_buf: Mutex::new(SendBuffer::default()),
            recv_cursor: Mutex::new(RecvCursor::new()),
            stats: ConnStats::default(),
        }
    }

    fn count_write(&self, frame_len: usize) {
        self.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_sent
            .fetch_add(frame_len as u64 + 4, Ordering::Relaxed);
    }
}

/// What the controller thread asks of the I/O loop. Ordered per channel;
/// the loop drains the whole queue on every wakeup.
enum Cmd {
    /// Adopt a freshly handshaken socket for worker `w` (replacing any
    /// prior socket, which is dropped).
    Register {
        w: usize,
        stream: TcpStream,
        v4: bool,
        shared: Arc<ConnShared>,
    },
    /// Queue one already-sealed payload (length prefix added by the write
    /// queue) for worker `w`. Silently dropped when the socket is gone —
    /// under v4 the frame lives in the send window and a resume replays
    /// it.
    Send { w: usize, frame: Vec<u8> },
    /// Drop worker `w`'s socket after a bounded blocking flush of its
    /// write queue, then reply. When the reply arrives the loop has
    /// processed every frame it had read from the socket, so the receive
    /// cursor is quiescent — the precondition for a resume dial.
    Sever { w: usize, reply: Sender<()> },
    /// Flush-and-drop every socket and exit the loop thread.
    Shutdown,
}

/// One registered socket inside the I/O loop.
struct Slot {
    stream: TcpStream,
    frames: FrameBuf,
    wq: WriteQueue,
    v4: bool,
    shared: Arc<ConnShared>,
}

impl Slot {
    /// Best-effort bounded blocking flush, for deregistration: the last
    /// frames queued (clean `Shutdown`) should reach the peer, but a
    /// wedged peer must not stall the loop past [`DRAIN_TIMEOUT`].
    fn drain_before_close(&mut self) {
        if self.wq.is_empty() {
            return;
        }
        let _ = self.stream.set_nonblocking(false);
        let _ = self.stream.set_write_timeout(Some(DRAIN_TIMEOUT));
        let _ = self.wq.flush(&mut self.stream);
    }
}

/// Reconnect-loop state of a severed connection.
struct Resuming {
    /// Past this instant the session is declared dead.
    deadline: Instant,
    /// Earliest instant for the next dial attempt.
    next_attempt: Instant,
    /// Current backoff between attempts.
    backoff: Duration,
}

struct Conn {
    shared: Arc<ConnShared>,
    /// The `grout-workerd` child when this transport spawned it.
    child: Option<Child>,
    /// The worker's announced wire version (version-gated traffic is
    /// skipped for older peers).
    peer_version: u16,
    /// The worker's listen address, kept for resume re-dials and rejoin.
    addr: String,
    /// `Some` while the connection is severed and retrying.
    resuming: Option<Resuming>,
    /// Logical count of reliable control frames sent — the deterministic
    /// key for [`NetFaultPlan`] injection (retransmits and acks are not
    /// counted, so injection points never shift when a fault fires).
    ctrl_frames: u64,
    /// Injected partition: reconnect attempts are suppressed until this
    /// instant.
    partition_until: Option<Instant>,
}

/// The controller-side TCP transport; plug into
/// [`grout_core::RuntimeBuilder::build_with_transport`] (or use
/// [`crate::TcpExt::tcp`] which does it for you).
pub struct TcpTransport {
    conns: Vec<Conn>,
    from_workers: Receiver<WorkerMsg>,
    /// Command channel into the I/O loop.
    cmd_tx: Sender<Cmd>,
    wake: WakeHandle,
    io: Option<JoinHandle<()>>,
    failures: Vec<(usize, String)>,
    measured: Option<LinkMatrix>,
    stale_after: Duration,
    reconnect_window: Duration,
    heartbeat: Duration,
    probe_bytes: u64,
    probe_timeout: Duration,
    net_faults: NetFaultPlan,
    /// All worker listen addresses (re-sent in every hello; grows on
    /// [`Transport::join`]).
    peer_addrs: Vec<String>,
    /// Identifies this controller instance to workers; a resume hello
    /// carrying the same id revives the worker's parked session.
    session_id: u64,
}

impl TcpTransport {
    /// Connects to `addrs[i]` as worker `i`, performs the handshake, runs
    /// the bandwidth-probe round and returns the ready mesh. A worker that
    /// cannot be reached is recorded as a spawn failure (degraded start)
    /// rather than failing construction; the runtime quarantines it.
    ///
    /// `children[i]`, when given, is the spawned `grout-workerd` process
    /// backing worker `i`; the transport owns and reaps it.
    pub fn connect(addrs: &[String], mut children: Vec<Option<Child>>, cfg: &TcpConfig) -> Self {
        children.resize_with(addrs.len(), || None);
        let (to_controller, from_workers) = unbounded::<WorkerMsg>();
        let (cmd_tx, cmd_rx) = unbounded::<Cmd>();
        let waker = Waker::new().expect("bind loopback waker pair");
        let wake = waker.handle().expect("clone waker handle");
        let loop_out = to_controller.clone();
        let io = std::thread::Builder::new()
            .name("grout-net-io".into())
            .spawn(move || io_loop(waker, cmd_rx, loop_out))
            .expect("spawn I/O loop thread");
        let session_id = monotonic_ns() ^ (std::process::id() as u64) << 32;
        let mut failures = Vec::new();
        let mut conns = Vec::with_capacity(addrs.len());
        for (i, addr) in addrs.iter().enumerate() {
            let shared = Arc::new(ConnShared::fresh());
            let child = children[i].take();
            match Self::adopt(i, addr, addrs, cfg.heartbeat, session_id, None) {
                Ok((stream, ack)) => {
                    let _ = cmd_tx.send(Cmd::Register {
                        w: i,
                        stream,
                        v4: ack.version >= 4,
                        shared: Arc::clone(&shared),
                    });
                    wake.wake();
                    conns.push(Conn {
                        shared,
                        child,
                        peer_version: ack.version,
                        addr: addr.clone(),
                        resuming: None,
                        ctrl_frames: 0,
                        partition_until: None,
                    });
                }
                Err(e) => {
                    shared.open.store(false, Ordering::SeqCst);
                    shared.link_up.store(false, Ordering::SeqCst);
                    failures.push((i, e.to_string()));
                    conns.push(Conn {
                        shared,
                        child,
                        peer_version: wire::WIRE_VERSION,
                        addr: addr.clone(),
                        resuming: None,
                        ctrl_frames: 0,
                        partition_until: None,
                    });
                }
            }
        }
        let mut t = TcpTransport {
            conns,
            from_workers,
            cmd_tx,
            wake,
            io: Some(io),
            failures,
            measured: None,
            stale_after: cfg.heartbeat * cfg.stale_after_beats,
            reconnect_window: cfg.reconnect_window,
            heartbeat: cfg.heartbeat,
            probe_bytes: cfg.probe_bytes,
            probe_timeout: cfg.probe_timeout,
            net_faults: cfg.net_faults.clone(),
            peer_addrs: addrs.to_vec(),
            session_id,
        };
        t.measured = Some(t.probe_round());
        t
    }

    /// Posts one command to the I/O loop and nudges it awake. `false`
    /// when the loop is gone (treat the socket as already dropped).
    fn cmd(&self, c: Cmd) -> bool {
        let ok = self.cmd_tx.send(c).is_ok();
        if ok {
            self.wake.wake();
        }
        ok
    }

    /// Dial + handshake one worker endpoint; returns the stream and the
    /// worker's ack (version, resume outcome, cursor).
    fn adopt(
        index: usize,
        addr: &str,
        peers: &[String],
        heartbeat: Duration,
        session_id: u64,
        resume: Option<u64>,
    ) -> Result<(TcpStream, wire::WorkerAck), wire::WireError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(RESUME_ACK_TIMEOUT))?;
        wire::write_frame(
            &mut stream,
            &wire::encode_hello(&wire::Hello::Controller {
                index,
                total: peers.len(),
                heartbeat_ms: heartbeat.as_millis() as u32,
                peers: peers.to_vec(),
                session_id,
                resume,
            }),
        )?;
        let ack = wire::read_frame(&mut stream)?
            .ok_or_else(|| wire::WireError::Handshake("worker closed during handshake".into()))?;
        let ack = wire::decode_ack(&ack)?;
        if ack.index != index {
            return Err(wire::WireError::Handshake(format!(
                "worker acked index {}, expected {index}",
                ack.index
            )));
        }
        stream.set_read_timeout(None)?;
        Ok((stream, ack))
    }

    fn v4(&self, w: usize) -> bool {
        self.conns[w].peer_version >= 4
    }

    /// Severs the socket of worker `w` (if any) via the loop rendezvous —
    /// when it returns, the receive cursor is quiesced — and enters the
    /// resuming state.
    fn sever(&mut self, w: usize) {
        self.conns[w].shared.link_up.store(false, Ordering::SeqCst);
        self.rendezvous_drop(w);
        self.enter_resuming(w);
    }

    /// Asks the loop to drop worker `w`'s socket and waits for the reply.
    /// Cannot deadlock: the loop never blocks on the controller thread
    /// (it only posts to unbounded channels and does nonblocking socket
    /// I/O), so the reply always arrives — the bounded wait is pure
    /// defense against a dead loop thread.
    fn rendezvous_drop(&self, w: usize) {
        let (tx, rx) = unbounded::<()>();
        if self.cmd(Cmd::Sever { w, reply: tx }) {
            let _ = rx.recv_timeout(Duration::from_secs(2));
        }
    }

    fn enter_resuming(&mut self, w: usize) {
        if self.conns[w].resuming.is_none() {
            let now = Instant::now();
            self.conns[w].resuming = Some(Resuming {
                deadline: now + self.reconnect_window,
                next_attempt: now,
                backoff: RESUME_BACKOFF_START,
            });
        }
    }

    fn mark_dead(&mut self, w: usize) {
        self.conns[w].shared.open.store(false, Ordering::SeqCst);
        self.conns[w].shared.link_up.store(false, Ordering::SeqCst);
        self.conns[w].resuming = None;
        self.rendezvous_drop(w);
    }

    /// Drives the reconnect loop of a resuming connection. Returns the
    /// liveness the runtime should see right now.
    fn try_resume(&mut self, w: usize) -> Liveness {
        let now = Instant::now();
        let Some(r) = self.conns[w].resuming.as_ref() else {
            return Liveness::Alive;
        };
        let deadline = r.deadline;
        if let Some(until) = self.conns[w].partition_until {
            if now < until {
                // Injected partition: the peer is deterministically
                // unreachable; don't burn dial attempts.
                if now >= deadline {
                    self.mark_dead(w);
                    return Liveness::Dead;
                }
                return Liveness::Suspect;
            }
            self.conns[w].partition_until = None;
        }
        if now
            < self.conns[w]
                .resuming
                .as_ref()
                .expect("resuming")
                .next_attempt
        {
            return Liveness::Suspect;
        }
        match self.dial_resume(w) {
            Ok(()) => Liveness::Alive,
            Err(ResumeFail::Terminal(reason)) => {
                eprintln!("[grout-net] worker {w}: session unresumable ({reason})");
                self.mark_dead(w);
                Liveness::Dead
            }
            Err(ResumeFail::Retry) => {
                let now = Instant::now();
                if now >= deadline {
                    self.mark_dead(w);
                    return Liveness::Dead;
                }
                let r = self.conns[w].resuming.as_mut().expect("resuming");
                r.next_attempt = now + r.backoff;
                r.backoff = (r.backoff * 2).min(RESUME_BACKOFF_MAX);
                Liveness::Suspect
            }
        }
    }

    /// One resume attempt: dial, resume handshake, replay the unacked
    /// tail (blocking, on the fresh socket), then hand the socket to the
    /// I/O loop.
    fn dial_resume(&mut self, w: usize) -> Result<(), ResumeFail> {
        let addr = self.conns[w].addr.clone();
        let cursor = {
            let rc = self.conns[w].shared.recv_cursor.lock().expect("cursor");
            rc.cursor()
        };
        let (mut stream, ack) = Self::adopt(
            w,
            &addr,
            &self.peer_addrs,
            self.heartbeat,
            self.session_id,
            Some(cursor),
        )
        .map_err(|e| {
            let _ = e;
            ResumeFail::Retry
        })?;
        if !ack.resumed {
            return Err(ResumeFail::Terminal(
                "worker has no session state (restarted?)".into(),
            ));
        }
        // Replay everything the worker has not seen. A window that no
        // longer reaches back to the worker's cursor cannot resume
        // losslessly.
        let replay = {
            let sb = self.conns[w].shared.send_buf.lock().expect("send_buf");
            sb.replay_from(ack.cursor).ok_or_else(|| {
                ResumeFail::Terminal("send window trimmed past peer cursor".into())
            })?
        };
        for frame in &replay {
            wire::write_frame(&mut stream, frame).map_err(|e| {
                let _ = e;
                ResumeFail::Retry
            })?;
            self.conns[w].shared.count_write(frame.len());
        }
        let shared = &self.conns[w].shared;
        *shared.last_seen.lock().expect("last_seen lock") = Instant::now();
        shared.link_up.store(true, Ordering::SeqCst);
        shared.stats.resumes.fetch_add(1, Ordering::Relaxed);
        self.cmd(Cmd::Register {
            w,
            stream,
            v4: true,
            shared: Arc::clone(shared),
        });
        self.conns[w].resuming = None;
        Ok(())
    }

    /// The startup probe round. Controller↔worker pairs are timed
    /// directly; worker↔worker pairs ride [`CtrlMsg::ProbePeer`] and come
    /// back as [`WorkerMsg::ProbeReport`]s. Bandwidth is `2·bytes/rtt`
    /// (ballast travels both directions). Unreachable pairs keep a
    /// conservative floor so min-transfer-time never divides by zero.
    fn probe_round(&mut self) -> LinkMatrix {
        let n = self.conns.len();
        let mut bw = vec![vec![PROBE_FLOOR_BPS; n + 1]; n + 1];
        let mut token = 0u64;
        for w in 0..n {
            self.probe_ctrl_link(w, &mut token, &mut bw);
        }
        for i in 0..n {
            for j in (i + 1)..n {
                self.probe_peer_link(i, j, &mut token, &mut bw);
            }
        }
        LinkMatrix::new(bw)
    }

    /// Times one controller↔worker ballast echo into `bw` (both
    /// directions; endpoint 0 is the controller).
    fn probe_ctrl_link(&mut self, w: usize, token: &mut u64, bw: &mut [Vec<f64>]) {
        if !self.endpoint_usable(w) {
            return;
        }
        *token += 1;
        let t = *token;
        let ballast = vec![0u8; self.probe_bytes as usize];
        let started = Instant::now();
        if self
            .send(
                w,
                CtrlMsg::Probe {
                    token: t,
                    payload: ballast,
                },
            )
            .is_err()
        {
            return;
        }
        if let Some(WorkerMsg::ProbeEcho { .. }) = self.await_probe(
            self.probe_timeout,
            |m| matches!(m, WorkerMsg::ProbeEcho { token: k, .. } if *k == t),
        ) {
            let elapsed = started.elapsed().as_secs_f64().max(1e-9);
            let bps = (2 * self.probe_bytes) as f64 / elapsed;
            bw[0][w + 1] = bps;
            bw[w + 1][0] = bps;
        }
    }

    /// Times one worker↔worker ballast echo (ordered pair measured once,
    /// recorded symmetric).
    fn probe_peer_link(&mut self, i: usize, j: usize, token: &mut u64, bw: &mut [Vec<f64>]) {
        if !self.endpoint_usable(i) || !self.endpoint_usable(j) {
            return;
        }
        *token += 1;
        let t = *token;
        if self
            .send(
                i,
                CtrlMsg::ProbePeer {
                    token: t,
                    to: j,
                    bytes: self.probe_bytes,
                },
            )
            .is_err()
        {
            return;
        }
        if let Some(WorkerMsg::ProbeReport {
            bytes, elapsed_ns, ..
        }) = self.await_probe(
            self.probe_timeout,
            |m| matches!(m, WorkerMsg::ProbeReport { worker, to, .. } if *worker == i && *to == j),
        ) {
            let elapsed = (elapsed_ns as f64 / 1e9).max(1e-9);
            let bps = (2 * bytes) as f64 / elapsed;
            bw[i + 1][j + 1] = bps;
            bw[j + 1][i + 1] = bps;
        }
    }

    /// Waits for the probe reply matching `pred`; any other traffic that
    /// arrives meanwhile would be plan traffic — impossible during a
    /// probe round — so it is dropped with a breadcrumb.
    fn await_probe(
        &mut self,
        timeout: Duration,
        pred: impl Fn(&WorkerMsg) -> bool,
    ) -> Option<WorkerMsg> {
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.checked_duration_since(Instant::now())?;
            match self.from_workers.recv_timeout(left) {
                Ok(m) if pred(&m) => return Some(m),
                Ok(_) => {} // stale echo from a slower pair; ignore
                Err(_) => return None,
            }
        }
    }

    fn endpoint_usable(&self, w: usize) -> bool {
        let sh = &self.conns[w].shared;
        sh.link_up.load(Ordering::SeqCst) && sh.open.load(Ordering::SeqCst)
    }

    /// Pid of the spawned `grout-workerd` backing worker `w`, when this
    /// transport spawned one (chaos harness: real SIGKILL targets).
    pub fn child_pid(&self, w: usize) -> Option<u32> {
        self.conns
            .get(w)
            .and_then(|c| c.child.as_ref())
            .map(|c| c.id())
    }

    /// Pids of all spawned workers, by index (`None` = connected, not
    /// spawned).
    pub fn child_pids(&self) -> Vec<Option<u32>> {
        (0..self.conns.len()).map(|w| self.child_pid(w)).collect()
    }

    /// Forget the spawned child backing worker `w` without reaping it —
    /// the chaos harness uses this after it has killed and restarted the
    /// process itself.
    pub fn forget_child(&mut self, w: usize) -> Option<Child> {
        self.conns.get_mut(w).and_then(|c| c.child.take())
    }

    /// Hands ownership of a spawned `grout-workerd` backing worker `w` to
    /// the transport (elastic join: the daemon was spawned before the
    /// transport knew the worker existed). The child is reaped on
    /// [`Transport::shutdown`].
    pub fn attach_child(&mut self, w: usize, child: Child) {
        if let Some(c) = self.conns.get_mut(w) {
            c.child = Some(child);
        }
    }
}

/// Conservative bandwidth floor (1 MB/s): pessimistic but non-zero, so
/// min-transfer-time never divides by zero on an unprobed pair.
const PROBE_FLOOR_BPS: f64 = 1e6;

/// Why a resume attempt failed.
enum ResumeFail {
    /// Transient — retry with backoff inside the window.
    Retry,
    /// The session can never resume (worker restarted fresh, replay
    /// window trimmed); go straight to dead.
    Terminal(String),
}

/// Handles one logical (post-envelope) inbound payload inside the I/O
/// loop. Replies (clock pongs, session acks) go on the slot's write
/// queue. Returns false when the slot should be dropped.
fn handle_payload(
    worker: usize,
    inner: Vec<u8>,
    v4: bool,
    out: &Sender<WorkerMsg>,
    shared: &ConnShared,
    wq: &mut WriteQueue,
) -> bool {
    // Clock-sync + session frames live above the message tag space; peek
    // the tag and keep them inside the transport.
    match inner.first().copied() {
        Some(wire::CLOCK_PING_TAG) => {
            let t2 = monotonic_ns();
            if let Ok((_, t1)) = wire::decode_clock_ping(&inner) {
                let pong = wire::encode_clock_pong(t1, t2);
                let framed = if v4 {
                    wire::seal_ephemeral(&pong)
                } else {
                    pong
                };
                shared.count_write(framed.len());
                wq.enqueue(&framed);
            }
            return true;
        }
        Some(wire::CLOCK_SAMPLE_TAG) => {
            if let Ok((_, offset, rtt)) = wire::decode_clock_sample(&inner) {
                let mut clock = shared.stats.clock.lock().expect("clock lock");
                clock.0.record(rtt);
                clock.1.observe(monotonic_ns(), offset, rtt);
            }
            return true;
        }
        Some(wire::SESSION_ACK_TAG) => {
            if let Ok(cursor) = wire::decode_session_ack(&inner) {
                shared.send_buf.lock().expect("send_buf").ack(cursor);
            }
            return true;
        }
        _ => {}
    }
    match wire::decode_worker(&inner) {
        Ok(WorkerMsg::Heartbeat { .. }) => true, // liveness only
        Ok(WorkerMsg::Leave { .. }) => {
            // Clean departure: definitive — no resume, no staleness
            // ambiguity. Forward so the runtime re-plans its work.
            shared.departed.store(true, Ordering::SeqCst);
            shared.open.store(false, Ordering::SeqCst);
            shared.link_up.store(false, Ordering::SeqCst);
            let _ = out.send(WorkerMsg::Leave { worker });
            false
        }
        Ok(msg) => {
            if let WorkerMsg::Telemetry { backlog, spans, .. } = &msg {
                shared
                    .stats
                    .telemetry_batches
                    .fetch_add(1, Ordering::Relaxed);
                shared
                    .stats
                    .telemetry_spans
                    .fetch_add(spans.len() as u64, Ordering::Relaxed);
                shared
                    .stats
                    .telemetry_backlog
                    .store(*backlog, Ordering::Relaxed);
            }
            out.send(msg).is_ok()
        }
        Err(e) => {
            eprintln!("[grout-net] worker {worker}: {e}; closing");
            shared.link_up.store(false, Ordering::SeqCst);
            if !v4 {
                shared.open.store(false, Ordering::SeqCst);
            }
            false
        }
    }
}

/// Processes one raw (pre-envelope) frame for a slot. Returns false when
/// the slot should be dropped.
fn process_frame(worker: usize, raw: Vec<u8>, slot: &mut Slot, out: &Sender<WorkerMsg>) -> bool {
    let shared = &slot.shared;
    *shared.last_seen.lock().expect("last_seen lock") = Instant::now();
    shared.stats.frames_recv.fetch_add(1, Ordering::Relaxed);
    shared
        .stats
        .bytes_recv
        .fetch_add(raw.len() as u64 + 4, Ordering::Relaxed);
    if !slot.v4 {
        return handle_payload(worker, raw, false, out, shared, &mut slot.wq);
    }
    match wire::open_envelope(raw) {
        Ok(wire::Envelope::Ephemeral(inner)) => {
            handle_payload(worker, inner, true, out, shared, &mut slot.wq)
        }
        Ok(wire::Envelope::Reliable { seq, payload }) => {
            let (ready, ack_due, cursor) = {
                let mut rc = shared.recv_cursor.lock().expect("cursor");
                let before = rc.cursor();
                let ready = rc.accept(seq, payload);
                let after = rc.cursor();
                (ready, before / ACK_EVERY != after / ACK_EVERY, after)
            };
            for p in ready {
                if !handle_payload(worker, p, true, out, shared, &mut slot.wq) {
                    return false;
                }
            }
            if ack_due {
                let framed = wire::seal_ephemeral(&wire::encode_session_ack(cursor));
                shared.count_write(framed.len());
                slot.wq.enqueue(&framed);
            }
            true
        }
        Err(e) => {
            eprintln!("[grout-net] worker {worker}: bad envelope: {e}");
            shared.link_up.store(false, Ordering::SeqCst);
            false
        }
    }
}

/// Drains readable bytes and decodes frames for one slot; then flushes
/// any replies the frames generated. Returns false when the slot should
/// be dropped (EOF, socket error, protocol error, clean Leave).
fn drain_slot(worker: usize, slot: &mut Slot, out: &Sender<WorkerMsg>) -> bool {
    let open = matches!(read_available(&mut slot.stream, &mut slot.frames), Ok(true));
    loop {
        match slot.frames.next_frame() {
            Ok(Some(raw)) => {
                if !process_frame(worker, raw, slot, out) {
                    return false;
                }
            }
            Ok(None) => break,
            Err(e) => {
                eprintln!("[grout-net] worker {worker}: {e}; closing");
                slot.shared.link_up.store(false, Ordering::SeqCst);
                return false;
            }
        }
    }
    if !open {
        slot.shared.link_up.store(false, Ordering::SeqCst);
        if !slot.v4 {
            slot.shared.open.store(false, Ordering::SeqCst);
        }
        return false;
    }
    if slot.wq.flush(&mut slot.stream).is_err() {
        slot.shared.link_up.store(false, Ordering::SeqCst);
        return false;
    }
    true
}

/// The controller's single I/O thread: multiplexes every registered
/// worker socket over `poll(2)`, decoding inbound frames into `out` and
/// flushing queued writes as the kernel accepts them. Commands arrive on
/// `cmd_rx`, signalled through the waker. The loop performs no blocking
/// operation other than `poll` itself, which is what makes the sever
/// rendezvous deadlock-free.
fn io_loop(waker: Waker, cmd_rx: Receiver<Cmd>, out: Sender<WorkerMsg>) {
    let mut slots: HashMap<usize, Slot> = HashMap::new();
    loop {
        // (Re)build the poll set: waker first, then every live socket.
        let mut fds = Vec::with_capacity(1 + slots.len());
        let mut ids = Vec::with_capacity(slots.len());
        fds.push(PollFd {
            fd: waker.fd(),
            events: POLLIN,
            revents: 0,
        });
        for (&w, slot) in slots.iter() {
            use std::os::fd::AsRawFd as _;
            let mut events = POLLIN;
            if !slot.wq.is_empty() {
                events |= POLLOUT;
            }
            fds.push(PollFd {
                fd: slot.stream.as_raw_fd(),
                events,
                revents: 0,
            });
            ids.push(w);
        }
        if poll_fds(&mut fds, None).is_err() {
            // Unrecoverable poll failure (EBADF would be a logic bug);
            // drop everything rather than spin.
            return;
        }
        waker.drain();
        // Drain the command queue before touching sockets, so a Sever
        // beats any not-yet-read bytes of the severed socket.
        let mut shutting_down = false;
        while let Ok(cmd) = cmd_rx.try_recv() {
            match cmd {
                Cmd::Register {
                    w,
                    stream,
                    v4,
                    shared,
                } => {
                    if stream.set_nonblocking(true).is_err() {
                        shared.link_up.store(false, Ordering::SeqCst);
                        continue;
                    }
                    slots.insert(
                        w,
                        Slot {
                            stream,
                            frames: FrameBuf::new(),
                            wq: WriteQueue::new(),
                            v4,
                            shared,
                        },
                    );
                }
                Cmd::Send { w, frame } => {
                    if let Some(slot) = slots.get_mut(&w) {
                        slot.shared.count_write(frame.len());
                        slot.wq.enqueue(&frame);
                        if slot.wq.flush(&mut slot.stream).is_err() {
                            slot.shared.link_up.store(false, Ordering::SeqCst);
                            slots.remove(&w);
                        }
                    }
                    // No slot: the link is down. Under v4 the frame is in
                    // the send window and a resume replays it; under the
                    // legacy protocol the loss is surfaced by liveness.
                }
                Cmd::Sever { w, reply } => {
                    if let Some(mut slot) = slots.remove(&w) {
                        slot.drain_before_close();
                        let _ = slot.stream.shutdown(std::net::Shutdown::Both);
                    }
                    let _ = reply.send(());
                }
                Cmd::Shutdown => shutting_down = true,
            }
        }
        if shutting_down {
            for (_, mut slot) in slots.drain() {
                slot.drain_before_close();
            }
            return;
        }
        // Readiness: fds[0] is the waker (already drained); fds[1..]
        // pairs with ids.
        for (k, fd) in fds.iter().enumerate().skip(1) {
            if fd.revents == 0 {
                continue;
            }
            let w = ids[k - 1];
            let Some(slot) = slots.get_mut(&w) else {
                continue; // a command above already dropped it
            };
            if fd.revents & (POLLIN | POLLHUP | POLLERR) != 0 {
                if !drain_slot(w, slot, &out) {
                    slots.remove(&w);
                    continue;
                }
            } else if fd.revents & POLLOUT != 0 && slot.wq.flush(&mut slot.stream).is_err() {
                slot.shared.link_up.store(false, Ordering::SeqCst);
                slots.remove(&w);
            }
        }
    }
}

impl Transport for TcpTransport {
    fn workers(&self) -> usize {
        self.conns.len()
    }

    fn kind(&self) -> &'static str {
        "tcp"
    }

    fn send(&mut self, worker: usize, msg: CtrlMsg) -> Result<(), SendLost> {
        let sh = &self.conns[worker].shared;
        if sh.departed.load(Ordering::SeqCst) || !sh.open.load(Ordering::SeqCst) {
            return Err(SendLost);
        }
        // Version-gated traffic silently degrades against an older
        // worker: a v1 peer can run every plan, it just cannot stream
        // telemetry; a v2 peer cannot receive log-shipping frames (which
        // only ever target a standby controller anyway); a pre-v5 peer
        // knows no membership frames — a Leave caller falls back to a
        // plain shutdown, and a missed Peers update only matters if the
        // old worker later targets the newcomer (it cannot: pre-v5 peers
        // predate elastic joins).
        let pv = self.conns[worker].peer_version;
        if matches!(msg, CtrlMsg::Observe { .. }) && pv < 2 {
            return Ok(());
        }
        if matches!(msg, CtrlMsg::ShipInit { .. } | CtrlMsg::ShipOp { .. }) && pv < 3 {
            return Ok(());
        }
        if matches!(msg, CtrlMsg::Leave | CtrlMsg::Peers { .. }) && pv < 5 {
            return Ok(());
        }
        let payload = wire::encode_ctrl(&msg);
        if !self.v4(worker) {
            // Legacy path: bare frame, no session layer, socket death is
            // definitive. The loop detects a failed write asynchronously;
            // the next send/liveness call observes the downed link.
            if !self.endpoint_usable(worker) {
                return Err(SendLost);
            }
            self.cmd(Cmd::Send {
                w: worker,
                frame: payload,
            });
            return Ok(());
        }

        // Deterministic chaos, keyed on the logical frame index so
        // injection points never shift when an earlier fault fires.
        let idx = self.conns[worker].ctrl_frames;
        self.conns[worker].ctrl_frames += 1;
        let mut severed = false;
        let mut partition_frames = None;
        for f in self.net_faults.at(worker, idx) {
            match f {
                NetFaultKind::Sever => severed = true,
                NetFaultKind::Partition { frames } => {
                    severed = true;
                    partition_frames = Some(frames);
                }
                // Drop/duplicate/delay need a lossy medium to model; TCP
                // itself is lossless, so only the in-process transport
                // injects them.
                NetFaultKind::DropFrame
                | NetFaultKind::DupFrame
                | NetFaultKind::DelayFrame { .. } => {}
            }
        }
        if severed && self.conns[worker].resuming.is_none() {
            self.sever(worker);
            if let Some(frames) = partition_frames {
                self.conns[worker].partition_until =
                    Some(Instant::now() + self.heartbeat * frames as u32);
            }
        }

        // Seal + buffer first: once in the send window the frame survives
        // any socket fate until cumulatively acked.
        let frame = {
            let mut sb = self.conns[worker].shared.send_buf.lock().expect("send_buf");
            sb.seal(&payload)
        };
        if self.conns[worker].resuming.is_some() {
            // Try to come back right now — an injected sever against a
            // live worker resumes on the first attempt and stays
            // invisible to the planner.
            if self.try_resume(worker) == Liveness::Dead {
                return Err(SendLost);
            }
            // Resumed: the replay already carried this frame. Still
            // resuming: it will. Either way it is not lost.
            return Ok(());
        }
        if !self.conns[worker].shared.link_up.load(Ordering::SeqCst) {
            // The loop noticed the socket die since our last call: sever
            // cleanly (quiescing the cursor) and attempt an immediate
            // resume; the frame is already buffered.
            self.sever(worker);
            if self.try_resume(worker) == Liveness::Dead {
                return Err(SendLost);
            }
            return Ok(());
        }
        self.cmd(Cmd::Send { w: worker, frame });
        Ok(())
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<WorkerMsg, TransportRecvError> {
        self.from_workers
            .recv_timeout(timeout)
            .map_err(|e| match e {
                RecvTimeoutError::Timeout => TransportRecvError::Timeout,
                RecvTimeoutError::Disconnected => TransportRecvError::Disconnected,
            })
    }

    fn try_recv(&mut self) -> Option<WorkerMsg> {
        self.from_workers.try_recv().ok()
    }

    fn is_alive(&mut self, worker: usize) -> bool {
        self.liveness(worker) != Liveness::Dead
    }

    fn liveness(&mut self, worker: usize) -> Liveness {
        let sh = &self.conns[worker].shared;
        if sh.departed.load(Ordering::SeqCst) || !sh.open.load(Ordering::SeqCst) {
            return Liveness::Dead;
        }
        if !self.v4(worker) {
            // Legacy liveness: socket + staleness, dead is dead.
            let up = sh.link_up.load(Ordering::SeqCst)
                && sh.last_seen.lock().expect("last_seen lock").elapsed() < self.stale_after;
            return if up { Liveness::Alive } else { Liveness::Dead };
        }
        if self.conns[worker].resuming.is_some() {
            return self.try_resume(worker);
        }
        let link_down = !sh.link_up.load(Ordering::SeqCst);
        let stale = sh.last_seen.lock().expect("last_seen lock").elapsed() >= self.stale_after;
        if link_down || stale {
            // EOF/error already detected by the loop, or a
            // wedged-but-connected peer (SIGSTOP, partition): sever the
            // socket and re-dial — a worker that wakes inside the window
            // resumes, one that doesn't goes to quarantine.
            self.sever(worker);
            return self.try_resume(worker);
        }
        Liveness::Alive
    }

    fn reconnect(&mut self, worker: usize) -> bool {
        if self.conns[worker].shared.open.load(Ordering::SeqCst) {
            return true;
        }
        // Fresh adoption: the previous session is gone for good, so reset
        // the session state before dialing (resume: None tells the worker
        // to discard any parked engine and start clean).
        self.rendezvous_drop(worker);
        let addr = self.conns[worker].addr.clone();
        match Self::adopt(
            worker,
            &addr,
            &self.peer_addrs,
            self.heartbeat,
            self.session_id,
            None,
        ) {
            Ok((stream, ack)) => {
                let shared = Arc::new(ConnShared::fresh());
                self.cmd(Cmd::Register {
                    w: worker,
                    stream,
                    v4: ack.version >= 4,
                    shared: Arc::clone(&shared),
                });
                self.conns[worker].shared = shared;
                self.conns[worker].peer_version = ack.version;
                self.conns[worker].resuming = None;
                self.conns[worker].partition_until = None;
                true
            }
            Err(e) => {
                eprintln!("[grout-net] worker {worker}: rejoin failed: {e}");
                false
            }
        }
    }

    fn join(&mut self, addr: &str) -> Result<usize, String> {
        let w = self.conns.len();
        let mut peers = self.peer_addrs.clone();
        peers.push(addr.to_string());
        let shared = Arc::new(ConnShared::fresh());
        let (stream, ack) = Self::adopt(w, addr, &peers, self.heartbeat, self.session_id, None)
            .map_err(|e| format!("join {addr}: {e}"))?;
        self.peer_addrs = peers;
        self.cmd(Cmd::Register {
            w,
            stream,
            v4: ack.version >= 4,
            shared: Arc::clone(&shared),
        });
        self.conns.push(Conn {
            shared,
            child: None,
            peer_version: ack.version,
            addr: addr.to_string(),
            resuming: None,
            ctrl_frames: 0,
            partition_until: None,
        });
        // Tell every existing worker the grown peer list so P2P traffic
        // reaches the newcomer (v5-gated inside send()).
        let update = CtrlMsg::Peers {
            addrs: self.peer_addrs.clone(),
        };
        for i in 0..w {
            if self.endpoint_usable(i) {
                let _ = self.send(i, update.clone());
            }
        }
        Ok(w)
    }

    fn probe_joined(&mut self, worker: usize) -> Option<LinkMatrix> {
        let n = self.conns.len();
        // Start from the measured matrix (grown to the new endpoint
        // count) so earlier measurements survive the incremental round.
        let mut bw = match &self.measured {
            Some(m) => {
                let g = m.grown(n + 1);
                (0..n + 1)
                    .map(|i| (0..n + 1).map(|j| g.raw(i, j)).collect())
                    .collect::<Vec<Vec<f64>>>()
            }
            None => vec![vec![PROBE_FLOOR_BPS; n + 1]; n + 1],
        };
        // Token space above the startup round's so late echoes of that
        // round can never satisfy this one.
        let mut token = (worker as u64 + 1) << 32;
        self.probe_ctrl_link(worker, &mut token, &mut bw);
        for i in 0..n {
            if i != worker {
                let (a, b) = (i.min(worker), i.max(worker));
                self.probe_peer_link(a, b, &mut token, &mut bw);
            }
        }
        self.measured = Some(LinkMatrix::new(bw));
        self.measured.clone()
    }

    fn shutdown(&mut self, worker: usize) {
        // Best-effort clean shutdown frame; the socket may already be
        // dead. The Sever rendezvous drains the write queue (bounded)
        // before closing, so the frame gets out to a live worker.
        let payload = wire::encode_ctrl(&CtrlMsg::Shutdown);
        let frame = if self.v4(worker) {
            let mut sb = self.conns[worker].shared.send_buf.lock().expect("send_buf");
            sb.seal(&payload)
        } else {
            payload
        };
        self.cmd(Cmd::Send { w: worker, frame });
        self.rendezvous_drop(worker);
        self.conns[worker]
            .shared
            .open
            .store(false, Ordering::SeqCst);
        self.conns[worker]
            .shared
            .link_up
            .store(false, Ordering::SeqCst);
        self.conns[worker].resuming = None;
        if let Some(mut child) = self.conns[worker].child.take() {
            // Bounded reap: give the process a moment to exit cleanly,
            // then kill. No zombies either way.
            let deadline = Instant::now() + Duration::from_secs(2);
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            }
        }
    }

    fn spawn_failures(&self) -> &[(usize, String)] {
        &self.failures
    }

    fn measured_links(&self) -> Option<&LinkMatrix> {
        self.measured.as_ref()
    }

    fn clock_offset_ns(&mut self, worker: usize) -> i64 {
        let clock = self.conns[worker]
            .shared
            .stats
            .clock
            .lock()
            .expect("clock lock");
        clock.1.offset_at(monotonic_ns())
    }

    fn wire_stats(&self) -> Vec<PeerWireStats> {
        self.conns
            .iter()
            .map(|c| {
                let clock = c.shared.stats.clock.lock().expect("clock lock");
                PeerWireStats {
                    frames_sent: c.shared.stats.frames_sent.load(Ordering::Relaxed),
                    bytes_sent: c.shared.stats.bytes_sent.load(Ordering::Relaxed),
                    frames_recv: c.shared.stats.frames_recv.load(Ordering::Relaxed),
                    bytes_recv: c.shared.stats.bytes_recv.load(Ordering::Relaxed),
                    hb_rtt: clock.0,
                    clock_offset_ns: clock.1.offset_at(monotonic_ns()),
                    telemetry_batches: c.shared.stats.telemetry_batches.load(Ordering::Relaxed),
                    telemetry_spans: c.shared.stats.telemetry_spans.load(Ordering::Relaxed),
                    telemetry_backlog: c.shared.stats.telemetry_backlog.load(Ordering::Relaxed),
                    resumes: c.shared.stats.resumes.load(Ordering::Relaxed),
                }
            })
            .collect()
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        for w in 0..self.conns.len() {
            self.shutdown(w);
        }
        let _ = self.cmd_tx.send(Cmd::Shutdown);
        self.wake.wake();
        if let Some(io) = self.io.take() {
            let _ = io.join();
        }
    }
}
