#![warn(missing_docs)]
//! # grout-net — the TCP transport for GrOUT
//!
//! Crosses the process (and node) boundary that `grout-core`'s
//! [`Transport`](grout_core::Transport) seam abstracts: where the
//! in-process [`ChannelTransport`](grout_core::ChannelTransport) wires
//! worker *threads* with crossbeam channels, this crate wires worker
//! *processes* (`grout-workerd`) with length-prefixed frames over
//! `std::net` sockets — no async runtime, no external dependencies.
//!
//! - [`wire`]: framing, versioned handshake and the hand-rolled binary
//!   codec for the controller↔worker message vocabulary,
//! - [`TcpTransport`]: the controller side — reader threads, heartbeat
//!   liveness, the startup bandwidth-probe round feeding the scheduler's
//!   measured [`LinkMatrix`](grout_core::LinkMatrix),
//! - [`serve`]: the worker side — the body of the `grout-workerd` binary,
//!   hosting the very same [`WorkerEngine`](grout_core::WorkerEngine) the
//!   in-process threads run,
//! - [`TcpExt`]/[`DistRuntime`]: the front-end gluing it onto
//!   [`Runtime::builder()`](grout_core::Runtime::builder),
//! - [`oplog`]: the crash-recovery journal and hot-standby log shipping
//!   built on the planner's replicated op log,
//! - [`ctld`]: the `grout-ctld` client protocol (wire-v6 `Hello::Client`
//!   handshake, [`CtldClient`]) and the session-tagged multi-tenant op
//!   journal,
//! - [`http`]: the hand-rolled HTTP/1.0 responder behind `--http` — the
//!   live introspection plane (`/metrics`, `/healthz`, `/sessions`,
//!   `/trace`) served from its own [`poll`] loop.
//!
//! Because controller logic, planner, and worker engine are all shared
//! with the in-process deployment, a seeded workload produces
//! byte-identical results over TCP loopback — the
//! `tests/dist_loopback.rs` differential test enforces it.

pub mod ctld;
pub mod http;
pub mod oplog;
pub mod poll;
pub mod session;
pub mod wire;

mod dist;
mod transport;
mod worker;

pub use ctld::{
    accept_client, client_connect, read_session_journal, ClientOutcome, CtldClient, SessionJournal,
};
pub use dist::{
    apply_durability, spawn_workerd, spawn_workerd_at, DistBuilder, DistError, DistRuntime, TcpExt,
    WorkerSpec,
};
pub use http::{http_get, HttpServer, Introspect};
pub use oplog::{
    read_journal, standby_serve, Journal, JournalFooter, JournalSink, ShipSink, StandbyOutcome,
};
pub use transport::{TcpConfig, TcpTransport};
pub use worker::{serve, serve_shutdown};
