//! The distributed front-end: [`WorkerSpec`], [`TcpExt`] and
//! [`DistRuntime`].
//!
//! ```no_run
//! use grout_core::Runtime;
//! use grout_net::{TcpExt, WorkerSpec};
//!
//! let mut rt = Runtime::builder()
//!     .tcp(vec![
//!         WorkerSpec::Connect("127.0.0.1:7401".into()),
//!         WorkerSpec::Connect("127.0.0.1:7402".into()),
//!     ])
//!     .build()
//!     .expect("workers reachable");
//! let a = rt.alloc_f32(1024);
//! # let _ = a;
//! ```
//!
//! Each [`WorkerSpec`] is one worker endpoint: either an already-running
//! `grout-workerd` to connect to, or a binary to spawn (the spec waits for
//! its `LISTENING <addr>` announcement on stdout). The builder's knob
//! surface (policy, faults, telemetry, ...) carries over unchanged; only
//! the transport differs from `build_local()`.

use std::io::BufRead;
use std::process::{Child, Command, Stdio};

use grout_core::{DurabilityOptions, LocalError, LocalRuntime, RuntimeBuilder};

use crate::oplog::{JournalSink, ShipSink};
use crate::transport::{TcpConfig, TcpTransport};

/// One worker endpoint of a distributed deployment.
#[derive(Debug, Clone)]
pub enum WorkerSpec {
    /// Connect to a `grout-workerd` already listening at this address.
    Connect(String),
    /// Spawn this `grout-workerd` binary with `--listen 127.0.0.1:0` and
    /// adopt it (the OS picks the port; the daemon announces it).
    Spawn(std::path::PathBuf),
}

/// Why a distributed deployment failed to come up.
#[derive(Debug)]
pub enum DistError {
    /// A `Spawn` spec's process could not be launched or never announced
    /// its listen address.
    Spawn {
        /// The binary.
        program: String,
        /// What went wrong.
        error: String,
    },
    /// The runtime rejected the mesh (config error, or every single
    /// worker was unreachable).
    Local(LocalError),
    /// A durability sink (the op-log journal file or the hot-standby
    /// ship-log connection) could not be set up.
    Durability(String),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Spawn { program, error } => {
                write!(f, "cannot spawn worker `{program}`: {error}")
            }
            DistError::Local(e) => write!(f, "{e}"),
            DistError::Durability(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<LocalError> for DistError {
    fn from(e: LocalError) -> Self {
        DistError::Local(e)
    }
}

/// A [`LocalRuntime`] whose workers are processes on the other end of TCP
/// sockets. Derefs to the runtime — the full API (alloc, launch,
/// synchronize, stats, telemetry) is identical; the extras here are the
/// process-level handles the chaos harness needs.
pub struct DistRuntime {
    inner: LocalRuntime,
    pids: Vec<Option<u32>>,
    addrs: Vec<String>,
    /// Transport knobs kept for mid-run spawns ([`DistRuntime::join`]).
    cfg: TcpConfig,
    /// Daemons spawned by [`DistRuntime::join`] mid-run: the transport
    /// owns startup children, but a joined child is reaped here on
    /// [`DistRuntime::leave`] (the transport sits behind the `Transport`
    /// trait object by then).
    joined: Vec<(usize, Child)>,
}

impl DistRuntime {
    /// Attaches one more worker to the running mesh (elastic scale-out):
    /// spawns the daemon if the spec asks for it, dials and handshakes
    /// it, re-probes its links incrementally and grows the plan's worker
    /// set through the op log. Returns the new worker's index.
    ///
    /// The newcomer starts empty and receives kernels and inputs on
    /// demand — the very next plan can place CEs on it.
    pub fn join(&mut self, spec: WorkerSpec) -> Result<usize, DistError> {
        let (addr, child) = match spec {
            WorkerSpec::Connect(addr) => (addr, None),
            WorkerSpec::Spawn(bin) => {
                let (child, addr) = spawn_workerd(&bin, &self.cfg)?;
                (addr, Some(child))
            }
        };
        let w = match self.inner.join_worker(&addr) {
            Ok(w) => w,
            Err(e) => {
                if let Some(mut child) = child {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                return Err(e.into());
            }
        };
        if self.addrs.len() <= w {
            self.addrs.resize_with(w + 1, String::new);
            self.pids.resize(w + 1, None);
        }
        self.addrs[w] = addr;
        if let Some(child) = child {
            self.pids[w] = Some(child.id());
            self.joined.push((w, child));
        }
        Ok(w)
    }

    /// Detaches worker `w` cleanly (elastic scale-in): sole-copy data is
    /// rebalanced off the worker first, the daemon is asked to flush and
    /// halt, and — if this runtime spawned it via [`DistRuntime::join`] —
    /// the process is reaped. No quarantine, no lineage replay.
    pub fn leave(&mut self, w: usize) -> Result<(), DistError> {
        self.inner.leave_worker(w)?;
        if let Some(at) = self.joined.iter().position(|(i, _)| *i == w) {
            let (_, mut child) = self.joined.swap_remove(at);
            // The daemon exits on the Leave ack; bound the reap so a
            // wedged process cannot hang the controller.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if std::time::Instant::now() < deadline => {
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    /// OS pid of the spawned `grout-workerd` backing worker `w` (`None`
    /// for `Connect` workers, which this runtime does not own).
    pub fn worker_pid(&self, w: usize) -> Option<u32> {
        self.pids.get(w).copied().flatten()
    }

    /// Listen address of worker `w`'s daemon. A chaos harness that killed
    /// the process can restart a fresh `grout-workerd` here (see
    /// [`spawn_workerd_at`]) and call
    /// [`rejoin`](grout_core::LocalRuntime::rejoin) to fold it back into
    /// the mesh under a new membership epoch.
    pub fn worker_addr(&self, w: usize) -> Option<&str> {
        self.addrs.get(w).map(String::as_str)
    }

    /// The wrapped runtime.
    pub fn into_inner(self) -> LocalRuntime {
        self.inner
    }
}

impl std::ops::Deref for DistRuntime {
    type Target = LocalRuntime;
    fn deref(&self) -> &LocalRuntime {
        &self.inner
    }
}

impl std::ops::DerefMut for DistRuntime {
    fn deref_mut(&mut self) -> &mut LocalRuntime {
        &mut self.inner
    }
}

/// Builder tail for distributed deployments; made by [`TcpExt::tcp`].
pub struct DistBuilder {
    builder: RuntimeBuilder,
    specs: Vec<WorkerSpec>,
}

impl DistBuilder {
    /// Spawn/connect all workers, run the handshake + bandwidth-probe
    /// round, and build the runtime over the resulting mesh.
    ///
    /// The transport knobs derive from the builder's grouped
    /// [`NetOptions`](grout_core::NetOptions) (falling back to its
    /// [`fault_config`](RuntimeBuilder::fault_config), so one surface
    /// tunes the in-process and TCP deployments alike), the
    /// [`net_faults`](RuntimeBuilder::net_faults) chaos plan carries over
    /// to the socket layer, and the builder's
    /// [`durability`](RuntimeBuilder::durability) options are applied to
    /// the finished runtime (see [`apply_durability`]).
    pub fn build(self) -> Result<DistRuntime, DistError> {
        let durability = self.builder.durability_ref().clone();
        let mut cfg = TcpConfig::from_fault_config(self.builder.fault_config_ref());
        cfg.net_faults = self.builder.net_faults_ref().clone();
        if let Some(net) = self.builder.net_options_ref() {
            if let Some(b) = net.probe_bytes {
                cfg.probe_bytes = b;
            }
            if let Some(ms) = net.probe_timeout_ms {
                cfg.probe_timeout = std::time::Duration::from_millis(ms);
            }
            if let Some(ms) = net.spawn_timeout_ms {
                cfg.spawn_timeout = std::time::Duration::from_millis(ms);
            }
        }
        let mut addrs = Vec::with_capacity(self.specs.len());
        let mut children: Vec<Option<Child>> = Vec::with_capacity(self.specs.len());
        for spec in &self.specs {
            match spec {
                WorkerSpec::Connect(addr) => {
                    addrs.push(addr.clone());
                    children.push(None);
                }
                WorkerSpec::Spawn(bin) => {
                    let (child, addr) = spawn_workerd(bin, &cfg)?;
                    addrs.push(addr);
                    children.push(Some(child));
                }
            }
        }
        let transport = TcpTransport::connect(&addrs, children, &cfg);
        let pids = transport.child_pids();
        let builder = self.builder.workers(addrs.len());
        let mut inner = builder.build_with_transport(Box::new(transport))?;
        apply_durability(&mut inner, &durability)?;
        Ok(DistRuntime {
            inner,
            pids,
            addrs,
            cfg,
            joined: Vec::new(),
        })
    }
}

/// Adds the distributed entry point to [`RuntimeBuilder`]; import the
/// trait and every existing builder chain gains `.tcp(...)`.
pub trait TcpExt {
    /// Deploy over TCP to these worker endpoints (the worker count is
    /// taken from the spec list, overriding `.workers(n)`).
    fn tcp(self, specs: Vec<WorkerSpec>) -> DistBuilder;
}

impl TcpExt for RuntimeBuilder {
    fn tcp(self, specs: Vec<WorkerSpec>) -> DistBuilder {
        DistBuilder {
            builder: self,
            specs,
        }
    }
}

/// Attaches the op-log durability sinks a
/// [`DurabilityOptions`](grout_core::DurabilityOptions) asks for: a
/// [`JournalSink`] streaming every planner op to the journal file, a
/// [`ShipSink`] replicating it to the hot standby. [`DistBuilder::build`]
/// calls this for TCP deployments; in-process front-ends (e.g.
/// `grout-run --workers N`) call it on their [`LocalRuntime`] so one
/// grouped option struct covers both.
pub fn apply_durability(rt: &mut LocalRuntime, opts: &DurabilityOptions) -> Result<(), DistError> {
    if opts.journal.is_none() && opts.ship_log.is_none() {
        return Ok(());
    }
    let cfg = rt.planner().config().clone();
    let links = rt.planner().links().cloned();
    if let Some(path) = &opts.journal {
        let sink = JournalSink::create(path, &cfg, &links).map_err(|e| {
            DistError::Durability(format!("cannot create journal `{}`: {e}", path.display()))
        })?;
        rt.add_op_sink(Box::new(sink));
        eprintln!("[grout] journalling planner ops to {}", path.display());
    }
    if let Some(addr) = &opts.ship_log {
        let sink = ShipSink::connect(addr, &cfg, &links)
            .map_err(|e| DistError::Durability(format!("cannot reach standby at {addr}: {e}")))?;
        rt.add_op_sink(Box::new(sink));
        eprintln!("[grout] shipping op log to standby at {addr}");
    }
    Ok(())
}

/// Launches `bin --listen 127.0.0.1:0` and waits for its
/// `LISTENING <addr>` announcement.
pub fn spawn_workerd(bin: &std::path::Path, cfg: &TcpConfig) -> Result<(Child, String), DistError> {
    spawn_workerd_at(bin, "127.0.0.1:0", cfg)
}

/// Launches `bin --listen <listen>` and waits for its `LISTENING <addr>`
/// announcement. With an explicit port this restarts a worker at the
/// address the mesh already knows — the rejoin path: kill, respawn here,
/// then [`rejoin`](grout_core::LocalRuntime::rejoin).
pub fn spawn_workerd_at(
    bin: &std::path::Path,
    listen: &str,
    cfg: &TcpConfig,
) -> Result<(Child, String), DistError> {
    let program = bin.display().to_string();
    let mut child = Command::new(bin)
        .args(["--listen", listen])
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|e| DistError::Spawn {
            program: program.clone(),
            error: e.to_string(),
        })?;
    let stdout = child.stdout.take().expect("stdout piped");
    // Read the announcement on a thread so a wedged child cannot hang us
    // past the spawn timeout.
    let (tx, rx) = std::sync::mpsc::channel::<Option<String>>();
    std::thread::spawn(move || {
        let mut lines = std::io::BufReader::new(stdout).lines();
        let addr = lines
            .next()
            .and_then(|l| l.ok())
            .and_then(|l| l.strip_prefix("LISTENING ").map(|a| a.trim().to_string()));
        let _ = tx.send(addr);
        // Keep draining so the child never blocks on a full pipe.
        for _ in lines {}
    });
    match rx.recv_timeout(cfg.spawn_timeout) {
        Ok(Some(addr)) => Ok((child, addr)),
        Ok(None) | Err(_) => {
            let _ = child.kill();
            let _ = child.wait();
            Err(DistError::Spawn {
                program,
                error: "no LISTENING announcement before the spawn timeout".into(),
            })
        }
    }
}
