//! A minimal hand-rolled HTTP/1.0 responder for the live introspection
//! plane — `/metrics`, `/healthz`, `/sessions`, `/trace`.
//!
//! Consistent with the rest of the crate this carries no HTTP library:
//! requests are parsed to their request line only, every response closes
//! the connection (`Connection: close`), and the whole server is one
//! poll-loop thread built from the same [`poll`](crate::poll) primitives
//! the transports use ([`poll_fds`], [`Waker`], [`WriteQueue`]). That is
//! all a scrape endpoint needs: Prometheus, `curl`, and `grout-top` all
//! speak one-request-per-connection HTTP happily.
//!
//! The daemons implement [`Introspect`] and hand it to
//! [`HttpServer::spawn`]; the server renders whatever those callbacks
//! return at request time, so every scrape observes live state.
//!
//! ## Endpoint contracts
//!
//! | Path | Content type | Body |
//! |------|--------------|------|
//! | `/metrics` | `text/plain; version=0.0.4` | Prometheus text exposition |
//! | `/healthz` | `application/json` | admission/fleet/standby state |
//! | `/sessions` | `application/json` | per-session state array |
//! | `/trace?last_ms=N` | `application/json` | Chrome-trace counter window |
//!
//! Anything else is a 404; non-GET methods are a 405; a request line
//! over [`MAX_REQUEST_BYTES`] is a 400 (and the socket is dropped).

use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::poll::{poll_fds, PollFd, Waker, WriteQueue, POLLERR, POLLHUP, POLLIN, POLLOUT};

/// Requests longer than this (headers included) are rejected with a 400.
pub const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Default `/trace` window when the query string omits `last_ms`.
pub const DEFAULT_TRACE_WINDOW_MS: u64 = 5_000;

/// What the daemon exposes to the introspection plane. Methods are
/// called on the server thread at request time; implementations should
/// snapshot shared state briefly, not block.
pub trait Introspect: Send + Sync {
    /// The `/metrics` body: Prometheus text exposition (version 0.0.4).
    fn metrics_text(&self) -> String;
    /// The `/healthz` body: JSON health document. `healthy == false`
    /// also turns the status line into a 503 so load balancers and
    /// `curl -f` agree with the body.
    fn healthz_json(&self) -> String;
    /// Whether `/healthz` should report 200 (true) or 503 (false).
    fn healthy(&self) -> bool {
        true
    }
    /// The `/sessions` body: JSON array of per-session state.
    fn sessions_json(&self) -> String;
    /// The `/trace` body: Chrome-trace JSON for the last `last_ms`
    /// milliseconds of history.
    fn trace_json(&self, last_ms: u64) -> String;
}

/// One accepted connection: accumulate the request, then drain the
/// response.
struct Conn {
    stream: TcpStream,
    request: Vec<u8>,
    out: WriteQueue,
    /// The request has been answered; close once `out` drains.
    responding: bool,
}

/// A running introspection endpoint: one thread, one listener. Dropping
/// the handle (or calling [`shutdown`](Self::shutdown)) stops the loop
/// and joins the thread.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    wake: crate::poll::WakeHandle,
    join: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Starts serving `source` on `listener` from a dedicated poll-loop
    /// thread.
    pub fn spawn(listener: TcpListener, source: Arc<dyn Introspect>) -> io::Result<HttpServer> {
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let waker = Waker::new()?;
        let wake = waker.handle()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_loop = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("grout-http".to_string())
            .spawn(move || serve_loop(listener, waker, stop_loop, source))?;
        Ok(HttpServer {
            addr,
            stop,
            wake,
            join: Some(join),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the loop and joins the thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.wake.wake();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_loop(
    listener: TcpListener,
    waker: Waker,
    stop: Arc<AtomicBool>,
    source: Arc<dyn Introspect>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        let mut fds = Vec::with_capacity(2 + conns.len());
        fds.push(PollFd {
            fd: listener.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        });
        fds.push(PollFd {
            fd: waker.fd(),
            events: POLLIN,
            revents: 0,
        });
        for c in &conns {
            fds.push(PollFd {
                fd: c.stream.as_raw_fd(),
                events: if c.responding { POLLOUT } else { POLLIN },
                revents: 0,
            });
        }
        // A bounded timeout keeps shutdown responsive even if the wake
        // datagram is lost.
        if poll_fds(&mut fds, Some(Duration::from_millis(500))).is_err() {
            break;
        }
        if fds[1].revents & POLLIN != 0 {
            waker.drain();
        }
        // Walk connections against their poll slots; drop the finished
        // and the broken. Fresh accepts join afterwards so the zip stays
        // aligned with the poll set built above.
        let mut keep = Vec::with_capacity(conns.len());
        for (mut conn, slot) in conns.into_iter().zip(fds[2..].iter()) {
            if slot.revents & (POLLERR | POLLHUP) != 0 && !conn.responding {
                continue;
            }
            if !conn.responding && slot.revents & POLLIN != 0 {
                match drain_request(&mut conn) {
                    Ok(true) => {}
                    Ok(false) => continue, // EOF before a full request
                    Err(_) => continue,
                }
                if let Some(req) = full_request(&conn.request) {
                    let response = respond(req, source.as_ref());
                    conn.out.enqueue_raw(response);
                    conn.responding = true;
                } else if conn.request.len() > MAX_REQUEST_BYTES {
                    conn.out.enqueue_raw(render(
                        400,
                        "Bad Request",
                        "text/plain",
                        "request too large\n",
                    ));
                    conn.responding = true;
                }
            }
            if conn.responding {
                match conn.out.flush(&mut conn.stream) {
                    Ok(true) => {
                        // Response fully written: half-close so the
                        // client sees EOF, then drop.
                        let _ = conn.stream.flush();
                        let _ = conn.stream.shutdown(std::net::Shutdown::Write);
                        continue;
                    }
                    Ok(false) => {}
                    Err(_) => continue,
                }
            }
            keep.push(conn);
        }
        conns = keep;
        if fds[0].revents & POLLIN != 0 {
            while let Ok((stream, _)) = listener.accept() {
                if stream.set_nonblocking(true).is_ok() {
                    conns.push(Conn {
                        stream,
                        request: Vec::new(),
                        out: WriteQueue::new(),
                        responding: false,
                    });
                }
            }
        }
    }
}

/// Reads whatever the socket has. `Ok(false)` means the peer closed
/// before completing a request.
fn drain_request(conn: &mut Conn) -> io::Result<bool> {
    use std::io::Read as _;
    let mut chunk = [0u8; 4096];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => return Ok(false),
            Ok(n) => {
                conn.request.extend_from_slice(&chunk[..n]);
                if conn.request.len() > MAX_REQUEST_BYTES + 4096 {
                    return Ok(true); // let the caller 400 it
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(true),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// The request line, once the header block has fully arrived.
fn full_request(buf: &[u8]) -> Option<&str> {
    let head_end = buf
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|p| p + 2))?;
    let head = std::str::from_utf8(&buf[..head_end]).ok()?;
    head.lines().next()
}

/// Routes one request line to its endpoint and renders the full
/// response.
fn respond(request_line: &str, source: &dyn Introspect) -> Vec<u8> {
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method != "GET" {
        return render(405, "Method Not Allowed", "text/plain", "GET only\n");
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/metrics" => render(
            200,
            "OK",
            "text/plain; version=0.0.4",
            &source.metrics_text(),
        ),
        "/healthz" => {
            let body = source.healthz_json();
            if source.healthy() {
                render(200, "OK", "application/json", &body)
            } else {
                render(503, "Service Unavailable", "application/json", &body)
            }
        }
        "/sessions" => render(200, "OK", "application/json", &source.sessions_json()),
        "/trace" => {
            let last_ms = query_param(query, "last_ms")
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(DEFAULT_TRACE_WINDOW_MS);
            render(200, "OK", "application/json", &source.trace_json(last_ms))
        }
        _ => render(404, "Not Found", "text/plain", "not found\n"),
    }
}

/// First value of `key` in a query string (`a=1&b=2`).
fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

/// A complete HTTP/1.0 response with `Connection: close`.
fn render(status: u16, reason: &str, content_type: &str, body: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + body.len());
    let _ = write!(
        out,
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    out.extend_from_slice(body.as_bytes());
    out
}

/// Performs one blocking HTTP GET against `addr` and returns `(status,
/// body)`. This is the client half `grout-top` and the tests use — the
/// same no-deps stance as the server.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write!(stream, "GET {path} HTTP/1.0\r\nHost: grout\r\n\r\n")?;
    let mut raw = Vec::new();
    {
        use std::io::Read as _;
        stream.read_to_end(&mut raw)?;
    }
    let text = String::from_utf8_lossy(&raw);
    let (head, body) = match text.split_once("\r\n\r\n") {
        Some((h, b)) => (h, b),
        None => text
            .split_once("\n\n")
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header terminator"))?,
    };
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake;

    impl Introspect for Fake {
        fn metrics_text(&self) -> String {
            "# HELP grout_up 1 when serving\n# TYPE grout_up gauge\ngrout_up 1\n".to_string()
        }
        fn healthz_json(&self) -> String {
            "{\"healthy\":true}".to_string()
        }
        fn sessions_json(&self) -> String {
            "[]".to_string()
        }
        fn trace_json(&self, last_ms: u64) -> String {
            format!("{{\"last_ms\":{last_ms}}}")
        }
    }

    fn serve() -> (HttpServer, String) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let server = HttpServer::spawn(listener, Arc::new(Fake)).unwrap();
        let addr = server.local_addr().to_string();
        (server, addr)
    }

    #[test]
    fn serves_all_endpoints() {
        let (server, addr) = serve();
        let t = Duration::from_secs(5);
        let (status, body) = http_get(&addr, "/metrics", t).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("grout_up 1"));
        let (status, body) = http_get(&addr, "/healthz", t).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"healthy\":true}");
        let (status, body) = http_get(&addr, "/sessions", t).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "[]");
        let (status, body) = http_get(&addr, "/trace?last_ms=250", t).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"last_ms\":250}");
        let (status, body) = http_get(&addr, "/trace", t).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, format!("{{\"last_ms\":{DEFAULT_TRACE_WINDOW_MS}}}"));
        server.shutdown();
    }

    #[test]
    fn unknown_paths_and_methods_are_refused() {
        let (server, addr) = serve();
        let t = Duration::from_secs(5);
        let (status, _) = http_get(&addr, "/nope", t).unwrap();
        assert_eq!(status, 404);
        // A POST by hand.
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream.set_read_timeout(Some(t)).unwrap();
        write!(stream, "POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut raw = String::new();
        {
            use std::io::Read as _;
            stream.read_to_string(&mut raw).unwrap();
        }
        assert!(raw.starts_with("HTTP/1.0 405"));
        server.shutdown();
    }

    #[test]
    fn concurrent_scrapes_all_answer() {
        let (server, addr) = serve();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    http_get(&addr, "/metrics", Duration::from_secs(5)).unwrap()
                })
            })
            .collect();
        for h in handles {
            let (status, body) = h.join().unwrap();
            assert_eq!(status, 200);
            assert!(body.contains("grout_up 1"));
        }
        server.shutdown();
    }

    #[test]
    fn unhealthy_source_serves_503_with_body() {
        struct Sick;
        impl Introspect for Sick {
            fn metrics_text(&self) -> String {
                String::new()
            }
            fn healthz_json(&self) -> String {
                "{\"healthy\":false}".to_string()
            }
            fn healthy(&self) -> bool {
                false
            }
            fn sessions_json(&self) -> String {
                "[]".to_string()
            }
            fn trace_json(&self, _last_ms: u64) -> String {
                "{}".to_string()
            }
        }
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let server = HttpServer::spawn(listener, Arc::new(Sick)).unwrap();
        let addr = server.local_addr().to_string();
        let (status, body) = http_get(&addr, "/healthz", Duration::from_secs(5)).unwrap();
        assert_eq!(status, 503);
        assert_eq!(body, "{\"healthy\":false}");
        server.shutdown();
    }
}
