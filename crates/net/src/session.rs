//! The reliable-session layer under wire v4: [`SendBuffer`] and
//! [`RecvCursor`].
//!
//! Controller↔worker sockets carry two kinds of post-handshake frames
//! (see [`crate::wire::Envelope`]): *ephemeral* frames (heartbeats, clock
//! sync, session acks) that are never retransmitted, and *reliable*
//! frames (plan traffic, completions, telemetry) stamped with a per-peer
//! monotonic sequence number. Each side keeps a [`SendBuffer`] of sealed
//! reliable frames it has written but not yet seen cumulatively acked,
//! and a [`RecvCursor`] deduplicating what it has received. When a socket
//! dies and a resume handshake succeeds, both sides replay their unacked
//! tails from the peer's cursor — the merged stream each engine observes
//! is identical to the one an unbroken socket would have delivered, which
//! is what makes a transient partition invisible to the planner.
//!
//! Both structs are pure (no I/O, no clocks) so the resume algebra can be
//! property-tested against arbitrary drop/duplicate/reorder schedules.

use std::collections::{BTreeMap, VecDeque};

use crate::wire;

/// Cumulative-ack cadence: a receiver acks its cursor after every this
/// many delivered reliable frames (the worker additionally piggybacks an
/// ack on each heartbeat, so an idle tail still gets trimmed).
pub const ACK_EVERY: u64 = 16;

/// Default [`SendBuffer`] capacity in frames. The buffer only bounds
/// *memory between acks*; a resume needing frames older than the window
/// fails and the session is declared dead, so the cap is set well above
/// anything `ACK_EVERY` plus one reconnect window of traffic can leave
/// unacked.
pub const SEND_WINDOW: usize = 4096;

/// Sender half of the reliable session: assigns sequence numbers, seals
/// reliable envelopes, and keeps every sealed frame until it is
/// cumulatively acked so a resume can replay the unacked tail.
#[derive(Debug)]
pub struct SendBuffer {
    /// Sequence number the next sealed frame will carry.
    next_seq: u64,
    /// Sequence number of `frames.front()` (== `next_seq` when empty).
    base: u64,
    /// Sealed reliable frames for seqs `base..next_seq`, oldest first.
    frames: VecDeque<Vec<u8>>,
    cap: usize,
}

impl Default for SendBuffer {
    fn default() -> Self {
        SendBuffer::new(SEND_WINDOW)
    }
}

impl SendBuffer {
    /// An empty buffer holding at most `cap` unacked frames.
    pub fn new(cap: usize) -> Self {
        SendBuffer {
            next_seq: 0,
            base: 0,
            frames: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    /// Seals `payload` as the next reliable frame, buffers the sealed
    /// bytes for potential replay, and returns them for writing. If the
    /// window is full the oldest unacked frame is evicted — a later
    /// resume reaching back past the eviction point will fail (see
    /// [`SendBuffer::replay_from`]).
    pub fn seal(&mut self, payload: &[u8]) -> Vec<u8> {
        let frame = wire::seal_reliable(self.next_seq, payload);
        self.next_seq += 1;
        if self.frames.len() == self.cap {
            self.frames.pop_front();
            self.base += 1;
        }
        self.frames.push_back(frame.clone());
        frame
    }

    /// Processes a cumulative ack: the peer has everything below
    /// `cursor`, so those frames can be dropped.
    pub fn ack(&mut self, cursor: u64) {
        while self.base < cursor.min(self.next_seq) {
            self.frames.pop_front();
            self.base += 1;
        }
    }

    /// The sealed frames from `cursor` on, for replay after a resume.
    /// `None` means the window no longer reaches back to `cursor` (an
    /// eviction happened) and the session cannot be resumed losslessly.
    pub fn replay_from(&self, cursor: u64) -> Option<Vec<Vec<u8>>> {
        if cursor < self.base {
            return None;
        }
        let skip = (cursor - self.base) as usize;
        Some(self.frames.iter().skip(skip).cloned().collect())
    }

    /// Frames sealed but not yet acked.
    pub fn in_flight(&self) -> usize {
        self.frames.len()
    }

    /// The sequence number the next frame will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

/// Receiver half of the reliable session: delivers each sequence number
/// exactly once, in order. Duplicates (replays overlapping frames already
/// seen) are discarded; out-of-order arrivals (a replayed tail on a fresh
/// socket racing the last frames of the dying one, or chaos reordering)
/// are parked and released the moment the gap fills.
#[derive(Debug, Default)]
pub struct RecvCursor {
    next: u64,
    duplicates: u64,
    /// Out-of-order frames awaiting their predecessors, by seq.
    pending: BTreeMap<u64, Vec<u8>>,
}

impl RecvCursor {
    /// A cursor expecting sequence number 0 first.
    pub fn new() -> Self {
        RecvCursor::default()
    }

    /// Feeds one received reliable frame; returns the payloads that are
    /// now deliverable, in sequence order (empty for duplicates and for
    /// arrivals still ahead of a gap).
    pub fn accept(&mut self, seq: u64, payload: Vec<u8>) -> Vec<Vec<u8>> {
        if seq < self.next {
            self.duplicates += 1;
            return Vec::new();
        }
        if seq > self.next {
            if self.pending.insert(seq, payload).is_some() {
                self.duplicates += 1;
            }
            return Vec::new();
        }
        let mut ready = vec![payload];
        self.next += 1;
        while let Some(p) = self.pending.remove(&self.next) {
            ready.push(p);
            self.next += 1;
        }
        ready
    }

    /// The cumulative-ack cursor: every seq below this was delivered.
    pub fn cursor(&self) -> u64 {
        self.next
    }

    /// Duplicate frames discarded so far (resume replays overlap with
    /// in-flight acks by design, so a nonzero count is normal).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{open_envelope, Envelope};
    use proptest::prelude::*;

    fn payload_of(frame: &[u8]) -> (u64, Vec<u8>) {
        match open_envelope(frame.to_vec()).unwrap() {
            Envelope::Reliable { seq, payload } => (seq, payload),
            other => panic!("expected reliable frame, got {other:?}"),
        }
    }

    #[test]
    fn seal_ack_replay_roundtrip() {
        let mut sb = SendBuffer::new(8);
        for i in 0u8..5 {
            sb.seal(&[i]);
        }
        assert_eq!(sb.in_flight(), 5);
        sb.ack(3);
        assert_eq!(sb.in_flight(), 2);
        let tail = sb.replay_from(3).unwrap();
        assert_eq!(tail.len(), 2);
        assert_eq!(payload_of(&tail[0]), (3, vec![3]));
        assert_eq!(payload_of(&tail[1]), (4, vec![4]));
        // Reaching back before the acked point fails.
        assert!(sb.replay_from(2).is_none());
        // Acks never rewind and tolerate cursors past the end.
        sb.ack(1);
        assert_eq!(sb.in_flight(), 2);
        sb.ack(100);
        assert_eq!(sb.in_flight(), 0);
        assert_eq!(sb.next_seq(), 5);
    }

    #[test]
    fn window_eviction_breaks_old_resumes_only() {
        let mut sb = SendBuffer::new(3);
        for i in 0u8..5 {
            sb.seal(&[i]);
        }
        // Frames 0 and 1 were evicted.
        assert!(sb.replay_from(1).is_none());
        let tail = sb.replay_from(2).unwrap();
        assert_eq!(tail.len(), 3);
        assert_eq!(payload_of(&tail[0]).0, 2);
    }

    #[test]
    fn cursor_delivers_exactly_once_in_order() {
        let mut rc = RecvCursor::new();
        assert_eq!(rc.accept(0, vec![0]), vec![vec![0]]);
        assert!(rc.accept(0, vec![0]).is_empty()); // duplicate
        assert!(rc.accept(2, vec![2]).is_empty()); // parked behind the gap
                                                   // Filling the gap releases the parked frame in order.
        assert_eq!(rc.accept(1, vec![1]), vec![vec![1], vec![2]]);
        assert!(rc.accept(2, vec![2]).is_empty()); // late retransmission
        assert_eq!(rc.cursor(), 3);
        assert_eq!(rc.duplicates(), 2);
    }

    /// One fate per link transit of a frame.
    #[derive(Debug, Clone, Copy)]
    enum Fate {
        Deliver,
        Drop,
        Duplicate,
        /// Hold the frame back and deliver it after the rest of the round
        /// (models reordering).
        Delay,
    }

    fn arb_fates() -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(0u8..4, 0..64)
    }

    fn fate_of(code: u8) -> Fate {
        match code {
            0 => Fate::Deliver,
            1 => Fate::Drop,
            2 => Fate::Duplicate,
            _ => Fate::Delay,
        }
    }

    proptest! {
        /// The resume algebra's core contract: over a link that drops,
        /// duplicates and reorders arbitrarily, retransmission rounds
        /// driven by cumulative acks deliver exactly the original
        /// payload stream, in order, with no duplicates.
        #[test]
        fn lossy_link_with_retransmission_delivers_identical_stream(
            n_msgs in 1usize..48,
            fates in arb_fates(),
        ) {
            let originals: Vec<Vec<u8>> =
                (0..n_msgs).map(|i| vec![i as u8, 0xAB]).collect();
            let mut sb = SendBuffer::new(SEND_WINDOW);
            let mut rc = RecvCursor::new();
            let mut delivered: Vec<Vec<u8>> = Vec::new();
            let mut fate_idx = 0;

            // Round 0: first transmission of everything. Each later round
            // replays the unacked tail (exactly what a resume does) with
            // a fresh slice of the fate schedule; the final round is
            // lossless so every schedule converges.
            let mut wire_frames: Vec<Vec<u8>> =
                originals.iter().map(|p| sb.seal(p)).collect();
            let rounds = fates.len() + 2;
            for round in 0..rounds {
                let lossless = round == rounds - 1;
                let mut arrivals: Vec<Vec<u8>> = Vec::new();
                let mut held: Vec<Vec<u8>> = Vec::new();
                for frame in wire_frames.drain(..) {
                    let fate = if lossless || fates.is_empty() {
                        Fate::Deliver
                    } else {
                        let f = fate_of(fates[fate_idx % fates.len()]);
                        fate_idx += 1;
                        f
                    };
                    match fate {
                        Fate::Deliver => arrivals.push(frame),
                        Fate::Drop => {}
                        Fate::Duplicate => {
                            arrivals.push(frame.clone());
                            arrivals.push(frame);
                        }
                        Fate::Delay => held.push(frame),
                    }
                }
                arrivals.extend(held);
                for frame in arrivals {
                    let (seq, payload) = payload_of(&frame);
                    delivered.extend(rc.accept(seq, payload));
                }
                // Cumulative ack closes the round; the sender retransmits
                // the unacked tail.
                sb.ack(rc.cursor());
                if sb.in_flight() == 0 {
                    break;
                }
                wire_frames = sb.replay_from(rc.cursor()).unwrap();
            }
            prop_assert_eq!(&delivered, &originals);
            prop_assert_eq!(rc.cursor(), n_msgs as u64);
        }

        /// Acks only ever shrink the in-flight window, and the replay
        /// tail always starts exactly at the requested cursor.
        #[test]
        fn ack_monotone_and_replay_aligned(
            acks in proptest::collection::vec(0u64..64, 1..16),
        ) {
            let mut sb = SendBuffer::new(SEND_WINDOW);
            for i in 0..48u8 {
                sb.seal(&[i]);
            }
            let mut high = 0u64;
            for a in acks {
                let before = sb.in_flight();
                sb.ack(a);
                prop_assert!(sb.in_flight() <= before);
                high = high.max(a.min(48));
                if let Some(tail) = sb.replay_from(high) {
                    if let Some(first) = tail.first() {
                        prop_assert_eq!(payload_of(first).0, high);
                    }
                    prop_assert_eq!(tail.len() as u64, 48 - high);
                }
            }
        }
    }
}
