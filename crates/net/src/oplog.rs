//! The on-disk op journal and the controller log-shipping endpoints.
//!
//! Both consumers of the planner op log that cross a process boundary
//! live here:
//!
//! - [`JournalSink`] streams every [`PlannerOp`] to disk as it is
//!   appended (`grout-run --journal`), producing a crash-recovery
//!   write-ahead journal that `grout-replay` reconstructs the final
//!   planner state from ([`read_journal`] + [`Journal::replay`]);
//! - [`ShipSink`] tails the log over TCP to a hot-standby controller
//!   (`grout-run --ship-log`), whose [`standby_serve`] loop applies each
//!   op to a replica [`Planner`] and acknowledges it with the replica's
//!   state digest — so the primary detects divergence at the offending
//!   op, not at takeover.
//!
//! ## Journal file format
//!
//! ```text
//! magic b"GRJL" | version: u16 LE
//! frame*: tag: u8 | len: u32 LE | payload (len bytes)
//! ```
//!
//! The first frame is the header (tag `0x00`): the planner configuration
//! plus the link matrix the planner was built with — probed matrices are
//! run-specific, so replay must not re-probe. Each op is one tag-`0x01`
//! frame ([`wire::encode_op`]). A tag-`0x02` footer (`last_seq`,
//! `digest`) is written when the journalling process exits cleanly; a
//! crashed run leaves no footer (and possibly a truncated tail frame),
//! and replay still reconstructs every op that hit the disk.

use std::fs::File;
use std::io::{BufWriter, Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::Path;

use grout_core::{CtrlMsg, LinkMatrix, OpSink, Planner, PlannerConfig, PlannerOp, WorkerMsg};

use crate::wire::{self, WireError};

/// Journal file magic: the first four bytes.
pub const JOURNAL_MAGIC: [u8; 4] = *b"GRJL";

/// Journal format version. v2: the serialized planner config grew the
/// partition-tolerance knobs (heartbeat cadence, staleness threshold,
/// reconnect window) and ops 7–9 (suspect/reinstate/rejoin membership
/// transitions) joined the vocabulary.
pub const JOURNAL_VERSION: u16 = 2;

const TAG_HEADER: u8 = 0x00;
const TAG_OP: u8 = 0x01;
const TAG_FOOTER: u8 = 0x02;

/// The clean-exit footer: the last op's sequence number and the planner
/// state digest after applying it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalFooter {
    /// Log position of the journal's last op (0-based).
    pub last_seq: u64,
    /// [`Planner::state_digest`] after the last op.
    pub digest: u64,
}

/// A fully parsed journal.
#[derive(Debug, Clone)]
pub struct Journal {
    /// Planner configuration of the journalled run.
    pub cfg: PlannerConfig,
    /// Link matrix the planner was constructed with.
    pub links: Option<LinkMatrix>,
    /// Every op that hit the disk, in log order.
    pub ops: Vec<PlannerOp>,
    /// Present only when the journalling process exited cleanly.
    pub footer: Option<JournalFooter>,
    /// True when the file ended mid-frame (the journalling process was
    /// killed while writing; every complete frame before it is in `ops`).
    pub truncated: bool,
}

impl Journal {
    /// Reconstructs planner state by replaying the first `stop_at` ops
    /// (all of them when `None`) onto a freshly constructed planner.
    /// Failed ops are re-applied and their errors swallowed — they
    /// mutated state when they originally ran, so replay must not skip
    /// them.
    pub fn replay(&self, stop_at: Option<usize>) -> Planner {
        let mut p = Planner::new(self.cfg.clone(), self.links.clone());
        let end = stop_at.unwrap_or(self.ops.len()).min(self.ops.len());
        for op in &self.ops[..end] {
            let _ = p.apply(op);
        }
        p
    }
}

/// Reads and parses a journal file. A truncated tail frame (crashed
/// writer) is not an error — see [`Journal::truncated`]; corrupt framing
/// (bad magic, unknown tag, undecodable op) is.
pub fn read_journal(path: &Path) -> Result<Journal, WireError> {
    let mut raw = Vec::new();
    File::open(path)?.read_to_end(&mut raw)?;
    if raw.len() < 6 || raw[..4] != JOURNAL_MAGIC {
        return Err(WireError::Handshake(format!(
            "{} is not an op journal (bad magic)",
            path.display()
        )));
    }
    let version = u16::from_le_bytes([raw[4], raw[5]]);
    if version != JOURNAL_VERSION {
        return Err(WireError::Handshake(format!(
            "journal version {version}, this build reads {JOURNAL_VERSION}"
        )));
    }
    let mut pos = 6usize;
    let mut header: Option<(PlannerConfig, Option<LinkMatrix>)> = None;
    let mut ops = Vec::new();
    let mut footer = None;
    let mut truncated = false;
    while pos < raw.len() {
        if pos + 5 > raw.len() {
            truncated = true;
            break;
        }
        let tag = raw[pos];
        let len = u32::from_le_bytes(raw[pos + 1..pos + 5].try_into().unwrap()) as usize;
        pos += 5;
        if pos + len > raw.len() {
            truncated = true;
            break;
        }
        let payload = &raw[pos..pos + len];
        pos += len;
        match tag {
            TAG_HEADER => {
                if header.is_some() {
                    return Err(WireError::Malformed("duplicate journal header"));
                }
                header = Some(wire::decode_journal_header(payload)?);
            }
            TAG_OP => ops.push(wire::decode_op(payload)?),
            TAG_FOOTER => {
                let mut d = [0u8; 16];
                if payload.len() != 16 {
                    return Err(WireError::Malformed("journal footer size"));
                }
                d.copy_from_slice(payload);
                footer = Some(JournalFooter {
                    last_seq: u64::from_le_bytes(d[..8].try_into().unwrap()),
                    digest: u64::from_le_bytes(d[8..].try_into().unwrap()),
                });
            }
            _ => return Err(WireError::Malformed("journal frame tag")),
        }
    }
    let (cfg, links) = header.ok_or(WireError::Malformed("journal missing header"))?;
    Ok(Journal {
        cfg,
        links,
        ops,
        footer,
        truncated,
    })
}

/// An [`OpSink`] streaming ops to a journal file as they are appended.
///
/// Every op frame is flushed immediately — the journal is a write-ahead
/// log, and a crash must not lose acknowledged ops to a userspace
/// buffer. The footer is written on drop (clean exit); a killed process
/// leaves a footer-less journal that [`read_journal`] still accepts.
pub struct JournalSink {
    out: Option<BufWriter<File>>,
    /// Last live (seq, digest) pair; catch-up ops carry no digest, so the
    /// footer is only written when the digest matches the final op.
    last: Option<(u64, u64)>,
    last_seq: Option<u64>,
    path: String,
}

impl JournalSink {
    /// Creates (truncates) the journal at `path` and writes the header.
    pub fn create(
        path: &Path,
        cfg: &PlannerConfig,
        links: &Option<LinkMatrix>,
    ) -> Result<Self, WireError> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(&JOURNAL_MAGIC)?;
        out.write_all(&JOURNAL_VERSION.to_le_bytes())?;
        let header = wire::encode_journal_header(cfg, links);
        write_journal_frame(&mut out, TAG_HEADER, &header)?;
        out.flush()?;
        Ok(JournalSink {
            out: Some(out),
            last: None,
            last_seq: None,
            path: path.display().to_string(),
        })
    }
}

fn write_journal_frame(
    out: &mut BufWriter<File>,
    tag: u8,
    payload: &[u8],
) -> Result<(), WireError> {
    out.write_all(&[tag])?;
    out.write_all(&(payload.len() as u32).to_le_bytes())?;
    out.write_all(payload)?;
    Ok(())
}

impl OpSink for JournalSink {
    fn wants_digest(&self) -> bool {
        true
    }

    fn append(&mut self, seq: u64, op: &PlannerOp, digest: Option<u64>) {
        let Some(out) = self.out.as_mut() else { return };
        let frame = wire::encode_op(op);
        let wrote = write_journal_frame(out, TAG_OP, &frame).and_then(|()| Ok(out.flush()?));
        if let Err(e) = wrote {
            eprintln!("[grout] journal {}: {e}; journalling stops", self.path);
            self.out = None;
            return;
        }
        self.last_seq = Some(seq);
        if let Some(d) = digest {
            self.last = Some((seq, d));
        }
    }
}

impl Drop for JournalSink {
    fn drop(&mut self) {
        let Some(mut out) = self.out.take() else {
            return;
        };
        // Footer only when the recorded digest belongs to the final op
        // (always true in practice: the sink attaches before any op).
        if let (Some((seq, digest)), Some(last_seq)) = (self.last, self.last_seq) {
            if seq == last_seq {
                let mut payload = [0u8; 16];
                payload[..8].copy_from_slice(&seq.to_le_bytes());
                payload[8..].copy_from_slice(&digest.to_le_bytes());
                let _ = write_journal_frame(&mut out, TAG_FOOTER, &payload);
            }
        }
        let _ = out.flush();
    }
}

/// An [`OpSink`] shipping ops to a hot-standby controller.
///
/// The handshake is a controller hello with `total == 0` (no worker
/// fleet behind it — the marker for a log-shipping connection), followed
/// by [`CtrlMsg::ShipInit`] carrying the planner's construction inputs.
/// Each append then sends one [`CtrlMsg::ShipOp`] and waits for the
/// standby's [`WorkerMsg::ShipAck`]; a digest mismatch means the replica
/// diverged — a replication bug — and panics rather than letting a
/// corrupt standby take over. Socket errors merely disable shipping (the
/// primary outliving its standby is not an error).
///
/// Dropping the sink sends a clean `Shutdown` so the standby knows the
/// primary *finished* rather than died, and must not take over.
pub struct ShipSink {
    stream: Option<TcpStream>,
    addr: String,
}

impl ShipSink {
    /// Dials the standby at `addr` and ships the planner's construction
    /// inputs.
    pub fn connect(
        addr: &str,
        cfg: &PlannerConfig,
        links: &Option<LinkMatrix>,
    ) -> Result<Self, WireError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        wire::write_frame(
            &mut stream,
            &wire::encode_hello(&wire::Hello::Controller {
                index: 0,
                total: 0, // no fleet: log-shipping connection
                heartbeat_ms: 0,
                peers: Vec::new(),
                session_id: 0,
                resume: None,
            }),
        )?;
        wire::write_frame(
            &mut stream,
            &wire::encode_ctrl(&CtrlMsg::ShipInit {
                cfg: cfg.clone(),
                links: links.clone(),
            }),
        )?;
        Ok(ShipSink {
            stream: Some(stream),
            addr: addr.to_string(),
        })
    }

    fn disable(&mut self, why: &str) {
        eprintln!(
            "[grout] log shipping to {}: {why}; shipping stops",
            self.addr
        );
        self.stream = None;
    }
}

impl OpSink for ShipSink {
    fn wants_digest(&self) -> bool {
        true
    }

    fn append(&mut self, seq: u64, op: &PlannerOp, digest: Option<u64>) {
        let Some(stream) = self.stream.as_mut() else {
            return;
        };
        let frame = wire::encode_ctrl(&CtrlMsg::ShipOp {
            seq,
            op: op.clone(),
        });
        if let Err(e) = wire::write_frame(stream, &frame) {
            let why = e.to_string();
            self.disable(&why);
            return;
        }
        let ack = match wire::read_frame(stream) {
            Ok(Some(payload)) => wire::decode_worker(&payload),
            Ok(None) => {
                self.disable("standby closed the connection");
                return;
            }
            Err(e) => {
                let why = e.to_string();
                self.disable(&why);
                return;
            }
        };
        match ack {
            Ok(WorkerMsg::ShipAck {
                seq: acked,
                digest: standby_digest,
            }) => {
                if acked != seq {
                    self.disable(&format!("ack for op {acked}, expected {seq}"));
                    return;
                }
                // Live ops carry our post-apply digest; catch-up ops do
                // not (their historical digests are gone) and skip the
                // cross-check.
                if let Some(ours) = digest {
                    assert_eq!(
                        standby_digest,
                        ours,
                        "standby replica diverged at op {seq} ({})",
                        op.kind()
                    );
                }
            }
            Ok(other) => {
                self.disable(&format!("unexpected standby reply {other:?}"));
            }
            Err(e) => {
                let why = e.to_string();
                self.disable(&why);
            }
        }
    }
}

impl Drop for ShipSink {
    fn drop(&mut self) {
        if let Some(stream) = self.stream.as_mut() {
            let _ = wire::write_frame(stream, &wire::encode_ctrl(&CtrlMsg::Shutdown));
        }
    }
}

/// How a standby's shipping session ended.
#[derive(Debug)]
pub enum StandbyOutcome {
    /// The primary sent a clean `Shutdown`: it finished its run, no
    /// takeover needed.
    CleanFinish {
        /// The fully caught-up replica.
        replica: Planner,
        /// Ops applied over the session.
        ops_applied: u64,
    },
    /// The shipping socket died without a `Shutdown`: the primary was
    /// killed mid-run and the standby must take over.
    PrimaryDied {
        /// The replica at the moment the primary died.
        replica: Planner,
        /// Ops applied before the death.
        ops_applied: u64,
    },
}

/// The standby's shipping session: accepts one log-shipping connection on
/// `listener`, builds the replica from [`CtrlMsg::ShipInit`], applies
/// each shipped op and acknowledges it with the replica's state digest.
/// Returns when the primary finishes ([`StandbyOutcome::CleanFinish`]) or
/// dies ([`StandbyOutcome::PrimaryDied`]).
pub fn standby_serve(listener: &TcpListener) -> Result<StandbyOutcome, WireError> {
    let (mut stream, _) = listener.accept()?;
    stream.set_nodelay(true)?;
    let hello = wire::read_frame(&mut stream)?
        .ok_or_else(|| WireError::Handshake("primary closed during handshake".into()))?;
    match wire::decode_hello(&hello)? {
        (wire::Hello::Controller { total: 0, .. }, _) => {}
        _ => {
            return Err(WireError::Handshake(
                "expected a log-shipping controller hello (total == 0)".into(),
            ))
        }
    }
    let init = wire::read_frame(&mut stream)?
        .ok_or_else(|| WireError::Handshake("primary closed before ShipInit".into()))?;
    let (cfg, links) = match wire::decode_ctrl(&init)? {
        CtrlMsg::ShipInit { cfg, links } => (cfg, links),
        other => {
            return Err(WireError::Handshake(format!(
                "expected ShipInit, got {other:?}"
            )))
        }
    };
    let mut replica = Planner::new(cfg, links);
    let mut ops_applied = 0u64;
    loop {
        match wire::read_frame(&mut stream) {
            Ok(Some(payload)) => match wire::decode_ctrl(&payload) {
                Ok(CtrlMsg::ShipOp { seq, op }) => {
                    // Failed ops still mutate state; apply and move on.
                    let _ = replica.apply(&op);
                    ops_applied += 1;
                    let ack = wire::encode_worker(&WorkerMsg::ShipAck {
                        seq,
                        digest: replica.state_digest(),
                    });
                    if wire::write_frame(&mut stream, &ack).is_err() {
                        return Ok(StandbyOutcome::PrimaryDied {
                            replica,
                            ops_applied,
                        });
                    }
                }
                Ok(CtrlMsg::Shutdown) => {
                    return Ok(StandbyOutcome::CleanFinish {
                        replica,
                        ops_applied,
                    })
                }
                Ok(_) => {} // future shipping-stream frames: ignore
                Err(e) => {
                    eprintln!("[grout] standby: bad shipping frame: {e}");
                    return Ok(StandbyOutcome::PrimaryDied {
                        replica,
                        ops_applied,
                    });
                }
            },
            Ok(None) | Err(_) => {
                return Ok(StandbyOutcome::PrimaryDied {
                    replica,
                    ops_applied,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grout_core::{LoggedPlanner, PolicyKind};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("grout-oplog-test-{}-{name}", std::process::id()));
        p
    }

    fn drive(planner: &mut LoggedPlanner) {
        use grout_core::{Ce, CeArg, CeId, CeKind, KernelCost};
        let a = planner.alloc(1 << 20);
        let b = planner.alloc(1 << 20);
        for i in 0..4u64 {
            let plan = planner
                .plan_ce(&Ce {
                    id: CeId(i),
                    kind: CeKind::Kernel {
                        name: "k".into(),
                        cost: KernelCost {
                            flops: 1e6,
                            bytes_read: 1 << 20,
                            bytes_written: 1 << 20,
                        },
                    },
                    args: vec![CeArg::read(a, 1 << 20), CeArg::write(b, 1 << 20)],
                })
                .expect("plan");
            planner.mark_completed(plan.dag_index);
        }
        planner.free(a);
    }

    #[test]
    fn journal_roundtrips_and_replays_bit_identically() {
        let path = tmp("roundtrip");
        let cfg = PlannerConfig::new(2, PolicyKind::RoundRobin);
        let links = Some(LinkMatrix::uniform(3, 1e9));
        let mut planner = LoggedPlanner::new(Planner::new(cfg.clone(), links.clone()));
        planner.add_sink(Box::new(
            JournalSink::create(&path, &cfg, &links).expect("create journal"),
        ));
        drive(&mut planner);
        let expected_digest = planner.state_digest();
        let n_ops = planner.ops().len();
        drop(planner); // writes the footer

        let journal = read_journal(&path).expect("read journal");
        assert_eq!(journal.ops.len(), n_ops);
        assert!(!journal.truncated);
        let footer = journal.footer.expect("clean exit footer");
        assert_eq!(footer.last_seq, n_ops as u64 - 1);
        assert_eq!(footer.digest, expected_digest);

        let replayed = journal.replay(None);
        assert_eq!(replayed.state_digest(), expected_digest);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn footerless_journal_still_replays() {
        let path = tmp("crashed");
        let cfg = PlannerConfig::new(2, PolicyKind::RoundRobin);
        let links = None;
        let mut planner = LoggedPlanner::new(Planner::new(cfg.clone(), links.clone()));
        let mut sink = JournalSink::create(&path, &cfg, &links).expect("create journal");
        // Drive the sink by hand, then *leak* it: no Drop, no footer —
        // exactly what a SIGKILL leaves behind.
        drive(&mut planner);
        for (i, op) in planner.ops().iter().enumerate() {
            sink.append(i as u64, op, None);
        }
        std::mem::forget(sink);

        let journal = read_journal(&path).expect("read journal");
        assert!(journal.footer.is_none());
        assert_eq!(journal.ops.len(), planner.ops().len());
        assert_eq!(
            journal.replay(None).state_digest(),
            planner.state_digest(),
            "footer-less replay must still reach the live state"
        );
        // Partial replay stops mid-history without error.
        let partial = journal.replay(Some(2));
        assert_ne!(partial.state_digest(), planner.state_digest());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_is_tolerated() {
        let path = tmp("truncated");
        let cfg = PlannerConfig::new(1, PolicyKind::RoundRobin);
        let links = None;
        let mut planner = LoggedPlanner::new(Planner::new(cfg.clone(), links.clone()));
        let mut sink = JournalSink::create(&path, &cfg, &links).expect("create journal");
        drive(&mut planner);
        for (i, op) in planner.ops().iter().enumerate() {
            sink.append(i as u64, op, None);
        }
        std::mem::forget(sink);
        // Chop mid-frame: a crash while an op frame was half-written.
        let raw = std::fs::read(&path).expect("read back");
        std::fs::write(&path, &raw[..raw.len() - 3]).expect("truncate");

        let journal = read_journal(&path).expect("read journal");
        assert!(journal.truncated);
        assert_eq!(journal.ops.len(), planner.ops().len() - 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ship_sink_replicates_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let standby = std::thread::spawn(move || standby_serve(&listener).expect("standby"));

        let cfg = PlannerConfig::new(2, PolicyKind::RoundRobin);
        let links = Some(LinkMatrix::uniform(3, 2e9));
        let mut planner = LoggedPlanner::new(Planner::new(cfg.clone(), links.clone()));
        planner.add_sink(Box::new(
            ShipSink::connect(&addr, &cfg, &links).expect("connect standby"),
        ));
        drive(&mut planner);
        let expected = planner.state_digest();
        let n_ops = planner.ops().len() as u64;
        drop(planner); // clean Shutdown to the standby

        match standby.join().expect("standby thread") {
            StandbyOutcome::CleanFinish {
                replica,
                ops_applied,
            } => {
                assert_eq!(ops_applied, n_ops);
                assert_eq!(replica.state_digest(), expected);
            }
            other => panic!("expected clean finish, got {other:?}"),
        }
    }

    #[test]
    fn standby_detects_primary_death() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let standby = std::thread::spawn(move || standby_serve(&listener).expect("standby"));

        let cfg = PlannerConfig::new(1, PolicyKind::RoundRobin);
        let links = None;
        let mut planner = LoggedPlanner::new(Planner::new(cfg.clone(), links.clone()));
        let mut sink = ShipSink::connect(&addr, &cfg, &links).expect("connect standby");
        let _ = planner.alloc(4096);
        for (i, op) in planner.ops().iter().enumerate() {
            sink.append(i as u64, op, None);
        }
        // Dying primary: the socket closes without a Shutdown frame —
        // take the stream out so the sink's Drop cannot send one (the
        // kernel closing a SIGKILLed process's fds looks the same).
        drop(sink.stream.take());
        drop(sink);

        match standby.join().expect("standby thread") {
            StandbyOutcome::PrimaryDied {
                replica,
                ops_applied,
            } => {
                assert_eq!(ops_applied, 1);
                assert_eq!(replica.state_digest(), planner.state_digest());
            }
            other => panic!("expected primary death, got {other:?}"),
        }
    }
}
