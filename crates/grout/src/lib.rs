#![warn(missing_docs)]
//! # grout — facade crate for the GrOUT reproduction
//!
//! Re-exports the full stack under one roof so applications (and the
//! examples/integration tests in this repository) need a single dependency:
//!
//! - [`core`] — CEs, DAG, policies, coherence, the simulated
//!   cluster runtime and the threaded local runtime,
//! - [`net`] — the TCP transport (wire codec, `grout-workerd` serve loop,
//!   the `.tcp(...)` distributed front-end),
//! - [`polyglot`] — the multi-language `eval` API (Listing 1/2),
//! - [`workloads`] — the paper's evaluation suite,
//! - [`kernelc`] — the mini-CUDA front end (NVRTC stand-in),
//! - the substrates: [`desim`], [`gpu_sim`], [`net_sim`], [`uvm_sim`].

pub use grout_core as core;
pub use grout_net as net;
pub use grout_polyglot as polyglot;
pub use grout_workloads as workloads;

pub use desim;
pub use gpu_sim;
pub use kernelc;
pub use net_sim;
pub use uvm_sim;

// The most common types at the top level for convenience.
pub use grout_core::{
    replay_closure, AccessMode, AccessPattern, AdmissionConfig, AdmissionController,
    AdmissionDecision, AdmissionError, ArrayId, BatchStats, Ce, CeArg, CeId, CeKind, ChromeTracer,
    Coherence, DevicePolicy, DurabilityOptions, EventLog, ExplorationLevel, FailureDetector,
    FairShare, FaultConfig, FaultEvent, FaultKind, FaultPlan, FleetMux, HistorySample, KernelCost,
    Lane, LatencyStat, LinkMatrix, LocalArg, LocalConfig, LocalRuntime, Location, LogLevel,
    MemAdvise, MetricFamily, MetricKind, Metrics, MetricsHistory, MetricsSnapshot, NetOptions,
    NodeScheduler, Observability, PolicyKind, Priority, PurgeReport, Recorder, Regime, Runtime,
    RuntimeBuilder, SchedEvent, SessionId, SessionOpLog, SessionOpSink, SessionTransport, Shared,
    SharedPlacement, SimConfig, SimRuntime, SimTime, Telemetry,
};
pub use grout_net::{
    apply_durability, http_get, serve, serve_shutdown, spawn_workerd, spawn_workerd_at,
    ClientOutcome, CtldClient, DistBuilder, DistError, DistRuntime, HttpServer, Introspect,
    SessionJournal, TcpConfig, TcpExt, TcpTransport, WorkerSpec,
};
pub use grout_polyglot::{Language, Polyglot, Value};
