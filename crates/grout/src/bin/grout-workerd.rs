//! `grout-workerd` — one GrOUT worker endpoint per process.
//!
//! Usage:
//!   grout-workerd [--listen <addr>]
//!
//! Binds `<addr>` (default `127.0.0.1:0`, letting the OS pick a port),
//! announces the bound address as `LISTENING <addr>` on stdout — the line
//! a spawning controller (or a shell script) waits for — then serves the
//! GrOUT wire protocol until the controller sends a shutdown frame or
//! disconnects.
//!
//! Two-terminal quick start (see README):
//!
//! ```text
//! $ grout-workerd --listen 127.0.0.1:7401   # terminal 1
//! $ grout-workerd --listen 127.0.0.1:7402   # terminal 2
//! $ grout-run script.gs --workers tcp:127.0.0.1:7401,127.0.0.1:7402
//! ```

use std::io::Write;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::sync::OnceLock;

/// Set by the SIGTERM handler; the serve loop polls it on its telemetry
/// tick and exits through the graceful-leave path.
static SHUTDOWN: OnceLock<Arc<AtomicBool>> = OnceLock::new();

/// SIGTERM handler: one atomic store (async-signal-safe); all real work
/// (telemetry flush, clean Leave frame) happens on the serve thread.
extern "C" fn on_sigterm(_sig: i32) {
    if let Some(flag) = SHUTDOWN.get() {
        flag.store(true, Ordering::SeqCst);
    }
}

/// Installs `on_sigterm` via the C `signal(2)` entry point — the one
/// binding this no-deps workspace allows itself instead of a libc crate.
fn install_sigterm(flag: Arc<AtomicBool>) {
    const SIGTERM: i32 = 15;
    let _ = SHUTDOWN.set(flag);
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("grout-workerd: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut listen = String::from("127.0.0.1:0");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => {
                listen = args
                    .next()
                    .ok_or_else(|| "--listen needs an address".to_string())?;
            }
            "-h" | "--help" => {
                println!("usage: grout-workerd [--listen <addr>]");
                return Ok(());
            }
            other => return Err(format!("unknown argument `{other}`; see --help")),
        }
    }
    let listener =
        TcpListener::bind(&listen).map_err(|e| format!("cannot bind `{listen}`: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    // The announcement a spawning controller waits for; flush so the line
    // crosses the pipe before we block in accept().
    println!("LISTENING {addr}");
    let _ = std::io::stdout().flush();
    // Operator-facing startup line: a silent daemon is indistinguishable
    // from a hung one.
    eprintln!(
        "[grout-workerd] listening on {addr} (wire v{})",
        grout::net::wire::WIRE_VERSION
    );
    // SIGTERM drains gracefully: flush telemetry, send a clean Leave so
    // the controller re-plans immediately, exit 0.
    let shutdown = Arc::new(AtomicBool::new(false));
    install_sigterm(Arc::clone(&shutdown));
    grout::serve_shutdown(listener, shutdown).map_err(|e| e.to_string())
}
