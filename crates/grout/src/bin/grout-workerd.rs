//! `grout-workerd` — one GrOUT worker endpoint per process.
//!
//! Usage:
//!   grout-workerd [--listen <addr>] [--http <addr>]
//!
//! Binds `<addr>` (default `127.0.0.1:0`, letting the OS pick a port),
//! announces the bound address as `LISTENING <addr>` on stdout — the line
//! a spawning controller (or a shell script) waits for — then serves the
//! GrOUT wire protocol until the controller sends a shutdown frame or
//! disconnects. With `--http`, a live introspection endpoint serves
//! `/metrics` and `/healthz` alongside (a second `HTTP <addr>` stdout
//! line announces it).
//!
//! Two-terminal quick start (see README):
//!
//! ```text
//! $ grout-workerd --listen 127.0.0.1:7401   # terminal 1
//! $ grout-workerd --listen 127.0.0.1:7402   # terminal 2
//! $ grout-run script.gs --workers tcp:127.0.0.1:7401,127.0.0.1:7402
//! ```

use std::io::Write;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::sync::OnceLock;

use grout::core::eventlog::{self, EventLog};
use grout::core::{monotonic_ns, MetricKind, MetricsSnapshot};
use grout::net::http::{HttpServer, Introspect};
use serde::json::Value;

/// Set by the SIGTERM handler; the serve loop polls it on its telemetry
/// tick and exits through the graceful-leave path.
static SHUTDOWN: OnceLock<Arc<AtomicBool>> = OnceLock::new();

/// SIGTERM handler: one atomic store (async-signal-safe); all real work
/// (telemetry flush, clean Leave frame) happens on the serve thread.
extern "C" fn on_sigterm(_sig: i32) {
    if let Some(flag) = SHUTDOWN.get() {
        flag.store(true, Ordering::SeqCst);
    }
}

/// Installs `on_sigterm` via the C `signal(2)` entry point — the one
/// binding this no-deps workspace allows itself instead of a libc crate.
fn install_sigterm(flag: Arc<AtomicBool>) {
    const SIGTERM: i32 = 15;
    let _ = SHUTDOWN.set(flag);
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("grout-workerd: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// The worker's `/metrics` + `/healthz` source. A worker holds no
/// fleet-wide state — sessions, placement and per-tenant accounting
/// live on the controller — so this reports process liveness, uptime
/// and draining state; scrape the controller for everything else.
struct WorkerdIntrospect {
    shutdown: Arc<AtomicBool>,
    started_ns: u64,
}

impl Introspect for WorkerdIntrospect {
    fn metrics_text(&self) -> String {
        let mut snap = MetricsSnapshot::new();
        snap.push(
            "grout_up",
            MetricKind::Gauge,
            "1 while the daemon serves",
            &[("role", "worker")],
            1.0,
        );
        snap.push(
            "grout_uptime_seconds",
            MetricKind::Gauge,
            "Seconds since the daemon started",
            &[("role", "worker")],
            monotonic_ns().saturating_sub(self.started_ns) as f64 / 1e9,
        );
        snap.push(
            "grout_draining",
            MetricKind::Gauge,
            "1 once SIGTERM was received and the worker is draining",
            &[("role", "worker")],
            if self.shutdown.load(Ordering::SeqCst) {
                1.0
            } else {
                0.0
            },
        );
        snap.to_prometheus()
    }

    fn healthz_json(&self) -> String {
        let doc = Value::Object(vec![
            ("healthy".to_string(), Value::Bool(self.healthy())),
            ("role".to_string(), Value::String("worker".to_string())),
            (
                "uptime_ms".to_string(),
                Value::U64(monotonic_ns().saturating_sub(self.started_ns) / 1_000_000),
            ),
            (
                "wire_version".to_string(),
                Value::U64(grout::net::wire::WIRE_VERSION as u64),
            ),
        ]);
        serde_json::to_string(&doc).expect("render healthz")
    }

    fn healthy(&self) -> bool {
        !self.shutdown.load(Ordering::SeqCst)
    }

    fn sessions_json(&self) -> String {
        "[]".to_string()
    }

    fn trace_json(&self, _last_ms: u64) -> String {
        r#"{"traceEvents":[]}"#.to_string()
    }
}

fn run() -> Result<(), String> {
    let mut listen = String::from("127.0.0.1:0");
    let mut http = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => {
                listen = args
                    .next()
                    .ok_or_else(|| "--listen needs an address".to_string())?;
            }
            "--http" => {
                http = Some(
                    args.next()
                        .ok_or_else(|| "--http needs an address".to_string())?,
                );
            }
            "-h" | "--help" => {
                println!("usage: grout-workerd [--listen <addr>] [--http <addr>]");
                return Ok(());
            }
            other => return Err(format!("unknown argument `{other}`; see --help")),
        }
    }
    let log = EventLog::stderr("grout-workerd");
    eventlog::init(log.clone());
    let listener =
        TcpListener::bind(&listen).map_err(|e| format!("cannot bind `{listen}`: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    // The announcement a spawning controller waits for; flush so the line
    // crosses the pipe before we block in accept().
    println!("LISTENING {addr}");
    // SIGTERM drains gracefully: flush telemetry, send a clean Leave so
    // the controller re-plans immediately, exit 0.
    let shutdown = Arc::new(AtomicBool::new(false));
    install_sigterm(Arc::clone(&shutdown));
    let _http = match &http {
        Some(http_addr) => {
            let http_listener = TcpListener::bind(http_addr)
                .map_err(|e| format!("cannot bind http endpoint `{http_addr}`: {e}"))?;
            let server = HttpServer::spawn(
                http_listener,
                Arc::new(WorkerdIntrospect {
                    shutdown: Arc::clone(&shutdown),
                    started_ns: monotonic_ns(),
                }),
            )
            .map_err(|e| format!("cannot start http endpoint: {e}"))?;
            println!("HTTP {}", server.local_addr());
            Some(server)
        }
        None => None,
    };
    let _ = std::io::stdout().flush();
    // Operator-facing startup line: a silent daemon is indistinguishable
    // from a hung one.
    log.info(
        "listening",
        None,
        &format!(
            "[grout-workerd] listening on {addr} (wire v{})",
            grout::net::wire::WIRE_VERSION
        ),
        &[(
            "wire_version",
            Value::U64(grout::net::wire::WIRE_VERSION as u64),
        )],
    );
    grout::serve_shutdown(listener, shutdown).map_err(|e| e.to_string())
}
