//! `grout-replay` — reconstruct planner state from a crash-recovery
//! journal written by `grout-run --journal`.
//!
//! Usage:
//!   grout-replay <ops.grjl> [--verbose] [--stop-at N]
//!
//! Replays the journalled op log onto a freshly constructed planner —
//! the same pure `apply` path the live run used — and prints a state
//! summary plus the final state digest. When the journal carries a
//! clean-exit footer, the reconstructed digest is verified against it
//! and a mismatch exits nonzero: bit-exact reconstruction is the whole
//! point.
//!
//! `--stop-at N` replays only the first N ops (record/replay debugging:
//! bisect for the op that corrupted state); `--verbose` prints one line
//! per op with the digest after applying it.

use std::path::PathBuf;
use std::process::ExitCode;

use grout::core::Planner;
use grout::net::oplog::{read_journal, Journal};

struct Cli {
    journal: PathBuf,
    verbose: bool,
    stop_at: Option<usize>,
}

const USAGE: &str = "usage: grout-replay <ops.grjl> [--verbose] [--stop-at N]";

fn main() -> ExitCode {
    match parse(std::env::args().skip(1)) {
        Ok(Some(cli)) => match run(&cli) {
            Ok(ok) => {
                if ok {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(msg) => {
                eprintln!("grout-replay: {msg}");
                ExitCode::FAILURE
            }
        },
        Ok(None) => ExitCode::SUCCESS, // --help
        Err(msg) => {
            eprintln!("grout-replay: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Parses the command line; `Ok(None)` means `--help` was served.
fn parse(mut args: impl Iterator<Item = String>) -> Result<Option<Cli>, String> {
    let mut journal = None;
    let mut verbose = false;
    let mut stop_at = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--verbose" => verbose = true,
            "--stop-at" => {
                let n = args.next().ok_or("--stop-at needs an op count")?;
                stop_at = Some(
                    n.parse()
                        .map_err(|_| format!("--stop-at needs an integer, got `{n}`"))?,
                );
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            path if !path.starts_with('-') => journal = Some(PathBuf::from(path)),
            other => return Err(format!("unknown argument `{other}`; see --help")),
        }
    }
    let journal = journal.ok_or("no journal given; see --help")?;
    Ok(Some(Cli {
        journal,
        verbose,
        stop_at,
    }))
}

/// Replays and verifies; `Ok(false)` means the run completed but the
/// reconstructed digest contradicts the journal footer.
fn run(cli: &Cli) -> Result<bool, String> {
    let journal = read_journal(&cli.journal)
        .map_err(|e| format!("cannot read `{}`: {e}", cli.journal.display()))?;
    if journal.truncated {
        eprintln!(
            "[grout-replay] journal tail is truncated (writer was killed mid-frame); \
             replaying the {} complete ops",
            journal.ops.len()
        );
    }
    let end = cli
        .stop_at
        .unwrap_or(journal.ops.len())
        .min(journal.ops.len());
    let planner = if cli.verbose {
        replay_verbose(&journal, end)
    } else {
        journal.replay(cli.stop_at)
    };
    print_summary(&journal, &planner, end);
    if end < journal.ops.len() {
        // Partial replay: the footer (if any) describes the full log, so
        // there is nothing to verify against.
        return Ok(true);
    }
    match journal.footer {
        Some(f) if f.digest == planner.state_digest() => {
            println!("footer digest verified: {:016x}", f.digest);
            Ok(true)
        }
        Some(f) => {
            eprintln!(
                "[grout-replay] DIGEST MISMATCH: footer says {:016x}, replay reached {:016x}",
                f.digest,
                planner.state_digest()
            );
            Ok(false)
        }
        None => {
            println!("no footer (crashed run); replayed state is the recovery point");
            Ok(true)
        }
    }
}

fn replay_verbose(journal: &Journal, end: usize) -> Planner {
    let mut p = Planner::new(journal.cfg.clone(), journal.links.clone());
    for (i, op) in journal.ops[..end].iter().enumerate() {
        let outcome = match p.apply(op) {
            Ok(_) => "ok",
            Err(_) => "err",
        };
        println!(
            "op {i:>6}  {:<14} {outcome:<4} digest {:016x}",
            op.kind(),
            p.state_digest()
        );
    }
    p
}

fn print_summary(journal: &Journal, planner: &Planner, replayed: usize) {
    println!(
        "journal: {} ops ({} total), workers {}, footer {}",
        replayed,
        journal.ops.len(),
        journal.cfg.workers,
        match &journal.footer {
            Some(f) => format!("@{} digest {:016x}", f.last_seq, f.digest),
            None => "absent".into(),
        }
    );
    println!(
        "replayed state: {} CEs in DAG ({} edges), {} tracked arrays, {}/{} workers healthy",
        planner.dag().len(),
        planner.dag().edge_count(),
        planner.coherence().len(),
        planner.healthy_workers(),
        planner.config().workers
    );
    println!("state digest: {:016x}", planner.state_digest());
}
