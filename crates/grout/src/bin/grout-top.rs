//! `grout-top` — a live terminal view of a running `grout-ctld` fleet.
//!
//! Usage:
//!   grout-top <http-addr> [--interval-ms N] [--once]
//!
//! Polls the daemon's introspection plane (`--http` on `grout-ctld`):
//! `/healthz` for the fleet header, `/metrics` for per-worker occupancy
//! and heartbeat RTT, `/sessions` for per-tenant state. Renders a
//! refreshing table (ANSI clear-screen between frames); per-session CE
//! throughput is the completion delta between two consecutive polls.
//!
//! `--once` prints a single frame without clearing — the scriptable
//! mode CI and the acceptance tests use.

use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Duration;

use grout::net::http::http_get;
use serde::json::Value;

const USAGE: &str = "usage: grout-top <http-addr> [--interval-ms N] [--once]";

struct Cli {
    addr: String,
    interval: Duration,
    once: bool,
}

fn main() -> ExitCode {
    let cli = match parse(std::env::args().skip(1)) {
        Ok(Some(cli)) => cli,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("grout-top: {msg}");
            return ExitCode::FAILURE;
        }
    };
    // ces_done per session at the previous poll, for throughput deltas.
    let mut last_done: HashMap<u64, u64> = HashMap::new();
    let mut first = true;
    loop {
        match frame(&cli.addr, &mut last_done, cli.interval) {
            Ok(text) => {
                if !cli.once {
                    // Clear + home; repaint in place.
                    print!("\x1b[2J\x1b[H");
                }
                println!("{text}");
            }
            Err(msg) => {
                if cli.once || first {
                    eprintln!("grout-top: {msg}");
                    return ExitCode::FAILURE;
                }
                // A transient scrape failure mid-watch: show it, keep going.
                println!("grout-top: {msg} (retrying)");
            }
        }
        if cli.once {
            return ExitCode::SUCCESS;
        }
        first = false;
        std::thread::sleep(cli.interval);
    }
}

fn parse(mut args: impl Iterator<Item = String>) -> Result<Option<Cli>, String> {
    let mut addr = None;
    let mut interval = Duration::from_millis(1000);
    let mut once = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--interval-ms" => {
                let v = args.next().ok_or("--interval-ms needs a number")?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("--interval-ms needs a number, got `{v}`"))?;
                interval = Duration::from_millis(ms.max(100));
            }
            "--once" => once = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            other if addr.is_none() && !other.starts_with('-') => addr = Some(other.to_string()),
            other => return Err(format!("unknown argument `{other}`; {USAGE}")),
        }
    }
    let addr = addr.ok_or(format!("missing <http-addr>; {USAGE}"))?;
    Ok(Some(Cli {
        addr,
        interval,
        once,
    }))
}

/// One parsed exposition sample: `name{labels} value`.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

impl Sample {
    fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Minimal Prometheus text-exposition reader: enough for our own
/// `/metrics` output (no escapes-in-values beyond `\\`, `\"`, `\n`).
fn parse_exposition(body: &str) -> Vec<Sample> {
    let mut out = Vec::new();
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, value) = match line.rsplit_once(' ') {
            Some(split) => split,
            None => continue,
        };
        let Ok(value) = value.parse::<f64>() else {
            continue;
        };
        let (name, labels) = match head.split_once('{') {
            Some((name, rest)) => {
                let rest = rest.strip_suffix('}').unwrap_or(rest);
                let mut labels = Vec::new();
                for pair in split_label_pairs(rest) {
                    if let Some((k, v)) = pair.split_once('=') {
                        let v = v.trim_matches('"');
                        let v = v.replace("\\\"", "\"").replace("\\n", "\n");
                        labels.push((k.to_string(), v.replace("\\\\", "\\")));
                    }
                }
                (name.to_string(), labels)
            }
            None => (head.to_string(), Vec::new()),
        };
        out.push(Sample {
            name,
            labels,
            value,
        });
    }
    out
}

/// Splits `k1="v1",k2="v2"` on commas outside quotes.
fn split_label_pairs(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' => escaped = true,
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < s.len() {
        out.push(&s[start..]);
    }
    out
}

fn get(addr: &str, path: &str) -> Result<String, String> {
    let (status, body) = http_get(addr, path, Duration::from_secs(2))
        .map_err(|e| format!("cannot scrape {addr}{path}: {e}"))?;
    // /healthz legitimately answers 503 while degraded; the body still
    // renders.
    if status != 200 && status != 503 {
        return Err(format!("{addr}{path} answered {status}"));
    }
    Ok(body)
}

fn human_bytes(b: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{v:.0}{}", UNITS[u])
    } else {
        format!("{v:.1}{}", UNITS[u])
    }
}

/// Builds one rendered frame.
fn frame(
    addr: &str,
    last_done: &mut HashMap<u64, u64>,
    interval: Duration,
) -> Result<String, String> {
    let health = get(addr, "/healthz")?;
    let metrics = parse_exposition(&get(addr, "/metrics")?);
    let sessions = get(addr, "/sessions")?;
    let health: Value = serde_json::from_str(&health).map_err(|e| format!("bad healthz: {e}"))?;
    let sessions: Value =
        serde_json::from_str(&sessions).map_err(|e| format!("bad sessions: {e}"))?;

    let mut out = String::new();
    // --- Fleet header -----------------------------------------------------
    let healthy = health
        .get("healthy")
        .and_then(Value::as_bool)
        .unwrap_or(false);
    let degraded = health
        .get("degraded")
        .and_then(Value::as_bool)
        .unwrap_or(false);
    let uptime_ms = health.get("uptime_ms").and_then(Value::as_u64).unwrap_or(0);
    let fleet = health.get("fleet");
    let g = |k: &str| {
        fleet
            .and_then(|f| f.get(k))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    let find =
        |name: &str| -> Option<f64> { metrics.iter().find(|s| s.name == name).map(|s| s.value) };
    out.push_str(&format!(
        "grout-top — {addr}  [{}{}]  up {}s\n",
        if healthy { "healthy" } else { "UNHEALTHY" },
        if degraded { ", degraded" } else { "" },
        uptime_ms / 1000,
    ));
    out.push_str(&format!(
        "fleet: {} workers ({} alive, {} suspect, {} dead)  queue {}  faults/s {:.2}\n",
        g("workers"),
        g("alive"),
        g("suspect"),
        g("dead"),
        find("grout_fleet_queue_depth").unwrap_or(0.0),
        find("grout_fleet_fault_rate_per_s").unwrap_or(0.0),
    ));

    // --- Per-worker table -------------------------------------------------
    let mut workers: Vec<(u64, f64, Option<f64>)> = Vec::new();
    for s in &metrics {
        if s.name == "grout_fleet_occupancy" {
            if let Some(w) = s.label("worker").and_then(|w| w.parse().ok()) {
                workers.push((w, s.value, None));
            }
        }
    }
    workers.sort_by_key(|(w, _, _)| *w);
    for s in &metrics {
        if s.name == "grout_wire_hb_rtt_ns" && s.label("stat") == Some("p50") {
            if let Some(w) = s.label("worker").and_then(|w| w.parse::<u64>().ok()) {
                if let Some(row) = workers.iter_mut().find(|(id, _, _)| *id == w) {
                    row.2 = Some(s.value);
                }
            }
        }
    }
    if !workers.is_empty() {
        out.push_str("\n  worker  outstanding  hb-rtt-p50\n");
        for (w, occ, rtt) in &workers {
            out.push_str(&format!(
                "  w{w:<6} {occ:>11.0}  {}\n",
                match rtt {
                    Some(ns) if *ns > 0.0 => format!("{:>8.2}ms", ns / 1e6),
                    _ => "       n/a".to_string(),
                }
            ));
        }
    }

    // --- Per-session table ------------------------------------------------
    let rows = sessions.as_array().unwrap_or(&[]);
    out.push_str(&format!("\nsessions ({}):\n", rows.len()));
    out.push_str("  session  prio    state     resident    ces    ce/s   ops\n");
    let secs = interval.as_secs_f64().max(0.001);
    for row in rows {
        let sid = row.get("session").and_then(Value::as_u64).unwrap_or(0);
        let done = row.get("ces_done").and_then(Value::as_u64).unwrap_or(0);
        let prev = last_done.insert(sid, done).unwrap_or(done);
        let rate = (done.saturating_sub(prev)) as f64 / secs;
        let state = row.get("state").and_then(Value::as_str).unwrap_or("?");
        let state = match row.get("queue_position").and_then(Value::as_u64) {
            Some(p) if state == "queued" => format!("queued#{p}"),
            _ => state.to_string(),
        };
        out.push_str(&format!(
            "  s{sid:<7} {:<7} {state:<9} {:>8}  {done:>5}  {rate:>6.1}  {:>4}\n",
            row.get("priority").and_then(Value::as_str).unwrap_or("?"),
            human_bytes(
                row.get("resident_bytes")
                    .and_then(Value::as_u64)
                    .unwrap_or(0) as f64
            ),
            row.get("ops").and_then(Value::as_u64).unwrap_or(0),
        ));
    }
    Ok(out)
}
