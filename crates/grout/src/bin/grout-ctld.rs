//! `grout-ctld` — the multi-tenant GrOUT control plane.
//!
//! Owns one worker fleet (in-process threads or remote `grout-workerd`
//! processes) and serves many concurrent client sessions over it:
//!
//! - each `grout-run --connect` client gets its own planner/DAG/coherence
//!   state machine behind a namespace-tagged
//!   [`SessionTransport`](grout::core::SessionTransport),
//! - an [`AdmissionController`](grout::core::AdmissionController) decides
//!   per attach whether the session runs now, waits its turn, or is
//!   rejected with a typed wire error,
//! - a weighted-round-robin fair-share scheduler drains every session's
//!   ready frontier each tick (no starvation),
//! - with `--batch`, all frames one tick sends to one worker coalesce
//!   into a single `CtrlMsg::Batch` wire frame (CE batching),
//! - with `--journal`, every planner mutation of every tenant lands in
//!   one session-tagged op journal.
//!
//! Usage:
//!   grout-ctld --listen 127.0.0.1:7070 --threads 4
//!   grout-ctld --listen <addr> --workers tcp:<addr>,<addr> --batch
//!
//! The daemon announces `CTLD LISTENING <addr>` on stdout once the fleet
//! is up and the socket is bound — scripts wait for that line.

use std::collections::HashSet;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::{Arc, Condvar, Mutex};

use grout::core::{
    AdmissionConfig, AdmissionController, AdmissionDecision, ChannelTransport, FleetMux, Priority,
    Runtime, SessionId, SessionOpSink,
};
use grout::net::ctld::{accept_client, SessionJournal};
use grout::net::wire::{self, ClientMsg, CtldMsg};
use grout::polyglot::run_script;
use grout::{Polyglot, TcpConfig, TcpTransport};

/// Where the fleet lives.
enum Fleet {
    /// N in-process worker threads.
    Threads(usize),
    /// Already-listening `grout-workerd` endpoints.
    Tcp(Vec<String>),
}

struct Cli {
    listen: String,
    fleet: Fleet,
    admission: AdmissionConfig,
    batch: bool,
    journal: Option<PathBuf>,
    /// Exit after serving this many clients (tests/CI teardown); 0 =
    /// serve forever.
    accept: usize,
}

const USAGE: &str = "usage: grout-ctld --listen <addr>
  fleet:      --threads N             N in-process worker threads (default 2)
              --workers tcp:<addr>,.. connect to running grout-workerd processes
  admission:  --max-sessions N        concurrent session cap (default 16)
              --max-resident-bytes N  fleet-wide declared working-set budget
              --max-queue N           attach wait-queue depth (0 = reject when full)
  batching:   --batch                 coalesce each tick's frames per worker
  durability: --journal <path.grsj>   session-tagged multi-tenant op journal
  lifecycle:  --accept N              exit after serving N clients (0 = forever)";

fn main() -> ExitCode {
    match parse(std::env::args().skip(1)) {
        Ok(Some(cli)) => match serve(cli) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("grout-ctld: {msg}");
                ExitCode::FAILURE
            }
        },
        Ok(None) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("grout-ctld: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn parse(mut args: impl Iterator<Item = String>) -> Result<Option<Cli>, String> {
    let mut listen = None;
    let mut fleet = Fleet::Threads(2);
    let mut admission = AdmissionConfig::default();
    let mut batch = false;
    let mut journal = None;
    let mut accept = 0usize;
    fn num<T: std::str::FromStr>(flag: &str, v: Option<String>) -> Result<T, String> {
        let v = v.ok_or(format!("{flag} needs a number"))?;
        v.parse::<T>()
            .map_err(|_| format!("{flag} needs a number, got `{v}`"))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = Some(args.next().ok_or("--listen needs an address")?),
            "--threads" => {
                let n: usize = num("--threads", args.next())?;
                if n == 0 {
                    return Err("--threads needs at least one worker".into());
                }
                fleet = Fleet::Threads(n);
            }
            "--workers" => {
                let spec = args.next().ok_or("--workers needs tcp:<addr>,...")?;
                let list = spec
                    .strip_prefix("tcp:")
                    .ok_or("--workers needs tcp:<addr>,...")?;
                let addrs: Vec<String> = list
                    .split(',')
                    .map(str::trim)
                    .filter(|a| !a.is_empty())
                    .map(String::from)
                    .collect();
                if addrs.is_empty() {
                    return Err("--workers tcp: needs at least one address".into());
                }
                fleet = Fleet::Tcp(addrs);
            }
            "--max-sessions" => admission.max_sessions = num("--max-sessions", args.next())?,
            "--max-resident-bytes" => {
                admission.max_resident_bytes = num("--max-resident-bytes", args.next())?
            }
            "--max-queue" => admission.max_queue = num("--max-queue", args.next())?,
            "--batch" => batch = true,
            "--journal" => {
                journal = Some(PathBuf::from(args.next().ok_or("--journal needs a path")?))
            }
            "--accept" => accept = num("--accept", args.next())?,
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown argument `{other}`; see --help")),
        }
    }
    let listen = listen.ok_or("--listen is required; see --help")?;
    Ok(Some(Cli {
        listen,
        fleet,
        admission,
        batch,
        journal,
        accept,
    }))
}

/// Admission bookkeeping shared across connection threads: the pure
/// controller plus the promotion hand-off (release() picks winners; their
/// parked threads wake through the condvar and find themselves in
/// `promoted`).
struct Admission {
    ctl: AdmissionController,
    next_ticket: u64,
    promoted: HashSet<SessionId>,
}

struct Daemon {
    fleet: Mutex<FleetMux>,
    admission: Mutex<Admission>,
    promotions: Condvar,
    journal: Option<Arc<Mutex<SessionJournal>>>,
}

fn serve(cli: Cli) -> Result<(), String> {
    let transport: Box<dyn grout::core::Transport> = match &cli.fleet {
        Fleet::Threads(n) => Box::new(ChannelTransport::new(*n)),
        Fleet::Tcp(addrs) => {
            let children = addrs.iter().map(|_| None).collect();
            Box::new(TcpTransport::connect(
                addrs,
                children,
                &TcpConfig::default(),
            ))
        }
    };
    let workers = transport.workers();
    let journal = match &cli.journal {
        Some(path) => Some(Arc::new(Mutex::new(SessionJournal::create(path).map_err(
            |e| format!("cannot create journal `{}`: {e}", path.display()),
        )?))),
        None => None,
    };
    let daemon = Arc::new(Daemon {
        fleet: Mutex::new(FleetMux::with_batching(transport, cli.batch)),
        admission: Mutex::new(Admission {
            ctl: AdmissionController::new(cli.admission),
            next_ticket: 1,
            promoted: HashSet::new(),
        }),
        promotions: Condvar::new(),
        journal,
    });
    let listener = TcpListener::bind(&cli.listen)
        .map_err(|e| format!("cannot listen on `{}`: {e}", cli.listen))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve listen address: {e}"))?;
    println!("CTLD LISTENING {local}");
    eprintln!(
        "[grout-ctld] fleet of {workers} {} workers; max {} sessions, queue {}, batching {}",
        match cli.fleet {
            Fleet::Threads(_) => "in-process",
            Fleet::Tcp(_) => "tcp",
        },
        cli.admission.max_sessions,
        cli.admission.max_queue,
        if cli.batch { "on" } else { "off" },
    );
    let mut served = 0usize;
    let mut handles = Vec::new();
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                eprintln!("[grout-ctld] accept failed: {e}");
                continue;
            }
        };
        let d = Arc::clone(&daemon);
        handles.push(std::thread::spawn(move || {
            if let Err(e) = client_session(&d, stream) {
                eprintln!("[grout-ctld] client session ended with error: {e}");
            }
        }));
        served += 1;
        if cli.accept != 0 && served >= cli.accept {
            break;
        }
    }
    for h in handles {
        let _ = h.join();
    }
    let stats = daemon.fleet.lock().expect("fleet lock").batch_stats();
    eprintln!(
        "[grout-ctld] served {served} clients; {} msgs in {} frames ({} batched) over {} ticks",
        stats.messages, stats.frames, stats.batched_frames, stats.ticks
    );
    Ok(())
}

fn send(stream: &mut TcpStream, msg: &CtldMsg) -> Result<(), String> {
    wire::write_frame(stream, &wire::encode_ctld(msg)).map_err(|e| e.to_string())
}

/// One client connection, handshake to teardown.
fn client_session(daemon: &Daemon, mut stream: TcpStream) -> Result<(), String> {
    accept_client(&mut stream).map_err(|e| format!("handshake: {e}"))?;
    let frame = wire::read_frame(&mut stream)
        .map_err(|e| e.to_string())?
        .ok_or("client closed before attaching")?;
    let (source, priority, declared_bytes) =
        match wire::decode_client(&frame).map_err(|e| e.to_string())? {
            ClientMsg::Attach {
                source,
                priority,
                declared_bytes,
            } => (source, priority, declared_bytes),
            ClientMsg::Detach => return Ok(()), // attached nothing; done
        };

    // Admission: run now, park in the queue, or bounce with the typed
    // error. Tickets are daemon-side identities — the fleet session id is
    // only minted once we are admitted.
    let ticket = {
        let mut adm = daemon.admission.lock().expect("admission lock");
        let ticket = SessionId(adm.next_ticket);
        adm.next_ticket += 1;
        match adm.ctl.request(ticket, priority, declared_bytes) {
            AdmissionDecision::Admit => {}
            AdmissionDecision::Reject(err) => {
                drop(adm);
                send(&mut stream, &CtldMsg::Rejected(err))?;
                return Ok(());
            }
            AdmissionDecision::Queued { position } => {
                drop(adm);
                send(
                    &mut stream,
                    &CtldMsg::Queued {
                        position: position as u32,
                    },
                )?;
                let mut adm = daemon.admission.lock().expect("admission lock");
                while !adm.promoted.remove(&ticket) {
                    adm = daemon
                        .promotions
                        .wait(adm)
                        .expect("admission lock poisoned");
                }
            }
        }
        ticket
    };

    let outcome = run_admitted(daemon, &mut stream, &source, priority);

    // Release the slot and wake whoever now fits, success or not.
    {
        let mut adm = daemon.admission.lock().expect("admission lock");
        let winners = adm.ctl.release(ticket);
        adm.promoted.extend(winners);
        daemon.promotions.notify_all();
    }
    outcome
}

/// The admitted path: mint a fleet session, drive the script on its own
/// runtime, stream the results back.
fn run_admitted(
    daemon: &Daemon,
    stream: &mut TcpStream,
    source: &str,
    priority: Priority,
) -> Result<(), String> {
    let (workers, session) = {
        let mut fleet = daemon.fleet.lock().expect("fleet lock");
        (fleet.workers(), fleet.session(priority.weight_factor()))
    };
    let sid = session.session_id();
    send(stream, &CtldMsg::Attached { session: sid.0 })?;
    let mut rt = Runtime::builder()
        .workers(workers)
        .build_with_transport(Box::new(session))
        .map_err(|e| e.to_string())?;
    if let Some(journal) = &daemon.journal {
        rt.add_op_sink(Box::new(SessionOpSink::new(sid, Arc::clone(journal))));
    }
    let mut pg = Polyglot::with_runtime(rt);
    match run_script(&mut pg, source) {
        Ok(lines) => {
            let kernels = pg.runtime().stats().kernels;
            send(stream, &CtldMsg::Output { lines })?;
            send(stream, &CtldMsg::Finished { kernels })?;
            eprintln!("[grout-ctld] session {} finished: {kernels} kernels", sid.0);
        }
        Err(e) => {
            send(
                stream,
                &CtldMsg::Failed {
                    message: e.to_string(),
                },
            )?;
            eprintln!("[grout-ctld] session {} failed: {e}", sid.0);
        }
    }
    // Dropping the Polyglot drops the runtime, whose SessionTransport
    // detaches: pending frames flush and the session's arrays/kernels are
    // reclaimed on every worker.
    Ok(())
}
