//! `grout-ctld` — the multi-tenant GrOUT control plane.
//!
//! Owns one worker fleet (in-process threads or remote `grout-workerd`
//! processes) and serves many concurrent client sessions over it:
//!
//! - each `grout-run --connect` client gets its own planner/DAG/coherence
//!   state machine behind a namespace-tagged
//!   [`SessionTransport`](grout::core::SessionTransport),
//! - an [`AdmissionController`](grout::core::AdmissionController) decides
//!   per attach whether the session runs now, waits its turn, or is
//!   rejected with a typed wire error,
//! - a weighted-round-robin fair-share scheduler drains every session's
//!   ready frontier each tick (no starvation),
//! - with `--batch`, all frames one tick sends to one worker coalesce
//!   into a single `CtrlMsg::Batch` wire frame (CE batching),
//! - with `--journal`, every planner mutation of every tenant lands in
//!   one session-tagged op journal,
//! - with `--http`, a live introspection plane serves `/metrics`
//!   (Prometheus text), `/healthz`, `/sessions` and `/trace` while the
//!   fleet runs,
//! - with `--trace-out`, every session's spans land in one Chrome trace,
//!   each tenant on its own session-prefixed lane stripe.
//!
//! Operational logging is structured JSONL on stderr (one object per
//! line, leveled, session-tagged, rate-limited) — see
//! [`grout::core::eventlog`].
//!
//! Usage:
//!   grout-ctld --listen 127.0.0.1:7070 --threads 4
//!   grout-ctld --listen <addr> --workers tcp:<addr>,<addr> --batch
//!   grout-ctld --listen <addr> --http 127.0.0.1:9090
//!
//! The daemon announces `CTLD LISTENING <addr>` on stdout once the fleet
//! is up and the socket is bound — scripts wait for that line. With
//! `--http` a second line `CTLD HTTP <addr>` follows.

use std::collections::{BTreeMap, HashSet};
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::{Arc, Condvar, Mutex};

use grout::core::eventlog::{self, EventLog};
use grout::core::{
    monotonic_ns, AdmissionConfig, AdmissionController, AdmissionDecision, ChannelTransport,
    FleetMux, Liveness, MetricKind, MetricsSnapshot, OpSink, PlannerOp, Priority, Runtime,
    SessionId, SessionOpSink, SharedPlacement,
};
use grout::net::ctld::{accept_client, SessionJournal};
use grout::net::http::{HttpServer, Introspect};
use grout::net::wire::{self, ClientMsg, CtldMsg};
use grout::polyglot::run_script;
use grout::{ChromeTracer, Polyglot, Shared, TcpConfig, TcpTransport};
use serde::json::Value;

/// Where the fleet lives.
enum Fleet {
    /// N in-process worker threads.
    Threads(usize),
    /// Already-listening `grout-workerd` endpoints.
    Tcp(Vec<String>),
}

struct Cli {
    listen: String,
    fleet: Fleet,
    admission: AdmissionConfig,
    batch: bool,
    journal: Option<PathBuf>,
    /// Exit after serving this many clients (tests/CI teardown); 0 =
    /// serve forever.
    accept: usize,
    /// Introspection endpoint address (`/metrics`, `/healthz`, ...).
    http: Option<String>,
    /// Write a fleet-wide Chrome trace here on exit (per-session lanes).
    trace_out: Option<PathBuf>,
}

const USAGE: &str = "usage: grout-ctld --listen <addr>
  fleet:      --threads N             N in-process worker threads (default 2)
              --workers tcp:<addr>,.. connect to running grout-workerd processes
  admission:  --max-sessions N        concurrent session cap (default 16)
              --max-resident-bytes N  fleet-wide declared working-set budget
              --max-queue N           attach wait-queue depth (0 = reject when full)
  batching:   --batch                 coalesce each tick's frames per worker
  durability: --journal <path.grsj>   session-tagged multi-tenant op journal
  introspect: --http <addr>           serve /metrics /healthz /sessions /trace
              --trace-out <path>      write a fleet Chrome trace on exit
  lifecycle:  --accept N              exit after serving N clients (0 = forever)";

fn main() -> ExitCode {
    match parse(std::env::args().skip(1)) {
        Ok(Some(cli)) => match serve(cli) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("grout-ctld: {msg}");
                ExitCode::FAILURE
            }
        },
        Ok(None) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("grout-ctld: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn parse(mut args: impl Iterator<Item = String>) -> Result<Option<Cli>, String> {
    let mut listen = None;
    let mut fleet = Fleet::Threads(2);
    let mut admission = AdmissionConfig::default();
    let mut batch = false;
    let mut journal = None;
    let mut accept = 0usize;
    let mut http = None;
    let mut trace_out = None;
    fn num<T: std::str::FromStr>(flag: &str, v: Option<String>) -> Result<T, String> {
        let v = v.ok_or(format!("{flag} needs a number"))?;
        v.parse::<T>()
            .map_err(|_| format!("{flag} needs a number, got `{v}`"))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = Some(args.next().ok_or("--listen needs an address")?),
            "--threads" => {
                let n: usize = num("--threads", args.next())?;
                if n == 0 {
                    return Err("--threads needs at least one worker".into());
                }
                fleet = Fleet::Threads(n);
            }
            "--workers" => {
                let spec = args.next().ok_or("--workers needs tcp:<addr>,...")?;
                let list = spec
                    .strip_prefix("tcp:")
                    .ok_or("--workers needs tcp:<addr>,...")?;
                let addrs: Vec<String> = list
                    .split(',')
                    .map(str::trim)
                    .filter(|a| !a.is_empty())
                    .map(String::from)
                    .collect();
                if addrs.is_empty() {
                    return Err("--workers tcp: needs at least one address".into());
                }
                fleet = Fleet::Tcp(addrs);
            }
            "--max-sessions" => admission.max_sessions = num("--max-sessions", args.next())?,
            "--max-resident-bytes" => {
                admission.max_resident_bytes = num("--max-resident-bytes", args.next())?
            }
            "--max-queue" => admission.max_queue = num("--max-queue", args.next())?,
            "--batch" => batch = true,
            "--journal" => {
                journal = Some(PathBuf::from(args.next().ok_or("--journal needs a path")?))
            }
            "--accept" => accept = num("--accept", args.next())?,
            "--http" => http = Some(args.next().ok_or("--http needs an address")?),
            "--trace-out" => {
                trace_out = Some(PathBuf::from(
                    args.next().ok_or("--trace-out needs a path")?,
                ))
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown argument `{other}`; see --help")),
        }
    }
    let listen = listen.ok_or("--listen is required; see --help")?;
    Ok(Some(Cli {
        listen,
        fleet,
        admission,
        batch,
        journal,
        accept,
        http,
        trace_out,
    }))
}

// ---------------------------------------------------------------------------
// The session registry: what `/sessions` reports.

/// Where a session is in its lifecycle.
#[derive(Clone)]
enum Phase {
    Queued { position: u32 },
    Running,
    Finished { kernels: u64 },
    Failed { message: String },
    Rejected { reason: String },
}

impl Phase {
    fn as_str(&self) -> &'static str {
        match self {
            Phase::Queued { .. } => "queued",
            Phase::Running => "running",
            Phase::Finished { .. } => "finished",
            Phase::Failed { .. } => "failed",
            Phase::Rejected { .. } => "rejected",
        }
    }
}

/// One session's introspectable state. `session` is the daemon ticket
/// until a fleet session is minted, then the fleet id (the one placement
/// keys resident bytes and CE completions by).
struct SessionEntry {
    session: u64,
    priority: Priority,
    declared_bytes: u64,
    phase: Phase,
    /// Planner op-log length (via a registry [`OpSink`]).
    ops: u64,
    /// Latest post-apply planner-state digest.
    digest: Option<u64>,
    /// The session runtime's final metrics snapshot (populated at
    /// completion; live fleet signals come from the placement view).
    metrics: Option<MetricsSnapshot>,
}

/// Every session this daemon has seen, keyed by admission ticket.
/// Entries survive completion so end-of-run scrapes still see finished
/// tenants.
#[derive(Default)]
struct SessionRegistry {
    entries: Mutex<BTreeMap<u64, SessionEntry>>,
}

impl SessionRegistry {
    fn insert(&self, ticket: u64, priority: Priority, declared_bytes: u64, phase: Phase) {
        self.entries.lock().expect("registry lock").insert(
            ticket,
            SessionEntry {
                session: ticket,
                priority,
                declared_bytes,
                phase,
                ops: 0,
                digest: None,
                metrics: None,
            },
        );
    }

    fn update(&self, ticket: u64, f: impl FnOnce(&mut SessionEntry)) {
        if let Some(entry) = self.entries.lock().expect("registry lock").get_mut(&ticket) {
            f(entry);
        }
    }
}

/// Counts planner ops (and keeps the latest state digest) for one
/// session — the `/sessions` op-log length without touching the journal.
struct RegistryOpSink {
    registry: Arc<SessionRegistry>,
    ticket: u64,
}

impl OpSink for RegistryOpSink {
    fn wants_digest(&self) -> bool {
        true
    }

    fn append(&mut self, seq: u64, _op: &PlannerOp, digest: Option<u64>) {
        self.registry.update(self.ticket, |e| {
            e.ops = seq + 1;
            if digest.is_some() {
                e.digest = digest;
            }
        });
    }
}

fn priority_str(p: Priority) -> &'static str {
    match p {
        Priority::Low => "low",
        Priority::Normal => "normal",
        Priority::High => "high",
    }
}

// ---------------------------------------------------------------------------
// The daemon.

/// Admission bookkeeping shared across connection threads: the pure
/// controller plus the promotion hand-off (release() picks winners; their
/// parked threads wake through the condvar and find themselves in
/// `promoted`).
struct Admission {
    ctl: AdmissionController,
    next_ticket: u64,
    promoted: HashSet<SessionId>,
}

struct Daemon {
    fleet: Mutex<FleetMux>,
    admission: Arc<Mutex<Admission>>,
    promotions: Condvar,
    journal: Option<Arc<Mutex<SessionJournal>>>,
    registry: Arc<SessionRegistry>,
    /// The shared fleet trace (`--trace-out`): every session records
    /// through it on its own lane stripe.
    tracer: Option<Shared<ChromeTracer>>,
    log: EventLog,
}

/// The `/metrics` + `/healthz` + `/sessions` + `/trace` source: reads
/// the shared placement view, the session registry and the admission
/// controller — never the fleet mux itself, so scrapes cannot stall the
/// scheduler.
struct CtldIntrospect {
    placement: Arc<Mutex<SharedPlacement>>,
    registry: Arc<SessionRegistry>,
    admission: Arc<Mutex<Admission>>,
    cfg: AdmissionConfig,
    workers: usize,
    batching: bool,
    journaling: bool,
    started_ns: u64,
}

impl CtldIntrospect {
    fn liveness_counts(&self, p: &SharedPlacement) -> (u64, u64, u64) {
        let mut alive = 0;
        let mut suspect = 0;
        let mut dead = 0;
        for l in &p.liveness {
            match l {
                Liveness::Alive => alive += 1,
                Liveness::Suspect => suspect += 1,
                Liveness::Dead => dead += 1,
            }
        }
        (alive, suspect, dead)
    }
}

impl Introspect for CtldIntrospect {
    fn metrics_text(&self) -> String {
        let mut snap = MetricsSnapshot::new();
        snap.push(
            "grout_up",
            MetricKind::Gauge,
            "1 while the daemon serves",
            &[],
            1.0,
        );
        snap.push(
            "grout_uptime_seconds",
            MetricKind::Gauge,
            "Seconds since the daemon started",
            &[],
            monotonic_ns().saturating_sub(self.started_ns) as f64 / 1e9,
        );
        {
            let p = self.placement.lock().expect("placement lock");
            let (alive, suspect, dead) = self.liveness_counts(&p);
            for (state, n) in [("alive", alive), ("suspect", suspect), ("dead", dead)] {
                snap.push(
                    "grout_fleet_workers",
                    MetricKind::Gauge,
                    "Fleet endpoints by liveness state",
                    &[("state", state)],
                    n as f64,
                );
            }
            for (w, occ) in p.occupancy.iter().enumerate() {
                snap.push(
                    "grout_fleet_occupancy",
                    MetricKind::Gauge,
                    "Outstanding CEs per worker",
                    &[("worker", &w.to_string())],
                    *occ as f64,
                );
            }
            for (sid, bytes) in &p.resident {
                snap.push(
                    "grout_session_resident_bytes",
                    MetricKind::Gauge,
                    "Resident bytes per attached session",
                    &[("session", &sid.0.to_string())],
                    *bytes as f64,
                );
            }
            for (sid, n) in &p.ces_done {
                snap.push(
                    "grout_session_ces_done_total",
                    MetricKind::Counter,
                    "CEs completed per session",
                    &[("session", &sid.0.to_string())],
                    *n as f64,
                );
            }
            snap.push(
                "grout_fleet_faults_total",
                MetricKind::Counter,
                "Failed executions across the fleet",
                &[],
                p.faults as f64,
            );
            snap.push(
                "grout_fleet_fault_rate_per_s",
                MetricKind::Gauge,
                "Fault rate over the last 5s history window",
                &[],
                p.history.fault_rate_per_s(5_000_000_000),
            );
            if let Some(latest) = p.history.latest() {
                snap.push(
                    "grout_fleet_queue_depth",
                    MetricKind::Gauge,
                    "Frames pending across every session at the last sample",
                    &[],
                    latest.queue_depth as f64,
                );
            }
            snap.push(
                "grout_fleet_history_samples",
                MetricKind::Gauge,
                "Samples held in the introspection ring",
                &[],
                p.history.len() as f64,
            );
            for (name, v) in [
                ("grout_batch_ticks_total", p.batch.ticks),
                ("grout_batch_frames_total", p.batch.frames),
                ("grout_batch_messages_total", p.batch.messages),
                ("grout_batch_batched_frames_total", p.batch.batched_frames),
            ] {
                snap.push(
                    name,
                    MetricKind::Counter,
                    "CE-batching wire counters",
                    &[],
                    v as f64,
                );
            }
            for (w, peer) in p.wire.iter().enumerate() {
                let w = w.to_string();
                for (dir, frames, bytes) in [
                    ("sent", peer.frames_sent, peer.bytes_sent),
                    ("recv", peer.frames_recv, peer.bytes_recv),
                ] {
                    snap.push(
                        "grout_wire_frames_total",
                        MetricKind::Counter,
                        "Wire frames per peer and direction",
                        &[("role", "fleet"), ("worker", &w), ("dir", dir)],
                        frames as f64,
                    );
                    snap.push(
                        "grout_wire_bytes_total",
                        MetricKind::Counter,
                        "Wire bytes per peer and direction",
                        &[("role", "fleet"), ("worker", &w), ("dir", dir)],
                        bytes as f64,
                    );
                }
                snap.push(
                    "grout_wire_hb_rtt_ns",
                    MetricKind::Gauge,
                    "Heartbeat round-trip percentile per peer",
                    &[("role", "fleet"), ("worker", &w), ("stat", "p50")],
                    peer.hb_rtt.percentile_ns(0.50) as f64,
                );
            }
        }
        {
            let adm = self.admission.lock().expect("admission lock");
            snap.push(
                "grout_admission_active",
                MetricKind::Gauge,
                "Sessions currently admitted",
                &[],
                adm.ctl.active() as f64,
            );
            snap.push(
                "grout_admission_queued",
                MetricKind::Gauge,
                "Attach requests waiting for admission",
                &[],
                adm.ctl.queued() as f64,
            );
            snap.push(
                "grout_admission_max_sessions",
                MetricKind::Gauge,
                "Configured concurrent session cap",
                &[],
                self.cfg.max_sessions as f64,
            );
        }
        // Completed sessions contribute their runtime registries
        // (per-phase latency, per-policy movement, per-worker counters),
        // each tagged with its session label.
        for entry in self
            .registry
            .entries
            .lock()
            .expect("registry lock")
            .values()
        {
            if let Some(m) = &entry.metrics {
                snap.merge(m.clone());
            }
        }
        snap.to_prometheus()
    }

    fn healthz_json(&self) -> String {
        let p = self.placement.lock().expect("placement lock");
        let (alive, suspect, dead) = self.liveness_counts(&p);
        let spawn_failures = p.spawn_failures.len() as u64;
        let history_samples = p.history.len() as u64;
        drop(p);
        let adm = self.admission.lock().expect("admission lock");
        let (active, queued) = (adm.ctl.active() as u64, adm.ctl.queued() as u64);
        drop(adm);
        let healthy = alive > 0;
        let degraded = suspect + dead + spawn_failures > 0;
        let doc = Value::Object(vec![
            ("healthy".to_string(), Value::Bool(healthy)),
            ("degraded".to_string(), Value::Bool(degraded)),
            (
                "uptime_ms".to_string(),
                Value::U64(monotonic_ns().saturating_sub(self.started_ns) / 1_000_000),
            ),
            (
                "fleet".to_string(),
                Value::Object(vec![
                    ("workers".to_string(), Value::U64(self.workers as u64)),
                    ("alive".to_string(), Value::U64(alive)),
                    ("suspect".to_string(), Value::U64(suspect)),
                    ("dead".to_string(), Value::U64(dead)),
                    ("spawn_failures".to_string(), Value::U64(spawn_failures)),
                    ("batching".to_string(), Value::Bool(self.batching)),
                    ("journal".to_string(), Value::Bool(self.journaling)),
                    ("history_samples".to_string(), Value::U64(history_samples)),
                ]),
            ),
            (
                "admission".to_string(),
                Value::Object(vec![
                    ("active".to_string(), Value::U64(active)),
                    ("queued".to_string(), Value::U64(queued)),
                    (
                        "max_sessions".to_string(),
                        Value::U64(self.cfg.max_sessions as u64),
                    ),
                    (
                        "max_queue".to_string(),
                        Value::U64(self.cfg.max_queue as u64),
                    ),
                ]),
            ),
        ]);
        serde_json::to_string(&doc).expect("render healthz")
    }

    fn healthy(&self) -> bool {
        let p = self.placement.lock().expect("placement lock");
        let (alive, _, _) = self.liveness_counts(&p);
        alive > 0
    }

    fn sessions_json(&self) -> String {
        let p = self.placement.lock().expect("placement lock");
        let entries = self.registry.entries.lock().expect("registry lock");
        let sessions: Vec<Value> = entries
            .values()
            .map(|e| {
                let sid = SessionId(e.session);
                let mut obj = vec![
                    ("session".to_string(), Value::U64(e.session)),
                    (
                        "priority".to_string(),
                        Value::String(priority_str(e.priority).to_string()),
                    ),
                    (
                        "state".to_string(),
                        Value::String(e.phase.as_str().to_string()),
                    ),
                    ("declared_bytes".to_string(), Value::U64(e.declared_bytes)),
                    (
                        "resident_bytes".to_string(),
                        Value::U64(p.resident.get(&sid).copied().unwrap_or(0)),
                    ),
                    (
                        "ces_done".to_string(),
                        Value::U64(p.ces_done.get(&sid).copied().unwrap_or(0)),
                    ),
                    ("ops".to_string(), Value::U64(e.ops)),
                    (
                        "digest".to_string(),
                        match e.digest {
                            Some(d) => Value::String(format!("{d:016x}")),
                            None => Value::Null,
                        },
                    ),
                ];
                match &e.phase {
                    Phase::Queued { position } => {
                        obj.push(("queue_position".to_string(), Value::U64(*position as u64)));
                    }
                    Phase::Finished { kernels } => {
                        obj.push(("kernels".to_string(), Value::U64(*kernels)));
                    }
                    Phase::Failed { message } => {
                        obj.push(("error".to_string(), Value::String(message.clone())));
                    }
                    Phase::Rejected { reason } => {
                        obj.push(("reason".to_string(), Value::String(reason.clone())));
                    }
                    Phase::Running => {}
                }
                Value::Object(obj)
            })
            .collect();
        serde_json::to_string(&Value::Array(sessions)).expect("render sessions")
    }

    fn trace_json(&self, last_ms: u64) -> String {
        let p = self.placement.lock().expect("placement lock");
        p.history
            .to_chrome_string(last_ms.saturating_mul(1_000_000))
    }
}

fn serve(cli: Cli) -> Result<(), String> {
    let log = EventLog::stderr("grout-ctld");
    eventlog::init(log.clone());
    let transport: Box<dyn grout::core::Transport> = match &cli.fleet {
        Fleet::Threads(n) => Box::new(ChannelTransport::new(*n)),
        Fleet::Tcp(addrs) => {
            let children = addrs.iter().map(|_| None).collect();
            Box::new(TcpTransport::connect(
                addrs,
                children,
                &TcpConfig::default(),
            ))
        }
    };
    let workers = transport.workers();
    let journal = match &cli.journal {
        Some(path) => Some(Arc::new(Mutex::new(SessionJournal::create(path).map_err(
            |e| format!("cannot create journal `{}`: {e}", path.display()),
        )?))),
        None => None,
    };
    let tracer = cli
        .trace_out
        .as_ref()
        .map(|_| Shared::new(ChromeTracer::new()));
    let daemon = Arc::new(Daemon {
        fleet: Mutex::new(FleetMux::with_batching(transport, cli.batch)),
        admission: Arc::new(Mutex::new(Admission {
            ctl: AdmissionController::new(cli.admission),
            next_ticket: 1,
            promoted: HashSet::new(),
        })),
        promotions: Condvar::new(),
        journal,
        registry: Arc::new(SessionRegistry::default()),
        tracer,
        log: log.clone(),
    });
    let listener = TcpListener::bind(&cli.listen)
        .map_err(|e| format!("cannot listen on `{}`: {e}", cli.listen))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve listen address: {e}"))?;
    println!("CTLD LISTENING {local}");
    let _http = match &cli.http {
        Some(addr) => {
            let http_listener = TcpListener::bind(addr)
                .map_err(|e| format!("cannot bind http endpoint `{addr}`: {e}"))?;
            let source = Arc::new(CtldIntrospect {
                placement: daemon.fleet.lock().expect("fleet lock").placement(),
                registry: Arc::clone(&daemon.registry),
                admission: Arc::clone(&daemon.admission),
                cfg: cli.admission,
                workers,
                batching: cli.batch,
                journaling: cli.journal.is_some(),
                started_ns: monotonic_ns(),
            });
            let server = HttpServer::spawn(http_listener, source)
                .map_err(|e| format!("cannot start http endpoint: {e}"))?;
            println!("CTLD HTTP {}", server.local_addr());
            Some(server)
        }
        None => None,
    };
    let _ = std::io::stdout().flush();
    log.info(
        "fleet_up",
        None,
        &format!(
            "fleet of {workers} {} workers; max {} sessions, queue {}, batching {}",
            match cli.fleet {
                Fleet::Threads(_) => "in-process",
                Fleet::Tcp(_) => "tcp",
            },
            cli.admission.max_sessions,
            cli.admission.max_queue,
            if cli.batch { "on" } else { "off" },
        ),
        &[
            ("workers", Value::U64(workers as u64)),
            ("batching", Value::Bool(cli.batch)),
        ],
    );
    let mut served = 0usize;
    let mut handles = Vec::new();
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                log.warn("accept_failed", None, &format!("accept failed: {e}"), &[]);
                continue;
            }
        };
        let d = Arc::clone(&daemon);
        handles.push(std::thread::spawn(move || {
            if let Err(e) = client_session(&d, stream) {
                d.log.warn(
                    "client_error",
                    None,
                    &format!("client session ended with error: {e}"),
                    &[],
                );
            }
        }));
        served += 1;
        if cli.accept != 0 && served >= cli.accept {
            break;
        }
    }
    for h in handles {
        let _ = h.join();
    }
    let stats = daemon.fleet.lock().expect("fleet lock").batch_stats();
    log.info(
        "served",
        None,
        &format!(
            "served {served} clients; {} msgs in {} frames ({} batched) over {} ticks",
            stats.messages, stats.frames, stats.batched_frames, stats.ticks
        ),
        &[
            ("clients", Value::U64(served as u64)),
            ("messages", Value::U64(stats.messages)),
            ("frames", Value::U64(stats.frames)),
        ],
    );
    if let (Some(tracer), Some(path)) = (&daemon.tracer, &cli.trace_out) {
        tracer
            .lock()
            .write_to(path)
            .map_err(|e| format!("cannot write trace `{}`: {e}", path.display()))?;
        log.info(
            "trace_written",
            None,
            &format!("fleet trace written to {}", path.display()),
            &[],
        );
    }
    Ok(())
}

fn send(stream: &mut TcpStream, msg: &CtldMsg) -> Result<(), String> {
    wire::write_frame(stream, &wire::encode_ctld(msg)).map_err(|e| e.to_string())
}

/// One client connection, handshake to teardown.
fn client_session(daemon: &Daemon, mut stream: TcpStream) -> Result<(), String> {
    accept_client(&mut stream).map_err(|e| format!("handshake: {e}"))?;
    let frame = wire::read_frame(&mut stream)
        .map_err(|e| e.to_string())?
        .ok_or("client closed before attaching")?;
    let (source, priority, declared_bytes) =
        match wire::decode_client(&frame).map_err(|e| e.to_string())? {
            ClientMsg::Attach {
                source,
                priority,
                declared_bytes,
            } => (source, priority, declared_bytes),
            ClientMsg::Detach => {
                daemon.log.info(
                    "client_detached",
                    None,
                    "client detached without attaching",
                    &[],
                );
                return Ok(()); // attached nothing; done
            }
        };

    // Admission: run now, park in the queue, or bounce with the typed
    // error. Tickets are daemon-side identities — the fleet session id is
    // only minted once we are admitted.
    let ticket = {
        let mut adm = daemon.admission.lock().expect("admission lock");
        let ticket = SessionId(adm.next_ticket);
        adm.next_ticket += 1;
        match adm.ctl.request(ticket, priority, declared_bytes) {
            AdmissionDecision::Admit => {
                daemon
                    .registry
                    .insert(ticket.0, priority, declared_bytes, Phase::Running);
                daemon.log.info(
                    "session_admitted",
                    Some(ticket.0),
                    &format!("session {} admitted", ticket.0),
                    &[("declared_bytes", Value::U64(declared_bytes))],
                );
            }
            AdmissionDecision::Reject(err) => {
                daemon.registry.insert(
                    ticket.0,
                    priority,
                    declared_bytes,
                    Phase::Rejected {
                        reason: err.to_string(),
                    },
                );
                daemon.log.warn(
                    "session_rejected",
                    Some(ticket.0),
                    &format!("session {} rejected: {err}", ticket.0),
                    &[],
                );
                drop(adm);
                send(&mut stream, &CtldMsg::Rejected(err))?;
                return Ok(());
            }
            AdmissionDecision::Queued { position } => {
                daemon.registry.insert(
                    ticket.0,
                    priority,
                    declared_bytes,
                    Phase::Queued {
                        position: position as u32,
                    },
                );
                daemon.log.info(
                    "session_queued",
                    Some(ticket.0),
                    &format!("session {} queued at position {position}", ticket.0),
                    &[("position", Value::U64(position as u64))],
                );
                drop(adm);
                send(
                    &mut stream,
                    &CtldMsg::Queued {
                        position: position as u32,
                    },
                )?;
                let mut adm = daemon.admission.lock().expect("admission lock");
                while !adm.promoted.remove(&ticket) {
                    adm = daemon
                        .promotions
                        .wait(adm)
                        .expect("admission lock poisoned");
                }
                daemon
                    .registry
                    .update(ticket.0, |e| e.phase = Phase::Running);
                daemon.log.info(
                    "session_promoted",
                    Some(ticket.0),
                    &format!("session {} promoted from the wait queue", ticket.0),
                    &[],
                );
            }
        }
        ticket
    };

    let outcome = run_admitted(daemon, &mut stream, &source, priority, ticket);

    // Release the slot and wake whoever now fits, success or not.
    {
        let mut adm = daemon.admission.lock().expect("admission lock");
        let winners = adm.ctl.release(ticket);
        adm.promoted.extend(winners);
        daemon.promotions.notify_all();
    }
    outcome
}

/// The admitted path: mint a fleet session, drive the script on its own
/// runtime, stream the results back.
fn run_admitted(
    daemon: &Daemon,
    stream: &mut TcpStream,
    source: &str,
    priority: Priority,
    ticket: SessionId,
) -> Result<(), String> {
    let (workers, session) = {
        let mut fleet = daemon.fleet.lock().expect("fleet lock");
        (fleet.workers(), fleet.session(priority.weight_factor()))
    };
    let sid = session.session_id();
    daemon.registry.update(ticket.0, |e| e.session = sid.0);
    send(stream, &CtldMsg::Attached { session: sid.0 })?;
    let mut rt = Runtime::builder()
        .workers(workers)
        .build_with_transport(Box::new(session))
        .map_err(|e| e.to_string())?;
    if let Some(tracer) = &daemon.tracer {
        // Satellite of the introspection plane: each tenant records on
        // its own lane stripe, so Perfetto shows "s1 worker 0" and
        // "s2 worker 0" as distinct tracks instead of one merged lane.
        rt.set_telemetry(tracer.telemetry().for_session(sid.0));
    }
    if let Some(journal) = &daemon.journal {
        rt.add_op_sink(Box::new(SessionOpSink::new(sid, Arc::clone(journal))));
    }
    rt.add_op_sink(Box::new(RegistryOpSink {
        registry: Arc::clone(&daemon.registry),
        ticket: ticket.0,
    }));
    let mut pg = Polyglot::with_runtime(rt);
    match run_script(&mut pg, source) {
        Ok(lines) => {
            let kernels = pg.runtime().stats().kernels;
            send(stream, &CtldMsg::Output { lines })?;
            send(stream, &CtldMsg::Finished { kernels })?;
            daemon
                .registry
                .update(ticket.0, |e| e.phase = Phase::Finished { kernels });
            daemon.log.info(
                "session_finished",
                Some(sid.0),
                &format!("session {} finished: {kernels} kernels", sid.0),
                &[("kernels", Value::U64(kernels))],
            );
        }
        Err(e) => {
            send(
                stream,
                &CtldMsg::Failed {
                    message: e.to_string(),
                },
            )?;
            daemon.registry.update(ticket.0, |e2| {
                e2.phase = Phase::Failed {
                    message: e.to_string(),
                }
            });
            daemon.log.error(
                "session_failed",
                Some(sid.0),
                &format!("session {} failed: {e}", sid.0),
                &[],
            );
        }
    }
    // Final per-session metrics: refresh the wire view (tags the
    // registry with this session id) and snapshot for /metrics. The
    // snapshot survives the runtime, so finished sessions stay visible.
    let rt = pg.runtime_mut();
    rt.refresh_wire_metrics();
    let metrics = rt.metrics().snapshot(&[("role", "session")]);
    daemon
        .registry
        .update(ticket.0, |e| e.metrics = Some(metrics));
    // Dropping the Polyglot drops the runtime, whose SessionTransport
    // detaches: pending frames flush and the session's arrays/kernels are
    // reclaimed on every worker.
    Ok(())
}
