//! `grout-run` — execute a GuestScript program on a local GrOUT deployment.
//!
//! Usage:
//!   grout-run <script.gs> [--workers N]
//!   grout-run -e '...inline script...' [--workers N]
//!
//! GuestScript is the repository's stand-in for the paper's guest languages
//! (Listing 1 is Python under GraalVM): a small dynamic language whose only
//! systems interface is `polyglot.eval`, over which arrays are allocated and
//! CUDA-dialect kernels are built and launched.

use grout::polyglot::run_script;
use grout::Polyglot;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut workers = 2usize;
    let mut source: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--workers" => {
                workers = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--workers needs a positive integer"));
                i += 2;
            }
            "-e" => {
                source = Some(
                    args.get(i + 1)
                        .cloned()
                        .unwrap_or_else(|| die("-e needs an inline script")),
                );
                i += 2;
            }
            "-h" | "--help" => {
                println!("usage: grout-run <script.gs> [--workers N] | -e '<script>'");
                return;
            }
            path => {
                source = Some(std::fs::read_to_string(path).unwrap_or_else(|e| {
                    die(&format!("cannot read `{path}`: {e}"));
                }));
                i += 1;
            }
        }
    }
    let Some(source) = source else {
        die("no script given; see --help");
    };
    let mut pg = Polyglot::with_workers(workers);
    match run_script(&mut pg, &source) {
        Ok(output) => {
            for line in output {
                println!("{line}");
            }
            let stats = pg.runtime().stats();
            eprintln!(
                "[grout-run] {} kernels on {} workers; {}B sent, {}B p2p, {}B fetched",
                stats.kernels, workers, stats.send_bytes, stats.p2p_bytes, stats.fetch_bytes
            );
        }
        Err(e) => die(&e.to_string()),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("grout-run: {msg}");
    std::process::exit(1);
}
