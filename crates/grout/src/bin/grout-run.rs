//! `grout-run` — execute a GuestScript program on a GrOUT deployment.
//!
//! Usage:
//!   grout-run <script.gs> [--workers N | --workers tcp:<addr>,<addr>,...]
//!   grout-run -e '...inline script...' [--workers ...]
//!   grout-run <script.gs> --connect <addr> [--priority low|normal|high]
//!
//! `--workers N` deploys N in-process worker threads; `--workers
//! tcp:<addr>,...` connects to already-running `grout-workerd` processes
//! (one address per worker) and runs the same script distributed.
//! `--connect <addr>` instead attaches the script as one tenant session
//! on a running `grout-ctld` control plane and streams the results back.
//!
//! GuestScript is the repository's stand-in for the paper's guest languages
//! (Listing 1 is Python under GraalVM): a small dynamic language whose only
//! systems interface is `polyglot.eval`, over which arrays are allocated and
//! CUDA-dialect kernels are built and launched.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;

use grout::core::{ChromeTracer, OpSink, PlannerOp, Priority, Runtime, Shared};
use grout::net::oplog::{standby_serve, StandbyOutcome};
use grout::net::wire::CtldMsg;
use grout::polyglot::run_script;
use grout::Polyglot;
use grout::{
    apply_durability, ClientOutcome, CtldClient, DurabilityOptions, NetOptions, TcpExt, WorkerSpec,
};

/// Where the workers live.
enum Workers {
    /// N in-process threads.
    Threads(usize),
    /// Already-listening `grout-workerd` endpoints.
    Tcp(Vec<String>),
}

struct Cli {
    workers: Workers,
    source: String,
    /// Write a merged Chrome/Perfetto trace here (controller lanes plus
    /// clock-aligned worker spans streamed back over the wire).
    trace_out: Option<PathBuf>,
    /// Write the unified metrics artifact here (`.csv` → CSV, else JSON).
    metrics_out: Option<PathBuf>,
    /// Print the per-peer wire summary table at end of run.
    stats: bool,
    /// Grouped net/liveness knobs (heartbeat cadence, staleness, resume
    /// window) — the `net:` flag block.
    net: NetOptions,
    /// Grouped op-log durability knobs (journal path, ship-log address) —
    /// the `durability:` flag block.
    durability: DurabilityOptions,
    /// Act as the hot-standby: listen here for a shipped op log, and take
    /// over (re-drive the script) if the primary dies mid-run.
    standby: Option<String>,
    /// Fault injection: SIGKILL ourselves after this many planner ops.
    die_after_ops: Option<u64>,
    /// Attach to a running `grout-ctld` control plane instead of owning a
    /// deployment.
    connect: Option<String>,
    /// Admission/fair-share class for `--connect` sessions.
    priority: Priority,
    /// Declared working-set bytes for `--connect` admission (0 = unknown).
    declared_bytes: u64,
}

fn main() -> ExitCode {
    match parse(std::env::args().skip(1)) {
        Ok(Some(cli)) => match run(cli) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("grout-run: {msg}");
                ExitCode::FAILURE
            }
        },
        Ok(None) => ExitCode::SUCCESS, // --help
        Err(msg) => {
            eprintln!("grout-run: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: grout-run <script.gs> | -e '<script>'
  workers:     --workers N | --workers tcp:<addr>,<addr>,...
  ctld client: --connect <addr>        attach as a session on a running grout-ctld
               --priority low|normal|high   admission/fair-share class
               --declare-bytes N       declared working set for admission
  net:         --heartbeat-ms N        worker heartbeat cadence
               --stale-after N         missed beats before a worker is suspected
               --reconnect-window-ms N resume grace before quarantine
  durability:  --journal <ops.grjl>    stream planner ops to a crash-recovery journal
               --ship-log <addr>       replicate the op log to a hot standby
               --standby <addr>        act as the hot standby (listen + take over)
               --die-after-ops N       fault injection: SIGKILL self after N ops
  telemetry:   --trace-out <trace.json>        merged Chrome/Perfetto trace
               --metrics-out <metrics.{json,csv}>  unified metrics artifact
               --stats                 per-peer wire summary table";

/// Parses the command line; `Ok(None)` means `--help` was served.
fn parse(mut args: impl Iterator<Item = String>) -> Result<Option<Cli>, String> {
    let mut workers = Workers::Threads(2);
    let mut source: Option<String> = None;
    let mut trace_out = None;
    let mut metrics_out = None;
    let mut stats = false;
    let mut net = NetOptions::default();
    let mut durability = DurabilityOptions::default();
    let mut standby = None;
    let mut die_after_ops = None;
    let mut connect = None;
    let mut priority = Priority::Normal;
    let mut declared_bytes = 0u64;
    fn positive<T: std::str::FromStr + PartialOrd + From<u8>>(
        flag: &str,
        v: Option<String>,
    ) -> Result<T, String> {
        let v = v.ok_or(format!("{flag} needs a positive integer"))?;
        match v.parse::<T>() {
            Ok(n) if n >= T::from(1u8) => Ok(n),
            _ => Err(format!("{flag} needs a positive integer, got `{v}`")),
        }
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                let spec = args
                    .next()
                    .ok_or("--workers needs a count or tcp:<addr>,...")?;
                workers = parse_workers(&spec)?;
            }
            "--trace-out" => {
                trace_out = Some(PathBuf::from(
                    args.next().ok_or("--trace-out needs a path")?,
                ));
            }
            "--metrics-out" => {
                metrics_out = Some(PathBuf::from(
                    args.next().ok_or("--metrics-out needs a path")?,
                ));
            }
            "--stats" => stats = true,
            "--journal" => {
                durability.journal =
                    Some(PathBuf::from(args.next().ok_or("--journal needs a path")?));
            }
            "--ship-log" => {
                durability.ship_log = Some(args.next().ok_or("--ship-log needs an address")?);
            }
            "--standby" => {
                standby = Some(args.next().ok_or("--standby needs a listen address")?);
            }
            "--die-after-ops" => {
                let n = args.next().ok_or("--die-after-ops needs a count")?;
                let n: u64 = n
                    .parse()
                    .map_err(|_| format!("--die-after-ops needs a positive integer, got `{n}`"))?;
                if n == 0 {
                    return Err("--die-after-ops needs at least one op".into());
                }
                die_after_ops = Some(n);
            }
            "--connect" => {
                connect = Some(args.next().ok_or("--connect needs a ctld address")?);
            }
            "--priority" => {
                let p = args.next().ok_or("--priority needs low|normal|high")?;
                priority = Priority::parse(&p)?;
            }
            "--declare-bytes" => {
                let n = args.next().ok_or("--declare-bytes needs a byte count")?;
                declared_bytes = n
                    .parse()
                    .map_err(|_| format!("--declare-bytes needs a byte count, got `{n}`"))?;
            }
            "--heartbeat-ms" => net.heartbeat_ms = positive("--heartbeat-ms", args.next())?,
            "--stale-after" => net.stale_after_beats = positive("--stale-after", args.next())?,
            "--reconnect-window-ms" => {
                net.reconnect_window_ms = positive("--reconnect-window-ms", args.next())?
            }
            "-e" => {
                let inline = args.next().ok_or("-e needs an inline script")?;
                source = Some(inline);
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            path if !path.starts_with('-') => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read `{path}`: {e}"))?;
                source = Some(text);
            }
            other => return Err(format!("unknown argument `{other}`; see --help")),
        }
    }
    let source = source.ok_or("no script given; see --help")?;
    Ok(Some(Cli {
        workers,
        source,
        trace_out,
        metrics_out,
        stats,
        net,
        durability,
        standby,
        die_after_ops,
        connect,
        priority,
        declared_bytes,
    }))
}

fn parse_workers(spec: &str) -> Result<Workers, String> {
    if let Some(list) = spec.strip_prefix("tcp:") {
        let addrs: Vec<String> = list
            .split(',')
            .map(str::trim)
            .filter(|a| !a.is_empty())
            .map(String::from)
            .collect();
        if addrs.is_empty() {
            return Err("--workers tcp: needs at least one address".into());
        }
        return Ok(Workers::Tcp(addrs));
    }
    let n: usize = spec.parse().map_err(|_| {
        format!("--workers needs a positive integer or tcp:<addr>,..., got `{spec}`")
    })?;
    if n == 0 {
        return Err("--workers needs at least one worker".into());
    }
    Ok(Workers::Threads(n))
}

/// An [`OpSink`] that SIGKILLs the process after N ops — deterministic
/// "primary crashes mid-run" fault injection for the failover tests.
/// Added *after* the journal/ship sinks, so the fatal op is durable and
/// acknowledged before the process dies, exactly like a real crash
/// between two ops.
struct KillSwitch {
    remaining: u64,
}

impl OpSink for KillSwitch {
    fn append(&mut self, seq: u64, _op: &PlannerOp, _digest: Option<u64>) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        if self.remaining == 0 {
            eprintln!("[grout-run] --die-after-ops reached at op {seq}; SIGKILLing self");
            let pid = std::process::id().to_string();
            let _ = std::process::Command::new("kill")
                .args(["-9", &pid])
                .status();
            // SIGKILL is not trappable; we never get here.
        }
    }
}

fn run(cli: Cli) -> Result<(), String> {
    if cli.standby.is_some() {
        return run_standby(&cli);
    }
    if cli.connect.is_some() {
        return run_connect(&cli);
    }
    run_exec(&cli)
}

/// The ctld-client path: attach the script as one tenant session on a
/// running control plane, stream its frames, exit with the outcome. A
/// typed admission rejection prints the reason and exits cleanly
/// (nonzero, but no panic and no partial output).
fn run_connect(cli: &Cli) -> Result<(), String> {
    let addr = cli.connect.as_deref().expect("checked by run()");
    let mut client =
        CtldClient::connect(addr).map_err(|e| format!("cannot attach to ctld `{addr}`: {e}"))?;
    let outcome = client
        .run(
            &cli.source,
            cli.priority,
            cli.declared_bytes,
            |msg| match msg {
                CtldMsg::Attached { session } => {
                    eprintln!(
                        "[grout-run] attached as session {session} ({})",
                        cli.priority
                    );
                }
                CtldMsg::Queued { position } => {
                    eprintln!("[grout-run] queued at position {position}; waiting");
                }
                _ => {}
            },
        )
        .map_err(|e| format!("ctld session lost: {e}"))?;
    match outcome {
        ClientOutcome::Finished { lines, kernels, .. } => {
            for line in lines {
                println!("{line}");
            }
            eprintln!("[grout-run] {kernels} kernels via ctld {addr}");
            Ok(())
        }
        ClientOutcome::Rejected(err) => Err(format!("admission rejected: {err}")),
        ClientOutcome::Failed(message) => Err(format!("script failed on ctld: {message}")),
    }
}

/// The normal (primary) path: build the deployment, attach the op-log
/// sinks, drive the script, emit artifacts.
fn run_exec(cli: &Cli) -> Result<(), String> {
    // One grouped knob surface for both deployments: NetOptions tunes the
    // planner's liveness config and the TCP socket layer alike, and the
    // DurabilityOptions ride the builder to whichever front-end attaches
    // the op-log sinks.
    let builder = Runtime::builder()
        .net(cli.net.clone())
        .durability(cli.durability.clone());
    let (mut pg, n, transport) = match &cli.workers {
        Workers::Threads(n) => {
            let mut rt = builder
                .workers(*n)
                .build_local()
                .map_err(|e| e.to_string())?;
            apply_durability(&mut rt, &cli.durability).map_err(|e| e.to_string())?;
            (Polyglot::with_runtime(rt), *n, "threads")
        }
        Workers::Tcp(addrs) => {
            // The TCP builder applies the durability options itself.
            let n = addrs.len();
            let rt = builder
                .tcp(addrs.iter().cloned().map(WorkerSpec::Connect).collect())
                .build()
                .map_err(|e| e.to_string())?;
            (Polyglot::with_runtime(rt.into_inner()), n, "tcp")
        }
    };
    // Added after the journal/ship sinks so the fatal op is durable and
    // acknowledged before the process dies.
    if let Some(ops) = cli.die_after_ops {
        pg.runtime_mut()
            .add_op_sink(Box::new(KillSwitch { remaining: ops }));
    }
    // Attach the tracer before any CE runs so worker-side recording is
    // switched on from the first kernel.
    let tracer = cli
        .trace_out
        .as_ref()
        .map(|_| Shared::new(ChromeTracer::new()));
    if let Some(t) = &tracer {
        pg.runtime_mut().set_telemetry(t.telemetry());
    }
    let output = run_script(&mut pg, &cli.source).map_err(|e| e.to_string())?;
    for line in output {
        println!("{line}");
    }
    pg.runtime_mut().refresh_wire_metrics();
    if let (Some(path), Some(t)) = (&cli.trace_out, &tracer) {
        t.lock()
            .write_to(path)
            .map_err(|e| format!("cannot write trace `{}`: {e}", path.display()))?;
        eprintln!("[grout-run] trace written to {}", path.display());
    }
    if let Some(path) = &cli.metrics_out {
        let metrics = pg.runtime().metrics();
        let body = if path.extension().is_some_and(|e| e == "csv") {
            metrics.to_csv()
        } else {
            metrics.to_json_string()
        };
        std::fs::write(path, body)
            .map_err(|e| format!("cannot write metrics `{}`: {e}", path.display()))?;
        eprintln!("[grout-run] metrics written to {}", path.display());
    }
    if cli.stats {
        print_wire_stats(pg.runtime().metrics());
    }
    let stats = pg.runtime().stats();
    eprintln!(
        "[grout-run] {} kernels on {} {} workers; {}B sent, {}B p2p, {}B fetched",
        stats.kernels, n, transport, stats.send_bytes, stats.p2p_bytes, stats.fetch_bytes
    );
    Ok(())
}

/// The hot-standby path: tail the primary's op log into a replica
/// planner, acking each op with the replica's state digest. If the
/// primary finishes cleanly, exit without a word on stdout; if it dies,
/// take over — adopt the worker fleet (the workerds re-accept a new
/// controller) and re-drive the script from the top. Determinism makes
/// the re-driven run bit-identical to what the primary would have
/// produced.
fn run_standby(cli: &Cli) -> Result<(), String> {
    let addr = cli.standby.as_deref().expect("checked by run()");
    let listener =
        TcpListener::bind(addr).map_err(|e| format!("cannot listen on `{addr}`: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve standby address: {e}"))?;
    eprintln!("STANDBY LISTENING {local}");
    match standby_serve(&listener).map_err(|e| format!("standby session failed: {e}"))? {
        StandbyOutcome::CleanFinish { ops_applied, .. } => {
            eprintln!(
                "[grout-run] standby: primary finished cleanly after {ops_applied} ops; exiting"
            );
            Ok(())
        }
        StandbyOutcome::PrimaryDied {
            replica,
            ops_applied,
        } => {
            eprintln!(
                "[grout-run] standby: primary died after {ops_applied} ops \
                 (replica digest {:016x}); taking over",
                replica.state_digest()
            );
            run_exec(cli)
        }
    }
}

/// End-of-run per-peer wire summary (the `--stats` table). The layout is
/// stable regardless of sample counts: every worker gets a row and every
/// count column renders `0` — never a blank cell, never a missing table
/// — so scripts can parse the output of an in-process run (which tracks
/// no wire frames) exactly like a TCP run's.
fn print_wire_stats(metrics: &grout::core::Metrics) {
    eprintln!(
        "[grout-run] {:<6} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8} {:>10} {:>10} {:>10}",
        "peer",
        "frames_out",
        "bytes_out",
        "frames_in",
        "bytes_in",
        "resumes",
        "rtt_n",
        "rtt_p50",
        "rtt_p99",
        "offset_ns"
    );
    let zero = grout::core::PeerWireStats::default();
    let workers = metrics.wire.len().max(metrics.kernels_by_worker.len());
    for w in 0..workers {
        let s = metrics.wire.get(w).unwrap_or(&zero);
        eprintln!(
            "[grout-run] w{:<5} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8} {:>10} {:>10} {:>10}",
            w,
            s.frames_sent,
            s.bytes_sent,
            s.frames_recv,
            s.bytes_recv,
            s.resumes,
            s.hb_rtt.count,
            s.hb_rtt.percentile_ns(0.5),
            s.hb_rtt.percentile_ns(0.99),
            s.clock_offset_ns
        );
    }
}
