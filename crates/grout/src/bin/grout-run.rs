//! `grout-run` — execute a GuestScript program on a GrOUT deployment.
//!
//! Usage:
//!   grout-run <script.gs> [--workers N | --workers tcp:<addr>,<addr>,...]
//!   grout-run -e '...inline script...' [--workers ...]
//!
//! `--workers N` deploys N in-process worker threads; `--workers
//! tcp:<addr>,...` connects to already-running `grout-workerd` processes
//! (one address per worker) and runs the same script distributed.
//!
//! GuestScript is the repository's stand-in for the paper's guest languages
//! (Listing 1 is Python under GraalVM): a small dynamic language whose only
//! systems interface is `polyglot.eval`, over which arrays are allocated and
//! CUDA-dialect kernels are built and launched.

use std::path::PathBuf;
use std::process::ExitCode;

use grout::core::{ChromeTracer, Runtime, Shared};
use grout::net::{TcpExt, WorkerSpec};
use grout::polyglot::run_script;
use grout::Polyglot;

/// Where the workers live.
enum Workers {
    /// N in-process threads.
    Threads(usize),
    /// Already-listening `grout-workerd` endpoints.
    Tcp(Vec<String>),
}

struct Cli {
    workers: Workers,
    source: String,
    /// Write a merged Chrome/Perfetto trace here (controller lanes plus
    /// clock-aligned worker spans streamed back over the wire).
    trace_out: Option<PathBuf>,
    /// Write the unified metrics artifact here (`.csv` → CSV, else JSON).
    metrics_out: Option<PathBuf>,
    /// Print the per-peer wire summary table at end of run.
    stats: bool,
}

fn main() -> ExitCode {
    match parse(std::env::args().skip(1)) {
        Ok(Some(cli)) => match run(cli) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("grout-run: {msg}");
                ExitCode::FAILURE
            }
        },
        Ok(None) => ExitCode::SUCCESS, // --help
        Err(msg) => {
            eprintln!("grout-run: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: grout-run <script.gs> [--workers N | --workers tcp:<addr>,...] \
     [--trace-out <trace.json>] [--metrics-out <metrics.{json,csv}>] [--stats] | -e '<script>'";

/// Parses the command line; `Ok(None)` means `--help` was served.
fn parse(mut args: impl Iterator<Item = String>) -> Result<Option<Cli>, String> {
    let mut workers = Workers::Threads(2);
    let mut source: Option<String> = None;
    let mut trace_out = None;
    let mut metrics_out = None;
    let mut stats = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                let spec = args
                    .next()
                    .ok_or("--workers needs a count or tcp:<addr>,...")?;
                workers = parse_workers(&spec)?;
            }
            "--trace-out" => {
                trace_out = Some(PathBuf::from(
                    args.next().ok_or("--trace-out needs a path")?,
                ));
            }
            "--metrics-out" => {
                metrics_out = Some(PathBuf::from(
                    args.next().ok_or("--metrics-out needs a path")?,
                ));
            }
            "--stats" => stats = true,
            "-e" => {
                let inline = args.next().ok_or("-e needs an inline script")?;
                source = Some(inline);
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            path if !path.starts_with('-') => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read `{path}`: {e}"))?;
                source = Some(text);
            }
            other => return Err(format!("unknown argument `{other}`; see --help")),
        }
    }
    let source = source.ok_or("no script given; see --help")?;
    Ok(Some(Cli {
        workers,
        source,
        trace_out,
        metrics_out,
        stats,
    }))
}

fn parse_workers(spec: &str) -> Result<Workers, String> {
    if let Some(list) = spec.strip_prefix("tcp:") {
        let addrs: Vec<String> = list
            .split(',')
            .map(str::trim)
            .filter(|a| !a.is_empty())
            .map(String::from)
            .collect();
        if addrs.is_empty() {
            return Err("--workers tcp: needs at least one address".into());
        }
        return Ok(Workers::Tcp(addrs));
    }
    let n: usize = spec.parse().map_err(|_| {
        format!("--workers needs a positive integer or tcp:<addr>,..., got `{spec}`")
    })?;
    if n == 0 {
        return Err("--workers needs at least one worker".into());
    }
    Ok(Workers::Threads(n))
}

fn run(cli: Cli) -> Result<(), String> {
    let (mut pg, n, transport) = match cli.workers {
        Workers::Threads(n) => (Polyglot::with_workers(n), n, "threads"),
        Workers::Tcp(addrs) => {
            let n = addrs.len();
            let rt = Runtime::builder()
                .tcp(addrs.into_iter().map(WorkerSpec::Connect).collect())
                .build()
                .map_err(|e| e.to_string())?;
            (Polyglot::with_runtime(rt.into_inner()), n, "tcp")
        }
    };
    // Attach the tracer before any CE runs so worker-side recording is
    // switched on from the first kernel.
    let tracer = cli
        .trace_out
        .as_ref()
        .map(|_| Shared::new(ChromeTracer::new()));
    if let Some(t) = &tracer {
        pg.runtime_mut().set_telemetry(t.telemetry());
    }
    let output = run_script(&mut pg, &cli.source).map_err(|e| e.to_string())?;
    for line in output {
        println!("{line}");
    }
    pg.runtime_mut().refresh_wire_metrics();
    if let (Some(path), Some(t)) = (&cli.trace_out, &tracer) {
        t.lock()
            .write_to(path)
            .map_err(|e| format!("cannot write trace `{}`: {e}", path.display()))?;
        eprintln!("[grout-run] trace written to {}", path.display());
    }
    if let Some(path) = &cli.metrics_out {
        let metrics = pg.runtime().metrics();
        let body = if path.extension().is_some_and(|e| e == "csv") {
            metrics.to_csv()
        } else {
            metrics.to_json_string()
        };
        std::fs::write(path, body)
            .map_err(|e| format!("cannot write metrics `{}`: {e}", path.display()))?;
        eprintln!("[grout-run] metrics written to {}", path.display());
    }
    if cli.stats {
        print_wire_stats(pg.runtime().metrics());
    }
    let stats = pg.runtime().stats();
    eprintln!(
        "[grout-run] {} kernels on {} {} workers; {}B sent, {}B p2p, {}B fetched",
        stats.kernels, n, transport, stats.send_bytes, stats.p2p_bytes, stats.fetch_bytes
    );
    Ok(())
}

/// End-of-run per-peer wire summary (the `--stats` table).
fn print_wire_stats(metrics: &grout::core::Metrics) {
    if metrics.wire.is_empty() {
        eprintln!("[grout-run] no wire stats (transport tracks none)");
        return;
    }
    eprintln!(
        "[grout-run] {:<6} {:>12} {:>12} {:>12} {:>12} {:>8} {:>10} {:>10} {:>10}",
        "peer",
        "frames_out",
        "bytes_out",
        "frames_in",
        "bytes_in",
        "rtt_n",
        "rtt_p50",
        "rtt_p99",
        "offset_ns"
    );
    for (w, s) in metrics.wire.iter().enumerate() {
        eprintln!(
            "[grout-run] w{:<5} {:>12} {:>12} {:>12} {:>12} {:>8} {:>10} {:>10} {:>10}",
            w,
            s.frames_sent,
            s.bytes_sent,
            s.frames_recv,
            s.bytes_recv,
            s.hb_rtt.count,
            s.hb_rtt.percentile_ns(0.5),
            s.hb_rtt.percentile_ns(0.99),
            s.clock_offset_ns
        );
    }
}
