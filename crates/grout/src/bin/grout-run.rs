//! `grout-run` — execute a GuestScript program on a GrOUT deployment.
//!
//! Usage:
//!   grout-run <script.gs> [--workers N | --workers tcp:<addr>,<addr>,...]
//!   grout-run -e '...inline script...' [--workers ...]
//!
//! `--workers N` deploys N in-process worker threads; `--workers
//! tcp:<addr>,...` connects to already-running `grout-workerd` processes
//! (one address per worker) and runs the same script distributed.
//!
//! GuestScript is the repository's stand-in for the paper's guest languages
//! (Listing 1 is Python under GraalVM): a small dynamic language whose only
//! systems interface is `polyglot.eval`, over which arrays are allocated and
//! CUDA-dialect kernels are built and launched.

use std::process::ExitCode;

use grout::core::Runtime;
use grout::net::{TcpExt, WorkerSpec};
use grout::polyglot::run_script;
use grout::Polyglot;

/// Where the workers live.
enum Workers {
    /// N in-process threads.
    Threads(usize),
    /// Already-listening `grout-workerd` endpoints.
    Tcp(Vec<String>),
}

struct Cli {
    workers: Workers,
    source: String,
}

fn main() -> ExitCode {
    match parse(std::env::args().skip(1)) {
        Ok(Some(cli)) => match run(cli) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("grout-run: {msg}");
                ExitCode::FAILURE
            }
        },
        Ok(None) => ExitCode::SUCCESS, // --help
        Err(msg) => {
            eprintln!("grout-run: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str =
    "usage: grout-run <script.gs> [--workers N | --workers tcp:<addr>,...] | -e '<script>'";

/// Parses the command line; `Ok(None)` means `--help` was served.
fn parse(mut args: impl Iterator<Item = String>) -> Result<Option<Cli>, String> {
    let mut workers = Workers::Threads(2);
    let mut source: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                let spec = args
                    .next()
                    .ok_or("--workers needs a count or tcp:<addr>,...")?;
                workers = parse_workers(&spec)?;
            }
            "-e" => {
                let inline = args.next().ok_or("-e needs an inline script")?;
                source = Some(inline);
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            path if !path.starts_with('-') => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read `{path}`: {e}"))?;
                source = Some(text);
            }
            other => return Err(format!("unknown argument `{other}`; see --help")),
        }
    }
    let source = source.ok_or("no script given; see --help")?;
    Ok(Some(Cli { workers, source }))
}

fn parse_workers(spec: &str) -> Result<Workers, String> {
    if let Some(list) = spec.strip_prefix("tcp:") {
        let addrs: Vec<String> = list
            .split(',')
            .map(str::trim)
            .filter(|a| !a.is_empty())
            .map(String::from)
            .collect();
        if addrs.is_empty() {
            return Err("--workers tcp: needs at least one address".into());
        }
        return Ok(Workers::Tcp(addrs));
    }
    let n: usize = spec.parse().map_err(|_| {
        format!("--workers needs a positive integer or tcp:<addr>,..., got `{spec}`")
    })?;
    if n == 0 {
        return Err("--workers needs at least one worker".into());
    }
    Ok(Workers::Threads(n))
}

fn run(cli: Cli) -> Result<(), String> {
    let (mut pg, n, transport) = match cli.workers {
        Workers::Threads(n) => (Polyglot::with_workers(n), n, "threads"),
        Workers::Tcp(addrs) => {
            let n = addrs.len();
            let rt = Runtime::builder()
                .tcp(addrs.into_iter().map(WorkerSpec::Connect).collect())
                .build()
                .map_err(|e| e.to_string())?;
            (Polyglot::with_runtime(rt.into_inner()), n, "tcp")
        }
    };
    let output = run_script(&mut pg, &cli.source).map_err(|e| e.to_string())?;
    for line in output {
        println!("{line}");
    }
    let stats = pg.runtime().stats();
    eprintln!(
        "[grout-run] {} kernels on {} {} workers; {}B sent, {}B p2p, {}B fetched",
        stats.kernels, n, transport, stats.send_bytes, stats.p2p_bytes, stats.fetch_bytes
    );
    Ok(())
}
