//! Property-based invariants of the UVM model.

use proptest::prelude::*;
use uvm_sim::{
    AccessMode, AccessPattern, AllocId, ArgAccess, MemAdvise, Regime, Residency, UvmConfig,
    UvmDevice,
};

const GIB: u64 = 1 << 30;

fn arb_pattern() -> impl Strategy<Value = AccessPattern> {
    prop_oneof![
        (1.0f64..8.0).prop_map(|sweeps| AccessPattern::Streamed { sweeps }),
        (1.0f64..8.0).prop_map(|touches_per_page| AccessPattern::Gather { touches_per_page }),
    ]
}

fn arb_arg(id: u64) -> impl Strategy<Value = ArgAccess> {
    (1u64..(64 * GIB), arb_pattern(), 0u8..3).prop_map(move |(bytes, pattern, m)| ArgAccess {
        alloc: AllocId(id),
        bytes,
        alloc_bytes: bytes,
        pattern,
        mode: match m {
            0 => AccessMode::Read,
            1 => AccessMode::Write,
            _ => AccessMode::ReadWrite,
        },
        advise: MemAdvise::None,
    })
}

proptest! {
    /// Residency never exceeds capacity, and installed counts equal usage
    /// growth.
    #[test]
    fn residency_respects_capacity(
        ops in proptest::collection::vec((0u64..8, 1u64..500, any::<bool>()), 1..200),
        cap in 1u64..400,
    ) {
        let mut r = Residency::new(cap);
        for (id, want, writes) in ops {
            let before = r.used_pages();
            let out = r.ensure_resident(AllocId(id), want, writes);
            prop_assert!(r.used_pages() <= cap);
            prop_assert_eq!(
                r.used_pages(),
                before + out.installed - out.evicted_clean - out.evicted_dirty
            );
        }
    }

    /// Stall time and migrated bytes are monotone non-decreasing in
    /// footprint for a fixed pattern on a fresh device.
    #[test]
    fn stall_monotone_in_footprint(a in 1u64..64, b in 1u64..64, sweeps in 1.0f64..4.0) {
        let (small, big) = if a <= b { (a, b) } else { (b, a) };
        let run = |gib: u64| {
            let mut d = UvmDevice::new(UvmConfig::default(), 16 * GIB, 12e9);
            d.kernel_access(&[ArgAccess {
                alloc: AllocId(1),
                bytes: gib * GIB,
                alloc_bytes: gib * GIB,
                pattern: AccessPattern::Streamed { sweeps },
                mode: AccessMode::Read,
                advise: MemAdvise::None,
            }])
        };
        let rs = run(small);
        let rb = run(big);
        prop_assert!(rb.stall >= rs.stall);
        prop_assert!(rb.migrated_bytes >= rs.migrated_bytes);
    }

    /// A fitting working set never storms; a working set past the stream
    /// knee always does.
    #[test]
    fn regime_classification_is_correct(arg in arb_arg(7)) {
        let mut d = UvmDevice::new(UvmConfig::default(), 16 * GIB, 12e9);
        let cap = d.capacity_bytes();
        let r = d.kernel_access(&[arg]);
        if arg.bytes <= cap {
            prop_assert_ne!(r.regime, Regime::FaultStorm);
        }
        let knee = d.config().stream_storm_knee.max(d.config().gather_storm_knee);
        if (arg.bytes as f64) > knee * cap as f64 {
            prop_assert_eq!(r.regime, Regime::FaultStorm);
        }
    }

    /// Read-only kernels never generate writeback.
    #[test]
    fn reads_never_write_back(
        sizes in proptest::collection::vec(1u64..(48 * GIB), 1..6),
    ) {
        let mut d = UvmDevice::new(UvmConfig::default(), 16 * GIB, 12e9);
        let args: Vec<ArgAccess> = sizes
            .iter()
            .enumerate()
            .map(|(i, &b)| ArgAccess::streamed_read(AllocId(i as u64), b))
            .collect();
        let r = d.kernel_access(&args);
        prop_assert_eq!(r.writeback_bytes, 0);
    }

    /// Repeating the same fitting kernel is idempotent on residency and
    /// free after the first run.
    #[test]
    fn warm_fitting_reruns_are_free(gib in 1u64..15, reps in 1usize..5) {
        let mut d = UvmDevice::new(UvmConfig::default(), 16 * GIB, 12e9);
        let arg = ArgAccess::streamed_read(AllocId(3), gib * GIB);
        let first = d.kernel_access(&[arg]);
        prop_assert!(first.migrated_bytes >= gib * GIB);
        for _ in 0..reps {
            let r = d.kernel_access(&[arg]);
            prop_assert_eq!(r.migrated_bytes, 0);
            prop_assert_eq!(r.regime, Regime::Resident);
        }
    }

    /// The ReadMostly hint never makes things slower.
    #[test]
    fn read_mostly_never_hurts(gib in 1u64..64, touches in 1.0f64..8.0) {
        let run = |advise| {
            let mut d = UvmDevice::new(UvmConfig::default(), 16 * GIB, 12e9);
            d.kernel_access(&[ArgAccess {
                alloc: AllocId(1),
                bytes: gib * GIB,
                alloc_bytes: gib * GIB,
                pattern: AccessPattern::Gather { touches_per_page: touches },
                mode: AccessMode::Read,
                advise,
            }])
        };
        let plain = run(MemAdvise::None);
        let hinted = run(MemAdvise::ReadMostly);
        prop_assert!(hinted.stall <= plain.stall);
    }
}
