//! Per-device page residency with allocation-granular LRU.
//!
//! Tracking 160 GB at individual 64 KiB pages would be 2.6 M entries per
//! device per kernel; since kernels touch whole framework-managed arrays in
//! phases, residency is kept as a *count of resident pages per allocation*
//! plus a recency stamp — enough to know cold-fault volume, eviction victims
//! and dirty writeback volume, which is all the cost model consumes. The
//! sub-allocation churn of an oversubscribed sweep is modeled analytically in
//! [`crate::engine`].

use std::collections::HashMap;

use crate::AllocId;

/// Which resident pages the driver evicts first under pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Evict from the least-recently-used allocation (NVIDIA's default).
    #[default]
    Lru,
    /// Evict from a pseudo-random allocation (deterministic xorshift seed) —
    /// the ablation baseline showing how much the LRU recency protection of
    /// hot arrays is worth.
    Random,
}

/// What `ensure_resident` did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InstallOutcome {
    /// Pages newly migrated in (cold faults).
    pub installed: u64,
    /// Clean pages evicted from other allocations.
    pub evicted_clean: u64,
    /// Dirty pages evicted from other allocations (need writeback).
    pub evicted_dirty: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    pages: u64,
    dirty: bool,
    last_touch: u64,
}

/// Residency state of one device.
#[derive(Debug, Clone)]
pub struct Residency {
    capacity_pages: u64,
    entries: HashMap<AllocId, Entry>,
    used_pages: u64,
    tick: u64,
    total_evicted: u64,
    policy: EvictionPolicy,
    rng_state: u64,
}

impl Residency {
    /// An empty device with the given usable capacity (LRU eviction).
    pub fn new(capacity_pages: u64) -> Self {
        Residency::with_policy(capacity_pages, EvictionPolicy::Lru)
    }

    /// An empty device with an explicit eviction policy.
    pub fn with_policy(capacity_pages: u64, policy: EvictionPolicy) -> Self {
        Residency {
            capacity_pages,
            entries: HashMap::new(),
            used_pages: 0,
            tick: 0,
            total_evicted: 0,
            policy,
            rng_state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Usable capacity in pages.
    #[inline]
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }

    /// Pages currently resident across all allocations.
    #[inline]
    pub fn used_pages(&self) -> u64 {
        self.used_pages
    }

    /// Pages of `alloc` currently resident.
    pub fn resident_pages(&self, alloc: AllocId) -> u64 {
        self.entries.get(&alloc).map_or(0, |e| e.pages)
    }

    /// Total pages evicted over the device's lifetime.
    #[inline]
    pub fn total_evicted(&self) -> u64 {
        self.total_evicted
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Makes (up to capacity) `want_pages` of `alloc` resident, evicting
    /// least-recently-used *other* allocations as needed. Marks the
    /// allocation dirty when `writes` is set. Returns the fault/eviction
    /// volumes for the cost model.
    pub fn ensure_resident(
        &mut self,
        alloc: AllocId,
        want_pages: u64,
        writes: bool,
    ) -> InstallOutcome {
        let tick = self.next_tick();
        let have = self.resident_pages(alloc);
        // An allocation can never hold more than the device.
        let want = want_pages.min(self.capacity_pages);
        let mut out = InstallOutcome::default();
        if want > have {
            let need = want - have;
            let free = self.capacity_pages - self.used_pages;
            if need > free {
                let (clean, dirty) = self.evict_lru(need - free, alloc, tick);
                out.evicted_clean = clean;
                out.evicted_dirty = dirty;
            }
            let free = self.capacity_pages - self.used_pages;
            let installed = need.min(free);
            out.installed = installed;
            self.used_pages += installed;
            let e = self.entries.entry(alloc).or_insert(Entry {
                pages: 0,
                dirty: false,
                last_touch: tick,
            });
            e.pages += installed;
            e.dirty |= writes;
            e.last_touch = tick;
        } else if let Some(e) = self.entries.get_mut(&alloc) {
            e.dirty |= writes;
            e.last_touch = tick;
        }
        out
    }

    /// Evicts up to `needed` pages from LRU allocations, never touching
    /// `protect`. Returns (clean, dirty) eviction counts; may evict less if
    /// everything else is empty.
    fn evict_lru(&mut self, mut needed: u64, protect: AllocId, _tick: u64) -> (u64, u64) {
        let mut clean = 0;
        let mut dirty = 0;
        while needed > 0 {
            let victim = match self.policy {
                EvictionPolicy::Lru => self
                    .entries
                    .iter()
                    .filter(|(id, e)| **id != protect && e.pages > 0)
                    .min_by_key(|(_, e)| e.last_touch)
                    .map(|(id, _)| *id),
                EvictionPolicy::Random => {
                    let mut candidates: Vec<AllocId> = self
                        .entries
                        .iter()
                        .filter(|(id, e)| **id != protect && e.pages > 0)
                        .map(|(id, _)| *id)
                        .collect();
                    candidates.sort_unstable(); // deterministic order
                    if candidates.is_empty() {
                        None
                    } else {
                        // xorshift64*: deterministic, seedless of wall time.
                        self.rng_state ^= self.rng_state << 13;
                        self.rng_state ^= self.rng_state >> 7;
                        self.rng_state ^= self.rng_state << 17;
                        Some(candidates[(self.rng_state % candidates.len() as u64) as usize])
                    }
                }
            };
            let Some(victim) = victim else { break };
            let e = self.entries.get_mut(&victim).expect("victim exists");
            let take = e.pages.min(needed);
            e.pages -= take;
            self.used_pages -= take;
            self.total_evicted += take;
            needed -= take;
            if e.dirty {
                dirty += take;
            } else {
                clean += take;
            }
            if e.pages == 0 {
                self.entries.remove(&victim);
            }
        }
        (clean, dirty)
    }

    /// Drops every resident page of `alloc` (e.g. the array was freed or its
    /// authoritative copy moved elsewhere). Returns (pages, was_dirty).
    pub fn invalidate(&mut self, alloc: AllocId) -> (u64, bool) {
        if let Some(e) = self.entries.remove(&alloc) {
            self.used_pages -= e.pages;
            (e.pages, e.dirty)
        } else {
            (0, false)
        }
    }

    /// Clears the dirty flag after the allocation's device copy has been
    /// synchronized back to its authoritative home.
    pub fn mark_clean(&mut self, alloc: AllocId) {
        if let Some(e) = self.entries.get_mut(&alloc) {
            e.dirty = false;
        }
    }

    /// Whether the allocation's resident pages are dirty.
    pub fn is_dirty(&self, alloc: AllocId) -> bool {
        self.entries.get(&alloc).is_some_and(|e| e.dirty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: AllocId = AllocId(1);
    const B: AllocId = AllocId(2);
    const C: AllocId = AllocId(3);

    #[test]
    fn cold_install_counts_faults() {
        let mut r = Residency::new(100);
        let out = r.ensure_resident(A, 40, false);
        assert_eq!(out.installed, 40);
        assert_eq!(out.evicted_clean + out.evicted_dirty, 0);
        assert_eq!(r.resident_pages(A), 40);
        assert_eq!(r.used_pages(), 40);
    }

    #[test]
    fn warm_install_is_free() {
        let mut r = Residency::new(100);
        r.ensure_resident(A, 40, false);
        let out = r.ensure_resident(A, 40, false);
        assert_eq!(out.installed, 0);
    }

    #[test]
    fn lru_eviction_prefers_oldest() {
        let mut r = Residency::new(100);
        r.ensure_resident(A, 60, false);
        r.ensure_resident(B, 40, false);
        // A is older; C needs 50 -> evicts from A first.
        let out = r.ensure_resident(C, 50, false);
        assert_eq!(out.installed, 50);
        assert_eq!(out.evicted_clean, 50);
        assert_eq!(r.resident_pages(A), 10);
        assert_eq!(r.resident_pages(B), 40);
        assert_eq!(r.used_pages(), 100);
    }

    #[test]
    fn touch_refreshes_recency() {
        let mut r = Residency::new(100);
        r.ensure_resident(A, 60, false);
        r.ensure_resident(B, 40, false);
        // Touch A so B becomes the LRU victim.
        r.ensure_resident(A, 60, false);
        let out = r.ensure_resident(C, 30, false);
        assert_eq!(out.evicted_clean, 30);
        assert_eq!(r.resident_pages(B), 10);
        assert_eq!(r.resident_pages(A), 60);
    }

    #[test]
    fn dirty_evictions_are_reported() {
        let mut r = Residency::new(100);
        r.ensure_resident(A, 60, true); // written
        r.ensure_resident(B, 40, false);
        let out = r.ensure_resident(C, 50, false);
        assert_eq!(out.evicted_dirty, 50);
        assert!(r.is_dirty(A));
    }

    #[test]
    fn want_is_capped_at_capacity() {
        let mut r = Residency::new(100);
        let out = r.ensure_resident(A, 1000, false);
        assert_eq!(out.installed, 100);
        assert_eq!(r.resident_pages(A), 100);
    }

    #[test]
    fn protected_alloc_never_self_evicts() {
        let mut r = Residency::new(100);
        r.ensure_resident(A, 100, false);
        // Asking for more of A cannot evict A; nothing else to evict.
        let out = r.ensure_resident(A, 100, false);
        assert_eq!(out.installed, 0);
        assert_eq!(r.used_pages(), 100);
    }

    #[test]
    fn invalidate_frees_pages() {
        let mut r = Residency::new(100);
        r.ensure_resident(A, 70, true);
        let (pages, dirty) = r.invalidate(A);
        assert_eq!(pages, 70);
        assert!(dirty);
        assert_eq!(r.used_pages(), 0);
        assert_eq!(r.invalidate(A), (0, false));
    }

    #[test]
    fn random_eviction_is_deterministic_and_bounded() {
        let run = || {
            let mut r = Residency::with_policy(100, EvictionPolicy::Random);
            let mut trace = Vec::new();
            for i in 0..20u64 {
                let out = r.ensure_resident(AllocId(i % 5), 40, false);
                trace.push((out.installed, out.evicted_clean));
                assert!(r.used_pages() <= 100);
            }
            trace
        };
        assert_eq!(run(), run(), "deterministic");
    }

    #[test]
    fn lru_protects_hot_allocations_better_than_random() {
        // Touch A every step while B/C churn; under LRU, A survives.
        let mut lru = Residency::with_policy(100, EvictionPolicy::Lru);
        for i in 0..50u64 {
            lru.ensure_resident(AllocId(0), 30, false); // hot
            lru.ensure_resident(AllocId(1 + i % 2), 50, false); // churn
        }
        assert_eq!(
            lru.resident_pages(AllocId(0)),
            30,
            "LRU keeps the hot array"
        );
    }

    #[test]
    fn mark_clean_clears_dirty() {
        let mut r = Residency::new(100);
        r.ensure_resident(A, 10, true);
        assert!(r.is_dirty(A));
        r.mark_clean(A);
        assert!(!r.is_dirty(A));
    }
}
