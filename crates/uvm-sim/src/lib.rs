#![warn(missing_docs)]
//! # uvm-sim — Unified Virtual Memory model for the GrOUT reproduction
//!
//! Reproduces the *mechanism* behind the paper's motivating observation:
//! UVM-managed workloads scale almost linearly with footprint until a
//! workload-dependent oversubscription threshold, then fall off a cliff
//! (70-342x in the paper) because page eviction starts racing in-flight
//! thread blocks and the prefetcher collapses to per-fault 64 KiB
//! migrations.
//!
//! The model is organized as:
//! - [`UvmConfig`] — mechanism constants (page sizes, fault latency, knees),
//! - [`Residency`] — per-device allocation-granular LRU residency,
//! - [`UvmDevice`] / [`UvmDevice::kernel_access`] — the three-regime cost
//!   engine (fit / streaming eviction / fault storm),
//! - [`ArgAccess`], [`AccessPattern`], [`MemAdvise`] — per-argument
//!   descriptors, either declared by workloads or inferred by `kernelc`.
//!
//! ```
//! use uvm_sim::{AllocId, ArgAccess, Regime, UvmConfig, UvmDevice};
//!
//! let mut dev = UvmDevice::new(UvmConfig::default(), 16 << 30, 12e9);
//! // 48 GiB working set on a 16 GiB device: deep oversubscription.
//! let r = dev.kernel_access(&[ArgAccess::streamed_read(AllocId(0), 48 << 30)]);
//! assert_eq!(r.regime, Regime::FaultStorm);
//! ```

mod config;
mod engine;
mod pattern;
mod residency;

pub use config::{Prefetcher, UvmConfig};
pub use engine::{Regime, UvmDevice, UvmReport, UvmStats};
pub use pattern::{AccessMode, AccessPattern, ArgAccess, MemAdvise};
pub use residency::{EvictionPolicy, InstallOutcome, Residency};

/// Identity of one framework-managed allocation, stable across the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AllocId(pub u64);
