//! The UVM fault/migration cost engine.
//!
//! This is the mechanism behind every figure in the paper: given a kernel's
//! argument set (sizes, locality, read/write, hints) and the device's current
//! page residency, compute how long the kernel stalls on fault handling,
//! migration and eviction, and update residency.
//!
//! Three regimes emerge from working-set pressure `rho = working set /
//! capacity`, mirroring the published UVM characterizations:
//!
//! 1. **fit** (`rho <= 1`): only cold faults; the tree prefetcher migrates at
//!    2 MiB granules near PCIe speed. Cost is linear in non-resident bytes.
//! 2. **streaming eviction** (`1 < rho <= knee`): each pass over the data
//!    refaults the overflow; eviction runs behind the sweep front, so
//!    migration stays prefetch-friendly. Cost grows with overflow x sweeps.
//! 3. **fault storm** (`rho > knee`): eviction races in-flight thread
//!    blocks; the prefetcher collapses to 64 KiB serviced fault batches, and
//!    every sweep refaults nearly everything with a ping-pong multiplier.
//!    This is the paper's 70-342x cliff. Low-locality (FALL) arguments reach
//!    this regime as soon as they stop fitting (`gather_storm_knee ~ 1`).

use std::collections::HashMap;

use desim::SimDuration;

use crate::config::UvmConfig;
use crate::pattern::{AccessPattern, ArgAccess, MemAdvise};
use crate::residency::Residency;
use crate::AllocId;

/// Which regime a kernel access landed in (the worst across its arguments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Regime {
    /// Everything already resident.
    Resident,
    /// Cold faults only; working set fits.
    ColdFit,
    /// Overflow refaults at streaming rate.
    StreamingEviction,
    /// Thrashing with per-page fault service.
    FaultStorm,
}

/// Cost breakdown of one kernel's UVM activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UvmReport {
    /// Total stall added to the kernel's execution time.
    pub stall: SimDuration,
    /// Bytes migrated host-to-device (cold + refaults).
    pub migrated_bytes: u64,
    /// Bytes written back on dirty evictions.
    pub writeback_bytes: u64,
    /// Fault batches serviced.
    pub fault_batches: u64,
    /// Worst regime observed across arguments.
    pub regime: Regime,
    /// Working-set pressure (working set / usable capacity).
    pub pressure: f64,
}

/// Lifetime counters for one device.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UvmStats {
    /// Kernel accesses processed.
    pub kernels: u64,
    /// Total migrated bytes.
    pub migrated_bytes: u64,
    /// Total writeback bytes.
    pub writeback_bytes: u64,
    /// Total fault batches.
    pub fault_batches: u64,
    /// Total stall time.
    pub stall: SimDuration,
    /// Kernels that hit the fault-storm regime.
    pub storm_kernels: u64,
}

/// UVM state of one device.
#[derive(Debug, Clone)]
pub struct UvmDevice {
    cfg: UvmConfig,
    residency: Residency,
    pcie_bps: f64,
    stats: UvmStats,
    /// Monotone launch counter for the active-set window.
    launches: u64,
    /// Per-allocation (last launch touched, pages) for pressure tracking.
    active: HashMap<AllocId, (u64, u64)>,
}

impl UvmDevice {
    /// A device with `memory_bytes` of HBM behind a `pcie_bps` link.
    pub fn new(cfg: UvmConfig, memory_bytes: u64, pcie_bps: f64) -> Self {
        let capacity = cfg.capacity_pages(memory_bytes);
        UvmDevice {
            residency: Residency::with_policy(capacity, cfg.eviction),
            pcie_bps,
            stats: UvmStats::default(),
            launches: 0,
            active: HashMap::new(),
            cfg,
        }
    }

    /// The model configuration.
    #[inline]
    pub fn config(&self) -> &UvmConfig {
        &self.cfg
    }

    /// Usable capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.residency.capacity_pages() * self.cfg.page_bytes
    }

    /// Lifetime counters.
    #[inline]
    pub fn stats(&self) -> UvmStats {
        self.stats
    }

    /// Resident bytes of an allocation.
    pub fn resident_bytes(&self, alloc: AllocId) -> u64 {
        self.residency.resident_pages(alloc) * self.cfg.page_bytes
    }

    /// Drops residency of `alloc` (freed, or its authoritative copy moved).
    pub fn invalidate(&mut self, alloc: AllocId) {
        self.residency.invalidate(alloc);
        self.active.remove(&alloc);
    }

    /// Bytes of allocations touched within the active window (the set still
    /// contending for residency).
    pub fn active_bytes(&self) -> u64 {
        let horizon = self.launches.saturating_sub(self.cfg.active_window);
        self.active
            .values()
            .filter(|(last, _)| *last >= horizon)
            .map(|(_, pages)| pages * self.cfg.page_bytes)
            .sum()
    }

    /// [`UvmDevice::active_bytes`] excluding the given allocations — the
    /// *competing* pressure a kernel over those allocations would face here.
    /// (A kernel's own data never competes with itself, so placement
    /// decisions must not count it.)
    pub fn active_bytes_excluding(&self, allocs: &[AllocId]) -> u64 {
        let horizon = self.launches.saturating_sub(self.cfg.active_window);
        self.active
            .iter()
            .filter(|(id, (last, _))| *last >= horizon && !allocs.contains(id))
            .map(|(_, (_, pages))| pages * self.cfg.page_bytes)
            .sum()
    }

    /// Time to migrate `pages` with the prefetcher effective (2 MiB granules
    /// at near-PCIe speed).
    fn prefetched_cost(&self, pages: u64) -> (SimDuration, u64) {
        if pages == 0 {
            return (SimDuration::ZERO, 0);
        }
        let bytes = pages * self.cfg.page_bytes;
        let granules = (bytes).div_ceil(self.cfg.prefetch_granule_bytes);
        let xfer =
            SimDuration::from_secs_f64(bytes as f64 / self.pcie_bps * self.cfg.prefetch_overhead);
        (xfer + self.cfg.fault_batch_latency * granules, granules)
    }

    /// Time to migrate `pages` under fault storms (per-page 64 KiB batches).
    fn storm_cost(&self, pages: u64) -> (SimDuration, u64) {
        if pages == 0 {
            return (SimDuration::ZERO, 0);
        }
        let per_page = self.cfg.fault_batch_latency
            + SimDuration::for_bytes(self.cfg.page_bytes, self.pcie_bps);
        (per_page * pages, pages)
    }

    /// Dirty-eviction writeback cost (partially overlapped on duplex PCIe).
    fn writeback_cost(&self, pages: u64) -> SimDuration {
        SimDuration::from_secs_f64(
            (pages * self.cfg.page_bytes) as f64 / self.pcie_bps * self.cfg.evict_cost_fraction,
        )
    }

    /// `cudaMemPrefetchAsync` stand-in: migrates (up to capacity) the first
    /// `bytes` of `alloc` at the prefetched streaming rate *ahead* of any
    /// kernel, returning the transfer time. A subsequent kernel finds the
    /// pages resident and pays no cold faults — the paper's "hand-tuning"
    /// alternative to scaling out. Under oversubscription the prefetched
    /// pages still evict other data (accounted via residency), which is
    /// precisely why the paper calls hints workload-dependent.
    pub fn prefetch(&mut self, alloc: AllocId, bytes: u64) -> SimDuration {
        let pages = self.cfg.pages(bytes);
        let before = self.residency.resident_pages(alloc);
        let out = self.residency.ensure_resident(alloc, pages, false);
        let _ = before;
        let (cost, _) = self.prefetched_cost(out.installed);
        cost + self.writeback_cost(out.evicted_dirty)
    }

    /// Processes one kernel launch's memory behaviour and returns the stall.
    ///
    /// Arguments referring to the same allocation should be pre-merged by
    /// the caller (the GrOUT runtime does); duplicates are tolerated but
    /// counted twice, matching a kernel that genuinely traverses the array
    /// through two formal parameters.
    pub fn kernel_access(&mut self, args: &[ArgAccess]) -> UvmReport {
        let cap = self.residency.capacity_pages().max(1);

        // Working set: zero-copy (PreferredHost) args never occupy device
        // memory, so they do not contribute pressure.
        let working_pages: u64 = args
            .iter()
            .filter(|a| a.advise != MemAdvise::PreferredHost)
            .map(|a| self.cfg.pages(a.bytes))
            .sum();

        // Active-set pressure: allocations recently cycled through this
        // device still contend for residency even if this launch fits, so a
        // chunked workload whose chunks jointly exceed capacity thrashes.
        // Repeated touches of one big allocation accumulate (different
        // chunks of a monolithic array), bounded by the allocation size.
        self.launches += 1;
        let horizon_prev = self.launches.saturating_sub(self.cfg.active_window);
        for a in args {
            if a.advise != MemAdvise::PreferredHost {
                let touched = self.cfg.pages(a.bytes);
                let bound = self.cfg.pages(a.alloc_total());
                let entry = self.active.entry(a.alloc).or_insert((0, 0));
                if entry.0 >= horizon_prev {
                    entry.1 = (entry.1 + touched).min(bound);
                } else {
                    entry.1 = touched;
                }
                entry.0 = self.launches;
            }
        }
        let horizon = self.launches.saturating_sub(self.cfg.active_window);
        self.active.retain(|_, (last, _)| *last >= horizon);
        let active_pages: u64 = self.active.values().map(|(_, p)| *p).sum();

        let rho = working_pages.max(active_pages) as f64 / cap as f64;

        let mut stall = SimDuration::ZERO;
        let mut migrated_pages: u64 = 0;
        let mut writeback_pages: u64 = 0;
        let mut batches: u64 = 0;
        let mut regime = Regime::Resident;

        for arg in args {
            let pages = self.cfg.pages(arg.bytes);
            if pages == 0 {
                continue;
            }

            // Zero-copy hint: no migration, access over PCIe each sweep.
            if arg.advise == MemAdvise::PreferredHost {
                let sweeps = arg.pattern.sweeps();
                let penalty = match arg.pattern {
                    AccessPattern::Streamed { .. } | AccessPattern::Strided { .. } => 1.0,
                    // Small remote accesses waste most of each PCIe burst.
                    AccessPattern::Gather { .. } => 4.0,
                };
                stall += SimDuration::from_secs_f64(
                    (pages * self.cfg.page_bytes) as f64 * sweeps * penalty / self.pcie_bps,
                );
                regime = regime.max(Regime::ColdFit);
                continue;
            }

            let resident = self.residency.resident_pages(arg.alloc);
            let cold = pages.saturating_sub(resident);
            let sweeps = arg.pattern.sweeps();

            // ReadMostly duplication removes eviction ping-pong: the arg
            // behaves as a fitted stream regardless of pressure.
            let knee = if arg.advise == MemAdvise::ReadMostly {
                f64::INFINITY
            } else {
                match arg.pattern {
                    AccessPattern::Streamed { .. } | AccessPattern::Strided { .. } => {
                        self.cfg.stream_storm_knee
                    }
                    AccessPattern::Gather { .. } => self.cfg.gather_storm_knee,
                }
            };

            if rho <= 1.0 {
                // Regime: fit. Cold faults only.
                let (c, b) = self.prefetched_cost(cold);
                stall += c;
                batches += b;
                migrated_pages += cold;
                if cold > 0 {
                    regime = regime.max(Regime::ColdFit);
                }
            } else if rho <= knee {
                // Regime: streaming eviction. Intra-launch overflow refaults
                // come from this launch's own working set exceeding capacity
                // (inter-launch churn is already visible as cold faults via
                // residency).
                let share = pages as f64 / working_pages.max(1) as f64;
                let overflow = working_pages.saturating_sub(cap) as f64 * share;
                let refaults = (overflow * sweeps) as u64;
                let (c, b) = self.prefetched_cost(cold + refaults);
                stall += c;
                batches += b;
                migrated_pages += cold + refaults;
                // Refaulted pages evict an equal volume; dirty share only
                // for written allocations.
                if arg.mode.writes() {
                    writeback_pages += refaults;
                    stall += self.writeback_cost(refaults);
                }
                regime = regime.max(Regime::StreamingEviction);
            } else {
                // Regime: fault storm.
                let miss = (1.0 - 1.0 / rho).clamp(0.05, 1.0);
                let (faulted, pingpong) = match arg.pattern {
                    AccessPattern::Streamed { .. } => {
                        // Circular LRU under pressure: every sweep misses
                        // nearly everything.
                        let f = (pages as f64 * sweeps * miss) as u64 + cold;
                        let p = (1.0 + self.cfg.stream_pingpong_alpha * (rho - knee))
                            .min(self.cfg.stream_pingpong_max);
                        (f, p)
                    }
                    AccessPattern::Gather { touches_per_page } => {
                        // Small, hot gather arrays (a solver's direction
                        // vector) are protected by LRU recency and barely
                        // refault; only the evicted (cold) fraction is
                        // exposed to the storm.
                        let exposure = (cold as f64 / pages as f64).clamp(0.05, 1.0);
                        let f = (pages as f64 * touches_per_page * miss * exposure) as u64 + cold;
                        let p = (1.0 + self.cfg.gather_pingpong_alpha * (rho - knee))
                            .min(self.cfg.gather_pingpong_max);
                        (f, p)
                    }
                    AccessPattern::Strided { touches_per_page } => {
                        let f = (pages as f64 * touches_per_page * miss) as u64 + cold;
                        let p = (1.0 + self.cfg.strided_pingpong_alpha * (rho - knee))
                            .min(self.cfg.strided_pingpong_max);
                        (f, p)
                    }
                };
                let (c, b) = self.storm_cost(faulted);
                stall += c * pingpong;
                batches += b;
                migrated_pages += faulted;
                if arg.mode.writes() {
                    writeback_pages += faulted;
                    stall += self.writeback_cost(faulted);
                }
                regime = Regime::FaultStorm;
            }

            // Post-kernel residency: proportional share of capacity when
            // oversubscribed, full residency otherwise.
            let keep = if working_pages <= cap {
                pages
            } else {
                ((pages as f64 / working_pages as f64) * cap as f64) as u64
            };
            let out = self
                .residency
                .ensure_resident(arg.alloc, keep, arg.mode.writes());
            // Cross-allocation dirty evictions pay writeback too.
            if out.evicted_dirty > 0 {
                writeback_pages += out.evicted_dirty;
                stall += self.writeback_cost(out.evicted_dirty);
            }
        }

        let report = UvmReport {
            stall,
            migrated_bytes: migrated_pages * self.cfg.page_bytes,
            writeback_bytes: writeback_pages * self.cfg.page_bytes,
            fault_batches: batches,
            regime,
            pressure: rho,
        };
        self.stats.kernels += 1;
        self.stats.migrated_bytes += report.migrated_bytes;
        self.stats.writeback_bytes += report.writeback_bytes;
        self.stats.fault_batches += report.fault_batches;
        self.stats.stall += report.stall;
        if report.regime == Regime::FaultStorm {
            self.stats.storm_kernels += 1;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::AccessMode;

    const GIB: u64 = 1 << 30;

    fn dev(mem_gib: u64) -> UvmDevice {
        UvmDevice::new(UvmConfig::default(), mem_gib * GIB, 12e9)
    }

    fn stream_arg(id: u64, bytes: u64, sweeps: f64) -> ArgAccess {
        ArgAccess {
            alloc: AllocId(id),
            bytes,
            alloc_bytes: bytes,
            pattern: AccessPattern::Streamed { sweeps },
            mode: AccessMode::Read,
            advise: MemAdvise::None,
        }
    }

    #[test]
    fn fitting_kernel_pays_cold_faults_once() {
        let mut d = dev(16);
        let arg = stream_arg(1, 8 * GIB, 1.0);
        let first = d.kernel_access(&[arg]);
        assert_eq!(first.regime, Regime::ColdFit);
        // ~8 GiB at ~10.4 GB/s effective: between 0.6 and 1.2 s.
        let s = first.stall.as_secs_f64();
        assert!((0.6..1.2).contains(&s), "cold stall {s}");
        // Second launch: fully resident, zero stall.
        let second = d.kernel_access(&[arg]);
        assert_eq!(second.regime, Regime::Resident);
        assert_eq!(second.stall, SimDuration::ZERO);
    }

    #[test]
    fn mild_oversubscription_streams() {
        let mut d = dev(16);
        let arg = stream_arg(1, 20 * GIB, 1.0);
        let r = d.kernel_access(&[arg]);
        assert_eq!(r.regime, Regime::StreamingEviction);
        assert!(r.pressure > 1.0 && r.pressure < d.config().stream_storm_knee);
        // Cost is cold (20 GiB) + overflow (~4.8 GiB), still streaming rate.
        let s = r.stall.as_secs_f64();
        assert!((1.5..4.0).contains(&s), "streaming stall {s}");
    }

    #[test]
    fn deep_oversubscription_storms() {
        let mut d = dev(16);
        let arg = stream_arg(1, 48 * GIB, 1.0);
        let r = d.kernel_access(&[arg]);
        assert_eq!(r.regime, Regime::FaultStorm);
        // Storm cost is an order of magnitude beyond streaming.
        let stream_equiv = 48.0 * 1.15 / 12.0; // prefetched seconds
        assert!(
            r.stall.as_secs_f64() > 4.0 * stream_equiv,
            "storm stall {} vs stream {}",
            r.stall.as_secs_f64(),
            stream_equiv
        );
    }

    #[test]
    fn the_cliff_is_nonlinear() {
        // The core paper phenomenon: +50% footprint, >>1.5x time.
        let t1 = {
            let mut d = dev(16);
            d.kernel_access(&[stream_arg(1, 32 * GIB, 4.0)]).stall
        };
        let t2 = {
            let mut d = dev(16);
            d.kernel_access(&[stream_arg(1, 48 * GIB, 4.0)]).stall
        };
        let ratio = t2.as_secs_f64() / t1.as_secs_f64();
        assert!(ratio > 5.0, "cliff ratio {ratio}");
    }

    #[test]
    fn gather_storms_earlier_than_stream() {
        let bytes = 20 * GIB; // rho = 1.3: streams stay calm, gathers storm.
        let mut d = dev(16);
        let stream = d.kernel_access(&[stream_arg(1, bytes, 1.0)]);
        let mut d2 = dev(16);
        let gather = d2.kernel_access(&[ArgAccess {
            alloc: AllocId(2),
            bytes,
            alloc_bytes: bytes,
            pattern: AccessPattern::Gather {
                touches_per_page: 4.0,
            },
            mode: AccessMode::Read,
            advise: MemAdvise::None,
        }]);
        assert_eq!(stream.regime, Regime::StreamingEviction);
        assert_eq!(gather.regime, Regime::FaultStorm);
        assert!(gather.stall > stream.stall * 2.0);
    }

    #[test]
    fn read_mostly_suppresses_storms() {
        let bytes = 20 * GIB;
        let mut d = dev(16);
        let hinted = d.kernel_access(&[ArgAccess {
            alloc: AllocId(1),
            bytes,
            alloc_bytes: bytes,
            pattern: AccessPattern::Gather {
                touches_per_page: 4.0,
            },
            mode: AccessMode::Read,
            advise: MemAdvise::ReadMostly,
        }]);
        assert_ne!(hinted.regime, Regime::FaultStorm);
    }

    #[test]
    fn preferred_host_never_migrates() {
        let mut d = dev(16);
        let r = d.kernel_access(&[ArgAccess {
            alloc: AllocId(1),
            bytes: 8 * GIB,
            alloc_bytes: 8 * GIB,
            pattern: AccessPattern::STREAM_ONCE,
            mode: AccessMode::Read,
            advise: MemAdvise::PreferredHost,
        }]);
        assert_eq!(r.migrated_bytes, 0);
        assert!(r.stall > SimDuration::ZERO);
        assert_eq!(d.resident_bytes(AllocId(1)), 0);
    }

    #[test]
    fn written_args_pay_writeback_under_pressure() {
        let mut d = dev(16);
        let read_only = d.kernel_access(&[stream_arg(1, 20 * GIB, 2.0)]);
        let mut d2 = dev(16);
        let written = d2.kernel_access(&[ArgAccess {
            mode: AccessMode::ReadWrite,
            ..stream_arg(2, 20 * GIB, 2.0)
        }]);
        assert!(written.writeback_bytes > 0);
        assert_eq!(read_only.writeback_bytes, 0);
        assert!(written.stall > read_only.stall);
    }

    #[test]
    fn chunk_cycling_beyond_capacity_storms() {
        // Four 12 GiB chunks cycling through a 16 GiB device: each launch
        // fits, but the active set (48 GiB) is 3x capacity -> storms.
        let mut d = dev(16);
        let mut last = None;
        for round in 0..3 {
            for c in 0..4u64 {
                last = Some(d.kernel_access(&[stream_arg(c, 12 * GIB, 1.0)]));
                let _ = round;
            }
        }
        let r = last.unwrap();
        assert_eq!(r.regime, Regime::FaultStorm);
        assert!(r.pressure > 2.5, "active pressure {}", r.pressure);
        assert!(d.active_bytes() >= 48 * GIB);
    }

    #[test]
    fn chunk_cycling_within_capacity_stays_resident() {
        // Two 6 GiB chunks on a 16 GiB device: everything stays resident
        // after warmup.
        let mut d = dev(16);
        for _ in 0..3 {
            for c in 0..2u64 {
                d.kernel_access(&[stream_arg(c, 6 * GIB, 1.0)]);
            }
        }
        let r = d.kernel_access(&[stream_arg(0, 6 * GIB, 1.0)]);
        assert_eq!(r.regime, Regime::Resident);
        assert_eq!(r.migrated_bytes, 0);
    }

    #[test]
    fn active_window_forgets_old_allocations() {
        let mut d = dev(16);
        d.kernel_access(&[stream_arg(1, 12 * GIB, 1.0)]);
        // Many launches on a different small alloc age out alloc 1.
        for _ in 0..20 {
            d.kernel_access(&[stream_arg(2, GIB, 1.0)]);
        }
        assert!(d.active_bytes() <= 2 * GIB);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = dev(16);
        d.kernel_access(&[stream_arg(1, 8 * GIB, 1.0)]);
        d.kernel_access(&[stream_arg(1, 8 * GIB, 1.0)]);
        let s = d.stats();
        assert_eq!(s.kernels, 2);
        assert_eq!(s.migrated_bytes, 8 * GIB);
        assert_eq!(s.storm_kernels, 0);
    }

    #[test]
    fn prefetch_makes_the_next_kernel_warm() {
        let mut d = dev(16);
        let cost = d.prefetch(AllocId(1), 8 * GIB);
        assert!(cost.as_secs_f64() > 0.5, "prefetch paid the migration");
        let r = d.kernel_access(&[stream_arg(1, 8 * GIB, 1.0)]);
        assert_eq!(r.regime, Regime::Resident);
        assert_eq!(r.migrated_bytes, 0);
    }

    #[test]
    fn prefetch_is_capped_at_capacity() {
        let mut d = dev(16);
        d.prefetch(AllocId(1), 64 * GIB);
        assert!(d.resident_bytes(AllocId(1)) <= d.capacity_bytes());
    }

    #[test]
    fn invalidate_forces_refault() {
        let mut d = dev(16);
        let arg = stream_arg(1, 4 * GIB, 1.0);
        d.kernel_access(&[arg]);
        d.invalidate(AllocId(1));
        let r = d.kernel_access(&[arg]);
        assert_eq!(r.migrated_bytes, 4 * GIB);
    }
}
