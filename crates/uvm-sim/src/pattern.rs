//! Access-pattern descriptors.
//!
//! The GrOUT framework is deliberately code-agnostic: it schedules CEs from
//! their dependencies, not their kernels' internals. The *UVM driver*,
//! however, reacts very differently to different access locality — that is
//! the whole phenomenon under study — so each kernel argument carries a
//! coarse pattern descriptor, either declared by the workload or inferred by
//! `kernelc`'s analyzer.

/// How a kernel touches one of its arguments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Coalesced linear sweep(s) over the array: the UVM prefetcher keeps up
    /// while the working set fits; past the knee, eviction starts racing
    /// in-flight thread blocks.
    ///
    /// `sweeps` is how many full logical passes the kernel makes.
    Streamed {
        /// Number of full passes over the array.
        sweeps: f64,
    },
    /// Low-locality accesses (the literature's Frequently Accessed but Low
    /// Locality — FALL — pages): random gathers, pointer chasing, or a small
    /// array broadcast-read by every thread block. Defeats the prefetcher as
    /// soon as residency is partial.
    ///
    /// `touches_per_page` is the expected number of distinct touch events
    /// per page per kernel (how many times a page can fault again after
    /// being evicted).
    Gather {
        /// Expected distinct touch events per page.
        touches_per_page: f64,
    },
    /// Massively-parallel large-stride access: one thread per row of a
    /// row-major matrix, each sweeping a distant page range. While residency
    /// keeps up this behaves like a stream (block scheduling covers pages in
    /// wave order), but past the knee every SM faults on a different page
    /// concurrently and eviction races all of them — the worst storm
    /// (the paper's 342x dense-MV collapse).
    Strided {
        /// Expected distinct touch events per page under a storm.
        touches_per_page: f64,
    },
}

impl AccessPattern {
    /// A single streaming pass.
    pub const STREAM_ONCE: AccessPattern = AccessPattern::Streamed { sweeps: 1.0 };

    /// Logical sweeps over the data (used for refault accounting).
    pub fn sweeps(&self) -> f64 {
        match *self {
            AccessPattern::Streamed { sweeps } => sweeps.max(1.0),
            AccessPattern::Gather { touches_per_page }
            | AccessPattern::Strided { touches_per_page } => touches_per_page.max(1.0),
        }
    }
}

/// Direction of data flow for dependency tracking *and* dirty-page
/// accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Read-only argument.
    Read,
    /// Write-only argument (no refaults on read, but evictions are dirty).
    Write,
    /// Read-modify-write argument.
    ReadWrite,
}

impl AccessMode {
    /// Whether the argument is read by the kernel.
    pub fn reads(self) -> bool {
        !matches!(self, AccessMode::Write)
    }

    /// Whether the argument is written by the kernel.
    pub fn writes(self) -> bool {
        !matches!(self, AccessMode::Read)
    }
}

/// `cudaMemAdvise`-style hints, applied per argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemAdvise {
    /// No hint: the driver's default heuristics.
    #[default]
    None,
    /// `cudaMemAdviseSetReadMostly`: read-duplicated; copies are dropped,
    /// never written back, and duplication removes eviction ping-pong.
    ReadMostly,
    /// `cudaMemAdviseSetPreferredLocation(host)`: pages stay on the host and
    /// are accessed over PCIe zero-copy instead of migrating.
    PreferredHost,
}

/// One kernel argument as seen by the UVM model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArgAccess {
    /// Opaque allocation identity (stable across kernels).
    pub alloc: crate::AllocId,
    /// Bytes of the allocation this kernel touches.
    pub bytes: u64,
    /// Total size of the allocation (>= `bytes`). Successive kernels
    /// touching *different* chunks of one big allocation accumulate active
    /// pressure up to this bound; zero means "same as `bytes`".
    pub alloc_bytes: u64,
    /// Locality class.
    pub pattern: AccessPattern,
    /// Read/write direction.
    pub mode: AccessMode,
    /// Driver hint.
    pub advise: MemAdvise,
}

impl ArgAccess {
    /// A plain streamed read, no hints.
    pub fn streamed_read(alloc: crate::AllocId, bytes: u64) -> Self {
        ArgAccess {
            alloc,
            bytes,
            alloc_bytes: bytes,
            pattern: AccessPattern::STREAM_ONCE,
            mode: AccessMode::Read,
            advise: MemAdvise::None,
        }
    }

    /// A plain streamed write, no hints.
    pub fn streamed_write(alloc: crate::AllocId, bytes: u64) -> Self {
        ArgAccess {
            alloc,
            bytes,
            alloc_bytes: bytes,
            pattern: AccessPattern::STREAM_ONCE,
            mode: AccessMode::Write,
            advise: MemAdvise::None,
        }
    }

    /// The effective allocation size.
    pub fn alloc_total(&self) -> u64 {
        self.alloc_bytes.max(self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_predicates() {
        assert!(AccessMode::Read.reads());
        assert!(!AccessMode::Read.writes());
        assert!(!AccessMode::Write.reads());
        assert!(AccessMode::Write.writes());
        assert!(AccessMode::ReadWrite.reads());
        assert!(AccessMode::ReadWrite.writes());
    }

    #[test]
    fn sweeps_floor_at_one() {
        assert_eq!(AccessPattern::Streamed { sweeps: 0.25 }.sweeps(), 1.0);
        assert_eq!(AccessPattern::Streamed { sweeps: 3.0 }.sweeps(), 3.0);
        assert_eq!(
            AccessPattern::Gather {
                touches_per_page: 8.0
            }
            .sweeps(),
            8.0
        );
        assert_eq!(
            AccessPattern::Strided {
                touches_per_page: 4.0
            }
            .sweeps(),
            4.0
        );
    }
}
