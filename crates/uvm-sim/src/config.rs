//! UVM model constants.
//!
//! Everything here is a *mechanism parameter* (page sizes, fault service
//! latencies, regime knees), not a per-workload fudge factor; workloads only
//! declare sizes and access patterns. Values are calibrated to the published
//! UVM characterization literature the paper builds on (Zheng et al. HPCA'16,
//! Shao et al. ICPE'22, Allen & Ge IPDPS'21) and recorded in EXPERIMENTS.md.

use desim::SimDuration;

/// Which migration prefetcher the modeled driver runs.
///
/// NVIDIA's driver grows migrations from the 64 KiB fault granule up to
/// 2 MiB blocks with a density-driven *tree* prefetcher; simpler sequential
/// next-block prefetching and no prefetching at all are the classic
/// ablation points in the UVM literature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Prefetcher {
    /// Demand paging only: every 64 KiB block is its own fault.
    None,
    /// Next-block sequential prefetch (512 KiB effective granule).
    Sequential,
    /// The driver's density-based tree prefetcher (2 MiB granule).
    #[default]
    Tree,
}

/// Tunable constants of the UVM fault/migration model.
#[derive(Debug, Clone, PartialEq)]
pub struct UvmConfig {
    /// Base migration granularity (NVIDIA UVM moves 64 KiB blocks).
    pub page_bytes: u64,
    /// Prefetcher granule: with good locality the tree prefetcher grows
    /// migrations up to 2 MiB.
    pub prefetch_granule_bytes: u64,
    /// GPU-side service latency of one replayable fault batch.
    pub fault_batch_latency: SimDuration,
    /// Multiplier on PCIe time for prefetched streaming migration
    /// (write-protect + TLB shootdown overheads).
    pub prefetch_overhead: f64,
    /// Fraction of device memory usable by UVM data (context, reserves).
    pub usable_fraction: f64,
    /// Working-set pressure (working set / capacity) beyond which a
    /// *streamed* access pattern degrades from streaming eviction to fault
    /// storms. Calibrated so the paper's CG/MV cliff sits at the 3x point.
    pub stream_storm_knee: f64,
    /// Same knee for low-locality (gather / FALL) patterns; they storm as
    /// soon as the working set no longer fits. Calibrated so the MLE cliff
    /// sits at the 2x point.
    pub gather_storm_knee: f64,
    /// Ping-pong growth per unit of pressure past the knee for streamed
    /// patterns (evicting pages still needed by in-flight blocks).
    pub stream_pingpong_alpha: f64,
    /// Ping-pong growth for gather patterns (FALL pages are refaulted by
    /// many SMs).
    pub gather_pingpong_alpha: f64,
    /// Ping-pong growth for massively-parallel strided patterns (dense MV):
    /// every SM faults concurrently on distant pages, so the collapse past
    /// the knee is far steeper than for either stream or gather.
    pub strided_pingpong_alpha: f64,
    /// Saturation of the stream ping-pong multiplier (fault-buffer
    /// backpressure bounds the amplification).
    pub stream_pingpong_max: f64,
    /// Saturation of the gather ping-pong multiplier.
    pub gather_pingpong_max: f64,
    /// Saturation of the strided ping-pong multiplier.
    pub strided_pingpong_max: f64,
    /// Cost of evicting one page, as a fraction of its migration time
    /// (writeback partially overlaps on the duplex PCIe link).
    pub evict_cost_fraction: f64,
    /// Which resident pages the driver evicts first under pressure.
    pub eviction: crate::EvictionPolicy,
    /// How many recent kernel launches define the device's *active set*.
    /// Allocations touched within this window keep contending for
    /// residency, so pressure is `max(launch working set, active set) /
    /// capacity` — chunked workloads cycling more data than the device
    /// holds thrash even though each individual launch fits.
    pub active_window: u64,
}

impl Default for UvmConfig {
    fn default() -> Self {
        UvmConfig {
            page_bytes: 64 << 10,
            prefetch_granule_bytes: 2 << 20,
            fault_batch_latency: SimDuration::from_micros(30),
            prefetch_overhead: 1.15,
            usable_fraction: 0.95,
            stream_storm_knee: 2.8,
            gather_storm_knee: 1.15,
            stream_pingpong_alpha: 14.0,
            gather_pingpong_alpha: 4.3,
            strided_pingpong_alpha: 32.0,
            stream_pingpong_max: 8.0,
            gather_pingpong_max: 6.0,
            strided_pingpong_max: 40.0,
            evict_cost_fraction: 0.4,
            eviction: crate::EvictionPolicy::default(),
            active_window: 8,
        }
    }
}

impl UvmConfig {
    /// Applies a prefetcher preset (granule size + migration overhead).
    pub fn with_prefetcher(mut self, p: Prefetcher) -> Self {
        match p {
            Prefetcher::None => {
                self.prefetch_granule_bytes = self.page_bytes;
                self.prefetch_overhead = 1.0;
            }
            Prefetcher::Sequential => {
                self.prefetch_granule_bytes = 512 << 10;
                self.prefetch_overhead = 1.1;
            }
            Prefetcher::Tree => {
                self.prefetch_granule_bytes = 2 << 20;
                self.prefetch_overhead = 1.15;
            }
        }
        self
    }

    /// Pages needed to hold `bytes` (rounded up).
    pub fn pages(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.page_bytes)
    }

    /// Usable UVM capacity (in pages) of a device with `memory_bytes`.
    pub fn capacity_pages(&self, memory_bytes: u64) -> u64 {
        ((memory_bytes as f64 * self.usable_fraction) as u64) / self.page_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_rounding() {
        let c = UvmConfig::default();
        assert_eq!(c.pages(0), 0);
        assert_eq!(c.pages(1), 1);
        assert_eq!(c.pages(64 << 10), 1);
        assert_eq!(c.pages((64 << 10) + 1), 2);
    }

    #[test]
    fn prefetcher_presets_order_sensibly() {
        let base = UvmConfig::default();
        let none = base.clone().with_prefetcher(Prefetcher::None);
        let seq = base.clone().with_prefetcher(Prefetcher::Sequential);
        let tree = base.clone().with_prefetcher(Prefetcher::Tree);
        assert!(none.prefetch_granule_bytes < seq.prefetch_granule_bytes);
        assert!(seq.prefetch_granule_bytes < tree.prefetch_granule_bytes);
        assert_eq!(none.prefetch_granule_bytes, base.page_bytes);
    }

    #[test]
    fn capacity_leaves_headroom() {
        let c = UvmConfig::default();
        let cap = c.capacity_pages(16 << 30);
        let raw = (16u64 << 30) / c.page_bytes;
        assert!(cap < raw);
        assert!(cap > raw * 9 / 10);
    }
}
