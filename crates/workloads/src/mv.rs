//! Dense matrix-vector product, row-partitioned (paper Figure 5, right).
//!
//! The paper's most dramatic case: massively parallel, one thread per row.
//! Under oversubscription the row-major matrix is touched with huge strides
//! by thousands of concurrent threads ([`AccessPattern::Strided`]) and the
//! input vector is broadcast-read by every block (FALL pages,
//! [`AccessPattern::Gather`]) — the combination that collapses 342x on a
//! single node (Fig. 6a) yet scales out almost linearly (Fig. 6b).

use grout_core::{AccessPattern, CeArg, KernelCost, SimRuntime};

use crate::runner::SimWorkload;

/// CUDA-dialect source of the row-per-thread kernel (for the local runtime
/// and the access-pattern analyzer; `x` is classified Broadcast/FALL).
pub const MV_KERNEL: &str = r#"
__global__ void mv(float* y, const float* A, const float* x, int rows, int cols) {
    int r = blockIdx.x * blockDim.x + threadIdx.x;
    if (r < rows) {
        float acc = 0.0;
        for (int c = 0; c < cols; c++) {
            acc += A[r * cols + c] * x[c];
        }
        y[r] = acc;
    }
}
"#;

/// NIDL signature for [`MV_KERNEL`].
pub const MV_SIG: &str =
    "mv(y: out pointer float, A: in pointer float, x: in pointer float, rows: sint32, cols: sint32)";

/// CPU reference.
pub fn reference(a: &[f32], x: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    (0..rows)
        .map(|r| {
            (0..cols)
                .map(|c| a[r * cols + c] as f64 * x[c] as f64)
                .sum::<f64>() as f32
        })
        .collect()
}

/// The Figure 5/6 MV workload.
#[derive(Debug, Clone)]
pub struct MatVec {
    /// Repetitions of the full product (the GrCUDA benchmark iterates).
    pub repeats: usize,
    /// Row blocks the matrix is partitioned into.
    pub blocks: usize,
    /// `cudaMemAdvise` hint applied to the broadcast vector `x` (the
    /// ReadMostly ablation shows what a hand-tuned UVM application would
    /// recover).
    pub x_advise: grout_core::MemAdvise,
    /// When true, the matrix is a single monolithic framework array (the
    /// GrCUDA array-handle layout) and each block CE touches a chunk of it.
    /// Whole-array coherence then makes one node "hold everything" after
    /// the first placement — which is exactly what lets the online
    /// min-transfer policies herd every CE onto one node (the paper's
    /// Figure 8 MV pathology, >=100x worse than round-robin).
    pub monolithic: bool,
}

impl Default for MatVec {
    fn default() -> Self {
        MatVec {
            repeats: 3,
            blocks: 4,
            x_advise: grout_core::MemAdvise::None,
            monolithic: false,
        }
    }
}

impl MatVec {
    /// The GrCUDA monolithic-handle layout (used for Figure 8).
    pub fn monolithic() -> Self {
        MatVec {
            monolithic: true,
            ..MatVec::default()
        }
    }
}

impl SimWorkload for MatVec {
    fn name(&self) -> &'static str {
        "MV"
    }

    /// Footprint ~= the dense matrix. The matrix is wide (16x more columns
    /// than a square one), as in inference workloads; the broadcast vector
    /// is then large enough (~10 MB at 96 GB) that a greedy online policy
    /// can latch onto the node holding it.
    fn submit(&self, rt: &mut SimRuntime, footprint_bytes: u64) {
        let a_bytes = footprint_bytes;
        let elems = a_bytes / 4;
        let n = (elems as f64).sqrt() as u64;
        let vec_bytes = 16 * n * 4; // cols = 16n, rows = n/16
        let chunk = a_bytes / self.blocks as u64;
        let chunk_elems = chunk / 4;
        let y_chunk = vec_bytes / self.blocks as u64;

        // Partitioned: one framework array per row block. Monolithic: one
        // array; block CEs touch `chunk` bytes of it.
        let a_blocks: Vec<_> = if self.monolithic {
            let a = rt.alloc(a_bytes);
            rt.host_write(a, a_bytes);
            vec![a; self.blocks]
        } else {
            let blocks: Vec<_> = (0..self.blocks).map(|_| rt.alloc(chunk)).collect();
            for &b in &blocks {
                rt.host_write(b, chunk);
            }
            blocks
        };
        let y_blocks: Vec<_> = (0..self.blocks).map(|_| rt.alloc(y_chunk)).collect();
        let x = rt.alloc(vec_bytes);
        rt.host_write(x, vec_bytes);

        let alloc_total = if self.monolithic { a_bytes } else { chunk };
        let cost = KernelCost {
            flops: 2.0 * chunk_elems as f64,
            bytes_read: chunk + vec_bytes,
            bytes_written: y_chunk,
        };
        for _ in 0..self.repeats {
            for b in 0..self.blocks {
                rt.launch(
                    "mv",
                    cost,
                    vec![
                        CeArg::write(y_blocks[b], y_chunk),
                        CeArg::read(a_blocks[b], chunk)
                            .with_pattern(AccessPattern::Strided {
                                touches_per_page: 4.0,
                            })
                            .chunk_of(alloc_total),
                        CeArg::read(x, vec_bytes)
                            .with_pattern(AccessPattern::Gather {
                                touches_per_page: 8.0,
                            })
                            .with_advise(self.x_advise),
                    ],
                );
            }
        }
        // Gather the result on the host.
        for &y in &y_blocks {
            rt.host_read(y, y_chunk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_workload;
    use crate::sizes::gb;
    use grout_core::{PolicyKind, SimConfig};

    #[test]
    fn kernel_matches_reference() {
        let k = kernelc::compile_one(MV_KERNEL, "mv").unwrap();
        let (rows, cols) = (37, 53);
        let mut a: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 7919) % 13) as f32 * 0.1)
            .collect();
        let mut x: Vec<f32> = (0..cols).map(|i| (i % 5) as f32 * 0.25).collect();
        let mut y = vec![0.0f32; rows];
        let reference = reference(&a, &x, rows, cols);
        k.launch(
            2,
            32,
            &mut [
                kernelc::KernelArg::F32(&mut y),
                kernelc::KernelArg::F32(&mut a),
                kernelc::KernelArg::F32(&mut x),
                kernelc::KernelArg::Int(rows as i32),
                kernelc::KernelArg::Int(cols as i32),
            ],
        )
        .unwrap();
        for (got, want) in y.iter().zip(&reference) {
            assert!((got - want).abs() < 1e-3, "{got} vs {want}");
        }
    }

    #[test]
    fn analyzer_flags_the_fall_vector() {
        let k = kernelc::compile_one(MV_KERNEL, "mv").unwrap();
        assert_eq!(k.access()[2].class, kernelc::AccessClass::Broadcast);
    }

    #[test]
    fn single_node_cliff_sits_between_64_and_96() {
        let run = |size: u64| {
            run_workload(&MatVec::default(), SimConfig::grcuda_baseline(), gb(size)).secs()
        };
        let t32 = run(32);
        let t64 = run(64);
        let t96 = run(96);
        let step_ok = t64 / t32;
        let step_cliff = t96 / t64;
        assert!(step_ok < 12.0, "64/32 step {step_ok}");
        assert!(step_cliff > 40.0, "96/64 step {step_cliff} (paper: 342x)");
    }

    #[test]
    fn two_nodes_flatten_the_cliff() {
        let run = |size: u64| {
            run_workload(
                &MatVec::default(),
                SimConfig::paper_grout(2, PolicyKind::VectorStep(vec![1, 1])),
                gb(size),
            )
        };
        let t64 = run(64);
        let t96 = run(96);
        let step = t96.secs() / t64.secs();
        assert!(step < 10.0, "GrOUT 96/64 step {step} (paper: 4.1x)");
    }
}
