//! Footprint grid and oversubscription accounting (paper Section V-A/B).

/// One gibibyte.
pub const GIB: u64 = 1 << 30;

/// The paper's evaluation grid: 4 GB to 160 GB.
pub const PAPER_SIZES_GB: [u64; 8] = [4, 8, 16, 32, 64, 96, 128, 160];

/// Node device memory the oversubscription factor is defined against
/// (2x V100 16 GiB = 32 GiB).
pub const NODE_DEVICE_MEMORY: u64 = 32 * GIB;

/// Oversubscription factor of a footprint on one paper worker node
/// (1.0 at 32 GB, 0.125 at 4 GB, 5.0 at 160 GB).
pub fn oversubscription_factor(footprint_bytes: u64) -> f64 {
    footprint_bytes as f64 / NODE_DEVICE_MEMORY as f64
}

/// Footprint in bytes for a size expressed in the paper's GB units.
pub fn gb(size_gb: u64) -> u64 {
    size_gb * GIB
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_match_the_paper() {
        assert!((oversubscription_factor(gb(4)) - 0.125).abs() < 1e-9);
        assert!((oversubscription_factor(gb(32)) - 1.0).abs() < 1e-9);
        assert!((oversubscription_factor(gb(96)) - 3.0).abs() < 1e-9);
        assert!((oversubscription_factor(gb(160)) - 5.0).abs() < 1e-9);
    }
}
