#![warn(missing_docs)]
//! # grout-workloads — the paper's evaluation suite
//!
//! The three GrCUDA-suite workloads the paper distributes (Section V-B,
//! Figure 5) plus the Black–Scholes motivator (Figure 1):
//!
//! - [`BlackScholes`] — embarrassingly parallel option pricing,
//! - [`MlEnsemble`] — two imbalanced inference pipelines over one dataset,
//! - [`ConjugateGradient`] — inter-dependent solver CEs stressing the
//!   network,
//! - [`MatVec`] — row-partitioned dense matrix-vector product with a
//!   broadcast (FALL) input vector,
//! - [`Hits`] — *extension*: the GrCUDA suite's graph-analytics case
//!   (data-dependent CSR gathers), not part of the paper's figures.
//!
//! Each workload exists in two forms: a *simulated* CE stream
//! ([`SimWorkload`]) whose footprint is swept from 4 GB to 160 GB to
//! regenerate the figures, and real CUDA-dialect kernels (`*_KERNEL(S)`)
//! with CPU references for correctness tests and local-runtime examples.

mod black_scholes;
mod cg;
mod hits;
mod mle;
mod mv;
mod runner;
mod sizes;

pub use black_scholes::{
    reference as black_scholes_reference, BlackScholes, BLACK_SCHOLES_KERNEL, BLACK_SCHOLES_SIG,
};
pub use cg::{ConjugateGradient, CG_KERNELS};
pub use hits::{reference as hits_reference, Hits, HITS_KERNELS};
pub use mle::{MlEnsemble, MLE_KERNELS};
pub use mv::{reference as mv_reference, MatVec, MV_KERNEL, MV_SIG};
pub use runner::{run_workload, RunOutcome, SimWorkload};
pub use sizes::{gb, oversubscription_factor, GIB, NODE_DEVICE_MEMORY, PAPER_SIZES_GB};
