//! Black–Scholes European option pricing (paper Figure 1).
//!
//! The motivating example: an embarrassingly parallel, perfectly coalesced
//! kernel whose execution time nonetheless blows up once the option arrays
//! oversubscribe device memory, because the benchmark (like the CUDA SDK
//! sample it mirrors) re-prices the same book several times and every pass
//! refaults the evicted arrays.

use grout_core::{AccessPattern, CeArg, KernelCost, SimRuntime};

use crate::runner::SimWorkload;

/// CUDA-dialect source of the pricing kernel, compilable by `kernelc` and
/// buildable through the polyglot `buildkernel` API.
pub const BLACK_SCHOLES_KERNEL: &str = r#"
__global__ void black_scholes(const float* spot, float* call, float* put,
                              float k, float r, float sigma, float t, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float s = spot[i];
        float sqrt_t = sqrtf(t);
        float d1 = (logf(s / k) + (r + sigma * sigma / 2.0) * t) / (sigma * sqrt_t);
        float d2 = d1 - sigma * sqrt_t;
        float disc = expf(0.0 - r * t);
        call[i] = s * normcdff(d1) - k * disc * normcdff(d2);
        put[i] = k * disc * normcdff(0.0 - d2) - s * normcdff(0.0 - d1);
    }
}
"#;

/// NIDL signature for [`BLACK_SCHOLES_KERNEL`].
pub const BLACK_SCHOLES_SIG: &str = "black_scholes(spot: in pointer float, call: out pointer float, put: out pointer float, k: float, r: float, sigma: float, t: float, n: sint32)";

/// CPU reference (f64 accumulation) for correctness checks.
pub fn reference(spot: &[f32], k: f32, r: f32, sigma: f32, t: f32) -> (Vec<f32>, Vec<f32>) {
    fn ncdf(x: f64) -> f64 {
        0.5 * (1.0 + erf64(x / std::f64::consts::SQRT_2))
    }
    fn erf64(x: f64) -> f64 {
        // Abramowitz & Stegun 7.1.26.
        let sign = if x < 0.0 { -1.0 } else { 1.0 };
        let x = x.abs();
        let t = 1.0 / (1.0 + 0.3275911 * x);
        let y = 1.0
            - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
                + 0.254829592)
                * t
                * (-x * x).exp();
        sign * y
    }
    let (k, r, sigma, t) = (k as f64, r as f64, sigma as f64, t as f64);
    let mut calls = Vec::with_capacity(spot.len());
    let mut puts = Vec::with_capacity(spot.len());
    for &s in spot {
        let s = s as f64;
        let d1 = ((s / k).ln() + (r + sigma * sigma / 2.0) * t) / (sigma * t.sqrt());
        let d2 = d1 - sigma * t.sqrt();
        let disc = (-r * t).exp();
        calls.push((s * ncdf(d1) - k * disc * ncdf(d2)) as f32);
        puts.push((k * disc * ncdf(-d2) - s * ncdf(-d1)) as f32);
    }
    (calls, puts)
}

/// The Figure 1 workload: `repeats` pricing passes over a chunked book.
#[derive(Debug, Clone)]
pub struct BlackScholes {
    /// Pricing passes over the same book (the CUDA sample's NUM_ITERATIONS).
    pub repeats: usize,
    /// Row chunks per array (spread across GPUs/nodes).
    pub chunks: usize,
}

impl Default for BlackScholes {
    fn default() -> Self {
        BlackScholes {
            repeats: 5,
            chunks: 4,
        }
    }
}

impl SimWorkload for BlackScholes {
    fn name(&self) -> &'static str {
        "BS"
    }

    /// Footprint = spot + call + put arrays (three equal arrays).
    fn submit(&self, rt: &mut SimRuntime, footprint_bytes: u64) {
        let per_array = footprint_bytes / 3;
        let chunk = per_array / self.chunks as u64;
        let elems = chunk / 4;
        // Allocate chunked arrays and initialize spot prices on the host.
        let spots: Vec<_> = (0..self.chunks).map(|_| rt.alloc(chunk)).collect();
        let calls: Vec<_> = (0..self.chunks).map(|_| rt.alloc(chunk)).collect();
        let puts: Vec<_> = (0..self.chunks).map(|_| rt.alloc(chunk)).collect();
        for &s in &spots {
            rt.host_write(s, chunk);
        }
        // ~120 flops per option (logs, exps, two CDFs), 12 bytes traffic.
        let cost = KernelCost {
            flops: 120.0 * elems as f64,
            bytes_read: chunk,
            bytes_written: 2 * chunk,
        };
        for _ in 0..self.repeats {
            for c in 0..self.chunks {
                rt.launch(
                    "black_scholes",
                    cost,
                    vec![
                        CeArg::read(spots[c], chunk)
                            .with_pattern(AccessPattern::Streamed { sweeps: 1.0 }),
                        CeArg::write(calls[c], chunk),
                        CeArg::write(puts[c], chunk),
                    ],
                );
            }
        }
        // The application finally inspects a result chunk on the host.
        rt.host_read(calls[0], chunk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_workload;
    use crate::sizes::gb;
    use grout_core::SimConfig;

    #[test]
    fn reference_matches_known_values() {
        let (calls, puts) = reference(&[100.0], 100.0, 0.05, 0.2, 1.0);
        assert!((calls[0] - 10.4506).abs() < 0.01, "call {}", calls[0]);
        assert!((puts[0] - 5.5735).abs() < 0.01, "put {}", puts[0]);
    }

    #[test]
    fn kernel_source_compiles_and_prices() {
        let k = kernelc::compile_one(BLACK_SCHOLES_KERNEL, "black_scholes").unwrap();
        let mut spot = vec![100.0f32, 120.0, 80.0];
        let mut call = vec![0.0f32; 3];
        let mut put = vec![0.0f32; 3];
        k.launch(
            1,
            32,
            &mut [
                kernelc::KernelArg::F32(&mut spot),
                kernelc::KernelArg::F32(&mut call),
                kernelc::KernelArg::F32(&mut put),
                kernelc::KernelArg::Float(100.0),
                kernelc::KernelArg::Float(0.05),
                kernelc::KernelArg::Float(0.2),
                kernelc::KernelArg::Float(1.0),
                kernelc::KernelArg::Int(3),
            ],
        )
        .unwrap();
        let (rc, rp) = reference(&spot, 100.0, 0.05, 0.2, 1.0);
        for i in 0..3 {
            assert!(
                (call[i] - rc[i]).abs() < 0.02,
                "call[{i}] {} vs {}",
                call[i],
                rc[i]
            );
            assert!((put[i] - rp[i]).abs() < 0.02, "put[{i}]");
        }
    }

    #[test]
    fn figure1_shape_blows_up_past_capacity() {
        let run = |size_gb: u64| {
            run_workload(
                &BlackScholes::default(),
                SimConfig::grcuda_baseline(),
                gb(size_gb),
            )
            .secs()
        };
        let t16 = run(16);
        let t32 = run(32);
        let t96 = run(96);
        // Roughly linear while fitting...
        assert!(t32 / t16 < 4.0, "t16={t16} t32={t32}");
        // ...and far beyond linear once deeply oversubscribed.
        assert!(t96 / t32 > 10.0, "t32={t32} t96={t96}");
    }
}
