//! Common harness for running a workload on the simulated cluster.

use grout_core::{SimConfig, SimRuntime, SimTime};

/// A workload that can be expressed as a CE stream on the simulated runtime.
pub trait SimWorkload {
    /// Short name matching the paper ("BS", "MLE", "CG", "MV").
    fn name(&self) -> &'static str;

    /// Submits the whole CE stream for a given memory footprint.
    fn submit(&self, rt: &mut SimRuntime, footprint_bytes: u64);

    /// The user-tuned vector-step vector for two workers (the paper's
    /// offline roofline policy). Defaults to plain alternation.
    fn tuned_vector(&self) -> Vec<u32> {
        vec![1, 1]
    }
}

/// Result of one simulated run.
#[derive(Debug, Clone, Copy)]
pub struct RunOutcome {
    /// Virtual makespan.
    pub elapsed: SimTime,
    /// Whether the paper's 2.5 h cap was exceeded.
    pub timed_out: bool,
    /// Network payload bytes moved.
    pub network_bytes: u64,
    /// Kernels that hit the UVM fault-storm regime.
    pub storm_kernels: u64,
}

impl RunOutcome {
    /// Elapsed seconds (capped runs still report their virtual time).
    pub fn secs(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }
}

/// Runs `workload` at `footprint_bytes` on a fresh runtime built from `cfg`.
pub fn run_workload(
    workload: &dyn SimWorkload,
    cfg: SimConfig,
    footprint_bytes: u64,
) -> RunOutcome {
    let mut rt = SimRuntime::try_new(cfg).expect("valid config");
    workload.submit(&mut rt, footprint_bytes);
    RunOutcome {
        elapsed: rt.elapsed(),
        timed_out: rt.timed_out(),
        network_bytes: rt.stats().network_bytes,
        storm_kernels: rt.stats().storm_kernels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grout_core::{CeArg, KernelCost, PolicyKind};

    struct Tiny;
    impl SimWorkload for Tiny {
        fn name(&self) -> &'static str {
            "tiny"
        }
        fn submit(&self, rt: &mut SimRuntime, footprint: u64) {
            let a = rt.alloc(footprint);
            rt.host_write(a, footprint);
            rt.launch(
                "k",
                KernelCost {
                    flops: footprint as f64,
                    bytes_read: footprint,
                    bytes_written: 0,
                },
                vec![CeArg::read_write(a, footprint)],
            );
        }
    }

    #[test]
    fn runner_reports_outcome() {
        let out = run_workload(
            &Tiny,
            SimConfig::paper_grout(2, PolicyKind::RoundRobin),
            1 << 30,
        );
        assert!(out.secs() > 0.0);
        assert!(!out.timed_out);
        assert!(out.network_bytes >= 1 << 30);
    }
}
