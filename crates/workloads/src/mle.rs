//! Machine-Learning Ensemble inference (paper Figure 5, left).
//!
//! An ensemble of two pipelines over the same dataset with imbalanced
//! branch lengths: a tree-ensemble branch whose feature accesses are
//! low-locality gathers (this is what drags MLE's cliff down to the 2x
//! point) and a neural branch that streams the data twice through more
//! stages. The branches join in a softmax/argmax combiner.

use grout_core::{AccessPattern, ArrayId, CeArg, KernelCost, SimRuntime};

use crate::runner::SimWorkload;

/// Simplified CUDA-dialect kernels for the local-runtime MLE demo: a
/// feature-gather scorer and a streaming normalizer, joined by a softmax.
pub const MLE_KERNELS: &str = r#"
__global__ void tree_score(float* score, const float* X, const int* feat, int rows, int cols, int probes) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < rows) {
        float acc = 0.0;
        for (int p = 0; p < probes; p++) {
            int f = feat[p];
            acc += X[i * cols + f] > 0.5 ? 1.0 : 0.0 - 1.0;
        }
        score[i] = acc / (float)probes;
    }
}

__global__ void normalize(float* out, const float* X, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { out[i] = tanhf(X[i]); }
}

__global__ void softmax2(float* out, const float* s1, const float* s2, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float a = expf(s1[i]);
        float b = expf(s2[i]);
        out[i] = a / (a + b);
    }
}
"#;

/// The simulated MLE workload.
#[derive(Debug, Clone)]
pub struct MlEnsemble {
    /// Inference repetitions.
    pub repeats: usize,
    /// Dataset chunks (two per branch).
    pub chunks: usize,
    /// Extra streaming stages in the neural branch (the paper's imbalance).
    pub nn_extra_stages: usize,
}

impl Default for MlEnsemble {
    fn default() -> Self {
        MlEnsemble {
            repeats: 3,
            chunks: 4,
            nn_extra_stages: 2,
        }
    }
}

struct MleArrays {
    x_chunks: Vec<ArrayId>,
    inter: Vec<ArrayId>,
    s1: ArrayId,
    s2: ArrayId,
    out: ArrayId,
    chunk: u64,
    inter_bytes: u64,
    score_bytes: u64,
}

impl SimWorkload for MlEnsemble {
    fn name(&self) -> &'static str {
        "MLE"
    }

    /// Tuned offline vector: the tree branch (2 chunk CEs + combiner) on
    /// node 0, the longer neural branch (7 CEs) on node 1, softmax back on
    /// node 0; the trailing zero keeps the 11-CE repetition aligned to an
    /// even number of vector positions so branches never swap nodes.
    fn tuned_vector(&self) -> Vec<u32> {
        vec![3, 7, 1, 0]
    }

    fn submit(&self, rt: &mut SimRuntime, footprint_bytes: u64) {
        let data_bytes = (footprint_bytes as f64 * 0.92) as u64;
        let chunk = data_bytes / self.chunks as u64;
        let inter_bytes = (footprint_bytes as f64 * 0.01) as u64;
        let score_bytes = inter_bytes / 4;
        let a = MleArrays {
            x_chunks: (0..self.chunks).map(|_| rt.alloc(chunk)).collect(),
            inter: (0..self.chunks).map(|_| rt.alloc(inter_bytes)).collect(),
            s1: rt.alloc(score_bytes),
            s2: rt.alloc(score_bytes),
            out: rt.alloc(score_bytes),
            chunk,
            inter_bytes,
            score_bytes,
        };
        for &c in &a.x_chunks {
            rt.host_write(c, chunk);
        }

        let half = self.chunks / 2;
        let elems = a.chunk / 4;
        let tree_cost = KernelCost {
            flops: 6.0 * elems as f64,
            bytes_read: a.chunk,
            bytes_written: a.inter_bytes,
        };
        let nn_cost = KernelCost {
            flops: 16.0 * elems as f64,
            bytes_read: 2 * a.chunk,
            bytes_written: a.inter_bytes,
        };
        let small_cost = KernelCost {
            flops: (a.inter_bytes / 4) as f64 * 4.0,
            bytes_read: a.inter_bytes * half as u64,
            bytes_written: a.score_bytes,
        };

        for _ in 0..self.repeats {
            // Branch 1 — tree ensemble: low-locality feature gathers over
            // the first half of the chunks.
            for c in 0..half {
                rt.launch(
                    "tree_score",
                    tree_cost,
                    vec![
                        CeArg::write(a.inter[c], a.inter_bytes),
                        CeArg::read(a.x_chunks[c], a.chunk).with_pattern(AccessPattern::Gather {
                            touches_per_page: 1.5,
                        }),
                    ],
                );
            }
            let mut combine1 = vec![CeArg::write(a.s1, a.score_bytes)];
            for c in 0..half {
                combine1.push(CeArg::read(a.inter[c], a.inter_bytes));
            }
            rt.launch("combine_trees", small_cost, combine1);

            // Branch 2 — neural: streams the other half twice, through more
            // stages (the imbalance the paper calls out).
            for c in half..self.chunks {
                rt.launch(
                    "normalize",
                    nn_cost,
                    vec![
                        CeArg::write(a.inter[c], a.inter_bytes),
                        CeArg::read(a.x_chunks[c], a.chunk)
                            .with_pattern(AccessPattern::Streamed { sweeps: 2.0 }),
                    ],
                );
                for _ in 0..self.nn_extra_stages {
                    rt.launch(
                        "nn_stage",
                        KernelCost {
                            flops: 8.0 * (a.inter_bytes / 4) as f64,
                            bytes_read: a.inter_bytes,
                            bytes_written: a.inter_bytes,
                        },
                        vec![CeArg::read_write(a.inter[c], a.inter_bytes)],
                    );
                }
            }
            let mut combine2 = vec![CeArg::write(a.s2, a.score_bytes)];
            for c in half..self.chunks {
                combine2.push(CeArg::read(a.inter[c], a.inter_bytes));
            }
            rt.launch("combine_nn", small_cost, combine2);

            // Join: softmax over both branch scores.
            rt.launch(
                "softmax",
                small_cost,
                vec![
                    CeArg::write(a.out, a.score_bytes),
                    CeArg::read(a.s1, a.score_bytes),
                    CeArg::read(a.s2, a.score_bytes),
                ],
            );
        }
        rt.host_read(a.out, a.score_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_workload;
    use crate::sizes::gb;
    use grout_core::{PolicyKind, SimConfig};

    #[test]
    fn kernels_compile() {
        let ks = kernelc::compile(MLE_KERNELS).unwrap();
        assert_eq!(ks.len(), 3);
        // The tree scorer's dataset access is indirect (feature gather).
        let tree = ks.iter().find(|k| k.name() == "tree_score").unwrap();
        assert_eq!(tree.access()[1].class, kernelc::AccessClass::Indirect);
    }

    #[test]
    fn single_node_cliff_sits_at_two_x() {
        let run = |size: u64| {
            run_workload(
                &MlEnsemble::default(),
                SimConfig::grcuda_baseline(),
                gb(size),
            )
            .secs()
        };
        let t16 = run(16);
        let t32 = run(32);
        let t64 = run(64);
        assert!(t32 / t16 < 5.0, "32/16 step {}", t32 / t16);
        assert!(t64 / t32 > 15.0, "64/32 step {} (paper: 72x)", t64 / t32);
    }

    #[test]
    fn two_nodes_push_the_cliff_out() {
        let run = |size: u64| {
            run_workload(
                &MlEnsemble::default(),
                SimConfig::paper_grout(2, PolicyKind::VectorStep(vec![1, 1])),
                gb(size),
            )
            .secs()
        };
        let t32 = run(32);
        let t64 = run(64);
        assert!(
            t64 / t32 < 8.0,
            "GrOUT 64/32 step {} (paper: 4.1x)",
            t64 / t32
        );
    }
}
