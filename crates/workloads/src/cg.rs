//! Conjugate Gradient solver (paper Figure 5, middle).
//!
//! CG is the paper's network-stress case: every iteration is a chain of
//! inter-dependent CEs (partitioned SpMV, two reductions, three vector
//! updates) and the direction vector `p` is *rewritten* each iteration, so
//! its copies on other nodes are invalidated and must be re-broadcast —
//! which is why its GrOUT step (13.3x) is larger than MV's (4.1x) even
//! though both leave the single-node storm regime.
//!
//! The matrix is sparse (CSR-like), so its per-row column gathers touch `p`
//! with low locality while the matrix values themselves stream.

use grout_core::{AccessPattern, ArrayId, CeArg, KernelCost, SimRuntime};

use crate::runner::SimWorkload;

/// CUDA-dialect source of the small dense-SpMV/axpy/dot kernels used by the
/// local-runtime CG demo (dense here; the simulated workload models the
/// sparse footprint).
pub const CG_KERNELS: &str = r#"
__global__ void spmv_dense(float* out, const float* A, const float* p, int rows, int cols) {
    int r = blockIdx.x * blockDim.x + threadIdx.x;
    if (r < rows) {
        float acc = 0.0;
        for (int c = 0; c < cols; c++) {
            acc += A[r * cols + c] * p[c];
        }
        out[r] = acc;
    }
}

__global__ void dot(const float* a, const float* b, float* out, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    float acc = 0.0;
    for (int j = i; j < n; j += blockDim.x * gridDim.x) {
        acc += a[j] * b[j];
    }
    atomicAdd(&out[0], acc);
}

__global__ void axpy(float* y, const float* x, float a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { y[i] = y[i] + a * x[i]; }
}

__global__ void xpay(float* y, const float* x, float a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { y[i] = x[i] + a * y[i]; }
}

__global__ void norm2(const float* a, float* out, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    float acc = 0.0;
    for (int j = i; j < n; j += blockDim.x * gridDim.x) {
        acc += a[j] * a[j];
    }
    atomicAdd(&out[0], acc);
}

__global__ void zero(float* y, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { y[i] = 0.0; }
}
"#;

/// The simulated CG workload.
#[derive(Debug, Clone)]
pub struct ConjugateGradient {
    /// Solver iterations.
    pub iterations: usize,
    /// Row partitions of the sparse matrix.
    pub blocks: usize,
    /// Fraction of the footprint taken by each of the four vectors
    /// (x, r, p, Ap); the matrix takes the rest.
    pub vector_fraction: f64,
}

impl Default for ConjugateGradient {
    fn default() -> Self {
        ConjugateGradient {
            iterations: 3,
            blocks: 4,
            vector_fraction: 0.002,
        }
    }
}

struct CgArrays {
    a_blocks: Vec<ArrayId>,
    ap_blocks: Vec<ArrayId>,
    p: ArrayId,
    r: ArrayId,
    x: ArrayId,
    alpha: ArrayId,
    beta: ArrayId,
    a_chunk: u64,
    vec_bytes: u64,
}

impl ConjugateGradient {
    fn alloc(&self, rt: &mut SimRuntime, footprint: u64) -> CgArrays {
        let vec_bytes = (footprint as f64 * self.vector_fraction) as u64;
        let a_bytes = footprint - 4 * vec_bytes;
        let a_chunk = a_bytes / self.blocks as u64;
        let arrays = CgArrays {
            a_blocks: (0..self.blocks).map(|_| rt.alloc(a_chunk)).collect(),
            ap_blocks: (0..self.blocks)
                .map(|_| rt.alloc(vec_bytes / self.blocks as u64))
                .collect(),
            p: rt.alloc(vec_bytes),
            r: rt.alloc(vec_bytes),
            x: rt.alloc(vec_bytes),
            alpha: rt.alloc(4096),
            beta: rt.alloc(4096),
            a_chunk,
            vec_bytes,
        };
        for &b in &arrays.a_blocks {
            rt.host_write(b, a_chunk);
        }
        rt.host_write(arrays.p, vec_bytes);
        rt.host_write(arrays.r, vec_bytes);
        rt.host_write(arrays.x, vec_bytes);
        arrays
    }
}

impl SimWorkload for ConjugateGradient {
    fn name(&self) -> &'static str {
        "CG"
    }

    /// Tuned offline vector: the four SpMV blocks alternate across the two
    /// nodes; the five dependent vector operations stay pinned on node 0
    /// (vectors live there, no mid-chain hops). Cycle length matches one
    /// iteration (9 CEs over 6 positions, even), so the mapping is stable
    /// across iterations.
    fn tuned_vector(&self) -> Vec<u32> {
        vec![1, 1, 1, 1, 5, 0]
    }

    fn submit(&self, rt: &mut SimRuntime, footprint_bytes: u64) {
        let a = self.alloc(rt, footprint_bytes);
        let nnz_chunk = a.a_chunk / 4;
        let vec_elems = a.vec_bytes / 4;
        let ap_chunk = a.vec_bytes / self.blocks as u64;

        let spmv_cost = KernelCost {
            flops: 2.0 * nnz_chunk as f64,
            bytes_read: a.a_chunk + a.vec_bytes,
            bytes_written: ap_chunk,
        };
        let vec_cost = KernelCost {
            flops: 2.0 * vec_elems as f64,
            bytes_read: 2 * a.vec_bytes,
            bytes_written: a.vec_bytes,
        };

        for _ in 0..self.iterations {
            // Partitioned SpMV: Ap_b = A_b * p. The matrix streams; the
            // column gathers hit p with low locality.
            for b in 0..self.blocks {
                rt.launch(
                    "spmv",
                    spmv_cost,
                    vec![
                        CeArg::write(a.ap_blocks[b], ap_chunk),
                        CeArg::read(a.a_blocks[b], a.a_chunk)
                            .with_pattern(AccessPattern::Streamed { sweeps: 1.0 }),
                        CeArg::read(a.p, a.vec_bytes).with_pattern(AccessPattern::Gather {
                            touches_per_page: 2.0,
                        }),
                    ],
                );
            }
            // alpha = (r.r) / (p.Ap)  — a reduction over all Ap blocks.
            let mut dot_args = vec![
                CeArg::write(a.alpha, 4096),
                CeArg::read(a.p, a.vec_bytes),
                CeArg::read(a.r, a.vec_bytes),
            ];
            for b in 0..self.blocks {
                dot_args.push(CeArg::read(a.ap_blocks[b], ap_chunk));
            }
            rt.launch("dot_alpha", vec_cost, dot_args);
            // x = x + alpha p
            rt.launch(
                "axpy_x",
                vec_cost,
                vec![
                    CeArg::read_write(a.x, a.vec_bytes),
                    CeArg::read(a.p, a.vec_bytes),
                    CeArg::read(a.alpha, 4096),
                ],
            );
            // r = r - alpha Ap
            let mut r_args = vec![
                CeArg::read_write(a.r, a.vec_bytes),
                CeArg::read(a.alpha, 4096),
            ];
            for b in 0..self.blocks {
                r_args.push(CeArg::read(a.ap_blocks[b], ap_chunk));
            }
            rt.launch("axpy_r", vec_cost, r_args);
            // beta = (r.r)_new / (r.r)_old
            rt.launch(
                "dot_beta",
                vec_cost,
                vec![CeArg::write(a.beta, 4096), CeArg::read(a.r, a.vec_bytes)],
            );
            // p = r + beta p  — rewriting p invalidates every remote copy.
            rt.launch(
                "xpay_p",
                vec_cost,
                vec![
                    CeArg::read_write(a.p, a.vec_bytes),
                    CeArg::read(a.r, a.vec_bytes),
                    CeArg::read(a.beta, 4096),
                ],
            );
        }
        rt.host_read(a.x, a.vec_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_workload;
    use crate::sizes::gb;
    use grout_core::{PolicyKind, SimConfig};

    #[test]
    fn kernels_compile() {
        let ks = kernelc::compile(CG_KERNELS).unwrap();
        assert_eq!(ks.len(), 6);
        let names: Vec<_> = ks.iter().map(|k| k.name().to_string()).collect();
        assert!(names.contains(&"spmv_dense".to_string()));
        assert!(names.contains(&"xpay".to_string()));
    }

    #[test]
    fn single_node_cliff_sits_between_64_and_96() {
        let run = |size: u64| {
            run_workload(
                &ConjugateGradient::default(),
                SimConfig::grcuda_baseline(),
                gb(size),
            )
            .secs()
        };
        let t32 = run(32);
        let t64 = run(64);
        let t96 = run(96);
        assert!(t64 / t32 < 12.0, "64/32 step {}", t64 / t32);
        assert!(t96 / t64 > 20.0, "96/64 step {} (paper: 77.3x)", t96 / t64);
    }

    #[test]
    fn p_rewrite_causes_per_iteration_traffic() {
        let out = run_workload(
            &ConjugateGradient::default(),
            SimConfig::paper_grout(2, PolicyKind::VectorStep(vec![1, 1])),
            gb(8),
        );
        // p must cross the network more than once (it is re-broadcast after
        // each rewrite), so traffic exceeds the one-shot footprint.
        assert!(
            out.network_bytes > gb(8),
            "network {} bytes",
            out.network_bytes
        );
    }
}
