//! HITS (hubs & authorities) — bonus workload beyond the paper's three.
//!
//! The GrCUDA suite the paper draws from also contains graph analytics;
//! HITS is its canonical iterative example. It rounds the reproduction's
//! suite out with a *data-dependent gather* workload: the CSR column
//! indices make every score update an indirect access
//! (`hub[col[e]]`), the access class the UVM literature blames for the
//! worst oversubscription behaviour. Not part of the paper's figures; used
//! by extension tests and available to the harness.

use grout_core::{AccessPattern, CeArg, KernelCost, SimRuntime};

use crate::runner::SimWorkload;

/// CUDA-dialect kernels for the local-runtime HITS (CSR graph).
pub const HITS_KERNELS: &str = r#"
__global__ void score_step(float* out, const int* row_ptr, const int* col,
                           const float* other, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float acc = 0.0;
        for (int e = row_ptr[i]; e < row_ptr[i + 1]; e += 1) {
            acc += other[col[e]];
        }
        out[i] = acc;
    }
}

__global__ void norm2_acc(const float* v, float* out, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    float acc = 0.0;
    for (int j = i; j < n; j += blockDim.x * gridDim.x) {
        acc += v[j] * v[j];
    }
    atomicAdd(&out[0], acc);
}

__global__ void scale_by_invnorm(float* v, const float* norm2, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { v[i] = v[i] / sqrtf(norm2[0]); }
}

__global__ void fill1(float* v, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { v[i] = 1.0; }
}

__global__ void zero1(float* v, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { v[i] = 0.0; }
}
"#;

/// CPU reference: `iters` HITS rounds on a CSR graph (L2-normalized).
pub fn reference(row_ptr: &[i32], col: &[i32], n: usize, iters: usize) -> (Vec<f32>, Vec<f32>) {
    let mut hub = vec![1.0f32; n];
    let mut auth = vec![1.0f32; n];
    for _ in 0..iters {
        let mut new_auth = vec![0.0f32; n];
        for i in 0..n {
            for e in row_ptr[i]..row_ptr[i + 1] {
                new_auth[i] += hub[col[e as usize] as usize];
            }
        }
        let norm = new_auth
            .iter()
            .map(|v| (*v as f64) * (*v as f64))
            .sum::<f64>()
            .sqrt() as f32;
        new_auth.iter_mut().for_each(|v| *v /= norm);
        auth = new_auth;
        let mut new_hub = vec![0.0f32; n];
        for i in 0..n {
            for e in row_ptr[i]..row_ptr[i + 1] {
                new_hub[i] += auth[col[e as usize] as usize];
            }
        }
        let norm = new_hub
            .iter()
            .map(|v| (*v as f64) * (*v as f64))
            .sum::<f64>()
            .sqrt() as f32;
        new_hub.iter_mut().for_each(|v| *v /= norm);
        hub = new_hub;
    }
    (hub, auth)
}

/// The simulated HITS workload (footprint = the edge list).
#[derive(Debug, Clone)]
pub struct Hits {
    /// HITS rounds.
    pub iterations: usize,
    /// Edge-list partitions.
    pub blocks: usize,
}

impl Default for Hits {
    fn default() -> Self {
        Hits {
            iterations: 3,
            blocks: 4,
        }
    }
}

impl SimWorkload for Hits {
    fn name(&self) -> &'static str {
        "HITS"
    }

    /// Per iteration: partitioned indirect gathers over the edge chunks for
    /// the auth update, a reduction + scale, then the mirror for hubs.
    fn submit(&self, rt: &mut SimRuntime, footprint_bytes: u64) {
        let edges_bytes = (footprint_bytes as f64 * 0.96) as u64;
        let chunk = edges_bytes / self.blocks as u64;
        let score_bytes = (footprint_bytes as f64 * 0.01) as u64;

        let edge_chunks: Vec<_> = (0..self.blocks).map(|_| rt.alloc(chunk)).collect();
        let hub = rt.alloc(score_bytes);
        let auth = rt.alloc(score_bytes);
        let norm = rt.alloc(4096);
        for &c in &edge_chunks {
            rt.host_write(c, chunk);
        }
        rt.host_write(hub, score_bytes);
        rt.host_write(auth, score_bytes);

        let gather_cost = KernelCost {
            flops: (chunk / 4) as f64,
            bytes_read: chunk + score_bytes,
            bytes_written: score_bytes,
        };
        let small_cost = KernelCost {
            flops: (score_bytes / 2) as f64,
            bytes_read: score_bytes,
            bytes_written: score_bytes,
        };
        for _ in 0..self.iterations {
            for (dst, src) in [(auth, hub), (hub, auth)] {
                for &c in &edge_chunks {
                    rt.launch(
                        "score_step",
                        gather_cost,
                        vec![
                            CeArg::read_write(dst, score_bytes),
                            // Edge chunks stream; the opposite score vector
                            // is gathered data-dependently (FALL).
                            CeArg::read(c, chunk)
                                .with_pattern(AccessPattern::Streamed { sweeps: 1.0 }),
                            CeArg::read(src, score_bytes).with_pattern(AccessPattern::Gather {
                                touches_per_page: 4.0,
                            }),
                        ],
                    );
                }
                rt.launch(
                    "norm2",
                    small_cost,
                    vec![CeArg::write(norm, 4096), CeArg::read(dst, score_bytes)],
                );
                rt.launch(
                    "scale",
                    small_cost,
                    vec![CeArg::read_write(dst, score_bytes), CeArg::read(norm, 4096)],
                );
            }
        }
        rt.host_read(hub, score_bytes);
        rt.host_read(auth, score_bytes);
    }

    /// Tuned vector: the gather chunks alternate; the two small reduction
    /// CEs stay on node 0 (12 CEs per half-iteration round... 6 per score
    /// update: 4 gathers + norm + scale; vector cycle of 6 positions).
    fn tuned_vector(&self) -> Vec<u32> {
        vec![1, 1, 1, 1, 2, 0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_workload;
    use crate::sizes::gb;
    use grout_core::{PolicyKind, SimConfig};

    #[test]
    fn kernels_compile_and_flag_indirection() {
        let ks = kernelc::compile(HITS_KERNELS).unwrap();
        assert_eq!(ks.len(), 5);
        let step = ks.iter().find(|k| k.name() == "score_step").unwrap();
        // `other[col[e]]` is a data-dependent gather.
        assert_eq!(step.access()[3].class, kernelc::AccessClass::Indirect);
    }

    #[test]
    fn reference_converges_on_a_small_graph() {
        // A 4-node ring: every node links to the next.
        let row_ptr = vec![0, 1, 2, 3, 4];
        let col = vec![1, 2, 3, 0];
        let (hub, auth) = reference(&row_ptr, &col, 4, 10);
        // Symmetric structure: all scores equal after normalization.
        for v in hub.iter().chain(auth.iter()) {
            assert!((v - 0.5).abs() < 1e-4, "{v}");
        }
    }

    #[test]
    fn scale_out_helps_hits_too() {
        let single = run_workload(&Hits::default(), SimConfig::grcuda_baseline(), gb(96));
        let two = run_workload(
            &Hits::default(),
            SimConfig::paper_grout(2, PolicyKind::VectorStep(Hits::default().tuned_vector())),
            gb(96),
        );
        assert!(
            single.secs() / two.secs() > 1.5,
            "single {:.0}s vs two nodes {:.0}s",
            single.secs(),
            two.secs()
        );
    }
}
