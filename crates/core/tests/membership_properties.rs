//! Property-based invariants of elastic membership.
//!
//! The contract every trace consumer and both runtimes rely on: the
//! membership epoch is **monotone** — no interleaving of Join / Leave /
//! Suspect / Reinstate / Quarantine / Rejoin ever lowers it — suspicion
//! is epoch-neutral (the membership view has not changed yet), every
//! *effective* membership change bumps the epoch by exactly one, and a
//! replay of the recorded op log lands on the same epoch, so journals
//! and the hot standby see the identical membership history.
//!
//! The planner's epoch (driven through [`LoggedPlanner`]'s typed
//! mutators, the exact surface the runtimes use) and the
//! [`FailureDetector`]'s epoch are driven in lockstep the way
//! `LocalRuntime` drives them, and both must obey the same monotonicity.

use grout_core::{replay_ops, FailureDetector, LoggedPlanner, Planner, PlannerConfig, PolicyKind};
use proptest::prelude::*;

/// One abstract membership op; worker picks are drawn large and reduced
/// modulo the live population at apply time so shrinking stays sound.
#[derive(Debug, Clone)]
enum MemOp {
    /// Elastic scale-out: attach a brand-new worker index.
    Join,
    /// Clean scale-in of an existing index.
    Leave { pick: usize },
    /// Omission fault suspected (epoch-neutral).
    Suspect { pick: usize },
    /// Suspicion cleared within the grace window (epoch-neutral).
    Reinstate { pick: usize },
    /// Confirmed death: quarantine.
    Quarantine { pick: usize },
    /// Re-admission of a quarantined worker.
    Rejoin { pick: usize },
}

fn arb_op() -> impl Strategy<Value = MemOp> {
    prop_oneof![
        Just(MemOp::Join),
        any::<usize>().prop_map(|pick| MemOp::Leave { pick }),
        any::<usize>().prop_map(|pick| MemOp::Suspect { pick }),
        any::<usize>().prop_map(|pick| MemOp::Reinstate { pick }),
        any::<usize>().prop_map(|pick| MemOp::Quarantine { pick }),
        any::<usize>().prop_map(|pick| MemOp::Rejoin { pick }),
    ]
}

const START_WORKERS: usize = 2;

proptest! {
    #[test]
    fn membership_epoch_is_monotone_under_any_interleaving(
        ops in proptest::collection::vec(arb_op(), 1..40),
    ) {
        let cfg = PlannerConfig::new(START_WORKERS, PolicyKind::RoundRobin);
        let mut planner = LoggedPlanner::new(Planner::new(cfg, None));
        let mut det = FailureDetector::new(START_WORKERS);
        let mut n = START_WORKERS;

        for op in &ops {
            let p_before = planner.membership_epoch();
            let d_before = det.epoch();
            let neutral = matches!(op, MemOp::Suspect { .. } | MemOp::Reinstate { .. });
            match op {
                MemOp::Join => {
                    planner.join(n);
                    det.grow(n + 1);
                    n += 1;
                    // A join is always effective: exactly one bump each.
                    prop_assert_eq!(planner.membership_epoch(), p_before + 1);
                    prop_assert_eq!(det.epoch(), d_before + 1);
                }
                MemOp::Leave { pick } => {
                    let w = pick % n;
                    // May refuse (already gone, or would empty the
                    // cluster); the refusal is part of history and must
                    // still never lower the epoch.
                    if planner.leave(w).is_ok() {
                        det.mark_dead(w);
                    }
                }
                MemOp::Suspect { pick } => {
                    let w = pick % n;
                    planner.suspect(w);
                    det.mark_suspected(w);
                }
                MemOp::Reinstate { pick } => {
                    let w = pick % n;
                    planner.reinstate(w);
                    det.reinstate(w);
                }
                MemOp::Quarantine { pick } => {
                    let w = pick % n;
                    let _ = planner.quarantine(w);
                    det.mark_dead(w);
                }
                MemOp::Rejoin { pick } => {
                    let w = pick % n;
                    planner.rejoin(w);
                    det.rejoin(w);
                }
            }
            // The monotone core of the property, checked after EVERY op.
            prop_assert!(planner.membership_epoch() >= p_before);
            prop_assert!(det.epoch() >= d_before);
            // A no-op or refusal bumps at most once; nothing jumps.
            prop_assert!(planner.membership_epoch() <= p_before + 1);
            prop_assert!(det.epoch() <= d_before + 1);
            if neutral {
                // Suspicion changes no membership view on either ledger.
                prop_assert_eq!(planner.membership_epoch(), p_before);
                prop_assert_eq!(det.epoch(), d_before);
            }
        }

        // The op log carries the whole membership history: a replay onto
        // a fresh planner reaches the identical epoch (what journals and
        // the hot standby reconstruct from).
        let mut replica = Planner::new(
            PlannerConfig::new(START_WORKERS, PolicyKind::RoundRobin),
            None,
        );
        let _ = replay_ops(&mut replica, planner.ops());
        prop_assert_eq!(replica.membership_epoch(), planner.membership_epoch());
    }
}
