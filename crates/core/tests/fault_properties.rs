//! Property-based invariants of fault injection and recovery.
//!
//! The central contract: a deterministic `FaultPlan` must never change
//! *what* a workload computes — only where (and, in the simulator, when).
//! Random kernel streams with a randomly placed worker death therefore
//! have to produce bit-identical arrays, a coherence directory with no
//! up-to-date copy left on the quarantined node, and no post-fault kernel
//! routed to it.

use std::sync::Arc;

use grout_core::{
    CeArg, FaultPlan, KernelCost, LocalArg, LocalConfig, LocalRuntime, Location, PolicyKind,
    SchedEvent, SimConfig, SimRuntime,
};
use proptest::prelude::*;

const N: usize = 256;
const MIB: u64 = 1 << 20;

const SRC: &str = "
    __global__ void write_k(float* a, float v, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) { a[i] = v + (float)i; }
    }
    __global__ void addinto(float* b, const float* a, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) { b[i] = b[i] + a[i] * 0.5; }
    }
    __global__ void scale(float* a, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) { a[i] = a[i] * 1.25 + 1.0; }
    }
";

/// A random little CE stream over 3 arrays with mixed modes.
fn arb_ops() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((0u8..3, 0u8..3, 0u8..3), 4..16)
}

/// Runs `ops` on a local runtime with the given fault plan; returns the
/// final arrays and the runtime for post-mortem inspection.
fn run_local(
    ops: &[(u8, u8, u8)],
    workers: usize,
    faults: FaultPlan,
) -> (Vec<Vec<f32>>, LocalRuntime) {
    let kernels = kernelc::compile(SRC).unwrap();
    let write_k = Arc::new(kernels[0].clone());
    let addinto = Arc::new(kernels[1].clone());
    let scale = Arc::new(kernels[2].clone());

    let mut cfg = LocalConfig::new(workers, PolicyKind::RoundRobin);
    cfg.planner.faults = faults;
    cfg.planner.fault_cfg.detection_timeout = desim::SimDuration::from_millis(40);
    let mut rt = LocalRuntime::try_new(cfg).expect("spawn workers");
    let arrays: Vec<_> = (0..3).map(|_| rt.alloc_f32(N)).collect();
    for &(a, b, kind) in ops {
        let (a, b) = (arrays[a as usize], arrays[b as usize]);
        match kind {
            0 => rt.launch(
                &write_k,
                2,
                256,
                vec![
                    LocalArg::Buf(a),
                    LocalArg::F32(3.5),
                    LocalArg::I32(N as i32),
                ],
            ),
            1 if a != b => rt.launch(
                &addinto,
                2,
                256,
                vec![LocalArg::Buf(b), LocalArg::Buf(a), LocalArg::I32(N as i32)],
            ),
            _ => rt.launch(
                &scale,
                2,
                256,
                vec![LocalArg::Buf(a), LocalArg::I32(N as i32)],
            ),
        }
        .unwrap();
    }
    rt.synchronize().unwrap();
    let outs = arrays.iter().map(|&x| rt.read_f32(x).unwrap()).collect();
    (outs, rt)
}

/// Regression (found by `killed_runs_match_fault_free`): killing CE 0,
/// whose output array has a *later* planned writer (CE 1, WAW) on a healthy
/// node, must not re-point the coherence directory at CE 0's new node — the
/// final fetch would then wait forever on a worker that only ever holds the
/// older version.
#[test]
fn recovery_does_not_clobber_later_writers() {
    let ops = vec![(2, 1, 2), (2, 0, 0), (0, 0, 1), (0, 1, 1), (1, 0, 2)];
    let (clean, _) = run_local(&ops, 3, FaultPlan::none());
    let (faulted, _rt) = run_local(&ops, 3, FaultPlan::kill_at_ce(0));
    assert_eq!(clean, faulted);
}

/// Regression (found by the chaos harness, seed 4): mixed parallel chains
/// with a kill mid-DAG must drain without deadlock and stay bit-identical.
#[test]
fn chaos_seed4_drains_without_deadlock() {
    let ops = vec![
        (2, 1, 2),
        (1, 0, 1),
        (0, 0, 2),
        (1, 1, 1),
        (0, 2, 2),
        (2, 0, 2),
        (1, 1, 2),
        (1, 2, 2),
        (1, 1, 2),
    ];
    let (clean, _) = run_local(&ops, 3, FaultPlan::none());
    let (faulted, _rt) = run_local(&ops, 3, FaultPlan::kill_at_ce(2));
    assert_eq!(clean, faulted);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Killing a random worker at a random CE never changes the computed
    /// arrays, leaves no up-to-date copy on the quarantined node, and
    /// routes every post-fault kernel away from it.
    #[test]
    fn killed_runs_match_fault_free(ops in arb_ops(), kill_pos in 0usize..64, workers in 2usize..4) {
        let kill_at = kill_pos % ops.len();
        let (clean, _) = run_local(&ops, workers, FaultPlan::none());
        let (faulted, rt) = run_local(&ops, workers, FaultPlan::kill_at_ce(kill_at));

        // Results are bit-identical despite the mid-run death + replay.
        prop_assert_eq!(clean, faulted);

        let dead = (0..workers).find(|&w| rt.is_quarantined(w));
        let Some(dead) = dead else {
            // The planner may route the whole stream so that CE kill_at's
            // worker is hit; quarantine always happens for kill faults.
            return Err(TestCaseError::fail("kill fault did not quarantine"));
        };
        prop_assert_eq!(rt.epoch(), 1);
        prop_assert_eq!(rt.healthy_workers(), workers - 1);

        // Coherence: the directory holds no up-to-date copy on the dead
        // node for any live array.
        for a in rt.coherence().arrays() {
            prop_assert!(
                !rt.coherence().holders(a).contains(&Location::worker(dead)),
                "array {a:?} still up-to-date on quarantined worker {dead}"
            );
        }

        // Degraded mode: recovery reassigns every orphaned CE to a healthy
        // node, and the final assignment sticks. (CEs that completed on the
        // worker *before* it died legitimately keep their record.)
        let mut reassigned = 0;
        for e in rt.sched_trace().events() {
            if let SchedEvent::Reassign { dag_index, to, .. } = e {
                reassigned += 1;
                prop_assert!(*to != dead, "CE {dag_index} reassigned to the dead worker");
                prop_assert!(
                    rt.node_assignment(*dag_index).and_then(|l| l.worker_index()) != Some(dead),
                    "CE {dag_index} still assigned to dead worker {dead}"
                );
            }
        }
        prop_assert!(reassigned > 0, "the killed CE itself must be reassigned");
    }

    /// The simulator's fault handling is fully deterministic: identical
    /// configs (workload + seeded fault plan) give identical virtual time,
    /// traces and stats.
    #[test]
    fn sim_fault_pricing_is_deterministic(ops in arb_ops(), seed in 0u64..1000, workers in 2usize..4) {
        let candidates: Vec<usize> = (0..ops.len()).collect();
        let run = || {
            let mut cfg = SimConfig::paper_grout(workers, PolicyKind::RoundRobin);
            cfg.planner.faults = FaultPlan::one_death(seed, &candidates);
            let mut rt = SimRuntime::try_new(cfg).expect("valid config");
            let arrays: Vec<_> = (0..3).map(|_| rt.alloc(MIB)).collect();
            let cost = KernelCost { flops: 1e6, bytes_read: MIB, bytes_written: 0 };
            for &(a, b, kind) in &ops {
                let args = match kind {
                    0 => vec![CeArg::write(arrays[a as usize], MIB)],
                    1 if a != b => vec![
                        CeArg::read(arrays[a as usize], MIB),
                        CeArg::write(arrays[b as usize], MIB),
                    ],
                    _ => vec![CeArg::read_write(arrays[a as usize], MIB)],
                };
                rt.launch("k", cost, args);
            }
            (
                rt.elapsed(),
                rt.sched_trace().events().to_vec(),
                rt.stats().replays,
                rt.stats().redriven_bytes,
            )
        };
        prop_assert_eq!(run(), run());
    }
}

proptest! {
    /// Membership algebra: under an arbitrary schedule of
    /// suspect/reinstate/kill/rejoin actions, the epoch is monotone
    /// (never regresses), suspicion alone never moves it, and every
    /// epoch bump corresponds to an actual membership change (a death
    /// or a re-admission).
    #[test]
    fn detector_epochs_never_regress(
        actions in proptest::collection::vec((0u8..4, 0usize..4), 0..64),
    ) {
        use grout_core::{FailureDetector, Health};
        let mut d = FailureDetector::new(4);
        let mut epoch = d.epoch();
        prop_assert_eq!(epoch, 0);
        for (kind, w) in actions {
            let before = d.health(w);
            match kind {
                0 => {
                    let changed = d.mark_suspected(w);
                    prop_assert_eq!(changed, before == Health::Healthy);
                    // Suspicion is epoch-neutral.
                    prop_assert_eq!(d.epoch(), epoch);
                }
                1 => {
                    let changed = d.reinstate(w);
                    prop_assert_eq!(changed, before == Health::Suspected);
                    prop_assert_eq!(d.epoch(), epoch);
                }
                2 => {
                    let e = d.mark_dead(w);
                    // Exactly one bump per actual death, none on repeats.
                    let expect = if before == Health::Dead { epoch } else { epoch + 1 };
                    prop_assert_eq!(e, expect);
                    prop_assert_eq!(d.health(w), Health::Dead);
                }
                _ => {
                    let e = d.rejoin(w);
                    // A rejoin of a dead worker opens a new epoch; a
                    // reinstate-by-rejoin or a no-op does not.
                    let expect = if before == Health::Dead { epoch + 1 } else { epoch };
                    prop_assert_eq!(e, expect);
                    prop_assert_eq!(d.health(w), Health::Healthy);
                }
            }
            prop_assert!(d.epoch() >= epoch, "epoch regressed");
            epoch = d.epoch();
        }
    }
}

/// End-to-end membership cycle on the in-process deployment: a worker is
/// killed mid-chain and quarantined; `rejoin` respawns its endpoint and
/// re-admits it under a new membership epoch; round-robin then places new
/// CEs on it again; the final data is exact; and the whole membership
/// history (Recover + Rejoin) is visible in the replicated op log — a
/// journal replay sees the same cluster views this run did.
#[test]
fn killed_worker_rejoins_under_new_epoch_and_receives_new_ces() {
    use grout_core::{PlannerOp, SimDuration};

    let inc_src = "
        __global__ void inc(float* a, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { a[i] = a[i] + 1.0; }
        }
    ";
    let inc = Arc::new(kernelc::compile(inc_src).unwrap()[0].clone());
    let mut cfg = LocalConfig::new(2, PolicyKind::RoundRobin);
    cfg.planner.faults = FaultPlan::kill_at_ce(1);
    cfg.planner.fault_cfg.detection_timeout = SimDuration::from_millis(60);
    let mut rt = LocalRuntime::try_new(cfg).expect("spawn workers");
    let a = rt.alloc_f32(N);
    for _ in 0..4 {
        rt.launch(&inc, 4, 64, vec![LocalArg::Buf(a), LocalArg::I32(N as i32)])
            .unwrap();
    }
    rt.synchronize().unwrap();

    let dead = (0..2)
        .find(|&w| rt.is_quarantined(w))
        .expect("the injected death was quarantined");
    let epoch_before = rt.epoch();
    assert!(epoch_before >= 1, "a confirmed death bumps the epoch");
    assert_eq!(rt.healthy_workers(), 1);

    // Re-admission: the transport respawns the endpoint, the detector
    // opens a new epoch, the planner logs the membership change.
    assert!(rt.rejoin(dead).expect("rejoin succeeds"));
    assert!(!rt.is_quarantined(dead));
    assert_eq!(rt.epoch(), epoch_before + 1, "rejoin opens a new epoch");
    assert_eq!(rt.healthy_workers(), 2);
    // Idempotent: rejoining a healthy worker is a no-op.
    assert!(!rt.rejoin(dead).expect("no-op rejoin"));
    assert_eq!(rt.epoch(), epoch_before + 1);

    // The returning node receives new CEs again.
    for _ in 0..4 {
        rt.launch(&inc, 4, 64, vec![LocalArg::Buf(a), LocalArg::I32(N as i32)])
            .unwrap();
    }
    rt.synchronize().unwrap();
    let on_dead = (0..8)
        .filter_map(|dag| rt.node_assignment(dag).and_then(|l| l.worker_index()))
        .filter(|&w| w == dead)
        .count();
    assert!(
        on_dead >= 1,
        "round-robin never placed a CE on the rejoined worker"
    );

    // Data is exact: 8 increments over the initial zeros.
    let got = rt.read_f32(a).unwrap();
    assert!(got.iter().all(|&x| x == 8.0), "post-rejoin data diverged");

    // The membership history is replicated: both the quarantine and the
    // re-admission are ops, so journals/standbys see the same views.
    let ops = rt.op_log();
    assert!(ops
        .iter()
        .any(|o| matches!(o, PlannerOp::Recover { dead: d, .. } if *d == dead)));
    assert!(ops
        .iter()
        .any(|o| matches!(o, PlannerOp::Rejoin { worker } if *worker == dead)));
}
