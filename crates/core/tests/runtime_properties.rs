//! Property-based invariants of the two runtimes.

use std::sync::Arc;

use grout_core::{
    CeArg, KernelCost, LocalArg, LocalConfig, LocalRuntime, PolicyKind, SimConfig, SimRuntime,
};
use proptest::prelude::*;

const MIB: u64 = 1 << 20;

/// A random little CE stream over 4 arrays with mixed modes.
fn arb_ops() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    // (array_a, array_b, kind): kind 0 = write a, 1 = read a write b,
    // 2 = rw a.
    proptest::collection::vec((0u8..4, 0u8..4, 0u8..3), 1..30)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Simulated-time sanity: starts never precede dispatch order
    /// constraints, finishes never precede starts, and dependencies are
    /// honoured in time.
    #[test]
    fn sim_records_are_temporally_consistent(ops in arb_ops(), workers in 1usize..4) {
        let mut rt = SimRuntime::try_new(SimConfig::paper_grout(workers, PolicyKind::RoundRobin)).expect("valid config");
        let arrays: Vec<_> = (0..4).map(|_| rt.alloc(64 * MIB)).collect();
        let cost = KernelCost { flops: 1e9, bytes_read: 64 * MIB, bytes_written: 0 };
        for (a, b, kind) in ops {
            let args = match kind {
                0 => vec![CeArg::write(arrays[a as usize], 64 * MIB)],
                1 => vec![
                    CeArg::read(arrays[a as usize], 64 * MIB),
                    CeArg::write(arrays[b as usize], 64 * MIB),
                ],
                _ => vec![CeArg::read_write(arrays[a as usize], 64 * MIB)],
            };
            rt.launch("k", cost, args);
        }
        let records = rt.records();
        for r in records {
            prop_assert!(r.finish >= r.start);
        }
        // Dependency timing: rebuild pairwise dependencies and check order.
        for j in 0..records.len() {
            for i in 0..j {
                if records[j].ce.depends_on(&records[i].ce) {
                    prop_assert!(
                        records[j].start >= records[i].finish,
                        "dependent CE {j} started before CE {i} finished"
                    );
                }
            }
        }
    }

    /// The local runtime produces scheduling-independent results: the same
    /// kernel stream on 1 worker and on 3 workers yields identical arrays.
    #[test]
    fn local_results_are_scheduling_independent(ops in arb_ops()) {
        let src = "
            __global__ void write_k(float* a, float v, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { a[i] = v + (float)i; }
            }
            __global__ void addinto(float* b, const float* a, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { b[i] = b[i] + a[i] * 0.5; }
            }
            __global__ void scale(float* a, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { a[i] = a[i] * 1.25 + 1.0; }
            }
        ";
        let kernels = kernelc::compile(src).unwrap();
        let write_k = Arc::new(kernels[0].clone());
        let addinto = Arc::new(kernels[1].clone());
        let scale = Arc::new(kernels[2].clone());
        let n = 512usize;

        let run = |workers: usize| -> Vec<Vec<f32>> {
            let mut rt = LocalRuntime::try_new(LocalConfig::new(workers, PolicyKind::RoundRobin)).expect("spawn workers");
            let arrays: Vec<_> = (0..4).map(|_| rt.alloc_f32(n)).collect();
            for &(a, b, kind) in &ops {
                let (a, b) = (arrays[a as usize], arrays[b as usize]);
                match kind {
                    0 => rt.launch(
                        &write_k,
                        2,
                        256,
                        vec![LocalArg::Buf(a), LocalArg::F32(3.5), LocalArg::I32(n as i32)],
                    ),
                    1 if a != b => rt.launch(
                        &addinto,
                        2,
                        256,
                        vec![LocalArg::Buf(b), LocalArg::Buf(a), LocalArg::I32(n as i32)],
                    ),
                    _ => rt.launch(
                        &scale,
                        2,
                        256,
                        vec![LocalArg::Buf(a), LocalArg::I32(n as i32)],
                    ),
                }
                .unwrap();
            }
            rt.synchronize().unwrap();
            arrays.iter().map(|&x| rt.read_f32(x).unwrap()).collect()
        };

        let one = run(1);
        let three = run(3);
        prop_assert_eq!(one, three, "results depend on worker count");
    }

    /// Network accounting in the simulated runtime never loses bytes:
    /// per-endpoint in/out totals stay balanced whatever the schedule.
    #[test]
    fn sim_network_bytes_balance(ops in arb_ops(), workers in 1usize..4) {
        let mut rt = SimRuntime::try_new(SimConfig::paper_grout(workers, PolicyKind::RoundRobin)).expect("valid config");
        let arrays: Vec<_> = (0..4).map(|_| rt.alloc(16 * MIB)).collect();
        let cost = KernelCost { flops: 1e6, bytes_read: 16 * MIB, bytes_written: 0 };
        for (a, b, kind) in ops {
            let args = match kind {
                0 => vec![CeArg::write(arrays[a as usize], 16 * MIB)],
                1 => vec![
                    CeArg::read(arrays[a as usize], 16 * MIB),
                    CeArg::write(arrays[b as usize], 16 * MIB),
                ],
                _ => vec![CeArg::read_write(arrays[a as usize], 16 * MIB)],
            };
            rt.launch("k", cost, args);
        }
        let total_out: u64 = (0..=workers)
            .map(|e| rt.network().stats(net_sim::EndpointId(e)).bytes_out)
            .sum();
        let total_in: u64 = (0..=workers)
            .map(|e| rt.network().stats(net_sim::EndpointId(e)).bytes_in)
            .sum();
        prop_assert_eq!(total_out, total_in);
    }
}
