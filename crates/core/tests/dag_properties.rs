//! Property-based correctness of the dependency DAG (paper Algorithm 1):
//! against arbitrary CE streams, the DAG must be acyclic, transitively
//! reduced, and *sound* — every true pairwise dependency must be implied by
//! the recorded edges.
#![allow(clippy::needless_range_loop)] // triangular index math reads best bare

use grout_core::{
    ArrayId, Ce, CeArg, CeId, CeKind, Coherence, DepDag, ExplorationLevel, KernelCost, LinkMatrix,
    NodeScheduler, PolicyKind,
};
use proptest::prelude::*;

/// A compact encoding of a random CE: a few (array, mode) pairs.
fn arb_ce(id: u64, max_arrays: u64) -> impl Strategy<Value = Ce> {
    proptest::collection::vec((0..max_arrays, 0u8..3), 1..4).prop_map(move |args| {
        let mut seen = Vec::new();
        let args = args
            .into_iter()
            .filter(|(a, _)| {
                if seen.contains(a) {
                    false
                } else {
                    seen.push(*a);
                    true
                }
            })
            .map(|(a, m)| match m {
                0 => CeArg::read(ArrayId(a), 64),
                1 => CeArg::write(ArrayId(a), 64),
                _ => CeArg::read_write(ArrayId(a), 64),
            })
            .collect();
        Ce {
            id: CeId(id),
            kind: CeKind::Kernel {
                name: "p".into(),
                cost: KernelCost::default(),
            },
            args,
        }
    })
}

fn arb_stream() -> impl Strategy<Value = Vec<Ce>> {
    proptest::collection::vec((0..6u64, 0u8..1), 1..40).prop_flat_map(|seed| {
        let n = seed.len();
        let mut strategies = Vec::new();
        for i in 0..n {
            strategies.push(arb_ce(i as u64, 6));
        }
        strategies
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Edges only point backwards (acyclicity by construction) and the
    /// parent set is transitively reduced.
    #[test]
    fn dag_is_acyclic_and_reduced(stream in arb_stream()) {
        let mut dag = DepDag::new();
        for ce in &stream {
            let out = dag.add_ce(ce);
            for &p in &out.parents {
                prop_assert!(p < out.index, "edge must point backwards");
            }
            // No parent may be an ancestor of another parent.
            for &a in &out.parents {
                for &b in &out.parents {
                    if a != b {
                        prop_assert!(
                            !dag.is_ancestor(a, b),
                            "parent {a} is an ancestor of parent {b}: not reduced"
                        );
                    }
                }
            }
        }
    }

    /// Soundness: for every pair (i, j) with a true data dependency
    /// (RAW/WAR/WAW per `Ce::depends_on`), the DAG must order them
    /// transitively.
    #[test]
    fn dag_is_sound_vs_bruteforce(stream in arb_stream()) {
        let mut dag = DepDag::new();
        for ce in &stream {
            dag.add_ce(ce);
        }
        for j in 0..stream.len() {
            for i in 0..j {
                if stream[j].depends_on(&stream[i]) {
                    prop_assert!(
                        dag.is_ancestor(i, j),
                        "CE {j} depends on CE {i} but the DAG does not order them"
                    );
                }
            }
        }
    }

    /// Completing CEs in submission order always yields a valid schedule
    /// (every CE becomes ready exactly once).
    #[test]
    fn submission_order_is_a_valid_schedule(stream in arb_stream()) {
        let mut dag = DepDag::new();
        for ce in &stream {
            dag.add_ce(ce);
        }
        for i in 0..stream.len() {
            prop_assert!(dag.is_ready(i), "CE {i} not ready in submission order");
            dag.mark_completed(i);
        }
        prop_assert!(dag.ready_set().is_empty());
    }

    /// Completeness (the flip side of redundant-edge filtering): the DAG
    /// orders a pair if and only if a chain of true pairwise dependencies
    /// orders it. Filtering may drop edges, never ordering; and no spurious
    /// ordering is ever invented.
    #[test]
    fn dag_ordering_equals_dependency_closure(stream in arb_stream()) {
        let mut dag = DepDag::new();
        for ce in &stream {
            dag.add_ce(ce);
        }
        let n = stream.len();
        // Brute-force transitive closure of `depends_on`.
        let mut closure = vec![vec![false; n]; n];
        for j in 0..n {
            // Descend so closure[k][j] (k > i) is final before it feeds
            // closure[i][j].
            for i in (0..j).rev() {
                closure[i][j] = stream[j].depends_on(&stream[i])
                    || (i + 1..j).any(|k| closure[i][k] && closure[k][j]);
            }
        }
        for j in 0..n {
            for i in 0..j {
                prop_assert_eq!(
                    dag.is_ancestor(i, j),
                    closure[i][j],
                    "DAG ordering of ({}, {}) disagrees with the dependency closure", i, j
                );
            }
        }
    }

    /// Frontier maintenance: direct dependencies are always drawn from the
    /// frontier as it stood before the insert, and a CE that touches arrays
    /// always joins the frontier it may later be depended on through.
    #[test]
    fn parents_come_from_the_maintained_frontier(stream in arb_stream()) {
        let mut dag = DepDag::new();
        for ce in &stream {
            let before: Vec<_> = dag.frontier().collect();
            let out = dag.add_ce(ce);
            for &p in &out.parents {
                prop_assert!(
                    before.contains(&p),
                    "parent {p} of CE {} was not on the frontier", out.index
                );
            }
            if !ce.args.is_empty() {
                prop_assert!(
                    dag.frontier().any(|f| f == out.index),
                    "CE {} with args must join the frontier", out.index
                );
            }
            // The frontier never references CEs that do not exist.
            prop_assert!(dag.frontier().all(|f| f < dag.len()));
        }
    }

    /// Min-transfer-time degrades to round-robin while no worker holds
    /// enough up-to-date data to clear the exploration threshold (paper
    /// Section IV-D): on a cold cluster the assignment sequence is exactly
    /// the round-robin one, whatever the CE stream or link speeds.
    #[test]
    fn min_transfer_time_falls_back_to_round_robin(
        stream in arb_stream(),
        workers in 1usize..5,
        level in prop_oneof![
            Just(ExplorationLevel::Low),
            Just(ExplorationLevel::Medium),
            Just(ExplorationLevel::High),
        ],
    ) {
        let links = LinkMatrix::uniform(workers + 1, 1e9);
        let mut mtt = NodeScheduler::new(
            PolicyKind::MinTransferTime(level),
            workers,
            Some(links),
        );
        let mut rr = NodeScheduler::new(PolicyKind::RoundRobin, workers, None);
        // Every array lives only on the controller: no worker can clear
        // any exploration threshold.
        let mut coherence = Coherence::new();
        for a in 0..6u64 {
            coherence.register(ArrayId(a));
        }
        for ce in &stream {
            prop_assert_eq!(
                mtt.assign(ce, &coherence),
                rr.assign(ce, &coherence),
                "cold-cluster min-transfer-time must match round-robin"
            );
        }
    }
}
