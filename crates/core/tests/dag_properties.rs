//! Property-based correctness of the dependency DAG (paper Algorithm 1):
//! against arbitrary CE streams, the DAG must be acyclic, transitively
//! reduced, and *sound* — every true pairwise dependency must be implied by
//! the recorded edges.

use grout_core::{ArrayId, Ce, CeArg, CeId, CeKind, DepDag, KernelCost};
use proptest::prelude::*;

/// A compact encoding of a random CE: a few (array, mode) pairs.
fn arb_ce(id: u64, max_arrays: u64) -> impl Strategy<Value = Ce> {
    proptest::collection::vec((0..max_arrays, 0u8..3), 1..4).prop_map(move |args| {
        let mut seen = Vec::new();
        let args = args
            .into_iter()
            .filter(|(a, _)| {
                if seen.contains(a) {
                    false
                } else {
                    seen.push(*a);
                    true
                }
            })
            .map(|(a, m)| match m {
                0 => CeArg::read(ArrayId(a), 64),
                1 => CeArg::write(ArrayId(a), 64),
                _ => CeArg::read_write(ArrayId(a), 64),
            })
            .collect();
        Ce {
            id: CeId(id),
            kind: CeKind::Kernel {
                name: "p".into(),
                cost: KernelCost::default(),
            },
            args,
        }
    })
}

fn arb_stream() -> impl Strategy<Value = Vec<Ce>> {
    proptest::collection::vec((0..6u64, 0u8..1), 1..40).prop_flat_map(|seed| {
        let n = seed.len();
        let mut strategies = Vec::new();
        for i in 0..n {
            strategies.push(arb_ce(i as u64, 6));
        }
        strategies
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Edges only point backwards (acyclicity by construction) and the
    /// parent set is transitively reduced.
    #[test]
    fn dag_is_acyclic_and_reduced(stream in arb_stream()) {
        let mut dag = DepDag::new();
        for ce in &stream {
            let out = dag.add_ce(ce);
            for &p in &out.parents {
                prop_assert!(p < out.index, "edge must point backwards");
            }
            // No parent may be an ancestor of another parent.
            for &a in &out.parents {
                for &b in &out.parents {
                    if a != b {
                        prop_assert!(
                            !dag.is_ancestor(a, b),
                            "parent {a} is an ancestor of parent {b}: not reduced"
                        );
                    }
                }
            }
        }
    }

    /// Soundness: for every pair (i, j) with a true data dependency
    /// (RAW/WAR/WAW per `Ce::depends_on`), the DAG must order them
    /// transitively.
    #[test]
    fn dag_is_sound_vs_bruteforce(stream in arb_stream()) {
        let mut dag = DepDag::new();
        for ce in &stream {
            dag.add_ce(ce);
        }
        for j in 0..stream.len() {
            for i in 0..j {
                if stream[j].depends_on(&stream[i]) {
                    prop_assert!(
                        dag.is_ancestor(i, j),
                        "CE {j} depends on CE {i} but the DAG does not order them"
                    );
                }
            }
        }
    }

    /// Completing CEs in submission order always yields a valid schedule
    /// (every CE becomes ready exactly once).
    #[test]
    fn submission_order_is_a_valid_schedule(stream in arb_stream()) {
        let mut dag = DepDag::new();
        for ce in &stream {
            dag.add_ce(ce);
        }
        for i in 0..stream.len() {
            prop_assert!(dag.is_ready(i), "CE {i} not ready in submission order");
            dag.mark_completed(i);
        }
        prop_assert!(dag.ready_set().is_empty());
    }
}
