//! Property-based invariants of the planner op log.
//!
//! The contract the whole replication story rests on: the op log is a
//! *complete* account of planner mutation. Whatever sequence of typed
//! mutators a runtime drives — allocs, frees, plans, completions,
//! quarantines, recoveries, link reprobes, in any interleaving, with
//! failures along the way — replaying the captured [`PlannerOp`] log
//! from an empty planner must land on a bit-identical state (structural
//! `PartialEq` *and* the FNV digest the standby acks with).

use grout_core::{
    replay_ops, AccessMode, AccessPattern, Ce, CeArg, CeId, CeKind, ExplorationLevel, KernelCost,
    LinkMatrix, LoggedPlanner, MemAdvise, Planner, PlannerConfig, PolicyKind,
};
use proptest::prelude::*;

const MIB: u64 = 1 << 20;

/// One abstract mutator invocation; indices are drawn large and reduced
/// modulo the live population at apply time so shrinking stays sound.
#[derive(Debug, Clone)]
enum Cmd {
    Alloc {
        mib: u64,
    },
    Free {
        pick: usize,
    },
    PlanCe {
        picks: [usize; 2],
        mode: u8,
        pattern: u8,
    },
    MarkCompleted {
        pick: usize,
    },
    /// A worker death as the failure detector reports it: `recover`
    /// quarantines internally *and* hands orphaned arrays back to the
    /// controller. (Bare `quarantine` is the spawn-failure path — before
    /// any data exists — so driving it after data is live would orphan
    /// holders in a way no runtime ever does.)
    KillWorker {
        pick: usize,
        incomplete: Vec<usize>,
    },
    ReprobeLinks {
        gbps: u8,
    },
}

fn arb_cmd() -> impl Strategy<Value = Cmd> {
    // The shim's `prop_oneof!` is unweighted; duplicate entries bias the
    // stream toward the common mutators (alloc/plan/complete).
    fn plan() -> impl Strategy<Value = Cmd> {
        (any::<usize>(), any::<usize>(), 0u8..3, 0u8..3).prop_map(|(a, b, mode, pattern)| {
            Cmd::PlanCe {
                picks: [a, b],
                mode,
                pattern,
            }
        })
    }
    prop_oneof![
        (1u64..8).prop_map(|mib| Cmd::Alloc { mib }),
        (1u64..8).prop_map(|mib| Cmd::Alloc { mib }),
        any::<usize>().prop_map(|pick| Cmd::Free { pick }),
        plan(),
        plan(),
        plan(),
        any::<usize>().prop_map(|pick| Cmd::MarkCompleted { pick }),
        any::<usize>().prop_map(|pick| Cmd::MarkCompleted { pick }),
        (
            any::<usize>(),
            proptest::collection::vec(any::<usize>(), 0..3)
        )
            .prop_map(|(pick, incomplete)| Cmd::KillWorker { pick, incomplete }),
        (1u8..20).prop_map(|gbps| Cmd::ReprobeLinks { gbps }),
    ]
}

fn mode_of(tag: u8) -> AccessMode {
    match tag {
        0 => AccessMode::Read,
        1 => AccessMode::Write,
        _ => AccessMode::ReadWrite,
    }
}

fn pattern_of(tag: u8) -> AccessPattern {
    match tag {
        0 => AccessPattern::Streamed { sweeps: 1.0 },
        1 => AccessPattern::Gather {
            touches_per_page: 2.0,
        },
        _ => AccessPattern::Strided {
            touches_per_page: 4.0,
        },
    }
}

/// Drives the command stream through [`LoggedPlanner`]'s typed mutators
/// — the exact surface the runtimes use — tolerating per-op failures
/// (they still log and still mutate). Returns the live planner wrapper.
fn drive(cmds: &[Cmd], workers: usize, links: Option<LinkMatrix>) -> LoggedPlanner {
    let cfg = PlannerConfig::new(workers, PolicyKind::RoundRobin);
    let mut planner = LoggedPlanner::new(Planner::new(cfg, links));
    let mut arrays = Vec::new();
    let mut planned = Vec::new();
    let mut next_ce = 0u64;
    for cmd in cmds {
        match cmd {
            Cmd::Alloc { mib } => arrays.push(planner.alloc(mib * MIB)),
            Cmd::Free { pick } => {
                if !arrays.is_empty() {
                    let a = arrays.remove(pick % arrays.len());
                    planner.free(a);
                }
            }
            Cmd::PlanCe {
                picks,
                mode,
                pattern,
            } => {
                if arrays.is_empty() {
                    continue;
                }
                let args = picks
                    .iter()
                    .map(|p| {
                        let a = arrays[p % arrays.len()];
                        CeArg {
                            array: a,
                            bytes: planner.array_bytes(a),
                            alloc_bytes: planner.array_bytes(a),
                            mode: mode_of(*mode),
                            pattern: pattern_of(*pattern),
                            advise: MemAdvise::None,
                        }
                    })
                    .collect();
                let ce = Ce {
                    id: CeId(next_ce),
                    kind: CeKind::Kernel {
                        name: format!("k{next_ce}"),
                        cost: KernelCost {
                            flops: 1e6,
                            bytes_read: MIB,
                            bytes_written: MIB,
                        },
                    },
                    args,
                };
                next_ce += 1;
                if let Ok(plan) = planner.plan_ce(&ce) {
                    planned.push(plan.dag_index);
                }
            }
            Cmd::MarkCompleted { pick } => {
                if !planned.is_empty() {
                    let i = planned.remove(pick % planned.len());
                    planner.mark_completed(i);
                }
            }
            Cmd::KillWorker { pick, incomplete } => {
                // Never kill the last healthy worker: the planner rejects
                // it, and the rest of the stream would starve.
                if planner.healthy_workers() <= 1 {
                    continue;
                }
                let dead = pick % workers;
                if planner.is_quarantined(dead) {
                    continue;
                }
                let inc: Vec<usize> = if planned.is_empty() {
                    Vec::new()
                } else {
                    incomplete
                        .iter()
                        .map(|p| planned[p % planned.len()])
                        .collect()
                };
                let _ = planner.recover(dead, &inc);
            }
            Cmd::ReprobeLinks { gbps } => {
                planner.reprobe_links(LinkMatrix::uniform(workers + 1, *gbps as f64 * 1e9));
            }
        }
    }
    planner
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Replaying a random op log (including failed ops, quarantines and
    /// recoveries) from an empty planner reproduces the live-mutated
    /// planner bit-identically.
    #[test]
    fn replay_reproduces_live_state(
        cmds in proptest::collection::vec(arb_cmd(), 1..40),
        workers in 2usize..5,
        with_links in any::<bool>(),
    ) {
        let links = with_links.then(|| LinkMatrix::uniform(workers + 1, 12.5e9));
        let live = drive(&cmds, workers, links.clone());

        let cfg = PlannerConfig::new(workers, PolicyKind::RoundRobin);
        let mut replica = Planner::new(cfg, links);
        let _ = replay_ops(&mut replica, live.ops());

        prop_assert_eq!(replica.state_digest(), live.state_digest(), "digest diverged");
        prop_assert_eq!(&replica, &*live, "structural state diverged");
    }

    /// Replay is insensitive to *how* the log is re-applied: replaying a
    /// prefix and then the remainder equals replaying the whole log.
    #[test]
    fn replay_composes_over_splits(
        cmds in proptest::collection::vec(arb_cmd(), 1..24),
        workers in 2usize..4,
        split in any::<usize>(),
    ) {
        let live = drive(&cmds, workers, None);
        let ops = live.ops();
        let cut = if ops.is_empty() { 0 } else { split % (ops.len() + 1) };

        let cfg = PlannerConfig::new(workers, PolicyKind::RoundRobin);
        let mut split_replica = Planner::new(cfg.clone(), None);
        let _ = replay_ops(&mut split_replica, &ops[..cut]);
        let _ = replay_ops(&mut split_replica, &ops[cut..]);

        let mut whole_replica = Planner::new(cfg, None);
        let _ = replay_ops(&mut whole_replica, ops);

        prop_assert_eq!(&split_replica, &whole_replica);
        prop_assert_eq!(split_replica.state_digest(), live.state_digest());
    }
}

/// The policy kinds with exploration state replay too (regression
/// anchor: the digest must cover scheduler placement state, not just
/// the DAG/coherence layers).
#[test]
fn replay_covers_exploring_policies() {
    for policy in [
        PolicyKind::MinTransferSize(ExplorationLevel::Medium),
        PolicyKind::MinTransferTime(ExplorationLevel::Low),
    ] {
        let links = Some(LinkMatrix::uniform(4, 10e9));
        let cfg = PlannerConfig::new(3, policy);
        let mut live = LoggedPlanner::new(Planner::new(cfg.clone(), links.clone()));
        // Driven by hand (drive() hardcodes RoundRobin).
        let a = live.alloc(4 * MIB);
        let b = live.alloc(2 * MIB);
        let ce = |id: u64, args: Vec<CeArg>| Ce {
            id: CeId(id),
            kind: CeKind::Kernel {
                name: format!("k{id}"),
                cost: KernelCost {
                    flops: 1e6,
                    bytes_read: MIB,
                    bytes_written: MIB,
                },
            },
            args,
        };
        let p0 = live
            .plan_ce(&ce(
                0,
                vec![CeArg::read_write(a, 4 * MIB), CeArg::read(b, 2 * MIB)],
            ))
            .expect("plan 0");
        live.mark_completed(p0.dag_index);
        let _ = live.plan_ce(&ce(
            1,
            vec![CeArg::read(a, 4 * MIB), CeArg::write(b, 2 * MIB)],
        ));
        live.free(b);

        let mut replica = Planner::new(cfg, links);
        let _ = replay_ops(&mut replica, live.ops());
        assert_eq!(&replica, &*live);
        assert_eq!(replica.state_digest(), live.state_digest());
    }
}
