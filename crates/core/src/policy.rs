//! Inter-node scheduling policies (paper Section IV-D, Figure 4).
//!
//! Two offline/static policies — `round-robin` and `vector-step` — whose
//! cost is independent of cluster size, and two online/locality-aware ones —
//! `min-transfer-size` and `min-transfer-time` — whose cost grows linearly
//! with the node count (the paper's Figure 9). The online policies carry the
//! exploration-vs-exploitation heuristic: a node is only *viable* when it
//! already holds at least a threshold amount of the CE's up-to-date input
//! bytes (Low/Medium/High); when no node is viable the policy falls back to
//! round-robin, favouring exploration.

use crate::ce::Ce;
use crate::coherence::{Coherence, Location};

/// Exploration-vs-exploitation level of the online policies.
///
/// Per the paper, each level is "a threshold in the *amount* of available
/// (up-to-date) data on a specific node before considering it viable";
/// below the threshold the policy falls back to round-robin in favour of
/// exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExplorationLevel {
    /// 1 MiB — almost any locality makes a node viable (greedy/exploit).
    Low,
    /// 256 MiB.
    #[default]
    Medium,
    /// 4 GiB — nodes must already hold a lot before being exploited.
    High,
}

impl ExplorationLevel {
    /// Minimum up-to-date bytes for a node to be viable.
    pub fn threshold_bytes(self) -> u64 {
        match self {
            ExplorationLevel::Low => 1 << 20,
            ExplorationLevel::Medium => 256 << 20,
            ExplorationLevel::High => 4 << 30,
        }
    }
}

/// Which inter-node policy to run.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyKind {
    /// Cycle through workers, one CE each.
    RoundRobin,
    /// Offline user-provided pattern: assign `vector[k]` consecutive CEs to
    /// worker `k`, cycling (the paper's example: `[1, 2, 3]` on two nodes
    /// gives 1 CE to node 0, 2 to node 1, 3 to node 0, ...).
    VectorStep(Vec<u32>),
    /// Send the CE where the most input bytes already live.
    MinTransferSize(ExplorationLevel),
    /// Send the CE where moving the missing bytes is empirically fastest,
    /// using the probed interconnection matrix.
    MinTransferTime(ExplorationLevel),
}

impl PolicyKind {
    /// Short name used in reports (matches the paper's labels).
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::RoundRobin => "round-robin",
            PolicyKind::VectorStep(_) => "vector-step",
            PolicyKind::MinTransferSize(_) => "min-transfer-size",
            PolicyKind::MinTransferTime(_) => "min-transfer-time",
        }
    }

    /// Whether the policy's decision cost depends on cluster size.
    pub fn is_online(&self) -> bool {
        matches!(
            self,
            PolicyKind::MinTransferSize(_) | PolicyKind::MinTransferTime(_)
        )
    }
}

/// The interconnection matrix measured at startup (bytes/second between
/// every pair of endpoints; endpoint 0 is the Controller). Equality is
/// exact (bit-for-bit floats): matrices are probed once and copied around
/// verbatim, so replicas must agree exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkMatrix {
    bw: Vec<Vec<f64>>,
}

impl LinkMatrix {
    /// Wraps a probed matrix (`bw[src][dst]`, diagonal ignored).
    pub fn new(bw: Vec<Vec<f64>>) -> Self {
        assert!(!bw.is_empty() && bw.iter().all(|r| r.len() == bw.len()));
        LinkMatrix { bw }
    }

    /// A uniform matrix for `endpoints` endpoints (testing / no probe).
    pub fn uniform(endpoints: usize, bps: f64) -> Self {
        LinkMatrix {
            bw: vec![vec![bps; endpoints]; endpoints],
        }
    }

    /// Bandwidth from `src` to `dst` in bytes/second.
    pub fn bandwidth(&self, src: Location, dst: Location) -> f64 {
        self.bw[src.0][dst.0]
    }

    /// Number of endpoints.
    pub fn len(&self) -> usize {
        self.bw.len()
    }

    /// Number of endpoints (alias of [`LinkMatrix::len`] for call sites
    /// where `len` reads ambiguously, e.g. telemetry export).
    pub fn endpoints(&self) -> usize {
        self.bw.len()
    }

    /// Raw bandwidth entry by endpoint index (0 = Controller), without
    /// going through [`Location`].
    pub fn raw(&self, src: usize, dst: usize) -> f64 {
        self.bw[src][dst]
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// A copy grown to `endpoints` endpoints: existing entries are kept
    /// bit-for-bit, new rows/columns are filled with the matrix's minimum
    /// measured bandwidth (a conservative, deterministic placeholder until
    /// the joined endpoint's links are actually probed).
    pub fn grown(&self, endpoints: usize) -> LinkMatrix {
        if endpoints <= self.bw.len() {
            return self.clone();
        }
        let fill = self
            .bw
            .iter()
            .flatten()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let mut bw = self.bw.clone();
        for row in &mut bw {
            row.resize(endpoints, fill);
        }
        bw.resize(endpoints, vec![fill; endpoints]);
        LinkMatrix { bw }
    }
}

/// The Controller-side node scheduler: applies a [`PolicyKind`] to each CE.
/// Equality covers the policy cursors and quarantine set — the mutable
/// state op-log replicas must agree on.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeScheduler {
    kind: PolicyKind,
    workers: usize,
    /// Round-robin cursor (also the fallback cursor for online policies).
    rr_next: usize,
    /// Vector-step cursor: (vector position, CEs assigned at position).
    vs_pos: usize,
    vs_count: u32,
    /// Probed link matrix (required by min-transfer-time).
    links: Option<LinkMatrix>,
    /// Degraded mode: quarantined workers are never assigned work again
    /// (until an explicit rejoin).
    quarantined: Vec<bool>,
    /// Suspect grace window: suspended workers receive no *new* CEs while
    /// their connection is being resumed, but are not quarantined. If
    /// every healthy worker is suspended, placement ignores suspension —
    /// graceful degradation must not wedge the planner.
    suspended: Vec<bool>,
    /// Elastic scale-in: workers that departed cleanly. Like quarantine
    /// they are never assigned work again, but the departure lost nothing
    /// (the directory was rebalanced) so the distinction matters for
    /// recovery accounting.
    departed: Vec<bool>,
}

impl NodeScheduler {
    /// Creates a scheduler for `workers` workers.
    ///
    /// # Panics
    /// Panics if `workers == 0`, if a vector-step vector is empty or
    /// all-zero, or if `MinTransferTime` is used without a link matrix.
    pub fn new(kind: PolicyKind, workers: usize, links: Option<LinkMatrix>) -> Self {
        assert!(workers > 0, "need at least one worker");
        if let PolicyKind::VectorStep(v) = &kind {
            assert!(
                !v.is_empty() && v.iter().any(|&c| c > 0),
                "vector-step vector must contain a positive count"
            );
        }
        if matches!(kind, PolicyKind::MinTransferTime(_)) {
            assert!(
                links.is_some(),
                "min-transfer-time requires the probed link matrix"
            );
        }
        NodeScheduler {
            kind,
            workers,
            rr_next: 0,
            vs_pos: 0,
            vs_count: 0,
            links,
            quarantined: vec![false; workers],
            suspended: vec![false; workers],
            departed: vec![false; workers],
        }
    }

    /// Grows the worker set to `workers` (elastic scale-out): new slots
    /// enter healthy and immediately placeable. The link matrix, when one
    /// is held, is padded conservatively until the next re-probe (see
    /// [`LinkMatrix::grown`]).
    pub fn grow(&mut self, workers: usize) {
        assert!(workers >= self.workers, "the worker set never shrinks");
        self.workers = workers;
        self.quarantined.resize(workers, false);
        self.suspended.resize(workers, false);
        self.departed.resize(workers, false);
        if let Some(links) = &self.links {
            // Endpoint 0 is the controller, so `workers` workers need
            // `workers + 1` endpoints.
            self.links = Some(links.grown(workers + 1));
        }
    }

    /// The policy in use.
    pub fn kind(&self) -> &PolicyKind {
        &self.kind
    }

    /// Number of workers being scheduled across.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The probed link matrix, when the policy holds one.
    pub fn links(&self) -> Option<&LinkMatrix> {
        self.links.as_ref()
    }

    /// Quarantines worker `w`: no policy will assign it work again.
    ///
    /// # Panics
    /// Panics if this would leave zero healthy workers — the caller must
    /// check [`NodeScheduler::healthy_workers`] first and surface an error.
    pub fn quarantine(&mut self, w: usize) {
        self.quarantined[w] = true;
        self.suspended[w] = false; // suspicion resolved: confirmed dead
        assert!(
            (0..self.workers).any(|i| !self.quarantined[i] && !self.departed[i]),
            "quarantine would leave no healthy workers"
        );
    }

    /// Whether worker `w` is quarantined.
    pub fn is_quarantined(&self, w: usize) -> bool {
        self.quarantined.get(w).copied().unwrap_or(false)
    }

    /// Sidelines worker `w` for new placements without quarantining it
    /// (the suspect grace window). Idempotent; suspending a quarantined
    /// worker is a no-op.
    pub fn suspend(&mut self, w: usize) {
        if !self.quarantined[w] {
            self.suspended[w] = true;
        }
    }

    /// Lifts a suspension: the worker resumed within the grace window.
    pub fn unsuspend(&mut self, w: usize) {
        self.suspended[w] = false;
    }

    /// Whether worker `w` is currently suspended.
    pub fn is_suspended(&self, w: usize) -> bool {
        self.suspended.get(w).copied().unwrap_or(false)
    }

    /// Re-admits a quarantined worker (membership rejoin): both the
    /// quarantine and any stale suspension are cleared.
    pub fn rejoin(&mut self, w: usize) {
        self.quarantined[w] = false;
        self.suspended[w] = false;
    }

    /// Marks worker `w` as cleanly departed (elastic scale-in): no policy
    /// will assign it work again.
    ///
    /// # Panics
    /// Panics if this would leave zero healthy workers — the caller must
    /// check [`NodeScheduler::healthy_workers`] first and surface an error.
    pub fn depart(&mut self, w: usize) {
        self.departed[w] = true;
        self.suspended[w] = false;
        assert!(
            (0..self.workers).any(|i| !self.quarantined[i] && !self.departed[i]),
            "departure would leave no healthy workers"
        );
    }

    /// Whether worker `w` departed cleanly.
    pub fn is_departed(&self, w: usize) -> bool {
        self.departed.get(w).copied().unwrap_or(false)
    }

    /// Number of workers still accepting assignments.
    pub fn healthy_workers(&self) -> usize {
        (0..self.workers)
            .filter(|&w| !self.quarantined[w] && !self.departed[w])
            .count()
    }

    /// Snapshot of the (quarantined, suspended, departed) masks, for
    /// preserving membership state across a scheduler rebuild (link
    /// re-probe).
    pub(crate) fn masks(&self) -> (Vec<bool>, Vec<bool>, Vec<bool>) {
        (
            self.quarantined.clone(),
            self.suspended.clone(),
            self.departed.clone(),
        )
    }

    /// Restores masks captured by [`NodeScheduler::masks`].
    pub(crate) fn restore_masks(
        &mut self,
        quarantined: Vec<bool>,
        suspended: Vec<bool>,
        departed: Vec<bool>,
    ) {
        assert_eq!(quarantined.len(), self.workers);
        assert_eq!(suspended.len(), self.workers);
        assert_eq!(departed.len(), self.workers);
        self.quarantined = quarantined;
        self.suspended = suspended;
        self.departed = departed;
    }

    /// True when every placeable (non-quarantined, non-departed) worker is
    /// suspended; placement then ignores suspension rather than wedging.
    fn all_suspended(&self) -> bool {
        (0..self.workers).all(|w| self.quarantined[w] || self.departed[w] || self.suspended[w])
    }

    /// Appends a canonical dump of the scheduler state to `out` for the
    /// planner state digest (floats as exact bits).
    pub(crate) fn digest_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "sched:{:?};w{};rr{};vs{},{};q{:?};s{:?};d{:?};links:",
            self.kind,
            self.workers,
            self.rr_next,
            self.vs_pos,
            self.vs_count,
            self.quarantined,
            self.suspended,
            self.departed
        );
        if let Some(links) = &self.links {
            for src in 0..links.len() {
                for dst in 0..links.len() {
                    let _ = write!(out, "{:x},", links.raw(src, dst).to_bits());
                }
            }
        }
        out.push(';');
    }

    fn round_robin(&mut self) -> usize {
        // At least one healthy worker exists (quarantine() enforces it), so
        // this advances past quarantined slots and terminates. Suspended
        // slots are skipped too unless every healthy worker is suspended.
        let ignore_suspension = self.all_suspended();
        loop {
            let w = self.rr_next;
            self.rr_next = (self.rr_next + 1) % self.workers;
            if !self.quarantined[w]
                && !self.departed[w]
                && (ignore_suspension || !self.suspended[w])
            {
                return w;
            }
        }
    }

    fn vector_step(&mut self) -> usize {
        let PolicyKind::VectorStep(v) = &self.kind else {
            unreachable!("called only for vector-step")
        };
        // Skip zero entries (already validated non-all-zero) and positions
        // that land on quarantined workers. The bound covers a full sweep of
        // vector x workers combinations; if every landing spot is
        // quarantined-or-zero (e.g. vector [1, 0] with worker 0 dead), fall
        // back to round-robin, which only picks healthy workers.
        let v = v.clone();
        let ignore_suspension = self.all_suspended();
        for _ in 0..v.len() * self.workers {
            if self.vs_count >= v[self.vs_pos % v.len()] {
                self.vs_pos += 1;
                self.vs_count = 0;
                continue;
            }
            let w = self.vs_pos % self.workers;
            if self.quarantined[w] || self.departed[w] || (!ignore_suspension && self.suspended[w])
            {
                self.vs_pos += 1;
                self.vs_count = 0;
                continue;
            }
            self.vs_count += 1;
            return self.vs_pos % self.workers;
        }
        self.round_robin()
    }

    /// Assigns a CE to a worker (0-based index). This is the exact code
    /// benchmarked for the paper's Figure 9.
    pub fn assign(&mut self, ce: &Ce, coherence: &Coherence) -> usize {
        match &self.kind {
            PolicyKind::RoundRobin => self.round_robin(),
            PolicyKind::VectorStep(_) => self.vector_step(),
            PolicyKind::MinTransferSize(level) => {
                let threshold = level.threshold_bytes().min(ce.total_bytes().max(1));
                let ignore_suspension = self.all_suspended();
                let mut best: Option<(u64, usize)> = None;
                for w in 0..self.workers {
                    if self.quarantined[w]
                        || self.departed[w]
                        || (!ignore_suspension && self.suspended[w])
                    {
                        continue;
                    }
                    let loc = Location::worker(w);
                    let local = coherence.bytes_up_to_date(&ce.args, loc);
                    if local >= threshold {
                        let missing = coherence.bytes_missing(&ce.args, loc);
                        if best.is_none_or(|(m, _)| missing < m) {
                            best = Some((missing, w));
                        }
                    }
                }
                match best {
                    Some((_, w)) => w,
                    None => self.round_robin(),
                }
            }
            PolicyKind::MinTransferTime(level) => {
                let threshold = level.threshold_bytes().min(ce.total_bytes().max(1));
                let ignore_suspension = self.all_suspended();
                let links = self.links.as_ref().expect("validated in new()");
                let mut best: Option<(f64, usize)> = None;
                for w in 0..self.workers {
                    if self.quarantined[w]
                        || self.departed[w]
                        || (!ignore_suspension && self.suspended[w])
                    {
                        continue;
                    }
                    let loc = Location::worker(w);
                    let local = coherence.bytes_up_to_date(&ce.args, loc);
                    if local < threshold {
                        continue;
                    }
                    // Empirical transfer time of the missing bytes, each
                    // from its fastest up-to-date holder.
                    let mut time = 0.0f64;
                    for arg in &ce.args {
                        if coherence.up_to_date_on(arg.array, loc) {
                            continue;
                        }
                        let best_bw = coherence
                            .holders(arg.array)
                            .iter()
                            .map(|&h| links.bandwidth(h, loc))
                            .fold(0.0f64, f64::max);
                        if best_bw > 0.0 {
                            time += arg.bytes as f64 / best_bw;
                        }
                    }
                    if best.is_none_or(|(t, _)| time < t) {
                        best = Some((time, w));
                    }
                }
                match best {
                    Some((_, w)) => w,
                    None => self.round_robin(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ce::{ArrayId, Ce, CeArg, CeId, CeKind};
    use gpu_sim::KernelCost;

    const A: ArrayId = ArrayId(1);
    const B: ArrayId = ArrayId(2);

    fn ce(args: Vec<CeArg>) -> Ce {
        Ce {
            id: CeId(0),
            kind: CeKind::Kernel {
                name: "k".into(),
                cost: KernelCost::default(),
            },
            args,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut s = NodeScheduler::new(PolicyKind::RoundRobin, 3, None);
        let coh = Coherence::new();
        let c = ce(vec![CeArg::read(A, 8)]);
        let got: Vec<_> = (0..7).map(|_| s.assign(&c, &coh)).collect();
        assert_eq!(got, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn vector_step_follows_the_paper_example() {
        // Vector [1,2,3] on two nodes: 1 CE to node 0, 2 to node 1,
        // 3 to node 0 (position 2 % 2 workers), then cycle.
        let mut s = NodeScheduler::new(PolicyKind::VectorStep(vec![1, 2, 3]), 2, None);
        let coh = Coherence::new();
        let c = ce(vec![CeArg::read(A, 8)]);
        let got: Vec<_> = (0..8).map(|_| s.assign(&c, &coh)).collect();
        assert_eq!(got, vec![0, 1, 1, 0, 0, 0, 1, 0]);
    }

    #[test]
    fn vector_step_skips_zero_entries() {
        let mut s = NodeScheduler::new(PolicyKind::VectorStep(vec![0, 2]), 2, None);
        let coh = Coherence::new();
        let c = ce(vec![CeArg::read(A, 8)]);
        // Worker 0's count is zero, so only worker 1 (odd positions) is
        // ever assigned.
        let got: Vec<_> = (0..4).map(|_| s.assign(&c, &coh)).collect();
        assert_eq!(got, vec![1, 1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "positive count")]
    fn all_zero_vector_rejected() {
        NodeScheduler::new(PolicyKind::VectorStep(vec![0, 0]), 2, None);
    }

    #[test]
    fn min_transfer_size_prefers_data_locality() {
        let mut coh = Coherence::new();
        coh.register(A);
        coh.register(B);
        coh.record_write(A, Location::worker(1));
        coh.record_write(B, Location::worker(1));
        let mut s = NodeScheduler::new(
            PolicyKind::MinTransferSize(ExplorationLevel::Medium),
            2,
            None,
        );
        let c = ce(vec![CeArg::read(A, 100), CeArg::read(B, 100)]);
        assert_eq!(s.assign(&c, &coh), 1);
    }

    #[test]
    fn min_transfer_size_explores_when_no_node_is_viable() {
        let mut coh = Coherence::new();
        coh.register(A);
        // Data only on the controller: no worker is viable.
        let mut s = NodeScheduler::new(
            PolicyKind::MinTransferSize(ExplorationLevel::Medium),
            3,
            None,
        );
        let c = ce(vec![CeArg::read(A, 100)]);
        let got: Vec<_> = (0..3).map(|_| s.assign(&c, &coh)).collect();
        assert_eq!(got, vec![0, 1, 2], "falls back to round-robin");
    }

    #[test]
    fn exploration_threshold_gates_viability() {
        const MIB: u64 = 1 << 20;
        let mut coh = Coherence::new();
        coh.register(A);
        coh.register(B);
        // Worker 0 holds 40 MiB of the CE's 100 MiB.
        coh.record_write(A, Location::worker(0));
        let c = ce(vec![CeArg::read(A, 40 * MIB), CeArg::read(B, 60 * MIB)]);
        // Low (1 MiB): worker 0 viable -> chosen.
        let mut low =
            NodeScheduler::new(PolicyKind::MinTransferSize(ExplorationLevel::Low), 2, None);
        assert_eq!(low.assign(&c, &coh), 0);
        // High (4 GiB): nobody viable -> round robin starts at 0.
        let mut high =
            NodeScheduler::new(PolicyKind::MinTransferSize(ExplorationLevel::High), 2, None);
        assert_eq!(high.assign(&c, &coh), 0);
        assert_eq!(high.assign(&c, &coh), 1, "second fallback advances");
    }

    #[test]
    fn snowball_on_shared_data_is_possible() {
        // The paper's MV pathology: once one node holds the (monolithic)
        // matrix, min-transfer-size keeps assigning every CE there.
        const GIB: u64 = 1 << 30;
        let mut coh = Coherence::new();
        coh.register(A);
        coh.record_copy(A, Location::worker(1));
        let c = ce(vec![CeArg::read(A, 64 * GIB)]);
        let mut s = NodeScheduler::new(
            PolicyKind::MinTransferSize(ExplorationLevel::Medium),
            4,
            None,
        );
        for _ in 0..8 {
            assert_eq!(s.assign(&c, &coh), 1, "exploitation never leaves node 1");
        }
    }

    #[test]
    fn min_transfer_time_uses_the_link_matrix() {
        // Three endpoints: controller (0) and two workers. The link from
        // the controller to worker 1 is 10x faster than to worker 0.
        let mut bw = vec![vec![1e9; 3]; 3];
        bw[0][1] = 1e8; // controller -> worker 0: slow
        bw[0][2] = 1e9; // controller -> worker 1: fast
        let links = LinkMatrix::new(bw);
        let mut coh = Coherence::new();
        coh.register(A);
        // Both workers hold A (2 MiB >= the Low threshold); B lives only on
        // the controller and must be fetched.
        coh.record_copy(A, Location::worker(0));
        coh.record_copy(A, Location::worker(1));
        coh.register(B); // B only on controller
        let c = ce(vec![CeArg::read(A, 2 << 20), CeArg::read(B, 1 << 20)]);
        let mut s = NodeScheduler::new(
            PolicyKind::MinTransferTime(ExplorationLevel::Low),
            2,
            Some(links),
        );
        // Worker 1 needs B over the fast link; worker 0 over the slow one.
        assert_eq!(s.assign(&c, &coh), 1);
    }

    #[test]
    #[should_panic(expected = "link matrix")]
    fn min_transfer_time_requires_matrix() {
        NodeScheduler::new(
            PolicyKind::MinTransferTime(ExplorationLevel::Medium),
            2,
            None,
        );
    }

    #[test]
    fn round_robin_skips_quarantined_workers() {
        let mut s = NodeScheduler::new(PolicyKind::RoundRobin, 3, None);
        s.quarantine(1);
        assert_eq!(s.healthy_workers(), 2);
        let coh = Coherence::new();
        let c = ce(vec![CeArg::read(A, 8)]);
        let got: Vec<_> = (0..4).map(|_| s.assign(&c, &coh)).collect();
        assert_eq!(got, vec![0, 2, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "no healthy workers")]
    fn quarantining_the_last_worker_panics() {
        let mut s = NodeScheduler::new(PolicyKind::RoundRobin, 2, None);
        s.quarantine(0);
        s.quarantine(1);
    }

    #[test]
    fn vector_step_skips_quarantined_positions() {
        // Vector [1,2,3] on two nodes kills worker 0: every CE lands on 1.
        let mut s = NodeScheduler::new(PolicyKind::VectorStep(vec![1, 2, 3]), 2, None);
        s.quarantine(0);
        let coh = Coherence::new();
        let c = ce(vec![CeArg::read(A, 8)]);
        for _ in 0..8 {
            assert_eq!(s.assign(&c, &coh), 1);
        }
    }

    #[test]
    fn vector_step_falls_back_when_all_positions_dead() {
        // Vector [1,0] only ever names worker 0; with it quarantined the
        // bounded scan exhausts and round-robin picks the healthy worker.
        let mut s = NodeScheduler::new(PolicyKind::VectorStep(vec![1, 0]), 2, None);
        s.quarantine(0);
        let coh = Coherence::new();
        let c = ce(vec![CeArg::read(A, 8)]);
        for _ in 0..4 {
            assert_eq!(s.assign(&c, &coh), 1);
        }
    }

    #[test]
    fn online_policies_never_pick_quarantined_holders() {
        // All data lives on worker 1, but worker 1 is quarantined: the
        // exploitation winner must be ignored and the fallback avoids it too.
        let mut coh = Coherence::new();
        coh.register(A);
        coh.record_write(A, Location::worker(1));
        let c = ce(vec![CeArg::read(A, 100)]);
        let mut size =
            NodeScheduler::new(PolicyKind::MinTransferSize(ExplorationLevel::Low), 3, None);
        size.quarantine(1);
        for _ in 0..6 {
            assert_ne!(size.assign(&c, &coh), 1);
        }
        let mut time = NodeScheduler::new(
            PolicyKind::MinTransferTime(ExplorationLevel::Low),
            3,
            Some(LinkMatrix::uniform(4, 1e9)),
        );
        time.quarantine(1);
        for _ in 0..6 {
            assert_ne!(time.assign(&c, &coh), 1);
        }
    }

    #[test]
    fn suspended_workers_receive_no_new_work() {
        let mut s = NodeScheduler::new(PolicyKind::RoundRobin, 3, None);
        s.suspend(1);
        assert!(s.is_suspended(1));
        assert_eq!(s.healthy_workers(), 3, "suspension is not quarantine");
        let coh = Coherence::new();
        let c = ce(vec![CeArg::read(A, 8)]);
        let got: Vec<_> = (0..4).map(|_| s.assign(&c, &coh)).collect();
        assert_eq!(got, vec![0, 2, 0, 2]);
        s.unsuspend(1);
        assert!(!s.is_suspended(1));
        let got: Vec<_> = (0..3).map(|_| s.assign(&c, &coh)).collect();
        assert!(got.contains(&1), "reinstated worker is placeable again");
    }

    #[test]
    fn all_suspended_falls_back_to_placing_anyway() {
        // Degradation must not wedge: with every healthy worker suspended,
        // placement ignores suspension instead of looping forever.
        let mut s = NodeScheduler::new(PolicyKind::RoundRobin, 2, None);
        s.suspend(0);
        s.suspend(1);
        let coh = Coherence::new();
        let c = ce(vec![CeArg::read(A, 8)]);
        let got: Vec<_> = (0..4).map(|_| s.assign(&c, &coh)).collect();
        assert_eq!(got, vec![0, 1, 0, 1]);
    }

    #[test]
    fn online_policies_skip_suspended_holders() {
        let mut coh = Coherence::new();
        coh.register(A);
        coh.record_write(A, Location::worker(1));
        let c = ce(vec![CeArg::read(A, 100)]);
        let mut s = NodeScheduler::new(PolicyKind::MinTransferSize(ExplorationLevel::Low), 3, None);
        s.suspend(1);
        for _ in 0..6 {
            assert_ne!(s.assign(&c, &coh), 1);
        }
    }

    #[test]
    fn rejoin_clears_quarantine_and_suspension() {
        let mut s = NodeScheduler::new(PolicyKind::RoundRobin, 2, None);
        s.quarantine(1);
        assert!(s.is_quarantined(1));
        s.suspend(1);
        assert!(!s.is_suspended(1), "suspending a quarantined worker no-ops");
        s.rejoin(1);
        assert!(!s.is_quarantined(1) && !s.is_suspended(1));
        assert_eq!(s.healthy_workers(), 2);
        let coh = Coherence::new();
        let c = ce(vec![CeArg::read(A, 8)]);
        let got: Vec<_> = (0..2).map(|_| s.assign(&c, &coh)).collect();
        assert!(got.contains(&1), "rejoined worker is placeable");
    }

    #[test]
    fn grow_makes_the_new_worker_placeable() {
        let mut s = NodeScheduler::new(PolicyKind::RoundRobin, 2, None);
        s.grow(3);
        assert_eq!(s.workers(), 3);
        assert_eq!(s.healthy_workers(), 3);
        let coh = Coherence::new();
        let c = ce(vec![CeArg::read(A, 8)]);
        let got: Vec<_> = (0..6).map(|_| s.assign(&c, &coh)).collect();
        assert!(got.contains(&2), "the joined worker receives placements");
    }

    #[test]
    fn grow_pads_the_link_matrix_conservatively() {
        let mut bw = vec![vec![2e9; 3]; 3];
        bw[0][1] = 5e8;
        let mut s = NodeScheduler::new(
            PolicyKind::MinTransferTime(ExplorationLevel::Low),
            2,
            Some(LinkMatrix::new(bw)),
        );
        s.grow(3);
        let links = s.links().unwrap();
        assert_eq!(links.endpoints(), 4);
        assert_eq!(links.raw(0, 1), 5e8, "existing entries kept bit-for-bit");
        assert_eq!(links.raw(0, 3), 5e8, "new entries take the minimum");
    }

    #[test]
    fn departed_workers_receive_no_work() {
        let mut s = NodeScheduler::new(PolicyKind::RoundRobin, 3, None);
        s.depart(1);
        assert!(s.is_departed(1));
        assert!(!s.is_quarantined(1), "departure is not quarantine");
        assert_eq!(s.healthy_workers(), 2);
        let coh = Coherence::new();
        let c = ce(vec![CeArg::read(A, 8)]);
        let got: Vec<_> = (0..4).map(|_| s.assign(&c, &coh)).collect();
        assert_eq!(got, vec![0, 2, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "no healthy workers")]
    fn departing_the_last_worker_panics() {
        let mut s = NodeScheduler::new(PolicyKind::RoundRobin, 2, None);
        s.quarantine(0);
        s.depart(1);
    }

    #[test]
    fn policy_names_match_paper() {
        assert_eq!(PolicyKind::RoundRobin.name(), "round-robin");
        assert_eq!(PolicyKind::VectorStep(vec![1]).name(), "vector-step");
        assert!(PolicyKind::MinTransferSize(ExplorationLevel::Low).is_online());
        assert!(!PolicyKind::RoundRobin.is_online());
    }
}
