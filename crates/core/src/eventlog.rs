//! Structured JSONL event logging for the long-running daemons.
//!
//! `grout-ctld` and `grout-workerd` historically logged with ad-hoc
//! `eprintln!` lines; once the control plane became a multi-tenant
//! service those lines lost the one thing an operator needs — *which
//! session* an event belongs to. This module replaces them with a
//! leveled, session-tagged, rate-limited JSONL stream:
//!
//! ```text
//! {"ts_ms":1722988800123,"level":"info","component":"grout-ctld",
//!  "event":"session_finished","session":1,
//!  "msg":"session 1 finished (12 kernels)","kernels":12}
//! ```
//!
//! One line per event, always a single JSON object, always with `ts_ms`
//! (wall clock, milliseconds), `level`, `component`, `event` (a stable
//! machine-readable key) and `msg` (the human phrasing — CI greps match
//! on this field, so the historical wording survives the migration).
//! Session-scoped events carry `session`; extra structured fields ride
//! as additional top-level keys.
//!
//! ## Rate limiting
//!
//! Noisy repeated events (reconnect storms, per-frame errors) are
//! limited *per event key*: at most [`EventLog::DEFAULT_RATE_CAP`] lines
//! per second for any one `event`. The first suppressed line in a window
//! emits a single `rate_limited` notice; when the window rolls over, a
//! summary reports how many lines were dropped. `error`-level events are
//! never suppressed.
//!
//! ## Global handle
//!
//! Binaries call [`init`] once at startup ([`global`] falls back to a
//! stderr logger with component `"grout"`), so library code deep in the
//! serving path can tag events without threading a handle through every
//! signature.

use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

pub use serde::json::Value;

use crate::telemetry::monotonic_ns;

/// Event severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Development chatter, off by default.
    Debug,
    /// Normal operational events.
    Info,
    /// Degraded but continuing.
    Warn,
    /// Something failed; never rate-limited.
    Error,
}

impl LogLevel {
    fn as_str(self) -> &'static str {
        match self {
            LogLevel::Debug => "debug",
            LogLevel::Info => "info",
            LogLevel::Warn => "warn",
            LogLevel::Error => "error",
        }
    }

    /// Parses the `GROUT_LOG` env-var convention (`debug`, `info`,
    /// `warn`, `error`; anything else ⇒ `None`).
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "debug" => Some(LogLevel::Debug),
            "info" => Some(LogLevel::Info),
            "warn" => Some(LogLevel::Warn),
            "error" => Some(LogLevel::Error),
            _ => None,
        }
    }
}

/// Where rendered lines go.
enum Sink {
    Stderr,
    Writer(Mutex<Box<dyn Write + Send>>),
}

struct RateState {
    window_start_ns: u64,
    emitted: u32,
    suppressed: u64,
}

struct LogInner {
    component: String,
    min_level: LogLevel,
    rate_cap: AtomicU32,
    sink: Sink,
    limiter: Mutex<HashMap<String, RateState>>,
}

/// A cloneable handle to one JSONL event stream. Cheap to clone (one
/// `Arc`); every clone shares the sink and the rate limiter.
#[derive(Clone)]
pub struct EventLog {
    inner: Arc<LogInner>,
}

impl EventLog {
    /// Per-event-key emission cap, lines per second.
    pub const DEFAULT_RATE_CAP: u32 = 20;

    /// A logger writing to stderr. The minimum level comes from the
    /// `GROUT_LOG` environment variable when set (default `info`).
    pub fn stderr(component: &str) -> EventLog {
        let min_level = std::env::var("GROUT_LOG")
            .ok()
            .and_then(|v| LogLevel::parse(&v))
            .unwrap_or(LogLevel::Info);
        EventLog::build(component, min_level, Sink::Stderr)
    }

    /// A logger writing JSONL lines to an arbitrary sink — tests capture
    /// output this way.
    pub fn to_writer(component: &str, writer: Box<dyn Write + Send>) -> EventLog {
        EventLog::build(component, LogLevel::Debug, Sink::Writer(Mutex::new(writer)))
    }

    fn build(component: &str, min_level: LogLevel, sink: Sink) -> EventLog {
        EventLog {
            inner: Arc::new(LogInner {
                component: component.to_string(),
                min_level,
                rate_cap: AtomicU32::new(Self::DEFAULT_RATE_CAP),
                sink,
                limiter: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// This logger with a different per-event rate cap (0 ⇒ suppress
    /// everything below `error` after the first line each window). The
    /// cap is shared by every clone of this handle — the sink and
    /// limiter state stay intact.
    pub fn with_rate_cap(&self, cap: u32) -> EventLog {
        self.inner.rate_cap.store(cap, Ordering::Relaxed);
        self.clone()
    }

    /// Emits one event. `event` is the stable machine key (also the
    /// rate-limit bucket), `msg` the human phrasing, `fields` extra
    /// structured payload appended to the JSON object.
    pub fn log(
        &self,
        level: LogLevel,
        event: &str,
        session: Option<u64>,
        msg: &str,
        fields: &[(&str, Value)],
    ) {
        if level < self.inner.min_level {
            return;
        }
        if level < LogLevel::Error {
            let (admitted, notice) = self.admit(event);
            if let Some(notice) = notice {
                self.emit(&notice);
            }
            if !admitted {
                return;
            }
        }
        self.emit(&self.render(level, event, session, msg, fields));
    }

    /// `debug`-level [`log`](Self::log).
    pub fn debug(&self, event: &str, session: Option<u64>, msg: &str, fields: &[(&str, Value)]) {
        self.log(LogLevel::Debug, event, session, msg, fields);
    }

    /// `info`-level [`log`](Self::log).
    pub fn info(&self, event: &str, session: Option<u64>, msg: &str, fields: &[(&str, Value)]) {
        self.log(LogLevel::Info, event, session, msg, fields);
    }

    /// `warn`-level [`log`](Self::log).
    pub fn warn(&self, event: &str, session: Option<u64>, msg: &str, fields: &[(&str, Value)]) {
        self.log(LogLevel::Warn, event, session, msg, fields);
    }

    /// `error`-level [`log`](Self::log) — never rate-limited.
    pub fn error(&self, event: &str, session: Option<u64>, msg: &str, fields: &[(&str, Value)]) {
        self.log(LogLevel::Error, event, session, msg, fields);
    }

    /// Rolls the rate window for `event` and decides admission. Returns
    /// whether this line may be emitted, plus a pre-rendered notice line
    /// to emit first (rate-limit start or window-roll summary) when one
    /// is due.
    fn admit(&self, event: &str) -> (bool, Option<String>) {
        let now = monotonic_ns();
        let mut limiter = self.inner.limiter.lock().unwrap();
        let state = limiter.entry(event.to_string()).or_insert(RateState {
            window_start_ns: now,
            emitted: 0,
            suppressed: 0,
        });
        let mut notice = None;
        if now.saturating_sub(state.window_start_ns) >= 1_000_000_000 {
            if state.suppressed > 0 {
                notice = Some(self.render(
                    LogLevel::Warn,
                    "rate_limited",
                    None,
                    &format!(
                        "suppressed {} \"{}\" lines in the last window",
                        state.suppressed, event
                    ),
                    &[
                        ("suppressed_event", Value::String(event.to_string())),
                        ("count", Value::U64(state.suppressed)),
                    ],
                ));
            }
            state.window_start_ns = now;
            state.emitted = 0;
            state.suppressed = 0;
        }
        if state.emitted < self.inner.rate_cap.load(Ordering::Relaxed).max(1) {
            state.emitted += 1;
            (true, notice)
        } else {
            if state.suppressed == 0 {
                notice = Some(self.render(
                    LogLevel::Warn,
                    "rate_limited",
                    None,
                    &format!(
                        "\"{event}\" exceeding {} lines/s; suppressing",
                        self.inner.rate_cap.load(Ordering::Relaxed)
                    ),
                    &[("suppressed_event", Value::String(event.to_string()))],
                ));
            }
            state.suppressed += 1;
            (false, notice)
        }
    }

    fn render(
        &self,
        level: LogLevel,
        event: &str,
        session: Option<u64>,
        msg: &str,
        fields: &[(&str, Value)],
    ) -> String {
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut obj = vec![
            ("ts_ms".to_string(), Value::U64(ts_ms)),
            (
                "level".to_string(),
                Value::String(level.as_str().to_string()),
            ),
            (
                "component".to_string(),
                Value::String(self.inner.component.clone()),
            ),
            ("event".to_string(), Value::String(event.to_string())),
        ];
        if let Some(sid) = session {
            obj.push(("session".to_string(), Value::U64(sid)));
        }
        obj.push(("msg".to_string(), Value::String(msg.to_string())));
        for (k, v) in fields {
            obj.push((k.to_string(), v.clone()));
        }
        serde_json::to_string(&Value::Object(obj)).expect("render log line")
    }

    fn emit(&self, line: &str) {
        match &self.inner.sink {
            Sink::Stderr => eprintln!("{line}"),
            Sink::Writer(w) => {
                let mut w = w.lock().unwrap();
                let _ = writeln!(w, "{line}");
                let _ = w.flush();
            }
        }
    }
}

static GLOBAL: OnceLock<EventLog> = OnceLock::new();

/// Installs the process-wide logger. First call wins (returns `false`
/// if one was already installed); binaries call this once at startup.
pub fn init(log: EventLog) -> bool {
    GLOBAL.set(log).is_ok()
}

/// The process-wide logger; a stderr logger with component `"grout"`
/// when [`init`] was never called.
pub fn global() -> &'static EventLog {
    GLOBAL.get_or_init(|| EventLog::stderr("grout"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A `Write` sink tests can keep a second handle on.
    #[derive(Clone, Default)]
    struct Capture(Arc<Mutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl Capture {
        fn lines(&self) -> Vec<String> {
            String::from_utf8(self.0.lock().unwrap().clone())
                .unwrap()
                .lines()
                .map(str::to_string)
                .collect()
        }
    }

    #[test]
    fn lines_are_json_objects_with_required_keys() {
        let cap = Capture::default();
        let log = EventLog::to_writer("grout-ctld", Box::new(cap.clone()));
        log.info(
            "session_attached",
            Some(3),
            "session 3 attached",
            &[("declared_bytes", Value::U64(64))],
        );
        log.error("boom", None, "it broke", &[]);
        let lines = cap.lines();
        assert_eq!(lines.len(), 2);
        let first = serde_json::from_str(&lines[0]).expect("line parses");
        assert_eq!(
            first.get("component").and_then(|v| v.as_str()),
            Some("grout-ctld")
        );
        assert_eq!(
            first.get("event").and_then(|v| v.as_str()),
            Some("session_attached")
        );
        assert_eq!(first.get("session").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(
            first.get("msg").and_then(|v| v.as_str()),
            Some("session 3 attached")
        );
        assert_eq!(
            first.get("declared_bytes").and_then(|v| v.as_u64()),
            Some(64)
        );
        assert!(first.get("ts_ms").and_then(|v| v.as_u64()).is_some());
        let second = serde_json::from_str(&lines[1]).expect("line parses");
        assert_eq!(second.get("level").and_then(|v| v.as_str()), Some("error"));
        assert_eq!(second.get("session"), None);
    }

    #[test]
    fn repeated_events_are_rate_limited_but_errors_are_not() {
        let cap = Capture::default();
        let log = EventLog::to_writer("w", Box::new(cap.clone()));
        for _ in 0..(EventLog::DEFAULT_RATE_CAP + 40) {
            log.info("chatty", None, "again", &[]);
            log.error("err", None, "always", &[]);
        }
        let lines = cap.lines();
        let chatty = lines
            .iter()
            .filter(|l| l.contains("\"event\":\"chatty\""))
            .count();
        let limited = lines
            .iter()
            .filter(|l| l.contains("\"event\":\"rate_limited\""))
            .count();
        let errors = lines
            .iter()
            .filter(|l| l.contains("\"event\":\"err\""))
            .count();
        assert_eq!(chatty as u32, EventLog::DEFAULT_RATE_CAP);
        assert_eq!(limited, 1, "one suppression notice per window");
        assert_eq!(errors as u32, EventLog::DEFAULT_RATE_CAP + 40);
        // Distinct event keys don't share a bucket.
        log.info("other", None, "fresh key", &[]);
        assert!(cap
            .lines()
            .iter()
            .any(|l| l.contains("\"event\":\"other\"")));
    }

    #[test]
    fn levels_order_and_parse() {
        assert!(LogLevel::Debug < LogLevel::Info);
        assert!(LogLevel::Warn < LogLevel::Error);
        assert_eq!(LogLevel::parse("WARN"), Some(LogLevel::Warn));
        assert_eq!(LogLevel::parse("verbose"), None);
    }

    #[test]
    fn global_falls_back_to_stderr() {
        // Never panics, regardless of init order across the test binary.
        let _ = global();
    }
}
