//! The multi-tenant session layer: many isolated control-plane state
//! machines over one shared data plane.
//!
//! The single-application runtime ([`crate::LocalRuntime`]) stays exactly
//! what it was — one planner, one Global DAG, one [`Transport`]. This
//! module makes *many* of them share one worker fleet:
//!
//! - [`FleetMux`] owns the real transport (in-process
//!   [`crate::ChannelTransport`] or `grout_net::TcpTransport`) and a
//!   single fleet thread that multiplexes every session's traffic onto
//!   it,
//! - [`SessionTransport`] is the per-session [`Transport`] handle: it
//!   tags every id crossing the wire with the session's namespace
//!   ([`SESSION_SHIFT`]), routes frames through the mux's fair-share
//!   scheduler, and demultiplexes replies back by the same tag,
//! - [`SharedPlacement`] is the fleet-wide placement view every session
//!   prices against: the probed [`LinkMatrix`], per-worker occupancy,
//!   per-session resident bytes and the liveness snapshot,
//! - [`AdmissionController`] decides, per attach request, whether a new
//!   session runs now, waits its turn, or is rejected with a typed error,
//! - [`FairShare`] plans each scheduler tick as a weighted round-robin
//!   over the sessions' ready frontiers — no session starves,
//! - CE batching: all frames one tick sends to one worker coalesce into
//!   a single [`CtrlMsg::Batch`] wire frame when batching is on.
//!
//! Isolation argument: kernels are deterministic, dataflow is
//! version-gated, and every array/kernel/CE id is namespace-tagged, so a
//! session's output is a pure function of its own DAG — co-tenants can
//! change *when* frames move, never *what* they contain. The
//! two-client loopback test asserts the resulting bit-identity.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::telemetry::{monotonic_ns, HistorySample, MetricsHistory, PeerSample, PeerWireStats};
use crate::transport::{CtrlMsg, Liveness, SendLost, Transport, TransportRecvError, WorkerMsg};
use crate::{ArrayId, LinkMatrix, OpSink, PlannerOp};

// ---------------------------------------------------------------------------
// Session identity and id-space tagging.

/// Identifies one tenant session on a shared fleet. Session 0 is
/// reserved (an untagged id decodes to session 0); real sessions start
/// at 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

/// Bits reserved for the per-session id space: array ids, kernel ids and
/// DAG indices below `2^40` are tagged with `session << SESSION_SHIFT`
/// on the way to the fleet and untagged on the way back. 40 bits of ids
/// per session, 24 bits of sessions — both far beyond any real run.
pub const SESSION_SHIFT: u32 = 40;

/// Mask selecting the untagged (per-session) id bits.
pub const SESSION_ID_MASK: u64 = (1 << SESSION_SHIFT) - 1;

#[inline]
fn tag(sid: SessionId, raw: u64) -> u64 {
    debug_assert!(raw <= SESSION_ID_MASK, "per-session id overflows tag space");
    debug_assert!(sid.0 < (1 << 24), "session id overflows tag space");
    (sid.0 << SESSION_SHIFT) | raw
}

#[inline]
fn untag(tagged: u64) -> (SessionId, u64) {
    (SessionId(tagged >> SESSION_SHIFT), tagged & SESSION_ID_MASK)
}

/// Tags every session-scoped id inside a controller→worker message.
/// Worker indices and version numbers are fleet-level and pass through.
fn tag_ctrl(sid: SessionId, msg: CtrlMsg) -> CtrlMsg {
    match msg {
        CtrlMsg::Data {
            array,
            version,
            buf,
        } => CtrlMsg::Data {
            array: ArrayId(tag(sid, array.0)),
            version,
            buf,
        },
        CtrlMsg::LoadKernel {
            id,
            name,
            source,
            compiled,
        } => CtrlMsg::LoadKernel {
            id: tag(sid, id),
            name,
            source,
            compiled,
        },
        CtrlMsg::Exec(mut spec) => {
            spec.dag_index = tag(sid, spec.dag_index as u64) as usize;
            spec.kernel = tag(sid, spec.kernel);
            for a in &mut spec.args {
                if let crate::LocalArg::Buf(id) = a {
                    *id = ArrayId(tag(sid, id.0));
                }
            }
            for (a, _) in spec.needs.iter_mut().chain(spec.bumps.iter_mut()) {
                *a = ArrayId(tag(sid, a.0));
            }
            CtrlMsg::Exec(spec)
        }
        CtrlMsg::Send {
            array,
            min_version,
            to,
        } => CtrlMsg::Send {
            array: ArrayId(tag(sid, array.0)),
            min_version,
            to,
        },
        other => other,
    }
}

/// Splits a worker→controller message into its owning session (by id
/// tag) and the untagged message, or `None` for fleet-level traffic
/// (heartbeats, probes, telemetry, membership).
fn untag_worker(msg: WorkerMsg) -> Option<(SessionId, WorkerMsg)> {
    match msg {
        WorkerMsg::Done {
            dag_index,
            worker,
            elapsed_ns,
        } => {
            let (sid, raw) = untag(dag_index as u64);
            Some((
                sid,
                WorkerMsg::Done {
                    dag_index: raw as usize,
                    worker,
                    elapsed_ns,
                },
            ))
        }
        WorkerMsg::Failed {
            dag_index,
            worker,
            error,
        } => {
            let (sid, raw) = untag(dag_index as u64);
            Some((
                sid,
                WorkerMsg::Failed {
                    dag_index: raw as usize,
                    worker,
                    error,
                },
            ))
        }
        WorkerMsg::Data {
            array,
            version,
            buf,
        } => {
            let (sid, raw) = untag(array.0);
            Some((
                sid,
                WorkerMsg::Data {
                    array: ArrayId(raw),
                    version,
                    buf,
                },
            ))
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Priority classes and the fair-share tick planner.

/// Admission/scheduling priority class of a session. Maps to a
/// weight factor in the fair-share round-robin (High sessions drain
/// their frontiers 4× as fast as Low ones) and to queue order when the
/// fleet is saturated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Background/batch work: weight ×1, queued behind everyone.
    Low,
    /// The default class: weight ×2.
    #[default]
    Normal,
    /// Latency-sensitive work: weight ×4, promoted first.
    High,
}

impl Priority {
    /// The fair-share weight multiplier for this class.
    pub fn weight_factor(self) -> u32 {
        match self {
            Priority::Low => 1,
            Priority::Normal => 2,
            Priority::High => 4,
        }
    }

    /// Parses `low`/`normal`/`high` (CLI surface).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "low" => Ok(Priority::Low),
            "normal" => Ok(Priority::Normal),
            "high" => Ok(Priority::High),
            other => Err(format!("unknown priority `{other}` (low|normal|high)")),
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        })
    }
}

/// Plans one scheduler tick as a weighted round-robin over the sessions'
/// ready frontiers: every session with pending traffic is granted
/// `min(ready, weight)` sends — at least one, so a frontier of `n`
/// messages drains within `ceil(n / weight) ≤ n` ticks regardless of
/// co-tenants (the no-starvation bound the proptest pins down). The
/// visit order rotates each tick so no session persistently flushes
/// first.
#[derive(Debug, Default)]
pub struct FairShare {
    entries: Vec<(SessionId, u32)>,
    cursor: usize,
}

impl FairShare {
    /// An empty planner.
    pub fn new() -> Self {
        FairShare::default()
    }

    /// Registers a session with its weight (clamped to ≥ 1).
    pub fn attach(&mut self, sid: SessionId, weight: u32) {
        if !self.entries.iter().any(|(s, _)| *s == sid) {
            self.entries.push((sid, weight.max(1)));
        }
    }

    /// Removes a session.
    pub fn detach(&mut self, sid: SessionId) {
        self.entries.retain(|(s, _)| *s != sid);
        if !self.entries.is_empty() {
            self.cursor %= self.entries.len();
        } else {
            self.cursor = 0;
        }
    }

    /// Registered session count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// No sessions registered?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Plans one tick: `(session, grant)` pairs in this tick's rotated
    /// visit order, covering every session whose `ready` frontier is
    /// nonempty. `ready(sid)` reports how many frames the session has
    /// queued.
    pub fn tick(&mut self, mut ready: impl FnMut(SessionId) -> usize) -> Vec<(SessionId, usize)> {
        let n = self.entries.len();
        if n == 0 {
            return Vec::new();
        }
        let mut grants = Vec::new();
        for i in 0..n {
            let (sid, weight) = self.entries[(self.cursor + i) % n];
            let pending = ready(sid);
            if pending > 0 {
                grants.push((sid, pending.min(weight as usize)));
            }
        }
        self.cursor = (self.cursor + 1) % n;
        grants
    }
}

// ---------------------------------------------------------------------------
// Admission control.

/// Capacity limits the admission controller enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Sessions allowed to run concurrently.
    pub max_sessions: usize,
    /// Fleet-wide budget for declared resident bytes across active
    /// sessions.
    pub max_resident_bytes: u64,
    /// Attach requests allowed to wait when the fleet is saturated; 0
    /// turns queueing off (saturation rejects immediately).
    pub max_queue: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_sessions: 16,
            max_resident_bytes: u64::MAX,
            max_queue: 32,
        }
    }
}

/// The typed admission failure, carried over the wire to the rejected
/// client (`grout-run --connect` prints it and exits cleanly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// Every concurrent-session slot is taken and queueing is off.
    Saturated {
        /// Sessions currently running.
        active: u32,
        /// The configured concurrency cap.
        max: u32,
    },
    /// The wait queue is full.
    QueueFull {
        /// Requests already waiting.
        queued: u32,
        /// The configured queue cap.
        max: u32,
    },
    /// The session's declared working set cannot fit the resident-bytes
    /// budget (even alone).
    ResidentBytes {
        /// Bytes the attach request declared.
        declared: u64,
        /// The configured fleet-wide budget.
        max: u64,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Saturated { active, max } => {
                write!(f, "fleet saturated: {active}/{max} sessions active")
            }
            AdmissionError::QueueFull { queued, max } => {
                write!(f, "admission queue full: {queued}/{max} waiting")
            }
            AdmissionError::ResidentBytes { declared, max } => write!(
                f,
                "declared working set of {declared} bytes exceeds the {max}-byte budget"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// What the admission controller decided for an attach request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Run now.
    Admit,
    /// Wait: `position` requests are ahead (0-based).
    Queued {
        /// Requests ahead of this one.
        position: usize,
    },
    /// Refused, with the typed reason.
    Reject(AdmissionError),
}

/// Decides whether an attach request runs, waits or is rejected, against
/// configurable concurrency and resident-bytes budgets. Pure state
/// machine — the daemon wires it to connections and wake-ups.
#[derive(Debug, Default)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    /// Active sessions with their declared resident bytes.
    active: HashMap<SessionId, u64>,
    /// Waiting requests, kept priority-then-FIFO ordered.
    queue: Vec<(SessionId, Priority, u64)>,
}

impl AdmissionController {
    /// A controller enforcing `cfg`.
    pub fn new(cfg: AdmissionConfig) -> Self {
        AdmissionController {
            cfg,
            active: HashMap::new(),
            queue: Vec::new(),
        }
    }

    fn resident(&self) -> u64 {
        self.active.values().sum()
    }

    fn fits(&self, declared_bytes: u64) -> bool {
        self.active.len() < self.cfg.max_sessions
            && self
                .resident()
                .checked_add(declared_bytes)
                .is_some_and(|total| total <= self.cfg.max_resident_bytes)
    }

    /// Decides an attach request. `declared_bytes` is the working-set
    /// size the client announced (0 = unknown, charged nothing).
    pub fn request(
        &mut self,
        sid: SessionId,
        priority: Priority,
        declared_bytes: u64,
    ) -> AdmissionDecision {
        if declared_bytes > self.cfg.max_resident_bytes {
            return AdmissionDecision::Reject(AdmissionError::ResidentBytes {
                declared: declared_bytes,
                max: self.cfg.max_resident_bytes,
            });
        }
        if self.fits(declared_bytes) {
            self.active.insert(sid, declared_bytes);
            return AdmissionDecision::Admit;
        }
        if self.cfg.max_queue == 0 {
            return AdmissionDecision::Reject(AdmissionError::Saturated {
                active: self.active.len() as u32,
                max: self.cfg.max_sessions as u32,
            });
        }
        if self.queue.len() >= self.cfg.max_queue {
            return AdmissionDecision::Reject(AdmissionError::QueueFull {
                queued: self.queue.len() as u32,
                max: self.cfg.max_queue as u32,
            });
        }
        // Priority classes jump the line; FIFO within a class.
        let position = self
            .queue
            .iter()
            .position(|(_, p, _)| *p < priority)
            .unwrap_or(self.queue.len());
        self.queue.insert(position, (sid, priority, declared_bytes));
        AdmissionDecision::Queued { position }
    }

    /// Releases a finished (or abandoned) session and promotes every
    /// queued request that now fits, in queue order. Returns the
    /// promoted session ids — the daemon wakes their waiting
    /// connections.
    pub fn release(&mut self, sid: SessionId) -> Vec<SessionId> {
        self.active.remove(&sid);
        self.queue.retain(|(s, _, _)| *s != sid);
        let mut promoted = Vec::new();
        while let Some((next, _, bytes)) = self.queue.first().copied() {
            if !self.fits(bytes) {
                break;
            }
            self.queue.remove(0);
            self.active.insert(next, bytes);
            promoted.push(next);
        }
        promoted
    }

    /// Sessions currently running.
    pub fn active(&self) -> usize {
        self.active.len()
    }

    /// Requests currently waiting.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }
}

// ---------------------------------------------------------------------------
// The shared placement view and batching counters.

/// CE-batching counters: how many logical messages travelled in how many
/// wire frames. `frames / messages` is the frames-per-CE ratio the
/// `BENCH_ctld.json` before/after numbers compare.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BatchStats {
    /// Scheduler ticks that flushed at least one frame.
    pub ticks: u64,
    /// Wire frames sent (a batch counts once).
    pub frames: u64,
    /// Logical [`CtrlMsg`]s delivered (a batch counts its contents).
    pub messages: u64,
    /// Frames that were [`CtrlMsg::Batch`] wrappers.
    pub batched_frames: u64,
}

/// The fleet-wide placement state every session reads: the coherence
/// directory's shared half. The fleet thread refreshes it; session
/// transports and the admission controller consult it without touching
/// the underlying transport.
#[derive(Debug, Default)]
pub struct SharedPlacement {
    /// Per-worker endpoint health snapshot.
    pub liveness: Vec<Liveness>,
    /// Per-worker clock-offset estimates (controller clock domain).
    pub clock_offsets: Vec<i64>,
    /// Per-worker outstanding CE count (Execs routed minus completions)
    /// — the occupancy signal for placement and admission.
    pub occupancy: Vec<u64>,
    /// Resident bytes shipped per session (array copies, deduplicated by
    /// array id).
    pub resident: HashMap<SessionId, u64>,
    /// Fleet-level per-peer wire counters (shared; refreshed
    /// periodically).
    pub wire: Vec<PeerWireStats>,
    /// Workers that never came up at fleet construction.
    pub spawn_failures: Vec<(usize, String)>,
    /// CE-batching counters.
    pub batch: BatchStats,
    /// Cumulative CEs completed per session (survives detach, so
    /// end-of-run introspection still sees finished tenants).
    pub ces_done: HashMap<SessionId, u64>,
    /// Cumulative failed executions across the fleet — differenced over
    /// the [`MetricsHistory`] window this is the live fault-rate signal.
    pub faults: u64,
    /// The introspection time-series ring: one [`HistorySample`] per
    /// placement-refresh tick while the fleet thread runs.
    pub history: MetricsHistory,
}

impl SharedPlacement {
    /// Total resident bytes across every session.
    pub fn resident_total(&self) -> u64 {
        self.resident.values().sum()
    }
}

// ---------------------------------------------------------------------------
// The fleet mux: one thread, one transport, many sessions.

enum Cmd {
    Attach {
        sid: SessionId,
        weight: u32,
        inbox: Sender<WorkerMsg>,
    },
    Frame {
        sid: SessionId,
        worker: usize,
        msg: CtrlMsg,
    },
    Detach {
        sid: SessionId,
        arrays: Vec<ArrayId>,
        kernels: Vec<u64>,
    },
    SetBatch(bool),
    Stop,
}

/// Owns the real fleet transport and the single fleet thread that
/// multiplexes every session's traffic onto it. Hand out per-session
/// [`Transport`] handles with [`FleetMux::session`]; drop the mux (or
/// call [`FleetMux::shutdown`]) to tear the fleet down.
pub struct FleetMux {
    cmd_tx: Sender<Cmd>,
    placement: Arc<Mutex<SharedPlacement>>,
    io: Option<JoinHandle<()>>,
    workers: usize,
    links: Option<LinkMatrix>,
    next_sid: u64,
}

impl FleetMux {
    /// Wraps `transport` (which already connected/probed its fleet) with
    /// batching initially off.
    pub fn new(transport: Box<dyn Transport>) -> Self {
        Self::with_batching(transport, false)
    }

    /// Wraps `transport`, with CE batching initially `batch`.
    pub fn with_batching(mut transport: Box<dyn Transport>, batch: bool) -> Self {
        let workers = transport.workers();
        let links = transport.measured_links().cloned();
        let mut placement = SharedPlacement {
            liveness: (0..workers).map(|_| Liveness::Alive).collect(),
            clock_offsets: vec![0; workers],
            occupancy: vec![0; workers],
            spawn_failures: transport.spawn_failures().to_vec(),
            ..SharedPlacement::default()
        };
        for w in 0..workers {
            placement.liveness[w] = transport.liveness(w);
        }
        let placement = Arc::new(Mutex::new(placement));
        let (cmd_tx, cmd_rx) = unbounded();
        let shared = Arc::clone(&placement);
        let io = std::thread::Builder::new()
            .name("grout-fleet-mux".into())
            .spawn(move || fleet_loop(transport, cmd_rx, shared, batch))
            .expect("spawn fleet mux thread");
        FleetMux {
            cmd_tx,
            placement,
            io: Some(io),
            workers,
            links,
            next_sid: 1,
        }
    }

    /// Worker endpoints in the fleet.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The fleet-probed link matrix, if the transport measured one.
    pub fn links(&self) -> Option<&LinkMatrix> {
        self.links.as_ref()
    }

    /// The shared placement view (liveness, occupancy, resident bytes,
    /// batching counters).
    pub fn placement(&self) -> Arc<Mutex<SharedPlacement>> {
        Arc::clone(&self.placement)
    }

    /// Snapshot of the CE-batching counters.
    pub fn batch_stats(&self) -> BatchStats {
        self.placement.lock().expect("placement lock").batch
    }

    /// Toggles CE batching at runtime.
    pub fn set_batching(&self, on: bool) {
        let _ = self.cmd_tx.send(Cmd::SetBatch(on));
    }

    /// Creates a new session handle with the given fair-share weight
    /// (usually `Priority::weight_factor`). Plug the result into
    /// [`crate::RuntimeBuilder::build_with_transport`].
    pub fn session(&mut self, weight: u32) -> SessionTransport {
        let sid = SessionId(self.next_sid);
        self.next_sid += 1;
        let (inbox_tx, inbox_rx) = unbounded();
        let _ = self.cmd_tx.send(Cmd::Attach {
            sid,
            weight,
            inbox: inbox_tx,
        });
        let spawn_failures = self
            .placement
            .lock()
            .expect("placement lock")
            .spawn_failures
            .clone();
        SessionTransport {
            sid,
            workers: self.workers,
            cmd_tx: self.cmd_tx.clone(),
            inbox: inbox_rx,
            placement: Arc::clone(&self.placement),
            links: self.links.clone(),
            spawn_failures,
            shipped_arrays: HashSet::new(),
            shipped_kernels: HashSet::new(),
            detached: false,
        }
    }

    /// Stops the fleet thread and drops the underlying transport (which
    /// shuts its workers down). Implicit on drop.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let _ = self.cmd_tx.send(Cmd::Stop);
        if let Some(io) = self.io.take() {
            let _ = io.join();
        }
    }
}

impl Drop for FleetMux {
    fn drop(&mut self) {
        self.stop();
    }
}

struct SessionState {
    inbox: Sender<WorkerMsg>,
    pending: VecDeque<(usize, CtrlMsg)>,
}

/// How long the fleet thread parks in `recv_timeout` per iteration when
/// idle — the latency floor for command pickup.
const FLEET_TICK: Duration = Duration::from_micros(500);

fn fleet_loop(
    mut transport: Box<dyn Transport>,
    cmd_rx: Receiver<Cmd>,
    placement: Arc<Mutex<SharedPlacement>>,
    batch_initial: bool,
) {
    let workers = transport.workers();
    let mut fair = FairShare::new();
    let mut sessions: HashMap<SessionId, SessionState> = HashMap::new();
    let mut batch = batch_initial;
    let mut iter: u64 = 0;
    'serve: loop {
        // 1. Ingest session commands.
        loop {
            match cmd_rx.try_recv() {
                Ok(Cmd::Attach { sid, weight, inbox }) => {
                    fair.attach(sid, weight);
                    sessions.insert(
                        sid,
                        SessionState {
                            inbox,
                            pending: VecDeque::new(),
                        },
                    );
                }
                Ok(Cmd::Frame { sid, worker, msg }) => {
                    if let Some(st) = sessions.get_mut(&sid) {
                        st.pending.push_back((worker, msg));
                    }
                }
                Ok(Cmd::Detach {
                    sid,
                    arrays,
                    kernels,
                }) => {
                    if let Some(st) = sessions.remove(&sid) {
                        // Flush whatever the session still had queued
                        // (completion-order frames a detaching runtime
                        // no longer waits for), then reclaim its
                        // namespace on every worker.
                        for (w, m) in st.pending {
                            let _ = transport.send(w, m);
                        }
                    }
                    fair.detach(sid);
                    if !arrays.is_empty() || !kernels.is_empty() {
                        for w in 0..workers {
                            let _ = transport.send(
                                w,
                                CtrlMsg::Reclaim {
                                    arrays: arrays.clone(),
                                    kernels: kernels.clone(),
                                },
                            );
                        }
                    }
                    placement
                        .lock()
                        .expect("placement lock")
                        .resident
                        .remove(&sid);
                }
                Ok(Cmd::SetBatch(on)) => batch = on,
                Ok(Cmd::Stop) => break 'serve,
                Err(_) => break,
            }
        }

        // 2. Fair-share tick: grant each pending session its quota.
        let grants = fair.tick(|sid| sessions.get(&sid).map_or(0, |s| s.pending.len()));
        if !grants.is_empty() {
            let mut per_worker: Vec<Vec<CtrlMsg>> = vec![Vec::new(); workers];
            let mut execs: Vec<u64> = vec![0; workers];
            for (sid, quota) in grants {
                let Some(st) = sessions.get_mut(&sid) else {
                    continue;
                };
                for _ in 0..quota {
                    let Some((w, msg)) = st.pending.pop_front() else {
                        break;
                    };
                    if matches!(msg, CtrlMsg::Exec(_)) {
                        execs[w] += 1;
                    }
                    per_worker[w].push(msg);
                }
            }
            // 3. Flush: coalesce each worker's share of the tick into one
            // wire frame when batching is on.
            let mut flushed = false;
            let mut stats_delta = BatchStats::default();
            for (w, msgs) in per_worker.into_iter().enumerate() {
                if msgs.is_empty() {
                    continue;
                }
                flushed = true;
                stats_delta.messages += msgs.len() as u64;
                if batch && msgs.len() > 1 {
                    stats_delta.frames += 1;
                    stats_delta.batched_frames += 1;
                    let _ = transport.send(w, CtrlMsg::Batch(msgs));
                } else {
                    stats_delta.frames += msgs.len() as u64;
                    for m in msgs {
                        let _ = transport.send(w, m);
                    }
                }
            }
            if flushed {
                let mut p = placement.lock().expect("placement lock");
                p.batch.ticks += 1;
                p.batch.frames += stats_delta.frames;
                p.batch.messages += stats_delta.messages;
                p.batch.batched_frames += stats_delta.batched_frames;
                for (w, n) in execs.iter().enumerate() {
                    p.occupancy[w] += n;
                }
            }
        }

        // 4. Pump inbound worker traffic and demux by session tag.
        match transport.recv_timeout(FLEET_TICK) {
            Ok(msg) => {
                route(msg, &sessions, &placement);
                while let Some(m) = transport.try_recv() {
                    route(m, &sessions, &placement);
                }
            }
            Err(TransportRecvError::Timeout) => {}
            Err(TransportRecvError::Disconnected) => {
                // Every endpoint is gone; sessions learn through the
                // liveness snapshot. Keep serving commands so detaches
                // still drain.
            }
        }

        // 5. Periodically refresh the shared liveness/wire snapshot and
        // append one introspection sample to the history ring — the
        // scheduler tick the live endpoints read their time series from.
        iter = iter.wrapping_add(1);
        if iter.is_multiple_of(32) {
            let queue_depth: u64 = sessions.values().map(|s| s.pending.len() as u64).sum();
            let mut p = placement.lock().expect("placement lock");
            for w in 0..workers {
                p.liveness[w] = transport.liveness(w);
                p.clock_offsets[w] = transport.clock_offset_ns(w);
            }
            p.wire = transport.wire_stats();
            let mut ces_done: Vec<(u64, u64)> =
                p.ces_done.iter().map(|(sid, n)| (sid.0, *n)).collect();
            ces_done.sort_unstable();
            let sample = HistorySample {
                at_ns: monotonic_ns(),
                queue_depth,
                resident_bytes: p.resident_total(),
                faults: p.faults,
                sessions_active: sessions.len() as u64,
                workers_alive: p
                    .liveness
                    .iter()
                    .filter(|l| !matches!(l, Liveness::Dead))
                    .count() as u64,
                occupancy: p.occupancy.clone(),
                peers: p.wire.iter().map(PeerSample::from_wire).collect(),
                ces_done,
            };
            p.history.push(sample);
        }
    }
    // Dropping the transport shuts the fleet down (in-process workers
    // get Shutdown from ChannelTransport's Drop; TCP sockets close).
}

fn route(
    msg: WorkerMsg,
    sessions: &HashMap<SessionId, SessionState>,
    placement: &Arc<Mutex<SharedPlacement>>,
) {
    // Fleet-level membership: a departing worker concerns every session.
    if let WorkerMsg::Leave { worker } = &msg {
        let mut p = placement.lock().expect("placement lock");
        if let Some(l) = p.liveness.get_mut(*worker) {
            *l = Liveness::Dead;
        }
        drop(p);
        for st in sessions.values() {
            let _ = st.inbox.send(msg.clone());
        }
        return;
    }
    // Untagged traffic (heartbeats, probe echoes, telemetry) is
    // fleet-level, already consumed inside real transports, and has no
    // per-session owner: dropped.
    if let Some((sid, untagged)) = untag_worker(msg) {
        if let WorkerMsg::Done { worker, .. } | WorkerMsg::Failed { worker, .. } = &untagged {
            let mut p = placement.lock().expect("placement lock");
            if let Some(o) = p.occupancy.get_mut(*worker) {
                *o = o.saturating_sub(1);
            }
            if matches!(untagged, WorkerMsg::Done { .. }) {
                *p.ces_done.entry(sid).or_insert(0) += 1;
            } else {
                p.faults += 1;
            }
        }
        if let Some(st) = sessions.get(&sid) {
            let _ = st.inbox.send(untagged);
        }
        // A vanished session's stragglers are dropped: its runtime is
        // gone and its namespace is being reclaimed.
    }
}

// ---------------------------------------------------------------------------
// The per-session transport handle.

/// A session's private [`Transport`]: namespace-tags outbound ids,
/// routes frames through the [`FleetMux`] fair-share scheduler, and
/// receives the session's demultiplexed replies. One per session; plug
/// into [`crate::RuntimeBuilder::build_with_transport`].
pub struct SessionTransport {
    sid: SessionId,
    workers: usize,
    cmd_tx: Sender<Cmd>,
    inbox: Receiver<WorkerMsg>,
    placement: Arc<Mutex<SharedPlacement>>,
    links: Option<LinkMatrix>,
    spawn_failures: Vec<(usize, String)>,
    /// Tagged ids shipped to the fleet, reclaimed on detach.
    shipped_arrays: HashSet<ArrayId>,
    shipped_kernels: HashSet<u64>,
    detached: bool,
}

impl SessionTransport {
    /// This session's identity.
    pub fn session_id(&self) -> SessionId {
        self.sid
    }

    /// Detaches from the fleet: flushes queued frames, reclaims this
    /// session's arrays/kernels on every worker and frees its placement
    /// accounting. Implicit on drop.
    pub fn detach(&mut self) {
        if self.detached {
            return;
        }
        self.detached = true;
        let _ = self.cmd_tx.send(Cmd::Detach {
            sid: self.sid,
            arrays: self.shipped_arrays.drain().collect(),
            kernels: self.shipped_kernels.drain().collect(),
        });
    }

    fn record_shipped(&mut self, msg: &CtrlMsg) {
        match msg {
            CtrlMsg::Data { array, buf, .. } if self.shipped_arrays.insert(*array) => {
                let mut p = self.placement.lock().expect("placement lock");
                *p.resident.entry(self.sid).or_insert(0) += buf.bytes();
            }
            CtrlMsg::LoadKernel { id, .. } => {
                self.shipped_kernels.insert(*id);
            }
            CtrlMsg::Exec(spec) => {
                for (a, _) in spec.needs.iter().chain(spec.bumps.iter()) {
                    self.shipped_arrays.insert(*a);
                }
                for arg in &spec.args {
                    if let crate::LocalArg::Buf(a) = arg {
                        self.shipped_arrays.insert(*a);
                    }
                }
            }
            CtrlMsg::Send { array, .. } => {
                self.shipped_arrays.insert(*array);
            }
            _ => {}
        }
    }
}

impl Transport for SessionTransport {
    fn workers(&self) -> usize {
        self.workers
    }

    fn kind(&self) -> &'static str {
        "session"
    }

    fn send(&mut self, worker: usize, msg: CtrlMsg) -> Result<(), SendLost> {
        match msg {
            // The fleet outlives every session: lifecycle frames stop at
            // the mux. Worker-side tracing is likewise fleet-level — two
            // sessions toggling Observe would fight over one flag.
            CtrlMsg::Shutdown | CtrlMsg::Leave | CtrlMsg::Observe { .. } => return Ok(()),
            _ => {}
        }
        if self
            .placement
            .lock()
            .expect("placement lock")
            .liveness
            .get(worker)
            == Some(&Liveness::Dead)
        {
            return Err(SendLost);
        }
        let tagged = tag_ctrl(self.sid, msg);
        self.record_shipped(&tagged);
        self.cmd_tx
            .send(Cmd::Frame {
                sid: self.sid,
                worker,
                msg: tagged,
            })
            .map_err(|_| SendLost)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<WorkerMsg, TransportRecvError> {
        match self.inbox.recv_timeout(timeout) {
            Ok(m) => Ok(m),
            Err(RecvTimeoutError::Timeout) => Err(TransportRecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(TransportRecvError::Disconnected),
        }
    }

    fn try_recv(&mut self) -> Option<WorkerMsg> {
        self.inbox.try_recv().ok()
    }

    fn is_alive(&mut self, worker: usize) -> bool {
        self.liveness(worker) != Liveness::Dead
    }

    fn liveness(&mut self, worker: usize) -> Liveness {
        self.placement
            .lock()
            .expect("placement lock")
            .liveness
            .get(worker)
            .copied()
            .unwrap_or(Liveness::Dead)
    }

    fn shutdown(&mut self, _worker: usize) {
        // Sessions never shut fleet workers down.
    }

    fn spawn_failures(&self) -> &[(usize, String)] {
        &self.spawn_failures
    }

    fn measured_links(&self) -> Option<&LinkMatrix> {
        self.links.as_ref()
    }

    fn clock_offset_ns(&mut self, worker: usize) -> i64 {
        self.placement
            .lock()
            .expect("placement lock")
            .clock_offsets
            .get(worker)
            .copied()
            .unwrap_or(0)
    }

    fn wire_stats(&self) -> Vec<PeerWireStats> {
        self.placement.lock().expect("placement lock").wire.clone()
    }

    fn session_id(&self) -> Option<u64> {
        Some(self.sid.0)
    }
}

impl Drop for SessionTransport {
    fn drop(&mut self) {
        self.detach();
    }
}

// ---------------------------------------------------------------------------
// Session-tagged op journaling.

/// Consumer of a multi-session op stream: each planner mutation arrives
/// tagged with its owning session, so journals, replay and the hot
/// standby stay session-aware. `grout-net` implements the on-disk
/// multi-session journal on top of this.
pub trait SessionOpLog: Send {
    /// One op from session `sid` at per-session log position `seq`.
    fn append(&mut self, sid: SessionId, seq: u64, op: &PlannerOp, digest: Option<u64>);
}

/// An [`OpSink`] adapter tagging one session's planner ops into a shared
/// [`SessionOpLog`]. Attach one per session runtime
/// ([`crate::LocalRuntime::add_op_sink`]); all of them feed the same
/// log.
pub struct SessionOpSink<L: SessionOpLog> {
    sid: SessionId,
    log: Arc<Mutex<L>>,
}

impl<L: SessionOpLog> SessionOpSink<L> {
    /// A sink for session `sid` feeding `log`.
    pub fn new(sid: SessionId, log: Arc<Mutex<L>>) -> Self {
        SessionOpSink { sid, log }
    }
}

impl<L: SessionOpLog> OpSink for SessionOpSink<L> {
    fn append(&mut self, seq: u64, op: &PlannerOp, digest: Option<u64>) {
        self.log
            .lock()
            .expect("session op log lock")
            .append(self.sid, seq, op, digest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_history_samples_idle_ticks() {
        let fleet = FleetMux::new(Box::new(crate::transport::ChannelTransport::new(1)));
        let placement = fleet.placement();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        // The fleet thread samples every 32 idle ticks (~16 ms); two
        // samples prove the ring keeps filling.
        loop {
            if placement.lock().unwrap().history.len() >= 2 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "fleet thread never sampled the history ring"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let p = placement.lock().unwrap();
        let latest = p.history.latest().unwrap().clone();
        assert!(latest.at_ns > 0);
        assert_eq!(latest.occupancy.len(), 1);
        assert_eq!(latest.workers_alive, 1);
        assert_eq!(latest.sessions_active, 0);
        assert_eq!(latest.queue_depth, 0);
    }

    #[test]
    fn tagging_roundtrips_and_session_zero_is_reserved() {
        let sid = SessionId(7);
        let tagged = tag(sid, 12345);
        assert_eq!(untag(tagged), (sid, 12345));
        assert_eq!(untag(12345), (SessionId(0), 12345));
    }

    #[test]
    fn fair_share_grants_every_pending_session() {
        let mut fs = FairShare::new();
        fs.attach(SessionId(1), 1);
        fs.attach(SessionId(2), 4);
        fs.attach(SessionId(3), 2);
        let mut queues: HashMap<SessionId, usize> =
            [(SessionId(1), 10), (SessionId(2), 10), (SessionId(3), 0)]
                .into_iter()
                .collect();
        let grants = fs.tick(|sid| queues[&sid]);
        // Session 3 has nothing ready; 1 and 2 are granted their weights.
        assert_eq!(grants.len(), 2);
        for (sid, n) in grants {
            assert_eq!(n, if sid == SessionId(2) { 4 } else { 1 });
            *queues.get_mut(&sid).unwrap() -= n;
        }
    }

    #[test]
    fn fair_share_rotation_moves_the_head() {
        let mut fs = FairShare::new();
        fs.attach(SessionId(1), 1);
        fs.attach(SessionId(2), 1);
        let first = fs.tick(|_| 1)[0].0;
        let second = fs.tick(|_| 1)[0].0;
        assert_ne!(first, second);
    }

    #[test]
    fn admission_saturates_queues_and_rejects() {
        let mut adm = AdmissionController::new(AdmissionConfig {
            max_sessions: 1,
            max_resident_bytes: 100,
            max_queue: 1,
        });
        assert_eq!(
            adm.request(SessionId(1), Priority::Normal, 50),
            AdmissionDecision::Admit
        );
        assert_eq!(
            adm.request(SessionId(2), Priority::Normal, 10),
            AdmissionDecision::Queued { position: 0 }
        );
        assert_eq!(
            adm.request(SessionId(3), Priority::Normal, 10),
            AdmissionDecision::Reject(AdmissionError::QueueFull { queued: 1, max: 1 })
        );
        // Oversized request rejects regardless of occupancy.
        assert_eq!(
            adm.request(SessionId(4), Priority::High, 1000),
            AdmissionDecision::Reject(AdmissionError::ResidentBytes {
                declared: 1000,
                max: 100
            })
        );
        let promoted = adm.release(SessionId(1));
        assert_eq!(promoted, vec![SessionId(2)]);
        assert_eq!(adm.active(), 1);
    }

    #[test]
    fn admission_priority_jumps_the_queue() {
        let mut adm = AdmissionController::new(AdmissionConfig {
            max_sessions: 1,
            max_resident_bytes: u64::MAX,
            max_queue: 8,
        });
        assert_eq!(
            adm.request(SessionId(1), Priority::Normal, 0),
            AdmissionDecision::Admit
        );
        assert_eq!(
            adm.request(SessionId(2), Priority::Low, 0),
            AdmissionDecision::Queued { position: 0 }
        );
        assert_eq!(
            adm.request(SessionId(3), Priority::High, 0),
            AdmissionDecision::Queued { position: 0 }
        );
        let promoted = adm.release(SessionId(1));
        assert_eq!(promoted, vec![SessionId(3)]);
    }

    #[test]
    fn admission_zero_queue_rejects_saturated() {
        let mut adm = AdmissionController::new(AdmissionConfig {
            max_sessions: 0,
            max_resident_bytes: u64::MAX,
            max_queue: 0,
        });
        assert_eq!(
            adm.request(SessionId(1), Priority::Normal, 0),
            AdmissionDecision::Reject(AdmissionError::Saturated { active: 0, max: 0 })
        );
    }
}
