//! One front door for both runtimes: [`Runtime::builder()`].
//!
//! The simulator and the local deployment used to be configured through
//! two parallel config structs with slightly different construction
//! ergonomics (`SimRuntime::new` panicked, `LocalRuntime::try_new`
//! returned `Result`). The builder unifies them: set the shared planner
//! knobs once, optionally attach a [`Recorder`], then pick the backend
//! with [`RuntimeBuilder::build_sim`] or [`RuntimeBuilder::build_local`] —
//! both fallible, both validating the configuration up front with
//! [`PlanError::InvalidConfig`] instead of panicking mid-run.
//!
//! ```
//! use grout_core::{PolicyKind, Runtime};
//! let mut rt = Runtime::builder()
//!     .workers(4)
//!     .policy(PolicyKind::RoundRobin)
//!     .build_sim()
//!     .expect("valid config");
//! let a = rt.alloc(1 << 20);
//! # let _ = a;
//! ```
//!
//! Existing code holding a fully-formed [`SimConfig`]/[`LocalConfig`] can
//! pass it through the [`RuntimeBuilder::sim_config`] /
//! [`RuntimeBuilder::local_config`] escape hatches; those override the
//! knob-style setters entirely (telemetry still applies).

use crate::faults::{FaultConfig, FaultPlan, NetFaultPlan};
use crate::local_runtime::{LocalConfig, LocalError, LocalRuntime};
use crate::policy::PolicyKind;
use crate::scheduler::{PlanError, SchedTrace};
use crate::sim_runtime::{SimConfig, SimRuntime};
use crate::telemetry::{Metrics, Recorder, Telemetry};

/// Grouped network/liveness knobs: one struct instead of the flags that
/// accreted across the heartbeat, suspect/resume and TCP-probe work.
///
/// The three liveness knobs overlay the planner's [`FaultConfig`] (they
/// are the same values — `RuntimeBuilder::net` keeps the two surfaces in
/// sync); the `Option` fields are TCP-transport extras that in-process
/// deployments ignore.
///
/// ```
/// use grout_core::{NetOptions, Runtime};
/// let rt = Runtime::builder()
///     .workers(2)
///     .net(NetOptions {
///         heartbeat_ms: 50,
///         stale_after_beats: 4,
///         ..NetOptions::default()
///     })
///     .build_local();
/// # let _ = rt;
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetOptions {
    /// Worker heartbeat cadence in milliseconds.
    pub heartbeat_ms: u32,
    /// Heartbeats a worker may miss before it is suspected (socket
    /// severed, session resume engaged).
    pub stale_after_beats: u32,
    /// How long a suspected worker may keep failing resumes before it is
    /// declared dead and quarantined, in milliseconds.
    pub reconnect_window_ms: u64,
    /// Ballast bytes per startup bandwidth probe (TCP only; `None` keeps
    /// the transport default).
    pub probe_bytes: Option<u64>,
    /// Per-probe echo timeout in milliseconds (TCP only).
    pub probe_timeout_ms: Option<u64>,
    /// How long to wait for a spawned `grout-workerd` to announce its
    /// listen address, in milliseconds (TCP only).
    pub spawn_timeout_ms: Option<u64>,
}

impl Default for NetOptions {
    fn default() -> Self {
        let fc = FaultConfig::default();
        NetOptions {
            heartbeat_ms: fc.heartbeat_ms,
            stale_after_beats: fc.stale_after_beats,
            reconnect_window_ms: fc.reconnect_window.0 / 1_000_000,
            probe_bytes: None,
            probe_timeout_ms: None,
            spawn_timeout_ms: None,
        }
    }
}

/// Grouped durability knobs: where the planner's op log goes. The paths
/// are carried by the builder and consumed by the front-ends that own
/// the sinks (`grout-net` attaches the journal/ship-log writers; the
/// simulator ignores them).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DurabilityOptions {
    /// Stream every planner op to this crash-recovery journal file.
    pub journal: Option<std::path::PathBuf>,
    /// Ship every planner op to a hot-standby controller at this address.
    pub ship_log: Option<String>,
}

/// Namespace for [`Runtime::builder`]; the builder is the only way to
/// construct a runtime without naming a backend-specific config struct.
#[derive(Debug)]
pub struct Runtime;

impl Runtime {
    /// Start configuring a runtime (sim or local — decided at `build_*`).
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::default()
    }
}

/// Builder for [`SimRuntime`] and [`LocalRuntime`] sharing one knob
/// surface. See the [module docs](self) for the two construction styles.
#[derive(Debug, Clone)]
pub struct RuntimeBuilder {
    workers: usize,
    policy: PolicyKind,
    p2p_enabled: bool,
    flat_scheduling: bool,
    controller_colocated: bool,
    faults: FaultPlan,
    fault_cfg: FaultConfig,
    net_faults: NetFaultPlan,
    telemetry: Telemetry,
    net: Option<NetOptions>,
    durability: DurabilityOptions,
    sim: Option<SimConfig>,
    local: Option<LocalConfig>,
}

impl Default for RuntimeBuilder {
    fn default() -> Self {
        RuntimeBuilder {
            workers: 2,
            policy: PolicyKind::RoundRobin,
            p2p_enabled: true,
            flat_scheduling: false,
            controller_colocated: false,
            faults: FaultPlan::none(),
            fault_cfg: FaultConfig::default(),
            net_faults: NetFaultPlan::none(),
            telemetry: Telemetry::off(),
            net: None,
            durability: DurabilityOptions::default(),
            sim: None,
            local: None,
        }
    }
}

impl RuntimeBuilder {
    /// Number of worker nodes (threads for the local backend).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Inter-node scheduling policy.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Enable/disable peer-to-peer worker transfers (ablation).
    pub fn p2p(mut self, enabled: bool) -> Self {
        self.p2p_enabled = enabled;
        self
    }

    /// Flat (non-hierarchical) scheduling ablation.
    pub fn flat_scheduling(mut self, flat: bool) -> Self {
        self.flat_scheduling = flat;
        self
    }

    /// Colocate the controller with worker 0 (GrCUDA-style single node).
    pub fn controller_colocated(mut self, colocated: bool) -> Self {
        self.controller_colocated = colocated;
        self
    }

    /// Deterministic fault schedule to inject.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Detection/retry/backoff knobs for the recovery path. The three
    /// net-liveness fields (`heartbeat_ms`, `stale_after_beats`,
    /// `reconnect_window`) are better set through
    /// [`RuntimeBuilder::net`], which groups them with the TCP-only
    /// knobs; whichever of the two setters is called last wins.
    pub fn fault_config(mut self, cfg: FaultConfig) -> Self {
        self.fault_cfg = cfg;
        self
    }

    /// Grouped network/liveness knobs (heartbeat cadence, staleness,
    /// resume window, TCP probe/spawn sizing). The liveness trio is
    /// mirrored into the planner's [`FaultConfig`] so one call tunes both
    /// the in-process and the TCP deployment.
    pub fn net(mut self, opts: NetOptions) -> Self {
        self.fault_cfg.heartbeat_ms = opts.heartbeat_ms;
        self.fault_cfg.stale_after_beats = opts.stale_after_beats;
        self.fault_cfg.reconnect_window = crate::SimDuration::from_millis(opts.reconnect_window_ms);
        self.net = Some(opts);
        self
    }

    /// Read-back of the grouped net knobs (`None` if [`RuntimeBuilder::net`]
    /// was never called); transport front-ends consume the TCP-only
    /// fields from here.
    pub fn net_options_ref(&self) -> Option<&NetOptions> {
        self.net.as_ref()
    }

    /// Grouped durability knobs: op-log journal path and hot-standby
    /// ship-log address. The builder only carries them — the front-end
    /// that owns the sinks (e.g. `grout-net`'s `apply_durability`)
    /// attaches the writers after the runtime is built.
    pub fn durability(mut self, opts: DurabilityOptions) -> Self {
        self.durability = opts;
        self
    }

    /// Read-back of the grouped durability knobs.
    pub fn durability_ref(&self) -> &DurabilityOptions {
        &self.durability
    }

    /// Read-back of the configured fault knobs, for transport front-ends
    /// that derive their timing from the same surface (the TCP builder
    /// turns `heartbeat_ms` / `stale_after_beats` / `reconnect_window`
    /// into socket-level cadence and resume windows).
    pub fn fault_config_ref(&self) -> &FaultConfig {
        &self.fault_cfg
    }

    /// Read-back of the configured network-chaos plan (the TCP builder
    /// forwards it to the socket layer).
    pub fn net_faults_ref(&self) -> &NetFaultPlan {
        &self.net_faults
    }

    /// Deterministic network-chaos schedule (frame drops, duplicates,
    /// delays, severs, partitions) injected below the reliable-session
    /// layer. Local backend only; the simulator has no wire. The chaos
    /// differential harness asserts runs under any such plan stay
    /// bit-identical to the clean run.
    pub fn net_faults(mut self, plan: NetFaultPlan) -> Self {
        self.net_faults = plan;
        self
    }

    /// Attach a [`Recorder`] for spans/instants/counters. Use
    /// [`crate::telemetry::Shared`] + [`RuntimeBuilder::telemetry`] when
    /// you need the recorder back after the run.
    pub fn recorder(mut self, rec: impl Recorder + 'static) -> Self {
        self.telemetry = Telemetry::new(rec);
        self
    }

    /// Attach an existing [`Telemetry`] handle (e.g. from
    /// [`crate::telemetry::Shared::telemetry`]).
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Use this exact [`SimConfig`] for `build_sim`, bypassing the knob
    /// setters (telemetry still applies).
    pub fn sim_config(mut self, cfg: SimConfig) -> Self {
        self.sim = Some(cfg);
        self
    }

    /// Use this exact [`LocalConfig`] for `build_local`, bypassing the
    /// knob setters (telemetry still applies).
    pub fn local_config(mut self, cfg: LocalConfig) -> Self {
        self.local = Some(cfg);
        self
    }

    /// Build the virtual-time simulator backend.
    pub fn build_sim(self) -> Result<SimRuntime, PlanError> {
        let cfg = match self.sim {
            Some(cfg) => cfg,
            None => {
                let mut cfg = SimConfig::paper_grout(self.workers, self.policy);
                cfg.planner.p2p_enabled = self.p2p_enabled;
                cfg.planner.flat_scheduling = self.flat_scheduling;
                cfg.planner.controller_colocated = self.controller_colocated;
                cfg.planner.faults = self.faults;
                cfg.planner.fault_cfg = self.fault_cfg;
                cfg
            }
        };
        let mut rt = SimRuntime::try_new(cfg)?;
        rt.set_telemetry(self.telemetry);
        Ok(rt)
    }

    /// Build the real threaded controller/worker backend.
    pub fn build_local(self) -> Result<LocalRuntime, LocalError> {
        let net_faults = self.net_faults.clone();
        let (cfg, telemetry) = self.into_local_parts();
        let mut rt = if net_faults.is_empty() {
            LocalRuntime::try_new(cfg)?
        } else {
            crate::builder::validate_planner(&cfg.planner).map_err(LocalError::Plan)?;
            let mut transport = crate::transport::ChannelTransport::new(cfg.planner.workers);
            transport.set_net_faults(net_faults);
            LocalRuntime::with_transport(cfg, Box::new(transport))?
        };
        rt.set_telemetry(telemetry);
        Ok(rt)
    }

    /// Build the plan-executing backend over an explicit [`Transport`]
    /// (e.g. a `grout-net` TCP mesh). The endpoint count of the transport
    /// must match the configured worker count.
    pub fn build_with_transport(
        self,
        transport: Box<dyn crate::transport::Transport>,
    ) -> Result<LocalRuntime, LocalError> {
        let (cfg, telemetry) = self.into_local_parts();
        let mut rt = LocalRuntime::with_transport(cfg, transport)?;
        rt.set_telemetry(telemetry);
        Ok(rt)
    }

    /// The fully resolved local config + telemetry this builder describes
    /// (what `build_local`/`build_with_transport` construct from).
    /// Transport front-ends (e.g. `grout-net`'s `.tcp(...)`) use this to
    /// learn the worker count before establishing connections.
    pub fn into_local_parts(self) -> (LocalConfig, Telemetry) {
        let cfg = match self.local {
            Some(cfg) => cfg,
            None => {
                let mut cfg = LocalConfig::new(self.workers, self.policy);
                cfg.planner.p2p_enabled = self.p2p_enabled;
                cfg.planner.flat_scheduling = self.flat_scheduling;
                cfg.planner.controller_colocated = self.controller_colocated;
                cfg.planner.faults = self.faults;
                cfg.planner.fault_cfg = self.fault_cfg;
                cfg
            }
        };
        (cfg, self.telemetry)
    }
}

/// Validate the shared planner knobs; both `try_new` paths call this so
/// the two backends reject the same configs with the same error.
pub(crate) fn validate_planner(cfg: &crate::scheduler::PlannerConfig) -> Result<(), PlanError> {
    if cfg.workers == 0 {
        return Err(PlanError::InvalidConfig("need at least one worker"));
    }
    if let PolicyKind::VectorStep(v) = &cfg.policy {
        if v.is_empty() || v.iter().all(|&c| c == 0) {
            return Err(PlanError::InvalidConfig(
                "vector-step vector must contain a positive count",
            ));
        }
    }
    Ok(())
}

/// Uniform read access to a runtime's observability surfaces: the bounded
/// plan/event trace, the backend-specific run statistics, and the shared
/// [`Metrics`] registry. Implemented by [`SimRuntime`] and
/// [`LocalRuntime`]; re-exported from the `grout` facade.
pub trait Observability {
    /// Backend-specific aggregate stats ([`crate::RunStats`] for the sim,
    /// [`crate::LocalStats`] for the local deployment).
    type Stats;

    /// The bounded plan ring + unbounded [`crate::SchedEvent`] log.
    fn sched_trace(&self) -> &SchedTrace;

    /// Aggregate run statistics.
    fn stats(&self) -> Self::Stats;

    /// The always-on metrics registry (latencies, bytes, fault counters,
    /// per-worker occupancy).
    fn metrics(&self) -> &Metrics;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_builds_both_backends() {
        let sim = Runtime::builder()
            .workers(2)
            .policy(PolicyKind::MinTransferSize(
                crate::policy::ExplorationLevel::Low,
            ))
            .build_sim();
        assert!(sim.is_ok());
        let local = Runtime::builder().workers(1).build_local();
        assert!(local.is_ok());
    }

    #[test]
    fn zero_workers_is_invalid_config_not_a_panic() {
        let err = Runtime::builder().workers(0).build_sim().err();
        assert!(matches!(err, Some(PlanError::InvalidConfig(_))));
        let err = Runtime::builder().workers(0).build_local().err();
        assert!(matches!(
            err,
            Some(LocalError::Plan(PlanError::InvalidConfig(_)))
        ));
    }

    #[test]
    fn empty_vector_step_is_invalid_config() {
        let err = Runtime::builder()
            .workers(2)
            .policy(PolicyKind::VectorStep(vec![]))
            .build_sim()
            .err();
        assert!(matches!(err, Some(PlanError::InvalidConfig(_))));
    }

    #[test]
    fn mismatched_topology_is_invalid_config() {
        let mut cfg = SimConfig::paper_grout(2, PolicyKind::RoundRobin);
        cfg.planner.workers = 3; // topology still covers 2 workers
        let err = Runtime::builder().sim_config(cfg).build_sim().err();
        assert!(matches!(err, Some(PlanError::InvalidConfig(_))));
    }

    #[test]
    fn ablation_knobs_reach_the_planner_config() {
        let rt = Runtime::builder()
            .workers(2)
            .p2p(false)
            .flat_scheduling(true)
            .controller_colocated(true)
            .build_sim()
            .expect("valid");
        let p = &rt.config().planner;
        assert!(!p.p2p_enabled && p.flat_scheduling && p.controller_colocated);
    }
}
