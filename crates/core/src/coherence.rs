//! The Controller's coherence directory: which locations hold an up-to-date
//! copy of each framework-managed array.
//!
//! This implements the data-movement half of the paper's Algorithm 1: a CE's
//! parameters are either up-to-date on the scheduled worker (nothing to do),
//! up-to-date *only on the Controller* (controller send), or up-to-date on
//! some other worker(s) (peer-to-peer transfer from a candidate holder).
//!
//! The protocol is MSI-like at whole-array granularity: a read copy adds a
//! location to the sharer set; a write makes the writer the exclusive
//! holder.

use std::collections::HashMap;

use crate::ce::{ArrayId, CeArg};

/// A data location: the Controller host or one of the Workers.
///
/// Index 0 is the Controller; worker `i` is index `i + 1`. This matches
/// `net_sim::EndpointId` numbering so locations map 1:1 to network
/// endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Location(pub usize);

impl Location {
    /// The Controller host.
    pub const CONTROLLER: Location = Location(0);

    /// The `i`-th worker (0-based).
    pub fn worker(i: usize) -> Location {
        Location(i + 1)
    }

    /// The worker index, or `None` for the Controller.
    pub fn worker_index(self) -> Option<usize> {
        self.0.checked_sub(1)
    }

    /// The network endpoint backing this location.
    pub fn endpoint(self) -> net_sim::EndpointId {
        net_sim::EndpointId(self.0)
    }
}

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct ArrayState {
    /// Sorted list of up-to-date locations.
    holders: Vec<Location>,
}

/// The coherence directory.
///
/// `PartialEq` compares the full directory contents — the distributed
/// loopback test uses it to assert the TCP and in-process runs converge
/// on identical final holder sets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Coherence {
    arrays: HashMap<ArrayId, ArrayState>,
}

/// What [`Coherence::purge_location`] found when evicting a dead node.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PurgeReport {
    /// Arrays that held an up-to-date copy on the purged location (sorted).
    pub affected: Vec<ArrayId>,
    /// Arrays whose only up-to-date copy was on the purged location
    /// (sorted); they must be reconstructed before the next use.
    pub orphaned: Vec<ArrayId>,
}

impl Coherence {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new array; freshly allocated arrays are up-to-date on the
    /// Controller (that is where the application initializes them).
    pub fn register(&mut self, array: ArrayId) {
        self.arrays.insert(
            array,
            ArrayState {
                holders: vec![Location::CONTROLLER],
            },
        );
    }

    /// Forgets an array (freed).
    pub fn unregister(&mut self, array: ArrayId) {
        self.arrays.remove(&array);
    }

    /// Number of tracked arrays.
    pub fn len(&self) -> usize {
        self.arrays.len()
    }

    /// True when no array is tracked.
    pub fn is_empty(&self) -> bool {
        self.arrays.is_empty()
    }

    /// Whether `loc` holds an up-to-date copy.
    pub fn up_to_date_on(&self, array: ArrayId, loc: Location) -> bool {
        self.arrays
            .get(&array)
            .is_some_and(|s| s.holders.contains(&loc))
    }

    /// All up-to-date locations of an array (empty iff unregistered).
    pub fn holders(&self, array: ArrayId) -> &[Location] {
        self.arrays
            .get(&array)
            .map(|s| s.holders.as_slice())
            .unwrap_or(&[])
    }

    /// Paper Algorithm 1: `upToDateOnlyOnController(param)`.
    pub fn only_on_controller(&self, array: ArrayId) -> bool {
        self.holders(array) == [Location::CONTROLLER]
    }

    /// Records that `loc` received a copy (read sharing).
    pub fn record_copy(&mut self, array: ArrayId, loc: Location) {
        let s = self.arrays.entry(array).or_default();
        if !s.holders.contains(&loc) {
            s.holders.push(loc);
            s.holders.sort_unstable();
        }
    }

    /// Records that `loc` wrote the array: it becomes the exclusive holder.
    pub fn record_write(&mut self, array: ArrayId, loc: Location) {
        let s = self.arrays.entry(array).or_default();
        s.holders.clear();
        s.holders.push(loc);
    }

    /// All tracked array ids, sorted (HashMap iteration order is not
    /// deterministic; recovery paths need a stable order).
    pub fn arrays(&self) -> Vec<ArrayId> {
        let mut ids: Vec<ArrayId> = self.arrays.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Appends a canonical dump of the directory to `out` (arrays in
    /// sorted order; holder sets are already kept sorted) for the planner
    /// state digest.
    pub(crate) fn digest_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        out.push_str("coh:");
        for a in self.arrays() {
            let _ = write!(out, "{}->{:?};", a.0, self.holders(a));
        }
    }

    /// Removes `loc` from every holder set — the node is gone (quarantined
    /// after a failure) and nothing on it can be trusted again.
    ///
    /// `affected` lists every array that held a copy there; `orphaned` the
    /// subset whose *only* up-to-date copy died with the node. Orphaned
    /// arrays are left with an empty holder set — the caller must
    /// reconstruct them (lineage replay) and then `record_copy` the new
    /// holder. Both lists are sorted for determinism.
    pub fn purge_location(&mut self, loc: Location) -> PurgeReport {
        let mut affected = Vec::new();
        let mut orphaned = Vec::new();
        for (&id, s) in self.arrays.iter_mut() {
            if let Some(pos) = s.holders.iter().position(|&h| h == loc) {
                s.holders.remove(pos);
                affected.push(id);
                if s.holders.is_empty() {
                    orphaned.push(id);
                }
            }
        }
        affected.sort_unstable();
        orphaned.sort_unstable();
        PurgeReport { affected, orphaned }
    }

    /// Bytes of a CE's arguments already up-to-date on `loc`.
    pub fn bytes_up_to_date(&self, args: &[CeArg], loc: Location) -> u64 {
        args.iter()
            .filter(|a| self.up_to_date_on(a.array, loc))
            .map(|a| a.bytes)
            .sum()
    }

    /// Bytes of a CE's arguments *missing* on `loc` (what a transfer plan
    /// would have to move).
    pub fn bytes_missing(&self, args: &[CeArg], loc: Location) -> u64 {
        args.iter()
            .filter(|a| !self.up_to_date_on(a.array, loc))
            .map(|a| a.bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ce::CeArg;

    const A: ArrayId = ArrayId(1);
    const B: ArrayId = ArrayId(2);

    #[test]
    fn fresh_arrays_live_on_controller() {
        let mut c = Coherence::new();
        c.register(A);
        assert!(c.up_to_date_on(A, Location::CONTROLLER));
        assert!(c.only_on_controller(A));
        assert!(!c.up_to_date_on(A, Location::worker(0)));
    }

    #[test]
    fn copies_share_writes_invalidate() {
        let mut c = Coherence::new();
        c.register(A);
        c.record_copy(A, Location::worker(0));
        c.record_copy(A, Location::worker(1));
        assert_eq!(c.holders(A).len(), 3);
        assert!(!c.only_on_controller(A));
        c.record_write(A, Location::worker(1));
        assert_eq!(c.holders(A), &[Location::worker(1)]);
        assert!(!c.up_to_date_on(A, Location::CONTROLLER));
    }

    #[test]
    fn byte_accounting() {
        let mut c = Coherence::new();
        c.register(A);
        c.register(B);
        c.record_write(B, Location::worker(0));
        let args = [CeArg::read(A, 100), CeArg::read(B, 50)];
        assert_eq!(c.bytes_up_to_date(&args, Location::CONTROLLER), 100);
        assert_eq!(c.bytes_missing(&args, Location::CONTROLLER), 50);
        assert_eq!(c.bytes_up_to_date(&args, Location::worker(0)), 50);
        assert_eq!(c.bytes_missing(&args, Location::worker(1)), 150);
    }

    #[test]
    fn unregistered_arrays_have_no_holders() {
        let mut c = Coherence::new();
        c.register(A);
        c.unregister(A);
        assert!(c.holders(A).is_empty());
        assert!(!c.only_on_controller(A));
    }

    #[test]
    fn location_endpoint_mapping() {
        assert_eq!(Location::CONTROLLER.endpoint(), net_sim::EndpointId(0));
        assert_eq!(Location::worker(2).endpoint(), net_sim::EndpointId(3));
        assert_eq!(Location::worker(2).worker_index(), Some(2));
        assert_eq!(Location::CONTROLLER.worker_index(), None);
    }

    #[test]
    fn purge_reports_affected_and_orphaned() {
        let mut c = Coherence::new();
        c.register(A);
        c.register(B);
        // A shared on worker 0 + controller; B exclusive on worker 0.
        c.record_copy(A, Location::worker(0));
        c.record_write(B, Location::worker(0));
        let report = c.purge_location(Location::worker(0));
        assert_eq!(report.affected, vec![A, B]);
        assert_eq!(report.orphaned, vec![B]);
        assert!(!c.up_to_date_on(A, Location::worker(0)));
        assert!(c.up_to_date_on(A, Location::CONTROLLER));
        assert!(c.holders(B).is_empty(), "orphan left for reconstruction");
        // Purging again is a no-op.
        assert_eq!(
            c.purge_location(Location::worker(0)),
            PurgeReport::default()
        );
    }

    #[test]
    fn arrays_accessor_is_sorted() {
        let mut c = Coherence::new();
        c.register(B);
        c.register(A);
        assert_eq!(c.arrays(), vec![A, B]);
    }

    #[test]
    fn record_copy_is_idempotent() {
        let mut c = Coherence::new();
        c.register(A);
        c.record_copy(A, Location::worker(0));
        c.record_copy(A, Location::worker(0));
        assert_eq!(c.holders(A).len(), 2);
    }
}
