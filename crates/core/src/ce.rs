//! Computational Elements (CEs).
//!
//! A CE is the paper's language-independent wrapper around everything the
//! framework schedules: GPU kernel launches *and* host read/write operations
//! on framework-managed arrays (e.g. array initialization). Dependencies
//! between CEs are computed purely from their argument read/write sets —
//! GrOUT never inspects kernel code for scheduling.

use gpu_sim::KernelCost;
use uvm_sim::{AccessMode, AccessPattern, MemAdvise};

/// Identity of a framework-managed array (shared with `uvm_sim::AllocId`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub u64);

impl ArrayId {
    /// The UVM allocation id backing this array.
    pub fn alloc(self) -> uvm_sim::AllocId {
        uvm_sim::AllocId(self.0)
    }
}

/// Identity of a CE, in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CeId(pub u64);

/// One kernel/host argument: which array, how much of it, and how it is
/// touched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CeArg {
    /// Referenced array.
    pub array: ArrayId,
    /// Bytes of the array the CE touches.
    pub bytes: u64,
    /// Total size of the referenced array (0 = same as `bytes`). Set when a
    /// CE touches a chunk of a larger (monolithic) array, so both the
    /// coherence layer (whole-array transfers) and the UVM pressure model
    /// see the real allocation.
    pub alloc_bytes: u64,
    /// Read/write direction (drives dependencies and dirty accounting).
    pub mode: AccessMode,
    /// Locality class (drives the UVM cost model).
    pub pattern: AccessPattern,
    /// Optional driver hint.
    pub advise: MemAdvise,
}

impl CeArg {
    /// A whole-array streamed read.
    pub fn read(array: ArrayId, bytes: u64) -> Self {
        CeArg {
            array,
            bytes,
            alloc_bytes: bytes,
            mode: AccessMode::Read,
            pattern: AccessPattern::STREAM_ONCE,
            advise: MemAdvise::None,
        }
    }

    /// A whole-array streamed write.
    pub fn write(array: ArrayId, bytes: u64) -> Self {
        CeArg {
            array,
            bytes,
            alloc_bytes: bytes,
            mode: AccessMode::Write,
            pattern: AccessPattern::STREAM_ONCE,
            advise: MemAdvise::None,
        }
    }

    /// A whole-array streamed read-modify-write.
    pub fn read_write(array: ArrayId, bytes: u64) -> Self {
        CeArg {
            array,
            bytes,
            alloc_bytes: bytes,
            mode: AccessMode::ReadWrite,
            pattern: AccessPattern::STREAM_ONCE,
            advise: MemAdvise::None,
        }
    }

    /// Replaces the access pattern.
    pub fn with_pattern(mut self, pattern: AccessPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Replaces the driver hint.
    pub fn with_advise(mut self, advise: MemAdvise) -> Self {
        self.advise = advise;
        self
    }

    /// Declares this argument a chunk of a larger allocation of
    /// `alloc_bytes` total.
    pub fn chunk_of(mut self, alloc_bytes: u64) -> Self {
        self.alloc_bytes = alloc_bytes.max(self.bytes);
        self
    }

    /// The UVM-layer view of this argument.
    pub fn to_uvm(&self) -> uvm_sim::ArgAccess {
        uvm_sim::ArgAccess {
            alloc: self.array.alloc(),
            bytes: self.bytes,
            alloc_bytes: self.alloc_bytes.max(self.bytes),
            pattern: self.pattern,
            mode: self.mode,
            advise: self.advise,
        }
    }
}

/// What a CE does when it runs.
#[derive(Debug, Clone, PartialEq)]
pub enum CeKind {
    /// A GPU kernel launch.
    Kernel {
        /// Kernel name (reporting only).
        name: String,
        /// Roofline resource demand for the timing model.
        cost: KernelCost,
    },
    /// A host-side read of array contents on the Controller (e.g. `print`).
    HostRead,
    /// A host-side write on the Controller (e.g. initialization loop).
    HostWrite,
}

/// A Computational Element.
#[derive(Debug, Clone, PartialEq)]
pub struct Ce {
    /// Identity (submission order).
    pub id: CeId,
    /// Kernel or host operation.
    pub kind: CeKind,
    /// Arguments with access metadata.
    pub args: Vec<CeArg>,
}

impl Ce {
    /// Arrays this CE reads.
    pub fn reads(&self) -> impl Iterator<Item = ArrayId> + '_ {
        self.args.iter().filter(|a| a.mode.reads()).map(|a| a.array)
    }

    /// Arrays this CE writes.
    pub fn writes(&self) -> impl Iterator<Item = ArrayId> + '_ {
        self.args
            .iter()
            .filter(|a| a.mode.writes())
            .map(|a| a.array)
    }

    /// Bytes the CE touches across all arguments.
    pub fn total_bytes(&self) -> u64 {
        self.args.iter().map(|a| a.bytes).sum()
    }

    /// True when this CE must run on the Controller (host operations).
    pub fn is_host(&self) -> bool {
        matches!(self.kind, CeKind::HostRead | CeKind::HostWrite)
    }

    /// Whether `self` depends on `earlier` (RAW, WAR or WAW on any array).
    pub fn depends_on(&self, earlier: &Ce) -> bool {
        // RAW: we read something it wrote.
        for w in earlier.writes() {
            if self.reads().any(|r| r == w) || self.writes().any(|x| x == w) {
                return true; // RAW or WAW
            }
        }
        // WAR: we write something it read.
        for r in earlier.reads() {
            if self.writes().any(|w| w == r) {
                return true;
            }
        }
        false
    }

    /// Display label.
    pub fn label(&self) -> String {
        match &self.kind {
            CeKind::Kernel { name, .. } => format!("kernel:{name}#{}", self.id.0),
            CeKind::HostRead => format!("host-read#{}", self.id.0),
            CeKind::HostWrite => format!("host-write#{}", self.id.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(id: u64, args: Vec<CeArg>) -> Ce {
        Ce {
            id: CeId(id),
            kind: CeKind::Kernel {
                name: "k".into(),
                cost: KernelCost::default(),
            },
            args,
        }
    }

    const A: ArrayId = ArrayId(1);
    const B: ArrayId = ArrayId(2);

    #[test]
    fn raw_dependency() {
        let w = kernel(0, vec![CeArg::write(A, 100)]);
        let r = kernel(1, vec![CeArg::read(A, 100)]);
        assert!(r.depends_on(&w));
    }

    #[test]
    fn war_and_waw_dependencies() {
        let r = kernel(0, vec![CeArg::read(A, 100)]);
        let w = kernel(1, vec![CeArg::write(A, 100)]);
        assert!(w.depends_on(&r), "WAR");
        let w2 = kernel(2, vec![CeArg::write(A, 100)]);
        assert!(w2.depends_on(&w), "WAW");
    }

    #[test]
    fn reads_do_not_conflict() {
        let r1 = kernel(0, vec![CeArg::read(A, 100)]);
        let r2 = kernel(1, vec![CeArg::read(A, 100)]);
        assert!(!r2.depends_on(&r1));
    }

    #[test]
    fn disjoint_arrays_do_not_conflict() {
        let w1 = kernel(0, vec![CeArg::write(A, 100)]);
        let w2 = kernel(1, vec![CeArg::write(B, 100)]);
        assert!(!w2.depends_on(&w1));
    }

    #[test]
    fn read_write_conflicts_both_ways() {
        let rw = kernel(0, vec![CeArg::read_write(A, 100)]);
        let r = kernel(1, vec![CeArg::read(A, 100)]);
        assert!(r.depends_on(&rw));
        let rw2 = kernel(2, vec![CeArg::read_write(A, 100)]);
        assert!(rw2.depends_on(&rw));
    }

    #[test]
    fn totals_and_labels() {
        let ce = kernel(7, vec![CeArg::read(A, 100), CeArg::write(B, 50)]);
        assert_eq!(ce.total_bytes(), 150);
        assert_eq!(ce.label(), "kernel:k#7");
        assert!(!ce.is_host());
        let host = Ce {
            id: CeId(8),
            kind: CeKind::HostWrite,
            args: vec![CeArg::write(A, 10)],
        };
        assert!(host.is_host());
    }
}
