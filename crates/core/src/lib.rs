#![warn(missing_docs)]
//! # grout-core — the GrOUT framework (paper reproduction)
//!
//! Transparent scale-out of GPU-accelerated applications to overcome UVM's
//! oversubscription slowdowns. This crate holds the paper's primary
//! contribution:
//!
//! - [`Ce`]/[`CeArg`]: language-independent Computational Elements,
//! - [`DepDag`]: the Global/Local dependency DAG with frontier maintenance
//!   and redundant-edge filtering (Algorithm 1),
//! - [`Coherence`]: per-array up-to-date location sets driving the
//!   controller-send vs peer-to-peer movement decision,
//! - [`NodeScheduler`] and [`PolicyKind`]: round-robin, vector-step,
//!   min-transfer-size and min-transfer-time with the Low/Medium/High
//!   exploration heuristic (Section IV-D),
//! - intra-node GrCUDA scheduling: device and stream selection plus wait
//!   events (Algorithm 2),
//! - [`Planner`]: the backend-agnostic scheduling core tying the above
//!   together — a pure state machine mutated only by applying serializable
//!   [`PlannerOp`]s, emitting one pure [`Plan`] per CE (observable through
//!   [`SchedTrace`]); [`LoggedPlanner`] funnels every mutation through one
//!   ordered op log that doubles as a crash-recovery journal and the
//!   hot-standby controller replication feed,
//! - [`SimRuntime`]: the analytic virtual-time cluster runtime used to
//!   regenerate the paper's figures, including the single-node GrCUDA
//!   baseline — it *prices* plans in virtual time, and
//! - [`LocalRuntime`]: a real multi-threaded controller/worker deployment
//!   executing the very same plans on host-CPU kernels.

mod builder;
mod ce;
mod coherence;
mod dag;
pub mod eventlog;
mod faults;
mod intranode;
mod local_runtime;
mod policy;
mod scheduler;
pub mod session;
mod sim_runtime;
pub mod telemetry;
mod timeline;
pub mod transport;

pub use builder::{DurabilityOptions, NetOptions, Observability, Runtime, RuntimeBuilder};
pub use ce::{ArrayId, Ce, CeArg, CeId, CeKind};
pub use coherence::{Coherence, Location, PurgeReport};
pub use dag::{AddOutcome, DagIndex, DepDag};
pub use eventlog::{EventLog, LogLevel};
pub use faults::{
    replay_closure, FailureDetector, FaultConfig, FaultEvent, FaultKind, FaultPlan, Health,
    NetFaultEvent, NetFaultKind, NetFaultPlan, SchedEvent,
};
pub use intranode::{
    select_device, select_stream, DevicePolicy, Placement, MAX_STREAMS_PER_DEVICE,
};
pub use local_runtime::{HostBuf, LocalArg, LocalConfig, LocalError, LocalRuntime, LocalStats};
pub use policy::{ExplorationLevel, LinkMatrix, NodeScheduler, PolicyKind};
pub use scheduler::{
    first_divergence, replay_ops, LoggedPlanner, Movement, MovementKind, OpSink, Plan, PlanError,
    PlanObserver, Planner, PlannerConfig, PlannerOp, PlannerResp, Reassignment, Recovery,
    SchedTrace,
};
pub use session::{
    AdmissionConfig, AdmissionController, AdmissionDecision, AdmissionError, BatchStats, FairShare,
    FleetMux, Priority, SessionId, SessionOpLog, SessionOpSink, SessionTransport, SharedPlacement,
    SESSION_ID_MASK, SESSION_SHIFT,
};
pub use sim_runtime::{CeRecord, RunStats, SimConfig, SimRuntime};
pub use telemetry::{
    monotonic_ns, ArgValue, ChromeTracer, ClockSync, HistorySample, Lane, LaneAligner, LatencyStat,
    MetricFamily, MetricKind, Metrics, MetricsHistory, MetricsSnapshot, PeerSample, PeerWireStats,
    Recorder, Shared, SpanEvent, Telemetry, SESSION_LANE_STRIDE,
};
pub use timeline::{validate as validate_timeline, TimelineReport};
pub use transport::{
    ChannelTransport, CtrlMsg, ExecFault, ExecSpec, Flow, Liveness, Outbound, SendLost, Transport,
    TransportRecvError, WorkerCounters, WorkerEngine, WorkerMsg, WorkerSpan, WorkerSpanKind,
    TELEMETRY_BUFFER_CAP, TELEMETRY_FLUSH_TICK, TELEMETRY_MAX_BATCH,
};

// Re-export the substrate types users need at the API boundary.
pub use desim::{SimDuration, SimTime};
pub use gpu_sim::{DeviceId, DeviceSpec, KernelCost, NodeSpec, StreamId};
pub use uvm_sim::{AccessMode, AccessPattern, MemAdvise, Regime, UvmConfig};
