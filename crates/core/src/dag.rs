//! The dependency DAG (paper Algorithm 1, top half).
//!
//! Every CE submitted by the application is appended to the DAG; its
//! ancestors are the most recent CEs whose argument read/write sets conflict
//! with it (RAW/WAR/WAW per array), with redundant edges filtered: if both
//! `A` and `B` would become ancestors of the new CE but `B` already depends
//! on `A` (directly or transitively), the `A` edge is dropped — exactly the
//! paper's `filterRedundant` example.
//!
//! The *frontier* is the set of CEs that can still be the nearest conflict
//! for some future CE: per array we track the last writer and the readers
//! since that write, which is both the fast implementation and the exact
//! semantics of iterating Algorithm 1's `globalDAG.frontier`.

use std::collections::{HashMap, HashSet};

use crate::ce::{ArrayId, Ce};

/// Index of a CE inside a [`DepDag`] (dense, submission order).
pub type DagIndex = usize;

/// Result of inserting a CE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddOutcome {
    /// The new CE's index.
    pub index: DagIndex,
    /// Filtered ancestor indices (direct dependencies).
    pub parents: Vec<DagIndex>,
}

#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct ArrayTrack {
    last_writer: Option<DagIndex>,
    readers_since: Vec<DagIndex>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Node {
    parents: Vec<DagIndex>,
    children: Vec<DagIndex>,
    completed: bool,
}

/// A dependency DAG over CEs (used as the Controller's *Global DAG* and each
/// Worker's *Local DAG*). Equality is replica equality: same nodes, edges,
/// per-array trackers and frontier.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct DepDag {
    nodes: Vec<Node>,
    tracks: HashMap<ArrayId, ArrayTrack>,
    frontier: HashSet<DagIndex>,
    edges: usize,
}

impl DepDag {
    /// An empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of CEs inserted.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no CE has been inserted.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Direct dependencies of a CE.
    pub fn parents(&self, i: DagIndex) -> &[DagIndex] {
        &self.nodes[i].parents
    }

    /// Direct dependents of a CE.
    pub fn children(&self, i: DagIndex) -> &[DagIndex] {
        &self.nodes[i].children
    }

    /// The current frontier (CEs that may still be nearest conflicts).
    pub fn frontier(&self) -> impl Iterator<Item = DagIndex> + '_ {
        self.frontier.iter().copied()
    }

    /// Whether `ancestor` can reach `node` following child edges.
    pub fn is_ancestor(&self, ancestor: DagIndex, node: DagIndex) -> bool {
        if ancestor >= node {
            return ancestor == node;
        }
        // Reverse DFS from `node` through parents; indices only decrease.
        let mut stack = vec![node];
        let mut seen = HashSet::new();
        while let Some(n) = stack.pop() {
            if n == ancestor {
                return true;
            }
            for &p in &self.nodes[n].parents {
                if p >= ancestor && seen.insert(p) {
                    stack.push(p);
                }
            }
        }
        false
    }

    /// Inserts a CE per Algorithm 1: computes conflicts against the
    /// frontier, filters redundant ancestors, adds edges and updates the
    /// frontier. Returns the new index and its direct dependencies.
    pub fn add_ce(&mut self, ce: &Ce) -> AddOutcome {
        let index = self.nodes.len();

        // Gather candidate ancestors from the per-array trackers: for a
        // read we conflict with the last writer (RAW); for a write, with
        // the last writer (WAW) and every reader since (WAR).
        let mut candidates: Vec<DagIndex> = Vec::new();
        let push = |v: DagIndex, candidates: &mut Vec<DagIndex>| {
            if !candidates.contains(&v) {
                candidates.push(v);
            }
        };
        for arg in &ce.args {
            let track = self.tracks.entry(arg.array).or_default();
            if arg.mode.reads() {
                if let Some(w) = track.last_writer {
                    push(w, &mut candidates);
                }
            }
            if arg.mode.writes() {
                if let Some(w) = track.last_writer {
                    push(w, &mut candidates);
                }
                for &r in &track.readers_since {
                    push(r, &mut candidates);
                }
            }
        }

        // filterRedundant: drop any candidate that is an ancestor of
        // another candidate (the other already transitively orders it).
        candidates.sort_unstable();
        let mut parents: Vec<DagIndex> = Vec::with_capacity(candidates.len());
        'outer: for (i, &a) in candidates.iter().enumerate() {
            for (j, &b) in candidates.iter().enumerate() {
                if i != j && self.is_ancestor(a, b) && a != b {
                    continue 'outer;
                }
            }
            parents.push(a);
        }

        // Install the node and edges.
        self.nodes.push(Node {
            parents: parents.clone(),
            children: Vec::new(),
            completed: false,
        });
        for &p in &parents {
            self.nodes[p].children.push(index);
            self.edges += 1;
        }

        // Update per-array trackers; a write supersedes the previous writer
        // and the readers since it for that array.
        for arg in &ce.args {
            let track = self.tracks.entry(arg.array).or_default();
            if arg.mode.writes() {
                track.last_writer = Some(index);
                track.readers_since.clear();
            } else if arg.mode.reads() {
                track.readers_since.push(index);
            }
        }
        self.frontier.insert(index);
        self.prune_frontier();

        AddOutcome { index, parents }
    }

    fn prune_frontier(&mut self) {
        let tracks = &self.tracks;
        self.frontier.retain(|&i| {
            tracks
                .values()
                .any(|t| t.last_writer == Some(i) || t.readers_since.contains(&i))
        });
    }

    /// Marks a CE completed (used by execution engines for readiness).
    pub fn mark_completed(&mut self, i: DagIndex) {
        self.nodes[i].completed = true;
    }

    /// Whether a CE completed.
    pub fn is_completed(&self, i: DagIndex) -> bool {
        self.nodes[i].completed
    }

    /// Whether every dependency of `i` has completed.
    pub fn is_ready(&self, i: DagIndex) -> bool {
        !self.nodes[i].completed
            && self.nodes[i]
                .parents
                .iter()
                .all(|&p| self.nodes[p].completed)
    }

    /// All currently runnable CEs (dependencies met, not completed).
    pub fn ready_set(&self) -> Vec<DagIndex> {
        (0..self.nodes.len())
            .filter(|&i| self.is_ready(i))
            .collect()
    }

    /// Appends a canonical dump of the DAG to `out` (maps and sets in
    /// sorted order) for the planner state digest.
    pub(crate) fn digest_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(out, "dag:e{};", self.edges);
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = write!(
                out,
                "n{i}:{:?}>{:?}{};",
                n.parents,
                n.children,
                if n.completed { "*" } else { "" }
            );
        }
        let mut tracks: Vec<_> = self.tracks.iter().collect();
        tracks.sort_unstable_by_key(|(a, _)| a.0);
        for (a, t) in tracks {
            let _ = write!(out, "t{}:{:?},{:?};", a.0, t.last_writer, t.readers_since);
        }
        let mut frontier: Vec<_> = self.frontier.iter().copied().collect();
        frontier.sort_unstable();
        let _ = write!(out, "f:{frontier:?};");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ce::{Ce, CeArg, CeId, CeKind};
    use gpu_sim::KernelCost;

    const A: ArrayId = ArrayId(1);
    const B: ArrayId = ArrayId(2);
    const C: ArrayId = ArrayId(3);

    fn ce(id: u64, args: Vec<CeArg>) -> Ce {
        Ce {
            id: CeId(id),
            kind: CeKind::Kernel {
                name: "k".into(),
                cost: KernelCost::default(),
            },
            args,
        }
    }

    #[test]
    fn chain_of_writers() {
        let mut dag = DepDag::new();
        let a = dag.add_ce(&ce(0, vec![CeArg::write(A, 8)]));
        let b = dag.add_ce(&ce(1, vec![CeArg::read_write(A, 8)]));
        let c = dag.add_ce(&ce(2, vec![CeArg::read(A, 8)]));
        assert!(a.parents.is_empty());
        assert_eq!(b.parents, vec![0]);
        assert_eq!(c.parents, vec![1], "nearest writer only");
        assert_eq!(dag.edge_count(), 2);
    }

    #[test]
    fn parallel_readers_fan_in_on_writer() {
        let mut dag = DepDag::new();
        dag.add_ce(&ce(0, vec![CeArg::write(A, 8)]));
        let r1 = dag.add_ce(&ce(1, vec![CeArg::read(A, 8), CeArg::write(B, 8)]));
        let r2 = dag.add_ce(&ce(2, vec![CeArg::read(A, 8), CeArg::write(C, 8)]));
        assert_eq!(r1.parents, vec![0]);
        assert_eq!(r2.parents, vec![0]);
        // A writer to A must wait for both readers (WAR).
        let w = dag.add_ce(&ce(3, vec![CeArg::write(A, 8)]));
        assert_eq!(w.parents, vec![1, 2]);
    }

    #[test]
    fn redundant_edge_is_filtered() {
        // The paper's example: C depends on both A and B, but B depends on
        // A, so only the B edge is created.
        let mut dag = DepDag::new();
        dag.add_ce(&ce(0, vec![CeArg::write(A, 8)])); // A
        dag.add_ce(&ce(1, vec![CeArg::read(A, 8), CeArg::write(B, 8)])); // B dep A
        let c = dag.add_ce(&ce(
            2,
            vec![CeArg::read(A, 8), CeArg::read(B, 8), CeArg::write(C, 8)],
        ));
        assert_eq!(c.parents, vec![1], "edge to 0 is redundant via 1");
    }

    #[test]
    fn independent_ces_share_frontier() {
        let mut dag = DepDag::new();
        dag.add_ce(&ce(0, vec![CeArg::write(A, 8)]));
        dag.add_ce(&ce(1, vec![CeArg::write(B, 8)]));
        let f: Vec<_> = dag.frontier().collect();
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn superseded_writer_leaves_frontier() {
        let mut dag = DepDag::new();
        dag.add_ce(&ce(0, vec![CeArg::write(A, 8)]));
        dag.add_ce(&ce(1, vec![CeArg::write(A, 8)]));
        let f: Vec<_> = dag.frontier().collect();
        assert_eq!(f, vec![1]);
    }

    #[test]
    fn readiness_tracks_completion() {
        let mut dag = DepDag::new();
        dag.add_ce(&ce(0, vec![CeArg::write(A, 8)]));
        dag.add_ce(&ce(1, vec![CeArg::read(A, 8)]));
        assert_eq!(dag.ready_set(), vec![0]);
        dag.mark_completed(0);
        assert_eq!(dag.ready_set(), vec![1]);
        dag.mark_completed(1);
        assert!(dag.ready_set().is_empty());
    }

    #[test]
    fn is_ancestor_follows_transitive_chains() {
        let mut dag = DepDag::new();
        dag.add_ce(&ce(0, vec![CeArg::write(A, 8)]));
        dag.add_ce(&ce(1, vec![CeArg::read_write(A, 8)]));
        dag.add_ce(&ce(2, vec![CeArg::read_write(A, 8)]));
        assert!(dag.is_ancestor(0, 2));
        assert!(dag.is_ancestor(0, 0));
        assert!(!dag.is_ancestor(2, 0));
    }

    #[test]
    fn diamond_joins_once() {
        // init writes A,B; two branches read A / read B writing C / D; join
        // reads C,D.
        let mut dag = DepDag::new();
        dag.add_ce(&ce(0, vec![CeArg::write(A, 8), CeArg::write(B, 8)]));
        dag.add_ce(&ce(1, vec![CeArg::read(A, 8), CeArg::write(C, 8)]));
        dag.add_ce(&ce(2, vec![CeArg::read(B, 8), CeArg::write(ArrayId(4), 8)]));
        let join = dag.add_ce(&ce(3, vec![CeArg::read(C, 8), CeArg::read(ArrayId(4), 8)]));
        assert_eq!(join.parents, vec![1, 2]);
    }
}
