//! Intra-node (GrCUDA-layer) scheduling: device and stream selection
//! (paper Algorithm 2).
//!
//! Each Worker keeps a *Local DAG* view (the parent set forwarded with each
//! CE), picks a GPU, picks a CUDA stream on it, and inserts asynchronous
//! wait events against the CE's ancestors. Choosing the parent's stream when
//! there is exactly one same-device parent removes the need for any event —
//! stream FIFO order already serializes — which is GrCUDA's key trick for
//! cheap dependencies.

use desim::SimTime;
use gpu_sim::{Device, DeviceId, GpuNode, StreamId};

/// Intra-node device-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DevicePolicy {
    /// Cycle across the node's GPUs.
    RoundRobin,
    /// Prefer the GPU already holding the most resident bytes of the CE's
    /// arguments (data locality), falling back to round-robin on ties at
    /// zero.
    #[default]
    MinTransferBytes,
    /// Prefer the GPU whose default stream frees up first.
    LeastBusy,
}

/// Where a CE was placed within a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Chosen GPU.
    pub device: DeviceId,
    /// Chosen stream on that GPU.
    pub stream: StreamId,
    /// Whether the placement reused a parent's stream (no wait event
    /// needed for that parent).
    pub reused_parent_stream: bool,
}

/// Upper bound on auto-created streams per device (CUDA apps rarely benefit
/// beyond this; keeps the search bounded).
pub const MAX_STREAMS_PER_DEVICE: usize = 16;

/// Picks a device according to `policy`.
///
/// `resident_bytes_per_device[d]` must give the bytes of the CE's arguments
/// already resident on device `d` (from the UVM layer). `total_bytes` is the
/// CE's full argument footprint: a residency signal below 30% of it (e.g. a
/// shared vector left on the last-used GPU) is ignored, otherwise every
/// kernel sharing that vector would pile onto one device while the bulk of
/// its data still has to migrate anyway.
/// `active_bytes_per_device[d]` is the UVM active-set size of device `d`;
/// when there is no locality signal the CE goes to the least-pressured GPU
/// (falling back to `rr_cursor` on ties), which both balances memory
/// pressure and spreads cold starts.
pub fn select_device(
    node: &GpuNode,
    policy: DevicePolicy,
    rr_cursor: &mut usize,
    resident_bytes_per_device: &[u64],
    active_bytes_per_device: &[u64],
    total_bytes: u64,
) -> DeviceId {
    let n = node.device_count();
    debug_assert_eq!(resident_bytes_per_device.len(), n);
    debug_assert_eq!(active_bytes_per_device.len(), n);
    match policy {
        DevicePolicy::RoundRobin => {
            let d = DeviceId(*rr_cursor % n);
            *rr_cursor = (*rr_cursor + 1) % n;
            d
        }
        DevicePolicy::MinTransferBytes => {
            let threshold = (total_bytes * 3 / 10).max(1);
            let best = (0..n).max_by_key(|&d| resident_bytes_per_device[d]);
            match best {
                Some(d) if resident_bytes_per_device[d] >= threshold => DeviceId(d),
                _ => {
                    // No meaningful locality signal: place on the GPU with
                    // the least memory pressure; tie-break round-robin.
                    let min = active_bytes_per_device.iter().min().copied().unwrap_or(0);
                    let ties: Vec<usize> = (0..n)
                        .filter(|&d| active_bytes_per_device[d] == min)
                        .collect();
                    let d = ties[*rr_cursor % ties.len()];
                    *rr_cursor = (*rr_cursor + 1) % n;
                    DeviceId(d)
                }
            }
        }
        DevicePolicy::LeastBusy => node.least_loaded_device(),
    }
}

/// Picks a stream on `device` for a CE dispatched at `now`.
///
/// GrCUDA's rule: when the CE has exactly one parent and that parent ran on
/// this device, enqueue behind it on the same stream (FIFO order replaces a
/// sync event). Otherwise take the first idle stream, creating one if all
/// are busy (bounded by [`MAX_STREAMS_PER_DEVICE`]); among busy streams the
/// least-busy wins.
pub fn select_stream(
    device: &mut Device,
    now: SimTime,
    single_parent_stream: Option<StreamId>,
) -> (StreamId, bool) {
    if let Some(s) = single_parent_stream {
        return (s, true);
    }
    // First idle stream.
    for i in 0..device.stream_count() {
        if device.stream(StreamId(i)).is_idle_at(now) {
            return (StreamId(i), false);
        }
    }
    if device.stream_count() < MAX_STREAMS_PER_DEVICE {
        return (device.create_stream(), false);
    }
    (device.least_busy_stream(now), false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;
    use gpu_sim::{DeviceSpec, KernelCost, NodeSpec};

    fn node() -> GpuNode {
        GpuNode::new(NodeSpec {
            gpu: DeviceSpec::test_tiny(),
            gpu_count: 2,
            host_memory_bytes: 1 << 30,
        })
    }

    #[test]
    fn round_robin_alternates_gpus() {
        let n = node();
        let mut rr = 0;
        let a = select_device(&n, DevicePolicy::RoundRobin, &mut rr, &[0, 0], &[0, 0], 100);
        let b = select_device(&n, DevicePolicy::RoundRobin, &mut rr, &[0, 0], &[0, 0], 100);
        assert_ne!(a, b);
    }

    #[test]
    fn min_transfer_prefers_residency() {
        let n = node();
        let mut rr = 0;
        let d = select_device(
            &n,
            DevicePolicy::MinTransferBytes,
            &mut rr,
            &[10, 999],
            &[0, 0],
            1000,
        );
        assert_eq!(d, DeviceId(1));
    }

    #[test]
    fn min_transfer_spreads_cold_starts() {
        let n = node();
        let mut rr = 0;
        let a = select_device(
            &n,
            DevicePolicy::MinTransferBytes,
            &mut rr,
            &[0, 0],
            &[0, 0],
            100,
        );
        let b = select_device(
            &n,
            DevicePolicy::MinTransferBytes,
            &mut rr,
            &[0, 0],
            &[0, 0],
            100,
        );
        assert_ne!(a, b, "no locality: fall back to spreading");
    }

    #[test]
    fn tiny_residency_signal_is_ignored() {
        // A 600 KB broadcast vector resident on GPU 1 must not attract a
        // 16 GB kernel there.
        let n = node();
        let mut rr = 0;
        let total = 16u64 << 30;
        let a = select_device(
            &n,
            DevicePolicy::MinTransferBytes,
            &mut rr,
            &[0, 600 << 10],
            &[0, 0],
            total,
        );
        let b = select_device(
            &n,
            DevicePolicy::MinTransferBytes,
            &mut rr,
            &[0, 600 << 10],
            &[0, 0],
            total,
        );
        assert_ne!(a, b, "falls back to spreading");
    }

    #[test]
    fn fallback_prefers_least_pressured_gpu() {
        let n = node();
        let mut rr = 0;
        // GPU 0 already cycles 40 GB; a cold CE goes to GPU 1.
        let d = select_device(
            &n,
            DevicePolicy::MinTransferBytes,
            &mut rr,
            &[0, 0],
            &[40 << 30, 1 << 30],
            16 << 30,
        );
        assert_eq!(d, DeviceId(1));
    }

    #[test]
    fn single_parent_stream_is_reused() {
        let mut n = node();
        let dev = n.device_mut(DeviceId(0));
        let (s, reused) = select_stream(dev, SimTime::ZERO, Some(StreamId(0)));
        assert_eq!(s, StreamId(0));
        assert!(reused);
    }

    #[test]
    fn busy_streams_trigger_creation() {
        let mut n = node();
        let dev = n.device_mut(DeviceId(0));
        let cost = KernelCost {
            flops: 1e9,
            ..Default::default()
        };
        dev.launch_kernel(StreamId(0), SimTime::ZERO, &[], &cost, SimDuration::ZERO);
        let (s, reused) = select_stream(dev, SimTime::ZERO, None);
        assert_eq!(s, StreamId(1), "default stream busy -> new stream");
        assert!(!reused);
        // A later CE at a time when stream 0 is idle again reuses it.
        let (s2, _) = select_stream(dev, SimTime(10_000_000_000), None);
        assert_eq!(s2, StreamId(0));
    }

    #[test]
    fn stream_count_is_bounded() {
        let mut n = node();
        let dev = n.device_mut(DeviceId(0));
        let cost = KernelCost {
            flops: 1e9,
            ..Default::default()
        };
        for _ in 0..100 {
            let (s, _) = select_stream(dev, SimTime::ZERO, None);
            dev.launch_kernel(s, SimTime::ZERO, &[], &cost, SimDuration::ZERO);
        }
        assert!(dev.stream_count() <= MAX_STREAMS_PER_DEVICE);
    }
}
