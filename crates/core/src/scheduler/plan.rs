//! The [`Plan`]: a pure, serializable scheduling decision record.
//!
//! A `Plan` is everything the paper's Algorithm 1 decides about one CE —
//! its dependencies, the node it runs on, and the data movements required
//! to make its inputs resident there. It deliberately knows nothing about
//! *time* (virtual or real) or *threads*: [`crate::SimRuntime`] prices the
//! same plan in virtual time while [`crate::LocalRuntime`] executes it over
//! channels, which is exactly what makes the two runtimes comparable CE by
//! CE (see `tests/sim_local_equivalence.rs`).

use crate::ce::ArrayId;
use crate::coherence::Location;
use crate::dag::DagIndex;
use crate::intranode::Placement;

/// How a data movement travels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MovementKind {
    /// A single hop with the Controller at one end (controller -> worker
    /// sends and worker -> controller fetches alike).
    ControllerSend,
    /// A direct worker -> worker transfer (paper Algorithm 1 bottom half).
    P2p,
    /// P2P disabled (ablation): worker -> controller -> worker, two hops
    /// moving the payload twice; the Controller keeps the relayed copy.
    Staged,
}

impl MovementKind {
    /// Short label used in traces and reports.
    pub fn name(self) -> &'static str {
        match self {
            MovementKind::ControllerSend => "controller-send",
            MovementKind::P2p => "p2p",
            MovementKind::Staged => "staged",
        }
    }

    /// Bytes that actually cross the wire when `payload` bytes move this
    /// way (staging doubles the traffic).
    pub fn wire_bytes(self, payload: u64) -> u64 {
        match self {
            MovementKind::Staged => 2 * payload,
            _ => payload,
        }
    }
}

/// One planned whole-array transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Movement {
    /// The array to move.
    pub array: ArrayId,
    /// Up-to-date source location chosen by the planner.
    pub from: Location,
    /// Destination (the CE's assigned node, or the Controller for host
    /// reads).
    pub to: Location,
    /// Whole-array payload size (coherence is whole-array granular).
    pub bytes: u64,
    /// Route.
    pub kind: MovementKind,
}

/// The planner's complete decision for one CE.
///
/// Executors must honour the plan as-is: re-deriving any part of it from
/// live state would reintroduce the duplicated scheduling logic this type
/// exists to remove.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The CE's index in the Global DAG (dense, submission order).
    pub dag_index: DagIndex,
    /// Direct dependencies after redundant-edge filtering.
    pub deps: Vec<DagIndex>,
    /// Where the CE runs ([`Location::CONTROLLER`] for host CEs).
    pub assigned_node: Location,
    /// Transfers required before the CE's read inputs are resident.
    pub movements: Vec<Movement>,
    /// Intra-node device/stream choice (Algorithm 2). `None` as planned —
    /// executors that model devices fill it in after placement.
    pub placement: Option<Placement>,
}

impl Plan {
    /// Total payload bytes the plan moves (each staged hop counted once).
    pub fn movement_bytes(&self) -> u64 {
        self.movements.iter().map(|m| m.bytes).sum()
    }

    /// Total bytes crossing the wire (staged movements counted twice).
    pub fn wire_bytes(&self) -> u64 {
        self.movements
            .iter()
            .map(|m| m.kind.wire_bytes(m.bytes))
            .sum()
    }
}

/// Planning failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, thiserror::Error)]
#[non_exhaustive]
pub enum PlanError {
    /// A CE references an array that was freed (or never allocated through
    /// the planner).
    #[error("CE references array {0:?} after free()")]
    UseAfterFree(ArrayId),
    /// Recovery cannot proceed: quarantining the failed node would leave
    /// zero healthy workers.
    #[error("no healthy workers remain after quarantine")]
    NoHealthyWorkers,
    /// A runtime was configured with values that cannot schedule anything
    /// (zero workers, empty vector-step vector, mismatched topology, ...).
    #[error("invalid runtime configuration: {0}")]
    InvalidConfig(&'static str),
}

impl serde::Serialize for MovementKind {
    fn to_json_value(&self) -> serde::json::Value {
        serde::json::Value::String(self.name().to_string())
    }
}

impl serde::Serialize for Movement {
    fn to_json_value(&self) -> serde::json::Value {
        serde::json::Value::Object(vec![
            ("array".to_string(), serde::json::Value::U64(self.array.0)),
            (
                "from".to_string(),
                serde::json::Value::U64(self.from.0 as u64),
            ),
            ("to".to_string(), serde::json::Value::U64(self.to.0 as u64)),
            ("bytes".to_string(), serde::json::Value::U64(self.bytes)),
            ("kind".to_string(), self.kind.to_json_value()),
        ])
    }
}

impl serde::Serialize for Plan {
    fn to_json_value(&self) -> serde::json::Value {
        let placement = match &self.placement {
            Some(p) => serde::json::Value::Object(vec![
                (
                    "device".to_string(),
                    serde::json::Value::U64(p.device.0 as u64),
                ),
                (
                    "stream".to_string(),
                    serde::json::Value::U64(p.stream.0 as u64),
                ),
                (
                    "reused_parent_stream".to_string(),
                    serde::json::Value::Bool(p.reused_parent_stream),
                ),
            ]),
            None => serde::json::Value::Null,
        };
        serde::json::Value::Object(vec![
            (
                "dag_index".to_string(),
                serde::json::Value::U64(self.dag_index as u64),
            ),
            (
                "deps".to_string(),
                serde::json::Value::Array(
                    self.deps
                        .iter()
                        .map(|&d| serde::json::Value::U64(d as u64))
                        .collect(),
                ),
            ),
            (
                "assigned_node".to_string(),
                serde::json::Value::U64(self.assigned_node.0 as u64),
            ),
            (
                "movements".to_string(),
                serde::json::Value::Array(
                    self.movements.iter().map(|m| m.to_json_value()).collect(),
                ),
            ),
            ("placement".to_string(), placement),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    fn plan() -> Plan {
        Plan {
            dag_index: 3,
            deps: vec![1, 2],
            assigned_node: Location::worker(1),
            movements: vec![Movement {
                array: ArrayId(7),
                from: Location::CONTROLLER,
                to: Location::worker(1),
                bytes: 64,
                kind: MovementKind::ControllerSend,
            }],
            placement: None,
        }
    }

    #[test]
    fn byte_accounting_counts_staged_twice() {
        let mut p = plan();
        p.movements.push(Movement {
            array: ArrayId(8),
            from: Location::worker(0),
            to: Location::worker(1),
            bytes: 100,
            kind: MovementKind::Staged,
        });
        assert_eq!(p.movement_bytes(), 164);
        assert_eq!(p.wire_bytes(), 264);
    }

    #[test]
    fn plans_serialize_to_json() {
        let json = serde_json::to_string(&plan().to_json_value()).unwrap();
        assert!(json.contains("\"dag_index\":3"), "{json}");
        assert!(json.contains("\"controller-send\""), "{json}");
        assert!(json.contains("\"placement\":null"), "{json}");
    }

    #[test]
    fn plan_error_is_loud_about_freed_arrays() {
        let e = PlanError::UseAfterFree(ArrayId(5));
        assert!(e.to_string().contains("after free"));
    }
}
