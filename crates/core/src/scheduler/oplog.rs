//! The planner operation log: every [`Planner`] mutation as data.
//!
//! This is the node-replication pattern applied to the Controller: the
//! planner is a deterministic single-threaded state machine, so expressing
//! each of its mutations as a serializable [`PlannerOp`] and funnelling
//! them through one ordered log ([`LoggedPlanner`]) gives three things at
//! once:
//!
//! 1. **Replicas.** Any process that applies the same op sequence to an
//!    identically constructed [`Planner`] reaches bit-identical state —
//!    the hot-standby controller tails the log over the wire and is ready
//!    to take over the moment the primary dies.
//! 2. **Crash recovery.** Streaming the ops to disk (`grout-run
//!    --journal`) yields a write-ahead journal; `grout-replay`
//!    reconstructs the final planner state from it exactly.
//! 3. **Record/replay debugging.** The journal doubles as a deterministic
//!    repro artifact: replay stops at any index and the intermediate
//!    state is inspectable.
//!
//! Ops are logged *before* they are applied and even failing ops stay in
//! the log: `plan_ce` appends the CE to the Global DAG before movement
//! planning can fail with [`PlanError::UseAfterFree`], so a failed op
//! still mutates state and replay must re-apply it to diverge nowhere.

use std::fmt;

use crate::ce::{ArrayId, Ce};
use crate::dag::DagIndex;
use crate::policy::LinkMatrix;
use crate::scheduler::{Plan, PlanError, Planner, Recovery};
use crate::telemetry::Telemetry;

/// One serializable mutation of [`Planner`] state. The op records the
/// *input* of the mutation, never derived results: applying it re-derives
/// the plan/recovery deterministically, which is what makes replicas
/// bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub enum PlannerOp {
    /// Register a new framework-managed array ([`Planner::alloc`]).
    Alloc {
        /// Whole-array size.
        bytes: u64,
    },
    /// Forget an array ([`Planner::free`]).
    Free {
        /// The array to forget.
        array: ArrayId,
    },
    /// Algorithm 1 for one CE: DAG append, node assignment, movement
    /// planning, eager coherence update ([`Planner::plan_ce`]).
    PlanCe {
        /// The submitted CE.
        ce: Ce,
    },
    /// Mark a CE completed in the Global DAG.
    MarkCompleted {
        /// The completed CE.
        dag_index: DagIndex,
    },
    /// Quarantine a worker without replanning (spawn failure).
    Quarantine {
        /// The worker that never came up.
        worker: usize,
    },
    /// Quarantine a dead worker and replan its in-flight CEs
    /// ([`Planner::recover`]).
    Recover {
        /// The dead worker.
        dead: usize,
        /// In-flight DAG indices at the time of death.
        incomplete: Vec<DagIndex>,
    },
    /// Replace the probed interconnection matrix (link degradation /
    /// reconfiguration).
    ReprobeLinks {
        /// The fresh matrix.
        links: LinkMatrix,
    },
    /// Enter the suspect grace window: stop placing *new* CEs on the
    /// worker without quarantining it (omission fault under resume).
    Suspect {
        /// The suspected worker.
        worker: usize,
    },
    /// Leave the suspect grace window: the worker resumed in time and is
    /// eligible for new CEs again.
    Reinstate {
        /// The reinstated worker.
        worker: usize,
    },
    /// Re-admit a quarantined worker under a new membership epoch. Its
    /// coherence-directory entries were purged at quarantine, so the node
    /// re-enters empty; links are re-probed separately via
    /// [`PlannerOp::ReprobeLinks`].
    Rejoin {
        /// The returning worker.
        worker: usize,
    },
    /// Grow the worker set: a new worker attached to the live controller
    /// (elastic scale-out). `worker` is the index the newcomer takes —
    /// always the current count, recorded so replay needs no context. The
    /// node enters empty and immediately eligible for new CE placement;
    /// links are re-probed separately via [`PlannerOp::ReprobeLinks`].
    Join {
        /// Index the joining worker takes (== the pre-join worker count).
        worker: usize,
    },
    /// A clean elastic departure: the worker's directory entries are
    /// rebalanced to the controller (the runtime fetched every sole copy
    /// before committing this op), the node is excluded from future
    /// placement, and — unlike [`PlannerOp::Quarantine`] — nothing is
    /// lost, so no lineage replay and no quarantine mark.
    Leave {
        /// The departing worker.
        worker: usize,
    },
}

impl PlannerOp {
    /// Short kind label (journals, divergence reports).
    pub fn kind(&self) -> &'static str {
        match self {
            PlannerOp::Alloc { .. } => "alloc",
            PlannerOp::Free { .. } => "free",
            PlannerOp::PlanCe { .. } => "plan-ce",
            PlannerOp::MarkCompleted { .. } => "mark-completed",
            PlannerOp::Quarantine { .. } => "quarantine",
            PlannerOp::Recover { .. } => "recover",
            PlannerOp::ReprobeLinks { .. } => "reprobe-links",
            PlannerOp::Suspect { .. } => "suspect",
            PlannerOp::Reinstate { .. } => "reinstate",
            PlannerOp::Rejoin { .. } => "rejoin",
            PlannerOp::Join { .. } => "join",
            PlannerOp::Leave { .. } => "leave",
        }
    }
}

/// What applying a [`PlannerOp`] returns.
#[derive(Debug, Clone, PartialEq)]
pub enum PlannerResp {
    /// The id of a freshly registered array ([`PlannerOp::Alloc`]).
    Array(ArrayId),
    /// The pure decision record for a planned CE ([`PlannerOp::PlanCe`]).
    Plan(Plan),
    /// The outcome of quarantining a dead node ([`PlannerOp::Recover`]).
    Recovery(Recovery),
    /// Nothing to report (free / mark-completed / quarantine / reprobe).
    Unit,
}

/// A destination for appended ops: the disk journal, the standby
/// log-shipping socket, or anything else that tails the log.
///
/// `digest` is the planner state digest *after* the op was applied; it is
/// only computed (it walks the full state) when [`OpSink::wants_digest`]
/// returns true for some registered sink, and is `None` for ops replayed
/// during sink catch-up (their historical digests are gone).
pub trait OpSink: Send {
    /// Whether this sink needs the post-apply state digest per op.
    fn wants_digest(&self) -> bool {
        false
    }

    /// One appended op. `seq` is its position in the log.
    fn append(&mut self, seq: u64, op: &PlannerOp, digest: Option<u64>);
}

/// The single ordered operation log in front of a [`Planner`].
///
/// Every mutation goes through [`LoggedPlanner::append`] (or the typed
/// wrappers mirroring the old mutator names): the op is recorded first
/// (write-ahead, so failing ops are journaled too), fanned out to the
/// registered sinks, then applied. Read-only queries pass through via
/// `Deref`.
pub struct LoggedPlanner {
    planner: Planner,
    ops: Vec<PlannerOp>,
    sinks: Vec<Box<dyn OpSink>>,
    /// Expected op prefix (standby takeover re-drive): each appended op
    /// must equal the shipped op at the same index, proving the re-driven
    /// run walks exactly the primary's footsteps.
    expected: Vec<PlannerOp>,
}

impl LoggedPlanner {
    /// Wraps a freshly constructed planner (an empty log).
    pub fn new(planner: Planner) -> Self {
        LoggedPlanner {
            planner,
            ops: Vec::new(),
            sinks: Vec::new(),
            expected: Vec::new(),
        }
    }

    /// Appends `op` to the log, fans it out to the sinks and applies it.
    pub fn append(&mut self, op: PlannerOp) -> Result<PlannerResp, PlanError> {
        let seq = self.ops.len() as u64;
        if let Some(want) = self.expected.get(seq as usize) {
            assert_eq!(
                *want, op,
                "op log diverged from the replicated prefix at index {seq}"
            );
        }
        self.ops.push(op);
        let op = self.ops.last().expect("just pushed");
        let resp = self.planner.apply(op);
        if !self.sinks.is_empty() {
            let digest = self
                .sinks
                .iter()
                .any(|s| s.wants_digest())
                .then(|| self.planner.state_digest());
            for sink in &mut self.sinks {
                sink.append(seq, op, digest);
            }
        }
        resp
    }

    /// Registers a sink, first streaming it every op already in the log
    /// (catch-up, without historical digests) so late-attached journals
    /// and standbys still see the full history.
    pub fn add_sink(&mut self, mut sink: Box<dyn OpSink>) {
        for (seq, op) in self.ops.iter().enumerate() {
            sink.append(seq as u64, op, None);
        }
        self.sinks.push(sink);
    }

    /// Installs the expected op prefix for a takeover re-drive: appends
    /// at indices covered by `ops` panic unless they match bit-for-bit.
    pub fn expect_prefix(&mut self, ops: Vec<PlannerOp>) {
        self.expected = ops;
    }

    /// Every op appended so far, in order.
    pub fn ops(&self) -> &[PlannerOp] {
        &self.ops
    }

    /// Attaches a telemetry recorder (not a state mutation: telemetry is
    /// deliberately outside the replicated state and the log).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.planner.set_telemetry(telemetry);
    }

    // Typed wrappers mirroring the old mutator names, so runtime call
    // sites read exactly as before while every mutation still goes
    // through the ordered log.

    /// Logged [`Planner::alloc`].
    pub fn alloc(&mut self, bytes: u64) -> ArrayId {
        match self.append(PlannerOp::Alloc { bytes }) {
            Ok(PlannerResp::Array(id)) => id,
            other => unreachable!("alloc is infallible: {other:?}"),
        }
    }

    /// Logged [`Planner::free`].
    pub fn free(&mut self, array: ArrayId) {
        let _ = self.append(PlannerOp::Free { array });
    }

    /// Logged [`Planner::plan_ce`].
    pub fn plan_ce(&mut self, ce: &Ce) -> Result<Plan, PlanError> {
        match self.append(PlannerOp::PlanCe { ce: ce.clone() })? {
            PlannerResp::Plan(plan) => Ok(plan),
            other => unreachable!("plan-ce yields a plan: {other:?}"),
        }
    }

    /// Logged [`Planner::mark_completed`].
    pub fn mark_completed(&mut self, dag_index: DagIndex) {
        let _ = self.append(PlannerOp::MarkCompleted { dag_index });
    }

    /// Logged [`Planner::quarantine`].
    pub fn quarantine(&mut self, worker: usize) -> Result<(), PlanError> {
        self.append(PlannerOp::Quarantine { worker }).map(|_| ())
    }

    /// Logged [`Planner::recover`].
    pub fn recover(&mut self, dead: usize, incomplete: &[DagIndex]) -> Result<Recovery, PlanError> {
        match self.append(PlannerOp::Recover {
            dead,
            incomplete: incomplete.to_vec(),
        })? {
            PlannerResp::Recovery(rec) => Ok(rec),
            other => unreachable!("recover yields a recovery: {other:?}"),
        }
    }

    /// Logged [`Planner::suspect`].
    pub fn suspect(&mut self, worker: usize) {
        let _ = self.append(PlannerOp::Suspect { worker });
    }

    /// Logged [`Planner::reinstate`].
    pub fn reinstate(&mut self, worker: usize) {
        let _ = self.append(PlannerOp::Reinstate { worker });
    }

    /// Logged [`Planner::rejoin`].
    pub fn rejoin(&mut self, worker: usize) {
        let _ = self.append(PlannerOp::Rejoin { worker });
    }

    /// Logged [`Planner::join`].
    pub fn join(&mut self, worker: usize) {
        let _ = self.append(PlannerOp::Join { worker });
    }

    /// Logged [`Planner::leave`].
    pub fn leave(&mut self, worker: usize) -> Result<(), PlanError> {
        self.append(PlannerOp::Leave { worker }).map(|_| ())
    }

    /// Logged [`Planner::reprobe_links`].
    pub fn reprobe_links(&mut self, links: LinkMatrix) {
        let _ = self.append(PlannerOp::ReprobeLinks { links });
    }
}

impl std::ops::Deref for LoggedPlanner {
    type Target = Planner;

    fn deref(&self) -> &Planner {
        &self.planner
    }
}

impl fmt::Debug for LoggedPlanner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LoggedPlanner")
            .field("planner", &self.planner)
            .field("ops", &self.ops.len())
            .field("sinks", &self.sinks.len())
            .field("expected", &self.expected.len())
            .finish()
    }
}

/// Replays an op sequence onto a fresh planner (journal recovery, tests).
/// Failing ops are re-applied and their errors ignored — the failure is
/// part of the recorded history and still mutates state (see the module
/// docs on write-ahead ordering).
pub fn replay_ops<'a>(
    planner: &mut Planner,
    ops: impl IntoIterator<Item = &'a PlannerOp>,
) -> Vec<Result<PlannerResp, PlanError>> {
    ops.into_iter().map(|op| planner.apply(op)).collect()
}

/// First index where two op logs diverge: `Some(i)` when `a[i] != b[i]`
/// or exactly one log has an index `i`; `None` when equal.
pub fn first_divergence(a: &[PlannerOp], b: &[PlannerOp]) -> Option<usize> {
    let shared = a.len().min(b.len());
    (0..shared)
        .find(|&i| a[i] != b[i])
        .or((a.len() != b.len()).then_some(shared))
}
