//! The backend-agnostic scheduling core (paper Algorithm 1).
//!
//! [`Planner`] owns the three pieces of Controller state that every GrOUT
//! deployment shares — the Global [`DepDag`], the [`Coherence`] directory
//! and the inter-node [`NodeScheduler`] — and is a pure state machine: the
//! only mutation entry point is [`Planner::apply`], which consumes one
//! serializable [`PlannerOp`] (submit a CE, mark completion, quarantine,
//! recover, …) and returns the derived decision, with no knowledge of
//! virtual time or threads. Everything else on `Planner` is a read-only
//! query. Runtimes never call `apply` directly: they mutate through
//! [`LoggedPlanner`], which records every op in a single ordered log (the
//! crash-recovery journal and the standby-replication feed tap it through
//! [`OpSink`]).
//!
//! Both runtimes consume plans instead of re-implementing the algorithm:
//! [`crate::SimRuntime`] *prices* each plan in virtual time over the
//! modeled network, [`crate::LocalRuntime`] *executes* it over crossbeam
//! channels. The ablation knobs the paper toggles (peer-to-peer transfers,
//! flat vs hierarchical scheduling, controller colocation) live here in
//! [`PlannerConfig`] so both backends answer to the same switches.
//!
//! [`SchedTrace`] is the observer hook: a bounded ring buffer of emitted
//! plans plus an optional callback, fed by both runtimes.

mod oplog;
mod plan;

pub use oplog::{first_divergence, replay_ops, LoggedPlanner, OpSink, PlannerOp, PlannerResp};
pub use plan::{Movement, MovementKind, Plan, PlanError};

use std::collections::{HashMap, VecDeque};

use crate::ce::{ArrayId, Ce};
use crate::coherence::{Coherence, Location};
use crate::dag::{DagIndex, DepDag};
use crate::faults::{FaultConfig, FaultPlan, SchedEvent};
use crate::policy::{LinkMatrix, NodeScheduler, PolicyKind};
use crate::telemetry::{ArgValue, Telemetry};

/// Scheduling knobs shared by every backend.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerConfig {
    /// Number of worker nodes.
    pub workers: usize,
    /// Inter-node policy.
    pub policy: PolicyKind,
    /// Peer-to-peer transfers between workers (paper Algorithm 1 bottom).
    /// When disabled (ablation), worker-to-worker movements are staged
    /// through the controller: worker -> controller -> worker.
    pub p2p_enabled: bool,
    /// Ablation of the hierarchical scheduler (Section IV-C): when true the
    /// Controller also tracks every GPU/stream on every node, so its per-CE
    /// decision cost scales with the total stream count instead of being
    /// delegated to the workers. (A costing knob: consumed by executors.)
    pub flat_scheduling: bool,
    /// Controller colocated with worker 0 (the GrCUDA single-node setup):
    /// controller<->worker-0 movements are free (same host memory). (A
    /// costing knob: consumed by executors.)
    pub controller_colocated: bool,
    /// Deterministic injected faults, honored identically by both backends.
    pub faults: FaultPlan,
    /// Detection and recovery knobs (retries, backoff, timeouts).
    pub fault_cfg: FaultConfig,
}

impl PlannerConfig {
    /// The paper's defaults: P2P on, hierarchical scheduling, dedicated
    /// controller.
    pub fn new(workers: usize, policy: PolicyKind) -> Self {
        PlannerConfig {
            workers,
            policy,
            p2p_enabled: true,
            flat_scheduling: false,
            controller_colocated: false,
            faults: FaultPlan::none(),
            fault_cfg: FaultConfig::default(),
        }
    }
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig::new(2, PolicyKind::RoundRobin)
    }
}

/// The shared scheduling core: Global DAG + coherence directory + node
/// scheduler behind one `plan_ce` entry point.
#[derive(Debug, Clone)]
pub struct Planner {
    cfg: PlannerConfig,
    dag: DepDag,
    coherence: Coherence,
    scheduler: NodeScheduler,
    /// Whole-array sizes of live (registered) arrays.
    array_bytes: HashMap<ArrayId, u64>,
    next_array: u64,
    /// Every planned CE, by DAG index (recovery replans from these).
    ces: Vec<Ce>,
    /// Node each DAG index was (last) assigned to.
    assignments: Vec<Location>,
    /// Membership epoch: bumps on every membership change (first-time
    /// quarantine, rejoin) so replicas agree on the cluster view. Monotone.
    epoch: u64,
    /// Timestamp-free event sink (the planner has no clock of its own).
    telemetry: Telemetry,
}

/// One in-flight CE moved off a dead node by [`Planner::recover`].
#[derive(Debug, Clone, PartialEq)]
pub struct Reassignment {
    /// The moved CE.
    pub dag_index: DagIndex,
    /// Its new (healthy) node.
    pub to: Location,
    /// Fresh data movements bringing its inputs up to date on `to`,
    /// sourced from surviving holders in the purged directory.
    pub movements: Vec<Movement>,
}

/// The outcome of quarantining a dead node ([`Planner::recover`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Recovery {
    /// The quarantined worker.
    pub dead: usize,
    /// Membership view: workers still healthy after the quarantine.
    pub healthy: usize,
    /// Arrays that lost a (possibly redundant) copy with the node.
    pub affected: Vec<ArrayId>,
    /// Arrays whose only up-to-date copy died with the node; the executor
    /// must reconstruct them (lineage replay) before their next use.
    pub lost: Vec<ArrayId>,
    /// In-flight CEs moved off the dead node, in DAG order.
    pub reassigned: Vec<Reassignment>,
}

impl Planner {
    /// Builds a planner. `links` is the probed interconnection matrix; it
    /// is required by `min-transfer-time` and also steers P2P source
    /// selection when present.
    ///
    /// # Panics
    /// Panics on the [`NodeScheduler::new`] invariants (zero workers,
    /// empty vector-step vector, `MinTransferTime` without a matrix).
    pub fn new(cfg: PlannerConfig, links: Option<LinkMatrix>) -> Self {
        let scheduler = NodeScheduler::new(cfg.policy.clone(), cfg.workers, links);
        Planner {
            scheduler,
            cfg,
            dag: DepDag::new(),
            coherence: Coherence::new(),
            array_bytes: HashMap::new(),
            next_array: 0,
            ces: Vec::new(),
            assignments: Vec::new(),
            epoch: 0,
            telemetry: Telemetry::off(),
        }
    }

    /// Attaches a telemetry recorder. The planner has no clock, so it
    /// emits timestamp-free [`crate::Recorder::mark`] events; runtimes
    /// sharing the same handle interleave them with timed spans.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The configuration in use.
    pub fn config(&self) -> &PlannerConfig {
        &self.cfg
    }

    /// The Global DAG (read-only view).
    pub fn dag(&self) -> &DepDag {
        &self.dag
    }

    /// The coherence directory (read-only view).
    pub fn coherence(&self) -> &Coherence {
        &self.coherence
    }

    /// The probed interconnection matrix, when one is held.
    pub fn links(&self) -> Option<&LinkMatrix> {
        self.scheduler.links()
    }

    /// The single mutation entry point: applies one [`PlannerOp`] and
    /// returns the derived decision. Deterministic — two planners
    /// constructed identically and fed the same op sequence reach
    /// bit-identical state (the property the standby controller and
    /// journal replay rely on). Note that a failing op (e.g.
    /// [`PlanError::UseAfterFree`]) may still have mutated state: the CE
    /// was appended to the DAG before movement planning failed, and
    /// re-applying it on replay repeats that mutation exactly.
    pub fn apply(&mut self, op: &PlannerOp) -> Result<PlannerResp, PlanError> {
        match op {
            PlannerOp::Alloc { bytes } => Ok(PlannerResp::Array(self.alloc(*bytes))),
            PlannerOp::Free { array } => {
                self.free(*array);
                Ok(PlannerResp::Unit)
            }
            PlannerOp::PlanCe { ce } => self.plan_ce(ce).map(PlannerResp::Plan),
            PlannerOp::MarkCompleted { dag_index } => {
                self.mark_completed(*dag_index);
                Ok(PlannerResp::Unit)
            }
            PlannerOp::Quarantine { worker } => {
                self.quarantine(*worker).map(|()| PlannerResp::Unit)
            }
            PlannerOp::Recover { dead, incomplete } => {
                self.recover(*dead, incomplete).map(PlannerResp::Recovery)
            }
            PlannerOp::ReprobeLinks { links } => {
                self.reprobe_links(links.clone());
                Ok(PlannerResp::Unit)
            }
            PlannerOp::Suspect { worker } => {
                self.suspect(*worker);
                Ok(PlannerResp::Unit)
            }
            PlannerOp::Reinstate { worker } => {
                self.reinstate(*worker);
                Ok(PlannerResp::Unit)
            }
            PlannerOp::Rejoin { worker } => {
                self.rejoin(*worker);
                Ok(PlannerResp::Unit)
            }
            PlannerOp::Join { worker } => {
                self.join(*worker);
                Ok(PlannerResp::Unit)
            }
            PlannerOp::Leave { worker } => self.leave(*worker).map(|()| PlannerResp::Unit),
        }
    }

    /// FNV-1a digest over a canonical dump of the replicated state (maps
    /// iterated in sorted order, floats as exact bits; telemetry
    /// excluded). Equal digests across processes mean bit-identical
    /// planner state — the standby acks every shipped op with its replica
    /// digest and the primary cross-checks it against this.
    pub fn state_digest(&self) -> u64 {
        let mut s = String::with_capacity(4096);
        use std::fmt::Write as _;
        let _ = write!(
            s,
            "cfg:{:?};next:{};epoch:{};",
            self.cfg, self.next_array, self.epoch
        );
        self.dag.digest_into(&mut s);
        self.coherence.digest_into(&mut s);
        self.scheduler.digest_into(&mut s);
        s.push_str("bytes:");
        let mut arrays: Vec<_> = self.array_bytes.iter().collect();
        arrays.sort_unstable_by_key(|(a, _)| a.0);
        for (a, b) in arrays {
            let _ = write!(s, "{}={};", a.0, b);
        }
        let _ = write!(s, "ces:{:?};asg:{:?}", self.ces, self.assignments);
        fnv1a(s.as_bytes())
    }

    /// Replaces the probed matrix after a link change (the VNIC-SLA
    /// scenario of Section IV-D). Rebuilds the scheduler, which resets its
    /// cursors — matching GrOUT re-probing at reconfiguration. Membership
    /// state (quarantine/suspension masks) survives the rebuild: a link
    /// re-probe is not an amnesty.
    fn reprobe_links(&mut self, links: LinkMatrix) {
        let (quarantined, suspended, departed) = self.scheduler.masks();
        self.scheduler = NodeScheduler::new(self.cfg.policy.clone(), self.cfg.workers, Some(links));
        self.scheduler
            .restore_masks(quarantined, suspended, departed);
    }

    /// Registers a new framework-managed array of `bytes`, up-to-date on
    /// the Controller (where the application initializes it).
    fn alloc(&mut self, bytes: u64) -> ArrayId {
        let id = ArrayId(self.next_array);
        self.next_array += 1;
        self.coherence.register(id);
        self.array_bytes.insert(id, bytes);
        id
    }

    /// Forgets an array: planning any CE that reads it afterwards fails
    /// with [`PlanError::UseAfterFree`].
    fn free(&mut self, id: ArrayId) {
        self.coherence.unregister(id);
        self.array_bytes.remove(&id);
    }

    /// Size of a live array in bytes (0 when unknown/freed).
    pub fn array_bytes(&self, id: ArrayId) -> u64 {
        self.array_bytes.get(&id).copied().unwrap_or(0)
    }

    /// Marks a CE completed in the Global DAG (executors call this when
    /// the CE actually finishes).
    fn mark_completed(&mut self, i: DagIndex) {
        self.dag.mark_completed(i);
    }

    /// Algorithm 1 for one CE: append to the Global DAG, pick the node,
    /// plan the data movements. Returns the pure decision record.
    ///
    /// Coherence is updated *eagerly*, as if the CE had already run: every
    /// planned copy registers its destination as a holder and every written
    /// array makes the assigned node its exclusive holder. Backends execute
    /// plans in submission order (or gate on explicit versions), so the
    /// eager directory is exactly the state the next `plan_ce` must see.
    fn plan_ce(&mut self, ce: &Ce) -> Result<Plan, PlanError> {
        let outcome = self.dag.add_ce(ce);

        // Node assignment: host CEs run on the Controller, kernels go
        // through the configured inter-node policy.
        let assigned_node = if ce.is_host() {
            Location::CONTROLLER
        } else {
            Location::worker(self.scheduler.assign(ce, &self.coherence))
        };

        // Data movements for read arguments (Algorithm 1 bottom half).
        let mut movements = Vec::new();
        for arg in &ce.args {
            if !arg.mode.reads() {
                continue;
            }
            if let Some(m) = self.plan_movement(arg.array, assigned_node)? {
                movements.push(m);
            }
        }

        // Writes make the assigned node the exclusive holder.
        for arg in &ce.args {
            if arg.mode.writes() {
                self.coherence.record_write(arg.array, assigned_node);
            }
        }

        debug_assert_eq!(outcome.index, self.ces.len(), "dense submission order");
        self.ces.push(ce.clone());
        self.assignments.push(assigned_node);

        let plan = Plan {
            dag_index: outcome.index,
            deps: outcome.parents,
            assigned_node,
            movements,
            placement: None,
        };
        if self.telemetry.enabled() {
            self.telemetry.mark(
                "planner.plan",
                &[
                    ("dag_index", ArgValue::U64(plan.dag_index as u64)),
                    ("node", ArgValue::U64(plan.assigned_node.0 as u64)),
                    ("movements", ArgValue::U64(plan.movements.len() as u64)),
                    ("bytes", ArgValue::U64(plan.movement_bytes())),
                ],
            );
        }
        Ok(plan)
    }

    /// The CE planned at DAG index `i`, if any.
    pub fn planned_ce(&self, i: DagIndex) -> Option<&Ce> {
        self.ces.get(i)
    }

    /// The node CE `i` is currently assigned to (updated by recovery).
    pub fn assignment(&self, i: DagIndex) -> Option<Location> {
        self.assignments.get(i).copied()
    }

    /// Whether worker `w` has been quarantined.
    pub fn is_quarantined(&self, w: usize) -> bool {
        self.scheduler.is_quarantined(w)
    }

    /// Whether worker `w` is in the suspect grace window (no new CEs).
    pub fn is_suspended(&self, w: usize) -> bool {
        self.scheduler.is_suspended(w)
    }

    /// Whether worker `w` departed cleanly (elastic scale-in).
    pub fn is_departed(&self, w: usize) -> bool {
        self.scheduler.is_departed(w)
    }

    /// The planner's membership epoch: bumps on first-time quarantine and
    /// on rejoin, never decreases.
    pub fn membership_epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of workers still accepting assignments.
    pub fn healthy_workers(&self) -> usize {
        self.scheduler.healthy_workers()
    }

    /// Quarantines a worker without replanning anything — used when a node
    /// never comes up (spawn failure), so there is no in-flight work to
    /// move. Fails if it would leave no healthy workers.
    fn quarantine(&mut self, w: usize) -> Result<(), PlanError> {
        if self.scheduler.is_quarantined(w) {
            return Ok(());
        }
        if self.scheduler.healthy_workers() <= 1 {
            return Err(PlanError::NoHealthyWorkers);
        }
        self.scheduler.quarantine(w);
        self.coherence.purge_location(Location::worker(w));
        self.epoch += 1;
        if self.telemetry.enabled() {
            self.telemetry
                .mark("planner.quarantine", &[("worker", ArgValue::U64(w as u64))]);
        }
        Ok(())
    }

    /// Enters the suspect grace window for worker `w`: policies stop
    /// placing *new* CEs on it, but nothing is purged or replanned — a
    /// resumed connection makes the suspicion invisible in hindsight
    /// (apart from the epoch-neutral [`PlannerOp::Suspect`] /
    /// [`PlannerOp::Reinstate`] pair in the log).
    fn suspect(&mut self, w: usize) {
        self.scheduler.suspend(w);
        if self.telemetry.enabled() {
            self.telemetry
                .mark("planner.suspect", &[("worker", ArgValue::U64(w as u64))]);
        }
    }

    /// Lifts a suspicion: worker `w` resumed within the grace window.
    fn reinstate(&mut self, w: usize) {
        self.scheduler.unsuspend(w);
        if self.telemetry.enabled() {
            self.telemetry
                .mark("planner.reinstate", &[("worker", ArgValue::U64(w as u64))]);
        }
    }

    /// Re-admits a quarantined worker under a new membership epoch. The
    /// node is treated as empty: its directory entries were purged at
    /// quarantine and any copies it still physically holds are stale by
    /// definition, so the purge is repeated defensively. Idempotent for a
    /// worker that is not quarantined (no epoch bump).
    fn rejoin(&mut self, w: usize) {
        if !self.scheduler.is_quarantined(w) {
            self.scheduler.unsuspend(w);
            return;
        }
        self.scheduler.rejoin(w);
        self.coherence.purge_location(Location::worker(w));
        self.epoch += 1;
        if self.telemetry.enabled() {
            self.telemetry
                .mark("planner.rejoin", &[("worker", ArgValue::U64(w as u64))]);
        }
    }

    /// Grows the worker set by one: the joining worker takes index `w`
    /// (which must equal the pre-join count — the op records it so replay
    /// needs no context). The newcomer enters empty and immediately
    /// eligible for new CE placement; membership epoch bumps so replicas
    /// agree on the changed cluster view.
    fn join(&mut self, w: usize) {
        debug_assert_eq!(w, self.cfg.workers, "join takes the next free index");
        self.cfg.workers = w + 1;
        self.scheduler.grow(self.cfg.workers);
        self.epoch += 1;
        if self.telemetry.enabled() {
            self.telemetry
                .mark("planner.join", &[("worker", ArgValue::U64(w as u64))]);
        }
    }

    /// A clean elastic departure: purges the leaver's directory entries and
    /// rebalances every orphan to the Controller (the executor fetched the
    /// sole copies before committing this op, so — unlike quarantine —
    /// nothing is lost and no lineage replay runs), then excludes the node
    /// from future placement under a new epoch. Fails if it would leave no
    /// healthy workers; idempotent for an already-departed node.
    fn leave(&mut self, w: usize) -> Result<(), PlanError> {
        if self.scheduler.is_departed(w) {
            return Ok(());
        }
        if self.scheduler.healthy_workers() <= 1 {
            return Err(PlanError::NoHealthyWorkers);
        }
        let report = self.coherence.purge_location(Location::worker(w));
        // Rebalance, don't orphan: the controller holds every departing
        // sole copy (fetched by the executor before this op), so record it
        // as holder of record for each one.
        for &a in &report.orphaned {
            self.coherence.record_copy(a, Location::CONTROLLER);
        }
        self.scheduler.depart(w);
        self.epoch += 1;
        if self.telemetry.enabled() {
            self.telemetry.mark(
                "planner.leave",
                &[
                    ("worker", ArgValue::U64(w as u64)),
                    ("rebalanced", ArgValue::U64(report.orphaned.len() as u64)),
                ],
            );
        }
        Ok(())
    }

    /// Quarantines dead worker `dead` and replans its in-flight work.
    ///
    /// Paper-faithful degraded mode: the node leaves the membership for
    /// good, its directory entries are purged, arrays orphaned by the purge
    /// are handed back to the Controller (the executor reconstructs their
    /// bytes via lineage replay and the Controller becomes the holder of
    /// record), and each CE in `incomplete` that was assigned to the dead
    /// node is re-assigned by the degraded policy with fresh movements
    /// sourced from *surviving* up-to-date holders.
    fn recover(&mut self, dead: usize, incomplete: &[DagIndex]) -> Result<Recovery, PlanError> {
        if self.scheduler.healthy_workers() <= 1 && !self.scheduler.is_quarantined(dead) {
            return Err(PlanError::NoHealthyWorkers);
        }
        if !self.scheduler.is_quarantined(dead) {
            self.scheduler.quarantine(dead);
            self.epoch += 1;
        }
        let report = self.coherence.purge_location(Location::worker(dead));
        // Orphans will be reconstructed on the Controller by the executor;
        // record that eagerly so replanned movements source from it.
        for &a in &report.orphaned {
            self.coherence.record_copy(a, Location::CONTROLLER);
        }

        let mut reassigned = Vec::new();
        let mut order: Vec<DagIndex> = incomplete.to_vec();
        order.sort_unstable();
        let moving: std::collections::HashSet<DagIndex> = order
            .iter()
            .copied()
            .filter(|&i| self.assignments.get(i) == Some(&Location::worker(dead)))
            .collect();
        for i in order {
            if !moving.contains(&i) {
                continue;
            }
            let ce = self.ces[i].clone();
            debug_assert!(!ce.is_host(), "host CEs never run on workers");
            let to = Location::worker(self.scheduler.assign(&ce, &self.coherence));
            // The directory is last-planned-writer-wins: an array with a
            // *later* planned writer that keeps its healthy assignment is
            // frozen — its entry describes a newer version than CE `i`'s,
            // so recovery must neither record this CE's (older) output
            // there nor register a movement landing as an up-to-date copy.
            // (The executor supplies replanned CEs' inputs from its own
            // reconstructed state, so the skipped movements cost nothing.)
            let frozen: Vec<ArrayId> = ce
                .args
                .iter()
                .map(|a| a.array)
                .filter(|&a| {
                    ((i + 1)..self.ces.len()).any(|j| {
                        !moving.contains(&j)
                            && self.ces[j]
                                .args
                                .iter()
                                .any(|g| g.array == a && g.mode.writes())
                    })
                })
                .collect();
            let mut movements = Vec::new();
            for arg in &ce.args {
                if !arg.mode.reads() || frozen.contains(&arg.array) {
                    continue;
                }
                if let Some(m) = self.plan_movement(arg.array, to)? {
                    movements.push(m);
                }
            }
            for arg in &ce.args {
                if arg.mode.writes() && !frozen.contains(&arg.array) {
                    self.coherence.record_write(arg.array, to);
                }
            }
            self.assignments[i] = to;
            reassigned.push(Reassignment {
                dag_index: i,
                to,
                movements,
            });
        }
        let recovery = Recovery {
            dead,
            healthy: self.scheduler.healthy_workers(),
            affected: report.affected,
            lost: report.orphaned,
            reassigned,
        };
        if self.telemetry.enabled() {
            self.telemetry.mark(
                "planner.recover",
                &[
                    ("dead", ArgValue::U64(recovery.dead as u64)),
                    ("healthy", ArgValue::U64(recovery.healthy as u64)),
                    ("lost", ArgValue::U64(recovery.lost.len() as u64)),
                    (
                        "reassigned",
                        ArgValue::U64(recovery.reassigned.len() as u64),
                    ),
                ],
            );
        }
        Ok(recovery)
    }

    /// Plans the movement bringing `array` up to date on `dest`, if any.
    fn plan_movement(
        &mut self,
        array: ArrayId,
        dest: Location,
    ) -> Result<Option<Movement>, PlanError> {
        if self.coherence.up_to_date_on(array, dest) {
            return Ok(None);
        }
        let Some(&bytes) = self.array_bytes.get(&array) else {
            return Err(PlanError::UseAfterFree(array));
        };

        let (from, kind) = if self.coherence.only_on_controller(array) {
            (Location::CONTROLLER, MovementKind::ControllerSend)
        } else if self.cfg.p2p_enabled {
            let from = self.best_source(array, dest);
            let kind = if from == Location::CONTROLLER || dest == Location::CONTROLLER {
                MovementKind::ControllerSend
            } else {
                MovementKind::P2p
            };
            (from, kind)
        } else {
            // P2P disabled (ablation): a worker-to-worker movement stages
            // through the controller, which keeps the relayed copy.
            let from = self
                .coherence
                .holders(array)
                .iter()
                .copied()
                .min_by_key(|h| h.0)
                .expect("registered arrays always have a holder");
            if from != Location::CONTROLLER && dest != Location::CONTROLLER {
                self.coherence.record_copy(array, Location::CONTROLLER);
                (from, MovementKind::Staged)
            } else {
                (from, MovementKind::ControllerSend)
            }
        };
        self.coherence.record_copy(array, dest);
        Ok(Some(Movement {
            array,
            from,
            to: dest,
            bytes,
            kind,
        }))
    }

    /// The up-to-date holder to source a transfer from: highest link
    /// bandwidth towards `dest` when a probed matrix is available, lowest
    /// endpoint index otherwise (and as the tie-break). Pure — unlike a
    /// live-congestion probe, the same directory state always yields the
    /// same source, which is what keeps sim and local plans identical.
    fn best_source(&self, array: ArrayId, dest: Location) -> Location {
        let holders = self.coherence.holders(array);
        debug_assert!(!holders.is_empty(), "checked by caller");
        match self.scheduler.links() {
            Some(links) => holders
                .iter()
                .copied()
                .min_by(|a, b| {
                    let (ba, bb) = (links.bandwidth(*a, dest), links.bandwidth(*b, dest));
                    bb.partial_cmp(&ba)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                })
                .expect("non-empty holders"),
            None => holders
                .iter()
                .copied()
                .min_by_key(|h| h.0)
                .expect("non-empty holders"),
        }
    }
}

/// Replicated-state equality: every field except the telemetry handle
/// (recorders are process-local observers, not replicated state). Two
/// planners constructed identically and fed the same op sequence compare
/// equal — the property the op-log determinism tests assert.
impl PartialEq for Planner {
    fn eq(&self, other: &Self) -> bool {
        self.cfg == other.cfg
            && self.dag == other.dag
            && self.coherence == other.coherence
            && self.scheduler == other.scheduler
            && self.array_bytes == other.array_bytes
            && self.next_array == other.next_array
            && self.ces == other.ces
            && self.assignments == other.assignments
            && self.epoch == other.epoch
    }
}

/// 64-bit FNV-1a: tiny, dependency-free and stable across platforms —
/// exactly what a cross-process state digest needs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Callback invoked for every plan a runtime records.
pub type PlanObserver = Box<dyn FnMut(&Plan) + Send>;

/// Observer hook over emitted plans: a bounded ring buffer plus an
/// optional callback, fed by both runtimes as CEs are planned/executed.
pub struct SchedTrace {
    plans: VecDeque<Plan>,
    capacity: usize,
    observer: Option<PlanObserver>,
    /// Fault/retry/quarantine/replay decisions, in order. Unbounded: fault
    /// events are rare and each one matters for post-mortems.
    events: Vec<SchedEvent>,
}

impl SchedTrace {
    /// Default ring capacity.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// A trace retaining the last `capacity` plans (0 disables retention;
    /// the callback still fires).
    pub fn with_capacity(capacity: usize) -> Self {
        SchedTrace {
            plans: VecDeque::new(),
            capacity,
            observer: None,
            events: Vec::new(),
        }
    }

    /// Records a fault/recovery decision. Not subject to the plan-ring
    /// capacity: every event is kept.
    pub fn record_event(&mut self, event: SchedEvent) {
        self.events.push(event);
    }

    /// Every recorded fault/recovery event, in order.
    pub fn events(&self) -> &[SchedEvent] {
        &self.events
    }

    /// Installs a callback invoked for every recorded plan.
    pub fn set_observer(&mut self, observer: PlanObserver) {
        self.observer = Some(observer);
    }

    /// Records a plan: invokes the observer and appends to the ring,
    /// evicting the oldest entry when full.
    pub fn record(&mut self, plan: &Plan) {
        if let Some(cb) = &mut self.observer {
            cb(plan);
        }
        if self.capacity == 0 {
            return;
        }
        if self.plans.len() == self.capacity {
            self.plans.pop_front();
        }
        self.plans.push_back(plan.clone());
    }

    /// Retained plans, oldest first.
    pub fn plans(&self) -> impl Iterator<Item = &Plan> {
        self.plans.iter()
    }

    /// The most recently recorded plan.
    pub fn latest(&self) -> Option<&Plan> {
        self.plans.back()
    }

    /// Number of retained plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Drops every retained plan and event (the observer is kept).
    pub fn clear(&mut self) {
        self.plans.clear();
        self.events.clear();
    }
}

impl Default for SchedTrace {
    fn default() -> Self {
        SchedTrace::with_capacity(Self::DEFAULT_CAPACITY)
    }
}

impl std::fmt::Debug for SchedTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedTrace")
            .field("plans", &self.plans.len())
            .field("capacity", &self.capacity)
            .field("observer", &self.observer.is_some())
            .field("events", &self.events.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ce::{Ce, CeArg, CeId, CeKind};
    use gpu_sim::KernelCost;

    fn kernel(id: u64, args: Vec<CeArg>) -> Ce {
        Ce {
            id: CeId(id),
            kind: CeKind::Kernel {
                name: "k".into(),
                cost: KernelCost::default(),
            },
            args,
        }
    }

    fn planner(workers: usize) -> LoggedPlanner {
        LoggedPlanner::new(Planner::new(
            PlannerConfig::new(workers, PolicyKind::RoundRobin),
            None,
        ))
    }

    #[test]
    fn first_touch_is_a_controller_send() {
        let mut p = planner(2);
        let a = p.alloc(64);
        let plan = p.plan_ce(&kernel(0, vec![CeArg::read(a, 64)])).unwrap();
        assert_eq!(plan.assigned_node, Location::worker(0));
        assert_eq!(
            plan.movements,
            vec![Movement {
                array: a,
                from: Location::CONTROLLER,
                to: Location::worker(0),
                bytes: 64,
                kind: MovementKind::ControllerSend,
            }]
        );
    }

    #[test]
    fn cached_inputs_need_no_movement() {
        let mut p = planner(1);
        let a = p.alloc(64);
        p.plan_ce(&kernel(0, vec![CeArg::read(a, 64)])).unwrap();
        let again = p.plan_ce(&kernel(1, vec![CeArg::read(a, 64)])).unwrap();
        assert!(again.movements.is_empty(), "copy is cached on the worker");
    }

    #[test]
    fn exclusive_writer_feeds_peers_p2p() {
        let mut p = planner(2);
        let a = p.alloc(64);
        p.plan_ce(&kernel(0, vec![CeArg::write(a, 64)])).unwrap(); // worker 0
        let read = p.plan_ce(&kernel(1, vec![CeArg::read(a, 64)])).unwrap(); // worker 1
        assert_eq!(read.movements[0].from, Location::worker(0));
        assert_eq!(read.movements[0].kind, MovementKind::P2p);
    }

    #[test]
    fn p2p_disabled_stages_with_double_wire_bytes() {
        let mut cfg = PlannerConfig::new(2, PolicyKind::RoundRobin);
        cfg.p2p_enabled = false;
        let mut p = LoggedPlanner::new(Planner::new(cfg, None));
        let a = p.alloc(100);
        p.plan_ce(&kernel(0, vec![CeArg::write(a, 100)])).unwrap();
        let read = p.plan_ce(&kernel(1, vec![CeArg::read(a, 100)])).unwrap();
        assert_eq!(read.movements[0].kind, MovementKind::Staged);
        assert_eq!(read.wire_bytes(), 200);
        // The controller keeps the relayed copy.
        assert!(p.coherence().up_to_date_on(a, Location::CONTROLLER));
    }

    #[test]
    fn host_ces_run_on_the_controller() {
        let mut p = planner(2);
        let a = p.alloc(64);
        p.plan_ce(&kernel(0, vec![CeArg::write(a, 64)])).unwrap(); // worker 0
        let host = Ce {
            id: CeId(1),
            kind: CeKind::HostRead,
            args: vec![CeArg::read(a, 64)],
        };
        let plan = p.plan_ce(&host).unwrap();
        assert_eq!(plan.assigned_node, Location::CONTROLLER);
        assert_eq!(plan.movements[0].from, Location::worker(0));
        assert_eq!(plan.movements[0].kind, MovementKind::ControllerSend);
    }

    #[test]
    fn freed_arrays_fail_planning() {
        let mut p = planner(1);
        let a = p.alloc(64);
        p.free(a);
        let err = p.plan_ce(&kernel(0, vec![CeArg::read(a, 64)])).unwrap_err();
        assert_eq!(err, PlanError::UseAfterFree(a));
    }

    #[test]
    fn writes_are_planned_without_movement() {
        let mut p = planner(2);
        let a = p.alloc(64);
        let plan = p.plan_ce(&kernel(0, vec![CeArg::write(a, 64)])).unwrap();
        assert!(plan.movements.is_empty(), "write-only args move nothing");
        assert_eq!(
            p.coherence().holders(a),
            &[plan.assigned_node],
            "eager exclusive ownership"
        );
    }

    #[test]
    fn deps_come_from_the_shared_dag() {
        let mut p = planner(2);
        let a = p.alloc(64);
        let w = p.plan_ce(&kernel(0, vec![CeArg::write(a, 64)])).unwrap();
        let r = p.plan_ce(&kernel(1, vec![CeArg::read(a, 64)])).unwrap();
        assert_eq!(w.deps, Vec::<usize>::new());
        assert_eq!(r.deps, vec![w.dag_index]);
    }

    #[test]
    fn best_source_prefers_fast_links() {
        // Three endpoints; worker 0 -> worker 1 is 10x faster than
        // controller -> worker 1.
        let mut bw = vec![vec![1e8; 3]; 3];
        bw[1][2] = 1e9;
        let mut p = LoggedPlanner::new(Planner::new(
            PlannerConfig::new(2, PolicyKind::RoundRobin),
            Some(LinkMatrix::new(bw)),
        ));
        let a = p.alloc(64);
        // Holders: controller and worker 0 (via a read on worker 0).
        p.plan_ce(&kernel(0, vec![CeArg::read(a, 64)])).unwrap();
        let read = p.plan_ce(&kernel(1, vec![CeArg::read(a, 64)])).unwrap();
        assert_eq!(read.assigned_node, Location::worker(1));
        assert_eq!(
            read.movements[0].from,
            Location::worker(0),
            "fast link wins"
        );
    }

    #[test]
    fn recover_quarantines_and_replans_in_flight_work() {
        let mut p = planner(2);
        let a = p.alloc(64);
        let b = p.alloc(64);
        // CE0 writes a on worker 0, CE1 writes b on worker 1, CE2 reads a
        // on worker 0 (cached). Worker 0 dies with CE2 in flight.
        p.plan_ce(&kernel(0, vec![CeArg::write(a, 64)])).unwrap();
        p.plan_ce(&kernel(1, vec![CeArg::write(b, 64)])).unwrap();
        let c2 = p.plan_ce(&kernel(2, vec![CeArg::read(a, 64)])).unwrap();
        assert_eq!(c2.assigned_node, Location::worker(0));
        p.mark_completed(0);
        p.mark_completed(1);

        let rec = p.recover(0, &[2]).unwrap();
        assert_eq!(rec.dead, 0);
        assert_eq!(rec.healthy, 1);
        assert_eq!(rec.affected, vec![a]);
        assert_eq!(rec.lost, vec![a], "worker 0 was a's exclusive holder");
        assert!(p.is_quarantined(0));
        // The orphan is handed to the controller for reconstruction...
        assert!(p.coherence().up_to_date_on(a, Location::CONTROLLER));
        assert!(!p.coherence().up_to_date_on(a, Location::worker(0)));
        // ...and CE2 moves to the surviving worker with a fresh movement
        // sourced from the controller.
        assert_eq!(rec.reassigned.len(), 1);
        let r = &rec.reassigned[0];
        assert_eq!((r.dag_index, r.to), (2, Location::worker(1)));
        assert_eq!(r.movements[0].from, Location::CONTROLLER);
        assert_eq!(p.assignment(2), Some(Location::worker(1)));
    }

    #[test]
    fn recover_refuses_to_kill_the_last_worker() {
        let mut p = planner(1);
        let a = p.alloc(8);
        p.plan_ce(&kernel(0, vec![CeArg::write(a, 8)])).unwrap();
        assert_eq!(p.recover(0, &[0]).unwrap_err(), PlanError::NoHealthyWorkers);
    }

    #[test]
    fn recovery_reads_source_from_surviving_holders() {
        // Worker 1 already holds b; after worker 0 dies, the reassigned CE
        // reading b needs no movement at all (surviving holder is local).
        let mut p = planner(2);
        let a = p.alloc(64);
        let b = p.alloc(64);
        p.plan_ce(&kernel(0, vec![CeArg::write(a, 64)])).unwrap(); // w0
        p.plan_ce(&kernel(1, vec![CeArg::write(b, 64)])).unwrap(); // w1
        p.plan_ce(&kernel(2, vec![CeArg::read(b, 64), CeArg::write(a, 64)]))
            .unwrap(); // w0: moves b to w0
        p.mark_completed(0);
        p.mark_completed(1);
        let rec = p.recover(0, &[2]).unwrap();
        let r = &rec.reassigned[0];
        assert_eq!(r.to, Location::worker(1));
        assert!(
            r.movements.is_empty(),
            "b is already up to date on the surviving worker: {:?}",
            r.movements
        );
        // The write makes the new node a's exclusive holder again.
        assert_eq!(p.coherence().holders(a), &[Location::worker(1)]);
    }

    #[test]
    fn standalone_quarantine_purges_without_replanning() {
        let mut p = planner(3);
        assert_eq!(p.healthy_workers(), 3);
        p.quarantine(1).unwrap();
        p.quarantine(1).unwrap(); // idempotent
        assert_eq!(p.healthy_workers(), 2);
        let a = p.alloc(64);
        // Every subsequent plan avoids the quarantined node.
        for i in 0..6 {
            let plan = p.plan_ce(&kernel(i, vec![CeArg::read(a, 64)])).unwrap();
            assert_ne!(plan.assigned_node, Location::worker(1));
        }
    }

    #[test]
    fn sched_trace_keeps_events_past_plan_eviction() {
        use crate::faults::SchedEvent;
        let mut trace = SchedTrace::with_capacity(1);
        let mut p = planner(1);
        let a = p.alloc(8);
        for i in 0..3 {
            let plan = p
                .plan_ce(&kernel(i, vec![CeArg::read_write(a, 8)]))
                .unwrap();
            trace.record(&plan);
        }
        trace.record_event(SchedEvent::Replay {
            dag_index: 1,
            epoch: 1,
        });
        assert_eq!(trace.len(), 1, "plan ring evicted");
        assert_eq!(trace.events().len(), 1, "events are never evicted");
        trace.clear();
        assert!(trace.events().is_empty());
    }

    #[test]
    fn sched_trace_ring_evicts_oldest() {
        let mut trace = SchedTrace::with_capacity(2);
        let mut p = planner(1);
        let a = p.alloc(8);
        for i in 0..3 {
            let plan = p
                .plan_ce(&kernel(i, vec![CeArg::read_write(a, 8)]))
                .unwrap();
            trace.record(&plan);
        }
        assert_eq!(trace.len(), 2);
        let kept: Vec<usize> = trace.plans().map(|p| p.dag_index).collect();
        assert_eq!(kept, vec![1, 2]);
        assert_eq!(trace.latest().unwrap().dag_index, 2);
    }

    #[test]
    fn sched_trace_observer_sees_every_plan() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let mut trace = SchedTrace::with_capacity(0); // retention off
        trace.set_observer(Box::new(move |_| {
            seen2.fetch_add(1, Ordering::Relaxed);
        }));
        let mut p = planner(1);
        let a = p.alloc(8);
        for i in 0..5 {
            let plan = p
                .plan_ce(&kernel(i, vec![CeArg::read_write(a, 8)]))
                .unwrap();
            trace.record(&plan);
        }
        assert_eq!(seen.load(Ordering::Relaxed), 5);
        assert!(trace.is_empty(), "capacity 0 retains nothing");
    }

    #[test]
    fn suspect_sidelines_until_reinstated() {
        let mut p = planner(2);
        let a = p.alloc(64);
        p.suspect(0);
        assert!(p.is_suspended(0));
        assert_eq!(p.membership_epoch(), 0, "suspicion is epoch-neutral");
        for i in 0..4 {
            let plan = p.plan_ce(&kernel(i, vec![CeArg::read(a, 64)])).unwrap();
            assert_eq!(plan.assigned_node, Location::worker(1));
        }
        p.reinstate(0);
        assert!(!p.is_suspended(0));
        let placed: Vec<_> = (4..8)
            .map(|i| {
                p.plan_ce(&kernel(i, vec![CeArg::read(a, 64)]))
                    .unwrap()
                    .assigned_node
            })
            .collect();
        assert!(placed.contains(&Location::worker(0)));
    }

    #[test]
    fn rejoin_reopens_a_quarantined_worker_under_a_new_epoch() {
        let mut p = planner(2);
        let a = p.alloc(64);
        p.plan_ce(&kernel(0, vec![CeArg::write(a, 64)])).unwrap(); // w0
        p.mark_completed(0);
        p.recover(0, &[]).unwrap();
        assert!(p.is_quarantined(0));
        assert_eq!(p.membership_epoch(), 1);
        p.rejoin(0);
        assert!(!p.is_quarantined(0));
        assert_eq!(p.membership_epoch(), 2, "rejoin opens a new epoch");
        // The rejoined node is empty: nothing up to date there, and it
        // receives new CEs again.
        assert!(!p.coherence().up_to_date_on(a, Location::worker(0)));
        let placed: Vec<_> = (1..5)
            .map(|i| {
                p.plan_ce(&kernel(i, vec![CeArg::read(a, 64)]))
                    .unwrap()
                    .assigned_node
            })
            .collect();
        assert!(placed.contains(&Location::worker(0)));
        // Membership ops replay bit-identically like everything else.
        let mut replica = fresh_like(&p);
        replay_ops(&mut replica, p.ops());
        assert_eq!(*p, replica);
        assert_eq!(p.state_digest(), replica.state_digest());
    }

    #[test]
    fn join_grows_membership_and_leave_rebalances_without_quarantine() {
        let mut p = planner(2);
        // Capture the construction inputs before membership mutates them:
        // replicas replay the op log onto the *initial* configuration.
        let mut replica = fresh_like(&p);
        let a = p.alloc(64);
        p.plan_ce(&kernel(0, vec![CeArg::write(a, 64)])).unwrap(); // w0
        p.mark_completed(0);

        p.join(2);
        assert_eq!(p.membership_epoch(), 1, "join opens a new epoch");
        assert_eq!(p.healthy_workers(), 3);
        let placed: Vec<_> = (1..3)
            .map(|i| {
                p.plan_ce(&kernel(i, vec![CeArg::read(a, 64)]))
                    .unwrap()
                    .assigned_node
            })
            .collect();
        assert!(
            placed.contains(&Location::worker(2)),
            "the joined worker receives CE placements: {placed:?}"
        );
        // A second array whose only up-to-date copy lives on the leaver —
        // the case leave() must rebalance rather than orphan.
        let b = p.alloc(32);
        let wb = p
            .plan_ce(&kernel(3, vec![CeArg::write(b, 32)]))
            .unwrap()
            .assigned_node;
        assert_eq!(
            wb,
            Location::worker(0),
            "round-robin lands the write on the leaver"
        );
        p.mark_completed(3);

        p.leave(0).unwrap();
        p.leave(0).unwrap(); // idempotent
        assert!(p.is_departed(0));
        assert!(!p.is_quarantined(0), "a clean leave is not a quarantine");
        assert_eq!(p.membership_epoch(), 2);
        assert_eq!(p.healthy_workers(), 2);
        // The leaver's exclusive copy was rebalanced to the controller,
        // not orphaned; `a` keeps its surviving reader copies.
        assert!(p.coherence().up_to_date_on(b, Location::CONTROLLER));
        assert!(!p.coherence().up_to_date_on(b, Location::worker(0)));
        assert!(p.coherence().up_to_date_on(a, Location::worker(2)));
        for i in 4..8 {
            let plan = p.plan_ce(&kernel(i, vec![CeArg::read(a, 64)])).unwrap();
            assert_ne!(plan.assigned_node, Location::worker(0));
        }
        // Membership ops replay bit-identically like everything else.
        replay_ops(&mut replica, p.ops());
        assert_eq!(*p, replica);
        assert_eq!(p.state_digest(), replica.state_digest());
    }

    #[test]
    fn leave_refuses_to_empty_the_cluster() {
        let mut p = planner(2);
        p.leave(0).unwrap();
        assert_eq!(p.leave(1).unwrap_err(), PlanError::NoHealthyWorkers);
    }

    #[test]
    fn reprobe_preserves_membership_masks() {
        let mut p = planner(3);
        p.quarantine(1).unwrap();
        p.suspect(2);
        p.reprobe_links(LinkMatrix::uniform(4, 1e9));
        assert!(p.is_quarantined(1), "re-probe is not an amnesty");
        assert!(p.is_suspended(2));
    }

    fn fresh_like(p: &LoggedPlanner) -> Planner {
        Planner::new(p.config().clone(), p.links().cloned())
    }

    #[test]
    fn replaying_the_op_log_reproduces_the_planner() {
        let mut p = planner(3);
        let a = p.alloc(64);
        let b = p.alloc(32);
        p.plan_ce(&kernel(0, vec![CeArg::write(a, 64)])).unwrap();
        p.plan_ce(&kernel(1, vec![CeArg::read(a, 64), CeArg::write(b, 32)]))
            .unwrap();
        p.mark_completed(0);
        p.recover(0, &[1]).unwrap();
        p.free(b);
        let mut replica = fresh_like(&p);
        replay_ops(&mut replica, p.ops());
        assert_eq!(*p, replica, "replica state diverged");
        assert_eq!(p.state_digest(), replica.state_digest());
    }

    #[test]
    fn failed_ops_still_mutate_and_replay_identically() {
        let mut p = planner(1);
        let a = p.alloc(8);
        p.free(a);
        // The CE lands in the DAG even though movement planning fails.
        assert_eq!(
            p.plan_ce(&kernel(0, vec![CeArg::read(a, 8)])).unwrap_err(),
            PlanError::UseAfterFree(a)
        );
        assert_eq!(p.dag().len(), 1, "failed plan still appended to the DAG");
        let mut replica = fresh_like(&p);
        let results = replay_ops(&mut replica, p.ops());
        assert_eq!(*p, replica);
        assert_eq!(
            results.last().unwrap().as_ref().unwrap_err(),
            &PlanError::UseAfterFree(a),
            "replay reproduces the failure too"
        );
    }

    #[test]
    fn digest_tracks_state_not_telemetry() {
        let mut a = planner(2);
        let mut b = planner(2);
        b.set_telemetry(crate::telemetry::Telemetry::off());
        let x = a.alloc(16);
        b.alloc(16);
        assert_eq!(a.state_digest(), b.state_digest());
        a.plan_ce(&kernel(0, vec![CeArg::read(x, 16)])).unwrap();
        assert_ne!(a.state_digest(), b.state_digest(), "mutation moves digest");
    }

    #[test]
    fn first_divergence_localizes() {
        let a = [
            PlannerOp::Alloc { bytes: 8 },
            PlannerOp::MarkCompleted { dag_index: 0 },
        ];
        let b = [
            PlannerOp::Alloc { bytes: 8 },
            PlannerOp::MarkCompleted { dag_index: 1 },
        ];
        assert_eq!(first_divergence(&a, &a), None);
        assert_eq!(first_divergence(&a, &b), Some(1));
        assert_eq!(first_divergence(&a, &a[..1]), Some(1), "length mismatch");
    }

    #[test]
    fn op_sinks_see_every_op_and_catch_up() {
        use std::sync::{Arc, Mutex};
        type Seen = Arc<Mutex<Vec<(u64, &'static str, bool)>>>;
        #[derive(Default)]
        struct Tap(Seen);
        impl OpSink for Tap {
            fn wants_digest(&self) -> bool {
                true
            }
            fn append(&mut self, seq: u64, op: &PlannerOp, digest: Option<u64>) {
                self.0
                    .lock()
                    .unwrap()
                    .push((seq, op.kind(), digest.is_some()));
            }
        }
        let mut p = planner(2);
        let a = p.alloc(8);
        let seen = Arc::new(Mutex::new(Vec::new()));
        p.add_sink(Box::new(Tap(Arc::clone(&seen))));
        p.plan_ce(&kernel(0, vec![CeArg::read(a, 8)])).unwrap();
        let got = seen.lock().unwrap().clone();
        assert_eq!(
            got,
            vec![(0, "alloc", false), (1, "plan-ce", true)],
            "catch-up replays history without digests; live ops carry one"
        );
    }

    #[test]
    #[should_panic(expected = "diverged from the replicated prefix at index 1")]
    fn prefix_validation_panics_on_divergence() {
        let mut p = planner(2);
        p.expect_prefix(vec![
            PlannerOp::Alloc { bytes: 8 },
            PlannerOp::Alloc { bytes: 16 },
        ]);
        p.alloc(8);
        p.alloc(99);
    }
}
