//! The backend-agnostic scheduling core (paper Algorithm 1).
//!
//! [`Planner`] owns the three pieces of Controller state that every GrOUT
//! deployment shares — the Global [`DepDag`], the [`Coherence`] directory
//! and the inter-node [`NodeScheduler`] — and exposes a single entry point,
//! [`Planner::plan_ce`], that turns a submitted CE into a pure
//! [`Plan`]: dependencies, node assignment and data movements, with no
//! knowledge of virtual time or threads.
//!
//! Both runtimes consume plans instead of re-implementing the algorithm:
//! [`crate::SimRuntime`] *prices* each plan in virtual time over the
//! modeled network, [`crate::LocalRuntime`] *executes* it over crossbeam
//! channels. The ablation knobs the paper toggles (peer-to-peer transfers,
//! flat vs hierarchical scheduling, controller colocation) live here in
//! [`PlannerConfig`] so both backends answer to the same switches.
//!
//! [`SchedTrace`] is the observer hook: a bounded ring buffer of emitted
//! plans plus an optional callback, fed by both runtimes.

mod plan;

pub use plan::{Movement, MovementKind, Plan, PlanError};

use std::collections::{HashMap, VecDeque};

use crate::ce::{ArrayId, Ce};
use crate::coherence::{Coherence, Location};
use crate::dag::{DagIndex, DepDag};
use crate::policy::{LinkMatrix, NodeScheduler, PolicyKind};

/// Scheduling knobs shared by every backend.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Number of worker nodes.
    pub workers: usize,
    /// Inter-node policy.
    pub policy: PolicyKind,
    /// Peer-to-peer transfers between workers (paper Algorithm 1 bottom).
    /// When disabled (ablation), worker-to-worker movements are staged
    /// through the controller: worker -> controller -> worker.
    pub p2p_enabled: bool,
    /// Ablation of the hierarchical scheduler (Section IV-C): when true the
    /// Controller also tracks every GPU/stream on every node, so its per-CE
    /// decision cost scales with the total stream count instead of being
    /// delegated to the workers. (A costing knob: consumed by executors.)
    pub flat_scheduling: bool,
    /// Controller colocated with worker 0 (the GrCUDA single-node setup):
    /// controller<->worker-0 movements are free (same host memory). (A
    /// costing knob: consumed by executors.)
    pub controller_colocated: bool,
}

impl PlannerConfig {
    /// The paper's defaults: P2P on, hierarchical scheduling, dedicated
    /// controller.
    pub fn new(workers: usize, policy: PolicyKind) -> Self {
        PlannerConfig {
            workers,
            policy,
            p2p_enabled: true,
            flat_scheduling: false,
            controller_colocated: false,
        }
    }
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig::new(2, PolicyKind::RoundRobin)
    }
}

/// The shared scheduling core: Global DAG + coherence directory + node
/// scheduler behind one `plan_ce` entry point.
#[derive(Debug, Clone)]
pub struct Planner {
    cfg: PlannerConfig,
    dag: DepDag,
    coherence: Coherence,
    scheduler: NodeScheduler,
    /// Whole-array sizes of live (registered) arrays.
    array_bytes: HashMap<ArrayId, u64>,
    next_array: u64,
}

impl Planner {
    /// Builds a planner. `links` is the probed interconnection matrix; it
    /// is required by `min-transfer-time` and also steers P2P source
    /// selection when present.
    ///
    /// # Panics
    /// Panics on the [`NodeScheduler::new`] invariants (zero workers,
    /// empty vector-step vector, `MinTransferTime` without a matrix).
    pub fn new(cfg: PlannerConfig, links: Option<LinkMatrix>) -> Self {
        let scheduler = NodeScheduler::new(cfg.policy.clone(), cfg.workers, links);
        Planner {
            scheduler,
            cfg,
            dag: DepDag::new(),
            coherence: Coherence::new(),
            array_bytes: HashMap::new(),
            next_array: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PlannerConfig {
        &self.cfg
    }

    /// The Global DAG (read-only view).
    pub fn dag(&self) -> &DepDag {
        &self.dag
    }

    /// The coherence directory (read-only view).
    pub fn coherence(&self) -> &Coherence {
        &self.coherence
    }

    /// The probed interconnection matrix, when one is held.
    pub fn links(&self) -> Option<&LinkMatrix> {
        self.scheduler.links()
    }

    /// Replaces the probed matrix after a link change (the VNIC-SLA
    /// scenario of Section IV-D). Rebuilds the scheduler, which resets its
    /// cursors — matching GrOUT re-probing at reconfiguration.
    pub fn reprobe_links(&mut self, links: LinkMatrix) {
        self.scheduler = NodeScheduler::new(self.cfg.policy.clone(), self.cfg.workers, Some(links));
    }

    /// Registers a new framework-managed array of `bytes`, up-to-date on
    /// the Controller (where the application initializes it).
    pub fn alloc(&mut self, bytes: u64) -> ArrayId {
        let id = ArrayId(self.next_array);
        self.next_array += 1;
        self.coherence.register(id);
        self.array_bytes.insert(id, bytes);
        id
    }

    /// Forgets an array: planning any CE that reads it afterwards fails
    /// with [`PlanError::UseAfterFree`].
    pub fn free(&mut self, id: ArrayId) {
        self.coherence.unregister(id);
        self.array_bytes.remove(&id);
    }

    /// Size of a live array in bytes (0 when unknown/freed).
    pub fn array_bytes(&self, id: ArrayId) -> u64 {
        self.array_bytes.get(&id).copied().unwrap_or(0)
    }

    /// Marks a CE completed in the Global DAG (executors call this when
    /// the CE actually finishes).
    pub fn mark_completed(&mut self, i: DagIndex) {
        self.dag.mark_completed(i);
    }

    /// Algorithm 1 for one CE: append to the Global DAG, pick the node,
    /// plan the data movements. Returns the pure decision record.
    ///
    /// Coherence is updated *eagerly*, as if the CE had already run: every
    /// planned copy registers its destination as a holder and every written
    /// array makes the assigned node its exclusive holder. Backends execute
    /// plans in submission order (or gate on explicit versions), so the
    /// eager directory is exactly the state the next `plan_ce` must see.
    pub fn plan_ce(&mut self, ce: &Ce) -> Result<Plan, PlanError> {
        let outcome = self.dag.add_ce(ce);

        // Node assignment: host CEs run on the Controller, kernels go
        // through the configured inter-node policy.
        let assigned_node = if ce.is_host() {
            Location::CONTROLLER
        } else {
            Location::worker(self.scheduler.assign(ce, &self.coherence))
        };

        // Data movements for read arguments (Algorithm 1 bottom half).
        let mut movements = Vec::new();
        for arg in &ce.args {
            if !arg.mode.reads() {
                continue;
            }
            if let Some(m) = self.plan_movement(arg.array, assigned_node)? {
                movements.push(m);
            }
        }

        // Writes make the assigned node the exclusive holder.
        for arg in &ce.args {
            if arg.mode.writes() {
                self.coherence.record_write(arg.array, assigned_node);
            }
        }

        Ok(Plan {
            dag_index: outcome.index,
            deps: outcome.parents,
            assigned_node,
            movements,
            placement: None,
        })
    }

    /// Plans the movement bringing `array` up to date on `dest`, if any.
    fn plan_movement(
        &mut self,
        array: ArrayId,
        dest: Location,
    ) -> Result<Option<Movement>, PlanError> {
        if self.coherence.up_to_date_on(array, dest) {
            return Ok(None);
        }
        let Some(&bytes) = self.array_bytes.get(&array) else {
            return Err(PlanError::UseAfterFree(array));
        };

        let (from, kind) = if self.coherence.only_on_controller(array) {
            (Location::CONTROLLER, MovementKind::ControllerSend)
        } else if self.cfg.p2p_enabled {
            let from = self.best_source(array, dest);
            let kind = if from == Location::CONTROLLER || dest == Location::CONTROLLER {
                MovementKind::ControllerSend
            } else {
                MovementKind::P2p
            };
            (from, kind)
        } else {
            // P2P disabled (ablation): a worker-to-worker movement stages
            // through the controller, which keeps the relayed copy.
            let from = self
                .coherence
                .holders(array)
                .iter()
                .copied()
                .min_by_key(|h| h.0)
                .expect("registered arrays always have a holder");
            if from != Location::CONTROLLER && dest != Location::CONTROLLER {
                self.coherence.record_copy(array, Location::CONTROLLER);
                (from, MovementKind::Staged)
            } else {
                (from, MovementKind::ControllerSend)
            }
        };
        self.coherence.record_copy(array, dest);
        Ok(Some(Movement {
            array,
            from,
            to: dest,
            bytes,
            kind,
        }))
    }

    /// The up-to-date holder to source a transfer from: highest link
    /// bandwidth towards `dest` when a probed matrix is available, lowest
    /// endpoint index otherwise (and as the tie-break). Pure — unlike a
    /// live-congestion probe, the same directory state always yields the
    /// same source, which is what keeps sim and local plans identical.
    fn best_source(&self, array: ArrayId, dest: Location) -> Location {
        let holders = self.coherence.holders(array);
        debug_assert!(!holders.is_empty(), "checked by caller");
        match self.scheduler.links() {
            Some(links) => holders
                .iter()
                .copied()
                .min_by(|a, b| {
                    let (ba, bb) = (links.bandwidth(*a, dest), links.bandwidth(*b, dest));
                    bb.partial_cmp(&ba)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                })
                .expect("non-empty holders"),
            None => holders
                .iter()
                .copied()
                .min_by_key(|h| h.0)
                .expect("non-empty holders"),
        }
    }
}

/// Callback invoked for every plan a runtime records.
pub type PlanObserver = Box<dyn FnMut(&Plan) + Send>;

/// Observer hook over emitted plans: a bounded ring buffer plus an
/// optional callback, fed by both runtimes as CEs are planned/executed.
pub struct SchedTrace {
    plans: VecDeque<Plan>,
    capacity: usize,
    observer: Option<PlanObserver>,
}

impl SchedTrace {
    /// Default ring capacity.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// A trace retaining the last `capacity` plans (0 disables retention;
    /// the callback still fires).
    pub fn with_capacity(capacity: usize) -> Self {
        SchedTrace {
            plans: VecDeque::new(),
            capacity,
            observer: None,
        }
    }

    /// Installs a callback invoked for every recorded plan.
    pub fn set_observer(&mut self, observer: PlanObserver) {
        self.observer = Some(observer);
    }

    /// Records a plan: invokes the observer and appends to the ring,
    /// evicting the oldest entry when full.
    pub fn record(&mut self, plan: &Plan) {
        if let Some(cb) = &mut self.observer {
            cb(plan);
        }
        if self.capacity == 0 {
            return;
        }
        if self.plans.len() == self.capacity {
            self.plans.pop_front();
        }
        self.plans.push_back(plan.clone());
    }

    /// Retained plans, oldest first.
    pub fn plans(&self) -> impl Iterator<Item = &Plan> {
        self.plans.iter()
    }

    /// The most recently recorded plan.
    pub fn latest(&self) -> Option<&Plan> {
        self.plans.back()
    }

    /// Number of retained plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Drops every retained plan (the observer is kept).
    pub fn clear(&mut self) {
        self.plans.clear();
    }
}

impl Default for SchedTrace {
    fn default() -> Self {
        SchedTrace::with_capacity(Self::DEFAULT_CAPACITY)
    }
}

impl std::fmt::Debug for SchedTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedTrace")
            .field("plans", &self.plans.len())
            .field("capacity", &self.capacity)
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ce::{Ce, CeArg, CeId, CeKind};
    use gpu_sim::KernelCost;

    fn kernel(id: u64, args: Vec<CeArg>) -> Ce {
        Ce {
            id: CeId(id),
            kind: CeKind::Kernel {
                name: "k".into(),
                cost: KernelCost::default(),
            },
            args,
        }
    }

    fn planner(workers: usize) -> Planner {
        Planner::new(PlannerConfig::new(workers, PolicyKind::RoundRobin), None)
    }

    #[test]
    fn first_touch_is_a_controller_send() {
        let mut p = planner(2);
        let a = p.alloc(64);
        let plan = p.plan_ce(&kernel(0, vec![CeArg::read(a, 64)])).unwrap();
        assert_eq!(plan.assigned_node, Location::worker(0));
        assert_eq!(
            plan.movements,
            vec![Movement {
                array: a,
                from: Location::CONTROLLER,
                to: Location::worker(0),
                bytes: 64,
                kind: MovementKind::ControllerSend,
            }]
        );
    }

    #[test]
    fn cached_inputs_need_no_movement() {
        let mut p = planner(1);
        let a = p.alloc(64);
        p.plan_ce(&kernel(0, vec![CeArg::read(a, 64)])).unwrap();
        let again = p.plan_ce(&kernel(1, vec![CeArg::read(a, 64)])).unwrap();
        assert!(again.movements.is_empty(), "copy is cached on the worker");
    }

    #[test]
    fn exclusive_writer_feeds_peers_p2p() {
        let mut p = planner(2);
        let a = p.alloc(64);
        p.plan_ce(&kernel(0, vec![CeArg::write(a, 64)])).unwrap(); // worker 0
        let read = p.plan_ce(&kernel(1, vec![CeArg::read(a, 64)])).unwrap(); // worker 1
        assert_eq!(read.movements[0].from, Location::worker(0));
        assert_eq!(read.movements[0].kind, MovementKind::P2p);
    }

    #[test]
    fn p2p_disabled_stages_with_double_wire_bytes() {
        let mut cfg = PlannerConfig::new(2, PolicyKind::RoundRobin);
        cfg.p2p_enabled = false;
        let mut p = Planner::new(cfg, None);
        let a = p.alloc(100);
        p.plan_ce(&kernel(0, vec![CeArg::write(a, 100)])).unwrap();
        let read = p.plan_ce(&kernel(1, vec![CeArg::read(a, 100)])).unwrap();
        assert_eq!(read.movements[0].kind, MovementKind::Staged);
        assert_eq!(read.wire_bytes(), 200);
        // The controller keeps the relayed copy.
        assert!(p.coherence().up_to_date_on(a, Location::CONTROLLER));
    }

    #[test]
    fn host_ces_run_on_the_controller() {
        let mut p = planner(2);
        let a = p.alloc(64);
        p.plan_ce(&kernel(0, vec![CeArg::write(a, 64)])).unwrap(); // worker 0
        let host = Ce {
            id: CeId(1),
            kind: CeKind::HostRead,
            args: vec![CeArg::read(a, 64)],
        };
        let plan = p.plan_ce(&host).unwrap();
        assert_eq!(plan.assigned_node, Location::CONTROLLER);
        assert_eq!(plan.movements[0].from, Location::worker(0));
        assert_eq!(plan.movements[0].kind, MovementKind::ControllerSend);
    }

    #[test]
    fn freed_arrays_fail_planning() {
        let mut p = planner(1);
        let a = p.alloc(64);
        p.free(a);
        let err = p.plan_ce(&kernel(0, vec![CeArg::read(a, 64)])).unwrap_err();
        assert_eq!(err, PlanError::UseAfterFree(a));
    }

    #[test]
    fn writes_are_planned_without_movement() {
        let mut p = planner(2);
        let a = p.alloc(64);
        let plan = p.plan_ce(&kernel(0, vec![CeArg::write(a, 64)])).unwrap();
        assert!(plan.movements.is_empty(), "write-only args move nothing");
        assert_eq!(
            p.coherence().holders(a),
            &[plan.assigned_node],
            "eager exclusive ownership"
        );
    }

    #[test]
    fn deps_come_from_the_shared_dag() {
        let mut p = planner(2);
        let a = p.alloc(64);
        let w = p.plan_ce(&kernel(0, vec![CeArg::write(a, 64)])).unwrap();
        let r = p.plan_ce(&kernel(1, vec![CeArg::read(a, 64)])).unwrap();
        assert_eq!(w.deps, Vec::<usize>::new());
        assert_eq!(r.deps, vec![w.dag_index]);
    }

    #[test]
    fn best_source_prefers_fast_links() {
        // Three endpoints; worker 0 -> worker 1 is 10x faster than
        // controller -> worker 1.
        let mut bw = vec![vec![1e8; 3]; 3];
        bw[1][2] = 1e9;
        let mut p = Planner::new(
            PlannerConfig::new(2, PolicyKind::RoundRobin),
            Some(LinkMatrix::new(bw)),
        );
        let a = p.alloc(64);
        // Holders: controller and worker 0 (via a read on worker 0).
        p.plan_ce(&kernel(0, vec![CeArg::read(a, 64)])).unwrap();
        let read = p.plan_ce(&kernel(1, vec![CeArg::read(a, 64)])).unwrap();
        assert_eq!(read.assigned_node, Location::worker(1));
        assert_eq!(
            read.movements[0].from,
            Location::worker(0),
            "fast link wins"
        );
    }

    #[test]
    fn sched_trace_ring_evicts_oldest() {
        let mut trace = SchedTrace::with_capacity(2);
        let mut p = planner(1);
        let a = p.alloc(8);
        for i in 0..3 {
            let plan = p
                .plan_ce(&kernel(i, vec![CeArg::read_write(a, 8)]))
                .unwrap();
            trace.record(&plan);
        }
        assert_eq!(trace.len(), 2);
        let kept: Vec<usize> = trace.plans().map(|p| p.dag_index).collect();
        assert_eq!(kept, vec![1, 2]);
        assert_eq!(trace.latest().unwrap().dag_index, 2);
    }

    #[test]
    fn sched_trace_observer_sees_every_plan() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let mut trace = SchedTrace::with_capacity(0); // retention off
        trace.set_observer(Box::new(move |_| {
            seen2.fetch_add(1, Ordering::Relaxed);
        }));
        let mut p = planner(1);
        let a = p.alloc(8);
        for i in 0..5 {
            let plan = p
                .plan_ce(&kernel(i, vec![CeArg::read_write(a, 8)]))
                .unwrap();
            trace.record(&plan);
        }
        assert_eq!(seen.load(Ordering::Relaxed), 5);
        assert!(trace.is_empty(), "capacity 0 retains nothing");
    }
}
