//! The controller↔worker transport seam.
//!
//! [`LocalRuntime`](crate::LocalRuntime) executes plans by exchanging
//! messages with its workers; this module abstracts *how* those messages
//! move so the same runtime drives worker threads in-process (the
//! [`ChannelTransport`] crossbeam mesh) or worker *processes* over a real
//! network (the TCP transport in the `grout-net` crate).
//!
//! Three logical channels are covered by one trait:
//!
//! - controller → worker: plan traffic ([`CtrlMsg`] — data installs,
//!   kernel loads, execution requests, forward requests),
//! - worker → controller: completions, failures, returned data and
//!   liveness ([`WorkerMsg`]),
//! - worker ↔ worker: P2P data, reached from the controller's plan via
//!   `CtrlMsg::Send { to: Some(peer) }` and carried by the transport.
//!
//! The worker side is a transport-agnostic state machine,
//! [`WorkerEngine`]: it owns the local array store, the version-gated run
//! queue and the pending-forward queue, and reacts to one [`CtrlMsg`] at a
//! time, emitting [`Outbound`] messages through a callback. The in-process
//! transport runs one engine per thread; `grout-workerd` runs one engine
//! per process over TCP. Both execute the exact same code, which is what
//! makes the loopback differential test (`tests/dist_loopback.rs`)
//! byte-exact.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use kernelc::{CompiledKernel, KernelArg, LaunchError};

use crate::ce::ArrayId;
use crate::dag::DagIndex;
use crate::faults::{NetFaultKind, NetFaultPlan};
use crate::local_runtime::{HostBuf, LocalArg};
use crate::policy::LinkMatrix;
use crate::scheduler::{PlannerConfig, PlannerOp};
use crate::telemetry::{monotonic_ns, PeerWireStats};

pub(crate) fn trace_on() -> bool {
    std::env::var_os("GROUT_TRACE").is_some()
}

/// Spans per [`WorkerMsg::Telemetry`] batch; larger flushes are chunked
/// into several frames so no single frame grows unbounded.
pub const TELEMETRY_MAX_BATCH: usize = 512;

/// Worker-side span buffer cap: beyond this, new spans are dropped and
/// counted ([`WorkerCounters::dropped`]) instead of growing without
/// bound when flush opportunities are scarce.
pub const TELEMETRY_BUFFER_CAP: usize = 4096;

/// Cadence at which an idle worker driver flushes buffered telemetry
/// (both the in-process thread loop and `grout-workerd` tick at this).
pub const TELEMETRY_FLUSH_TICK: Duration = Duration::from_millis(100);

/// What a worker-side telemetry span measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerSpanKind {
    /// A kernel execution.
    Execute,
    /// Data movement through this worker's store (`"send"`/`"recv"`).
    Transfer,
    /// A wire-path kernel recompilation.
    Recompile,
}

/// One span recorded on a worker, stamped with the worker's own
/// monotonic clock ([`crate::telemetry::monotonic_ns`]). The controller
/// shifts it into its clock domain (via the transport's clock-offset
/// estimate) when merging it into the run trace.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerSpan {
    /// What was measured.
    pub kind: WorkerSpanKind,
    /// Kernel name for executes/recompiles, `"send"`/`"recv"` for
    /// transfers.
    pub name: String,
    /// Start on the worker's monotonic clock, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// The CE this span belongs to (`u64::MAX` when not CE-bound).
    pub dag_index: u64,
    /// Payload bytes for transfers, 0 otherwise.
    pub bytes: u64,
}

/// Cumulative per-worker counters riding on every telemetry batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerCounters {
    /// Kernels executed successfully.
    pub kernels: u64,
    /// Wire-path kernel recompilations.
    pub recompiles: u64,
    /// Buffers forwarded (to peers or the controller).
    pub sends: u64,
    /// Buffers installed into the local store.
    pub recvs: u64,
    /// Payload bytes forwarded.
    pub bytes_out: u64,
    /// Payload bytes installed.
    pub bytes_in: u64,
    /// Spans dropped at the [`TELEMETRY_BUFFER_CAP`] backpressure limit.
    pub dropped: u64,
}

/// An injected execution fault riding on an [`ExecSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecFault {
    /// The worker dies the moment it receives the message (before running
    /// anything), as if the process was killed mid-dispatch.
    Crash,
    /// The launch fails transiently: once the CE's inputs are ready the
    /// worker reports failure *without* executing, leaving its store
    /// exactly as a real failed `cudaLaunchKernel` would.
    FailTransient,
}

/// Kernel-launch request queued on a worker. The kernel itself is
/// referenced by the id of a previously shipped [`CtrlMsg::LoadKernel`].
#[derive(Debug, Clone)]
pub struct ExecSpec {
    /// Global-DAG index of the CE (completion reports echo it).
    pub dag_index: DagIndex,
    /// Id of the kernel to run (see [`CtrlMsg::LoadKernel`]).
    pub kernel: u64,
    /// Grid dimensions (`dim3(x, y)`).
    pub grid: (u32, u32),
    /// Block dimensions (`dim3(x, y)`).
    pub block: (u32, u32),
    /// Launch arguments (buffers by array id, scalars by value).
    pub args: Vec<LocalArg>,
    /// Arrays (with minimum versions) that must be present locally before
    /// execution. Versioning prevents a stale local copy from satisfying a
    /// dependency whose fresh bytes are still in flight.
    pub needs: Vec<(ArrayId, u64)>,
    /// Version each written array becomes once this CE completes.
    pub bumps: Vec<(ArrayId, u64)>,
    /// Deterministic injected fault, if the [`crate::FaultPlan`] schedules
    /// one for this CE.
    pub fault: Option<ExecFault>,
}

/// Controller → worker (and worker → worker, for P2P data) messages.
#[derive(Debug, Clone)]
pub enum CtrlMsg {
    /// Install a local array copy (ignored if a newer version is present).
    Data {
        /// The array.
        array: ArrayId,
        /// Monotonic content version carried by the bytes.
        version: u64,
        /// The bytes.
        buf: HostBuf,
    },
    /// Register a kernel under `id` before the first [`CtrlMsg::Exec`]
    /// referencing it. In-process the pre-compiled kernel rides along;
    /// over the wire only `(source, name)` travel and the worker
    /// recompiles — deterministic, hence bit-identical.
    LoadKernel {
        /// Controller-assigned kernel id, unique per runtime.
        id: u64,
        /// Kernel name within `source`.
        name: String,
        /// Full source text of the translation unit.
        source: String,
        /// The already-compiled kernel (in-process fast path; dropped at
        /// the wire boundary).
        compiled: Option<Arc<CompiledKernel>>,
    },
    /// Execute a kernel once its `needs` are present.
    Exec(ExecSpec),
    /// Send a local copy to another worker (true P2P) or the controller —
    /// but only once the local copy reaches `min_version`: the controller
    /// may name this worker as a source while its fresh copy is still in
    /// flight, and forwarding a stale version would wedge the consumer.
    Send {
        /// The array to forward.
        array: ArrayId,
        /// Forward only once the local copy reaches this version.
        min_version: u64,
        /// Destination worker, or `None` for the controller.
        to: Option<usize>,
    },
    /// Bandwidth probe: echo `payload` back to the controller
    /// ([`WorkerMsg::ProbeEcho`]). Timed by the sender.
    Probe {
        /// Correlates the echo with the request.
        token: u64,
        /// Ballast bytes (echoed verbatim).
        payload: Vec<u8>,
    },
    /// Bandwidth probe: round-trip `bytes` of ballast to peer `to` and
    /// report the measured time ([`WorkerMsg::ProbeReport`]).
    ProbePeer {
        /// Correlates the report with the request.
        token: u64,
        /// Peer worker to probe.
        to: usize,
        /// Ballast size.
        bytes: u64,
    },
    /// Peer-probe ballast (worker → worker leg; echoed back).
    PeerProbe {
        /// Correlates with the originating [`CtrlMsg::ProbePeer`].
        token: u64,
        /// The probing worker (echo destination).
        from: usize,
        /// Ballast bytes.
        payload: Vec<u8>,
    },
    /// Peer-probe echo (completes the round-trip on the probing worker).
    PeerProbeEcho {
        /// Correlates with the originating [`CtrlMsg::ProbePeer`].
        token: u64,
        /// Ballast bytes.
        payload: Vec<u8>,
    },
    /// Toggle worker-side telemetry recording. Sent to every worker when
    /// the controller attaches (or detaches) a recorder; over the wire
    /// this is a v2+ frame, silently skipped for v1 peers so a traced
    /// controller degrades to controller-side-only spans against an
    /// older worker.
    Observe {
        /// Record and stream telemetry when true.
        enabled: bool,
    },
    /// Terminate cleanly.
    Shutdown,
    /// Log shipping (controller → standby controller): the planner's
    /// construction inputs, sent once before the first
    /// [`CtrlMsg::ShipOp`] so the standby can build the replica the ops
    /// apply to. A worker receiving this ignores it (v3+ frame, never
    /// sent to v2- peers).
    ShipInit {
        /// Planner configuration of the shipping controller.
        cfg: PlannerConfig,
        /// The link matrix the primary's planner was built with (probed
        /// matrices are run-specific, so they must travel).
        links: Option<LinkMatrix>,
    },
    /// Log shipping: one planner op, in log order. The standby applies it
    /// to its replica and answers [`WorkerMsg::ShipAck`] with the digest
    /// of the resulting state. A worker receiving this ignores it.
    ShipOp {
        /// Position in the op log (0-based).
        seq: u64,
        /// The op.
        op: PlannerOp,
    },
    /// Ask the worker to depart cleanly (elastic scale-in): it flushes
    /// buffered telemetry, acknowledges with [`WorkerMsg::Leave`] and
    /// halts — the controlled counterpart of a SIGTERM. Over the wire this
    /// is a v5+ frame, silently dropped for older workers (the caller's
    /// leave timeout then falls back to a plain shutdown).
    Leave,
    /// Transport housekeeping: the current peer address list, re-broadcast
    /// when membership grows so existing workers can dial P2P connections
    /// to a joined newcomer. The [`WorkerEngine`] ignores it (the TCP
    /// serve loop consumes it before the engine sees it; the in-process
    /// mesh shares its peer list by reference and never sends one).
    Peers {
        /// Listen address per worker index (empty = unknown).
        addrs: Vec<String>,
    },
    /// CE batching: every frame one scheduler tick destined for this
    /// worker, coalesced into a single wire frame (the multi-tenant
    /// control plane's `--batch` knob). The engine handles the inner
    /// messages in order, exactly as if they had arrived one frame each —
    /// batching changes frame counts, never semantics. Over the wire this
    /// is a v6+ frame; the mux only batches when every endpoint
    /// negotiated v6. Nesting is not allowed (one level deep).
    Batch(Vec<CtrlMsg>),
    /// Session teardown: drop the listed array copies and kernel
    /// registrations (a detached session's namespace-tagged state), plus
    /// any queued work referencing them. The worker keeps serving — the
    /// fleet outlives every individual session. v6+ frame.
    Reclaim {
        /// Arrays to evict from the local store.
        arrays: Vec<ArrayId>,
        /// Kernel ids to unregister.
        kernels: Vec<u64>,
    },
}

/// Worker → controller messages.
#[derive(Debug, Clone)]
pub enum WorkerMsg {
    /// A kernel CE completed.
    Done {
        /// The completed CE.
        dag_index: DagIndex,
        /// The reporting worker.
        worker: usize,
        /// Wall-clock kernel execution time measured on the worker
        /// (per-worker occupancy metric; spans are anchored
        /// controller-side).
        elapsed_ns: u64,
    },
    /// An array copy headed for the controller master store.
    Data {
        /// The array.
        array: ArrayId,
        /// Content version of the bytes.
        version: u64,
        /// The bytes.
        buf: HostBuf,
    },
    /// A kernel CE failed.
    Failed {
        /// The failing CE.
        dag_index: DagIndex,
        /// The reporting worker.
        worker: usize,
        /// `Some` for a real (deterministic) launch error, `None` for an
        /// injected transient failure eligible for retry.
        error: Option<LaunchError>,
    },
    /// Periodic liveness beacon (TCP transport only; consumed inside the
    /// transport, never surfaced to the runtime).
    Heartbeat {
        /// The beating worker.
        worker: usize,
    },
    /// Echo of a [`CtrlMsg::Probe`] (consumed by the probing transport).
    ProbeEcho {
        /// The echoing worker.
        worker: usize,
        /// Correlation token.
        token: u64,
        /// The ballast, returned.
        payload: Vec<u8>,
    },
    /// Result of a [`CtrlMsg::ProbePeer`] round-trip.
    ProbeReport {
        /// The probing worker.
        worker: usize,
        /// The probed peer.
        to: usize,
        /// Ballast size that made the round-trip.
        bytes: u64,
        /// Measured round-trip time.
        elapsed_ns: u64,
    },
    /// A batch of worker-side telemetry: spans plus cumulative counters.
    /// Flushed before every completion report (so a CE's spans always
    /// precede its `Done`), on the driver's flush tick, and at clean
    /// shutdown — but not on an injected crash, which takes the unflushed
    /// buffer with it like a real process death. Only emitted after
    /// [`CtrlMsg::Observe`] enabled recording.
    Telemetry {
        /// The reporting worker.
        worker: usize,
        /// Batch sequence number (1-based, per worker).
        seq: u64,
        /// Spans buffered at the flush trigger (backlog gauge).
        backlog: u64,
        /// Cumulative counters as of this batch.
        counters: WorkerCounters,
        /// The spans, in record order, at most
        /// [`TELEMETRY_MAX_BATCH`] per batch.
        spans: Vec<WorkerSpan>,
    },
    /// Standby controller → primary: acknowledges one shipped op
    /// ([`CtrlMsg::ShipOp`]) with the digest of the replica state after
    /// applying it. The primary cross-checks the digest against its own,
    /// so divergence is caught at the offending op, not at takeover.
    ShipAck {
        /// The acknowledged op's log position.
        seq: u64,
        /// [`crate::Planner::state_digest`] of the replica after the op.
        digest: u64,
    },
    /// Clean departure announcement (graceful worker shutdown, e.g.
    /// `grout-workerd` on SIGTERM): the worker flushed its telemetry and
    /// is exiting deliberately. The transport marks the endpoint
    /// definitively dead — no suspect grace window, no resume attempts —
    /// and the runtime quarantines it like any other death, just without
    /// waiting out the staleness threshold. Over the wire this is a v4+
    /// frame, silently dropped for older controllers (which then fall
    /// back to staleness detection).
    Leave {
        /// The departing worker.
        worker: usize,
    },
}

/// The destination worker is unreachable (thread exited / socket closed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendLost;

/// Why a [`Transport::recv_timeout`] returned without a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportRecvError {
    /// Nothing arrived within the timeout (liveness probing time).
    Timeout,
    /// Every worker endpoint is gone; nothing can ever arrive again.
    Disconnected,
}

/// Three-state endpoint health, refining the boolean [`Transport::is_alive`]
/// for transports that can tell a transient omission (stale heartbeats, a
/// severed socket mid-resume) from a definitive death.
///
/// The runtime maps these onto the suspect-then-dead failure detector:
/// `Suspect` sidelines the worker for *new* CE placement but triggers no
/// quarantine or lineage replay; only `Dead` does. In-process channel
/// workers have no omission failures — a finished thread is immediately
/// `Dead` — so [`ChannelTransport`] keeps the two-state default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Liveness {
    /// The endpoint is reachable and fresh.
    Alive,
    /// The endpoint stopped responding but is inside its reconnect grace
    /// window (session resume may still succeed).
    Suspect,
    /// The endpoint is gone for good (thread exited, resume window
    /// expired, clean [`WorkerMsg::Leave`]).
    Dead,
}

/// A controller-side handle on the worker mesh: sends [`CtrlMsg`]s,
/// receives [`WorkerMsg`]s, answers liveness queries. Implemented by
/// [`ChannelTransport`] (threads + crossbeam channels) and by
/// `grout_net::TcpTransport` (processes + sockets).
pub trait Transport: Send {
    /// Number of worker endpoints. Fixed for most transports, but grows
    /// when [`Transport::join`] admits a newcomer — indices are stable and
    /// never reused, so callers may cache them.
    fn workers(&self) -> usize;

    /// A short label for metrics/telemetry (`"channel"`, `"tcp"`).
    fn kind(&self) -> &'static str;

    /// Delivers `msg` to `worker`. [`SendLost`] means the endpoint is
    /// unreachable — the runtime treats it exactly like a death detected
    /// by liveness probing.
    fn send(&mut self, worker: usize, msg: CtrlMsg) -> Result<(), SendLost>;

    /// Waits up to `timeout` for the next worker message.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<WorkerMsg, TransportRecvError>;

    /// Non-blocking receive (used while draining after a failure).
    fn try_recv(&mut self) -> Option<WorkerMsg>;

    /// Liveness probe: `false` once the endpoint is known-dead (thread
    /// finished, socket closed, or heartbeats went stale).
    fn is_alive(&mut self, worker: usize) -> bool;

    /// Refined health probe distinguishing a transient omission from a
    /// definitive death. The default collapses to the boolean
    /// [`Transport::is_alive`] (no suspect state); transports with a
    /// session-resume path (TCP) override it to report
    /// [`Liveness::Suspect`] while a reconnect is still plausible.
    fn liveness(&mut self, worker: usize) -> Liveness {
        if self.is_alive(worker) {
            Liveness::Alive
        } else {
            Liveness::Dead
        }
    }

    /// Attempts to re-establish a dead endpoint for a rejoin (respawn the
    /// worker thread / re-dial and re-handshake the worker process).
    /// Returns `true` when the endpoint is usable again; the caller is
    /// responsible for the membership side (new epoch, link re-probe).
    /// The default refuses: not every transport can bring endpoints back.
    fn reconnect(&mut self, worker: usize) -> bool {
        let _ = worker;
        false
    }

    /// Attaches a brand-new worker endpoint to the live mesh (elastic
    /// scale-out) and returns the index it was assigned — always the
    /// previous [`Transport::workers`] count. `addr` is the newcomer's
    /// listen address for socket transports; in-process transports ignore
    /// it. The caller owns the membership side (planner op, link
    /// re-probe). The default refuses: not every transport is elastic.
    fn join(&mut self, addr: &str) -> Result<usize, String> {
        let _ = addr;
        Err("transport does not support dynamic membership".into())
    }

    /// Incrementally probes the links touching a freshly joined `worker`
    /// and returns the updated full bandwidth matrix, reusing the rejoin
    /// re-probe path. `None` when this transport measures nothing (the
    /// scheduler keeps its conservatively padded matrix).
    fn probe_joined(&mut self, worker: usize) -> Option<LinkMatrix> {
        let _ = worker;
        None
    }

    /// Asks `worker` to terminate and reclaims its resources (joins the
    /// thread / closes the socket and reaps the process). Idempotent.
    fn shutdown(&mut self, worker: usize);

    /// Workers that never came up, with the reason (degraded start).
    fn spawn_failures(&self) -> &[(usize, String)];

    /// The measured inter-node bandwidth matrix, when this transport
    /// probes one at startup (TCP). `None` means the runtime falls back
    /// to a uniform model.
    fn measured_links(&self) -> Option<&LinkMatrix>;

    /// Estimated clock offset for `worker`: add it to the worker's
    /// reported monotonic timestamps to land them in the controller's
    /// clock domain. 0 when both ends share one clock (in-process) or no
    /// estimate exists yet.
    fn clock_offset_ns(&mut self, worker: usize) -> i64 {
        let _ = worker;
        0
    }

    /// Per-peer wire observability snapshot (frames/bytes, heartbeat RTT,
    /// telemetry-batch accounting), indexed by worker. Empty when the
    /// transport tracks none.
    fn wire_stats(&self) -> Vec<PeerWireStats> {
        Vec::new()
    }

    /// The tenant session this transport handle belongs to, when it is a
    /// per-session view onto a shared fleet (`SessionTransport`). `None`
    /// for transports that own their deployment.
    fn session_id(&self) -> Option<u64> {
        None
    }
}

/// What a [`WorkerEngine`] wants sent after handling a message.
#[derive(Debug)]
pub enum Outbound {
    /// To the controller.
    Controller(WorkerMsg),
    /// To a peer worker (P2P data or probe traffic).
    Peer(usize, CtrlMsg),
}

/// Whether the engine keeps running after a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Keep serving.
    Continue,
    /// Stop: clean shutdown or injected crash. The caller tears the
    /// endpoint down (thread returns / process exits).
    Halt,
}

/// The transport-agnostic worker: local array store, version-gated run
/// queue, pending forwards and the kernel registry. One instance per
/// worker endpoint; fed one [`CtrlMsg`] at a time.
pub struct WorkerEngine {
    me: usize,
    store: HashMap<ArrayId, (u64, HostBuf)>,
    kernels: HashMap<u64, Arc<CompiledKernel>>,
    queue: VecDeque<ExecSpec>,
    /// Forward requests waiting for a version still in flight.
    pending_sends: VecDeque<(ArrayId, u64, Option<usize>)>,
    /// Outstanding peer probes: token → (peer, bytes, started).
    probes: HashMap<u64, (usize, u64, std::time::Instant)>,
    /// Whether telemetry recording is on ([`CtrlMsg::Observe`]). Off by
    /// default: the recording paths then do zero work and allocate
    /// nothing, preserving the traced-vs-plain differential.
    observe: bool,
    /// Spans buffered since the last flush.
    spans: Vec<WorkerSpan>,
    /// Cumulative counters (ride on every batch).
    counters: WorkerCounters,
    /// Telemetry batch sequence (1-based).
    tel_seq: u64,
}

impl WorkerEngine {
    /// An engine for worker `me` with empty state.
    pub fn new(me: usize) -> Self {
        WorkerEngine {
            me,
            store: HashMap::new(),
            kernels: HashMap::new(),
            queue: VecDeque::new(),
            pending_sends: VecDeque::new(),
            probes: HashMap::new(),
            observe: false,
            spans: Vec::new(),
            counters: WorkerCounters::default(),
            tel_seq: 0,
        }
    }

    /// Re-index the engine (a TCP worker learns its index from the
    /// handshake, after construction).
    pub fn set_index(&mut self, me: usize) {
        self.me = me;
    }

    /// Buffer one span, dropping (and counting) past the backpressure
    /// cap. Callers gate on `self.observe`.
    fn record_span(
        &mut self,
        kind: WorkerSpanKind,
        name: impl Into<String>,
        start_ns: u64,
        dur_ns: u64,
        dag_index: u64,
        bytes: u64,
    ) {
        if self.spans.len() >= TELEMETRY_BUFFER_CAP {
            self.counters.dropped += 1;
            return;
        }
        self.spans.push(WorkerSpan {
            kind,
            name: name.into(),
            start_ns,
            dur_ns,
            dag_index,
            bytes,
        });
    }

    /// Emit buffered spans as bounded [`WorkerMsg::Telemetry`] batches.
    /// Called before every completion report (so the controller merges a
    /// CE's spans before seeing its `Done`), at the driver's flush tick,
    /// and on clean shutdown — never on an injected crash, which models
    /// a process death taking its unflushed buffer with it.
    pub fn flush_telemetry(&mut self, out: &mut dyn FnMut(Outbound)) {
        if !self.observe || self.spans.is_empty() {
            return;
        }
        let backlog = self.spans.len() as u64;
        let all = std::mem::take(&mut self.spans);
        for chunk in all.chunks(TELEMETRY_MAX_BATCH) {
            self.tel_seq += 1;
            out(Outbound::Controller(WorkerMsg::Telemetry {
                worker: self.me,
                seq: self.tel_seq,
                backlog,
                counters: self.counters,
                spans: chunk.to_vec(),
            }));
        }
    }

    fn forward(&mut self, array: ArrayId, to: Option<usize>, out: &mut dyn FnMut(Outbound)) {
        let (version, buf) = {
            let (v, b) = self.store.get(&array).expect("checked by caller");
            (*v, b.clone())
        };
        let bytes = buf.bytes();
        let start = monotonic_ns();
        match to {
            Some(peer) => out(Outbound::Peer(
                peer,
                CtrlMsg::Data {
                    array,
                    version,
                    buf,
                },
            )),
            None => out(Outbound::Controller(WorkerMsg::Data {
                array,
                version,
                buf,
            })),
        }
        if self.observe {
            let dur = monotonic_ns().saturating_sub(start);
            self.record_span(
                WorkerSpanKind::Transfer,
                "send",
                start,
                dur,
                u64::MAX,
                bytes,
            );
            self.counters.sends += 1;
            self.counters.bytes_out += bytes;
        }
    }

    /// Runs `spec` if every needed input version is present; returns the
    /// launch result and measured time, or `None` when inputs are missing.
    fn try_run(&mut self, idx: usize) -> Option<(Result<(), LaunchError>, u64)> {
        let ready = self.queue[idx]
            .needs
            .iter()
            .all(|(a, v)| self.store.get(a).is_some_and(|(ver, _)| *ver >= *v));
        if !ready {
            return None;
        }
        let spec = &self.queue[idx];
        let Some(kernel) = self.kernels.get(&spec.kernel).cloned() else {
            // The controller always loads before the first exec; a missing
            // kernel can only mean its remote recompilation failed, which
            // is reported as a deterministic failure below.
            return Some((
                Err(LaunchError::ArgType {
                    index: 0,
                    expected: format!("kernel id {} loaded on this worker", spec.kernel),
                }),
                0,
            ));
        };
        // Temporarily take buffers out of the store to get disjoint &mut.
        let mut taken: Vec<(ArrayId, u64, HostBuf)> = Vec::new();
        for arg in &spec.args {
            if let LocalArg::Buf(a) = arg {
                if let Some((ver, buf)) = self.store.remove(a) {
                    taken.push((*a, ver, buf));
                }
            }
        }
        let started_mono = monotonic_ns();
        let started = std::time::Instant::now();
        let result = {
            let mut kargs: Vec<KernelArg<'_>> = Vec::with_capacity(spec.args.len());
            let mut cursor = taken.iter_mut();
            for arg in &spec.args {
                match arg {
                    LocalArg::Buf(_) => {
                        let (_, _, buf) = cursor.next().expect("taken in order");
                        kargs.push(match buf {
                            HostBuf::F32(v) => KernelArg::F32(v),
                            HostBuf::I32(v) => KernelArg::I32(v),
                        });
                    }
                    LocalArg::F32(v) => kargs.push(KernelArg::Float(*v)),
                    LocalArg::I32(v) => kargs.push(KernelArg::Int(*v)),
                }
            }
            kernel.launch2d(spec.grid, spec.block, &mut kargs)
        };
        let elapsed_ns = started.elapsed().as_nanos() as u64;
        let bumps = spec.bumps.clone();
        let dag_index = spec.dag_index as u64;
        for (a, mut ver, buf) in taken {
            if let Some((_, v)) = bumps.iter().find(|(b, _)| *b == a) {
                ver = ver.max(*v);
            }
            self.store.insert(a, (ver, buf));
        }
        if self.observe && result.is_ok() {
            let name = kernel.name().to_string();
            self.record_span(
                WorkerSpanKind::Execute,
                name,
                started_mono,
                elapsed_ns,
                dag_index,
                0,
            );
            self.counters.kernels += 1;
        }
        Some((result.map(|_| ()), elapsed_ns))
    }

    /// Handles one message, emitting any outbound traffic through `out`.
    /// [`Flow::Halt`] ends the endpoint (shutdown or injected crash).
    pub fn handle(&mut self, msg: CtrlMsg, out: &mut dyn FnMut(Outbound)) -> Flow {
        let me = self.me;
        match msg {
            CtrlMsg::Data {
                array,
                version,
                buf,
            } => {
                if trace_on() {
                    eprintln!("[w{me}] Data {array:?} v{version}");
                }
                match self.store.get(&array) {
                    Some((have, _)) if *have >= version => {}
                    _ => {
                        let bytes = buf.bytes();
                        let start = monotonic_ns();
                        self.store.insert(array, (version, buf));
                        if self.observe {
                            self.record_span(
                                WorkerSpanKind::Transfer,
                                "recv",
                                start,
                                monotonic_ns().saturating_sub(start),
                                u64::MAX,
                                bytes,
                            );
                            self.counters.recvs += 1;
                            self.counters.bytes_in += bytes;
                        }
                    }
                }
            }
            CtrlMsg::LoadKernel {
                id,
                name,
                source,
                compiled,
            } => {
                if !self.kernels.contains_key(&id) {
                    let start = monotonic_ns();
                    let (k, compiled_here) = match compiled {
                        Some(k) => (Some(k), false),
                        None => match kernelc::compile_one(&source, &name) {
                            Ok(k) => (Some(Arc::new(k)), true),
                            Err(e) => {
                                // Unreachable when controller and worker run
                                // the same build (compilation is pure); loud
                                // breadcrumb + deterministic Exec failure.
                                eprintln!("[w{me}] kernel `{name}` failed to recompile: {e}");
                                (None, false)
                            }
                        },
                    };
                    if compiled_here && self.observe {
                        self.record_span(
                            WorkerSpanKind::Recompile,
                            name,
                            start,
                            monotonic_ns().saturating_sub(start),
                            u64::MAX,
                            0,
                        );
                        self.counters.recompiles += 1;
                    }
                    if let Some(k) = k {
                        self.kernels.insert(id, k);
                    }
                }
            }
            CtrlMsg::Exec(m) => {
                if trace_on() {
                    eprintln!(
                        "[w{me}] Exec ce#{} needs {:?} bumps {:?} fault {:?}",
                        m.dag_index, m.needs, m.bumps, m.fault
                    );
                }
                if m.fault == Some(ExecFault::Crash) {
                    // Injected node death: the endpoint stops on receipt,
                    // taking its local store (and the queued work) with it.
                    // Deterministic — the store holds exactly the completed
                    // prior CEs' results, regardless of delivery timing.
                    return Flow::Halt;
                }
                self.queue.push_back(m)
            }
            CtrlMsg::Send {
                array,
                min_version,
                to,
            } => {
                if trace_on() {
                    eprintln!(
                        "[w{me}] Send {array:?} v>={min_version} -> {to:?} (stored v{:?})",
                        self.store.get(&array).map(|(v, _)| *v)
                    );
                }
                match self.store.get(&array) {
                    Some((ver, _)) if *ver >= min_version => self.forward(array, to, out),
                    _ => self.pending_sends.push_back((array, min_version, to)),
                }
            }
            CtrlMsg::Probe { token, payload } => {
                out(Outbound::Controller(WorkerMsg::ProbeEcho {
                    worker: me,
                    token,
                    payload,
                }));
            }
            CtrlMsg::ProbePeer { token, to, bytes } => {
                self.probes
                    .insert(token, (to, bytes, std::time::Instant::now()));
                out(Outbound::Peer(
                    to,
                    CtrlMsg::PeerProbe {
                        token,
                        from: me,
                        payload: vec![0u8; bytes as usize],
                    },
                ));
            }
            CtrlMsg::PeerProbe {
                token,
                from,
                payload,
            } => {
                out(Outbound::Peer(
                    from,
                    CtrlMsg::PeerProbeEcho { token, payload },
                ));
            }
            CtrlMsg::PeerProbeEcho { token, .. } => {
                if let Some((to, bytes, started)) = self.probes.remove(&token) {
                    out(Outbound::Controller(WorkerMsg::ProbeReport {
                        worker: me,
                        to,
                        bytes,
                        elapsed_ns: started.elapsed().as_nanos() as u64,
                    }));
                }
            }
            CtrlMsg::Observe { enabled } => {
                self.observe = enabled;
                if !enabled {
                    self.spans.clear();
                }
            }
            CtrlMsg::Shutdown => {
                // Clean shutdown: ship whatever is still buffered first.
                self.flush_telemetry(out);
                return Flow::Halt;
            }
            // Log-shipping frames are addressed to a standby controller;
            // a worker that somehow receives one ignores it.
            CtrlMsg::ShipInit { .. } | CtrlMsg::ShipOp { .. } => {}
            CtrlMsg::Leave => {
                // Clean elastic departure: like Shutdown, but acknowledged
                // so the controller knows the flush completed and can
                // rebalance this worker's directory entries instead of
                // quarantining a silent death.
                self.flush_telemetry(out);
                out(Outbound::Controller(WorkerMsg::Leave { worker: me }));
                return Flow::Halt;
            }
            // Peer-address housekeeping is consumed by the socket serve
            // loop; the engine itself addresses peers by index only.
            CtrlMsg::Peers { .. } => {}
            CtrlMsg::Batch(msgs) => {
                // One coalesced tick: handle the inner messages in order.
                // A halt inside the batch (shutdown, injected crash) stops
                // immediately — the remainder is lost with the endpoint,
                // exactly as unbatched frames queued behind a crash would be.
                for m in msgs {
                    if self.handle(m, out) == Flow::Halt {
                        return Flow::Halt;
                    }
                }
            }
            CtrlMsg::Reclaim { arrays, kernels } => {
                if trace_on() {
                    eprintln!(
                        "[w{me}] Reclaim {} arrays, {} kernels",
                        arrays.len(),
                        kernels.len()
                    );
                }
                for a in &arrays {
                    self.store.remove(a);
                }
                for k in &kernels {
                    self.kernels.remove(k);
                }
                // Queued work from the reclaimed namespace can never run
                // (its kernels are gone) and pending forwards of evicted
                // arrays can never be satisfied — drop both.
                self.queue.retain(|spec| !kernels.contains(&spec.kernel));
                self.pending_sends.retain(|(a, _, _)| !arrays.contains(a));
            }
        }
        // Drain every runnable queued kernel and every satisfiable pending
        // forward (data may have just arrived or been produced).
        let mut progress = true;
        while progress {
            progress = false;
            for i in 0..self.pending_sends.len() {
                let (array, min_version, to) = self.pending_sends[i];
                let ready = self
                    .store
                    .get(&array)
                    .is_some_and(|(ver, _)| *ver >= min_version);
                if ready {
                    self.pending_sends.remove(i);
                    self.forward(array, to, out);
                    progress = true;
                    break;
                }
            }
            if progress {
                continue;
            }
            for i in 0..self.queue.len() {
                let inputs_ready = self.queue[i]
                    .needs
                    .iter()
                    .all(|(a, v)| self.store.get(a).is_some_and(|(ver, _)| *ver >= *v));
                if !inputs_ready {
                    continue;
                }
                if self.queue[i].fault == Some(ExecFault::FailTransient) {
                    // Injected transient launch failure: report once the
                    // inputs are ready (a real launch would fail at that
                    // point) WITHOUT executing, so the local store — and
                    // hence every version — is untouched.
                    let m = self.queue.remove(i).expect("index in range");
                    out(Outbound::Controller(WorkerMsg::Failed {
                        dag_index: m.dag_index,
                        worker: me,
                        error: None,
                    }));
                    progress = true;
                    break;
                }
                if let Some((result, elapsed_ns)) = self.try_run(i) {
                    let m = self.queue.remove(i).expect("index in range");
                    match result {
                        Ok(()) => {
                            if trace_on() {
                                eprintln!("[w{me}] Done ce#{}", m.dag_index);
                            }
                            // A CE's spans always precede its Done, so the
                            // controller can merge them before completing it.
                            self.flush_telemetry(out);
                            out(Outbound::Controller(WorkerMsg::Done {
                                dag_index: m.dag_index,
                                worker: me,
                                elapsed_ns,
                            }));
                        }
                        Err(error) => {
                            out(Outbound::Controller(WorkerMsg::Failed {
                                dag_index: m.dag_index,
                                worker: me,
                                error: Some(error),
                            }));
                        }
                    }
                    progress = true;
                    break;
                }
            }
        }
        // Catch spans with no following Done (transfers, recompiles) so
        // they ship without waiting for the idle flush tick.
        self.flush_telemetry(out);
        Flow::Continue
    }
}

/// Drives a [`WorkerEngine`] from crossbeam channels until it halts — the
/// body of every in-process worker thread.
pub fn run_worker(
    me: usize,
    rx: Receiver<CtrlMsg>,
    to_controller: Sender<WorkerMsg>,
    peers: Arc<Mutex<Vec<Sender<CtrlMsg>>>>,
) {
    let mut engine = WorkerEngine::new(me);
    let mut out = |o: Outbound| match o {
        Outbound::Controller(m) => {
            let _ = to_controller.send(m);
        }
        Outbound::Peer(i, m) => {
            // Shared (not cloned) so threads spawned before an elastic
            // join can still route P2P traffic to the newcomer.
            let tx = peers.lock().expect("peer mesh lock").get(i).cloned();
            if let Some(tx) = tx {
                let _ = tx.send(m);
            }
        }
    };
    loop {
        match rx.recv_timeout(TELEMETRY_FLUSH_TICK) {
            Ok(msg) => {
                if engine.handle(msg, &mut out) == Flow::Halt {
                    break;
                }
            }
            // Idle tick: ship buffered telemetry so long-running quiet
            // phases still stream spans instead of hoarding them.
            Err(RecvTimeoutError::Timeout) => engine.flush_telemetry(&mut out),
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

struct ChannelWorker {
    tx: Sender<CtrlMsg>,
    /// Kept alongside the thread (crossbeam receivers are clonable): a
    /// respawned worker thread reuses the same channel, so the peer txs
    /// held by every other worker keep routing P2P traffic to it after a
    /// rejoin without rebuilding the mesh.
    rx: Receiver<CtrlMsg>,
    join: Option<JoinHandle<()>>,
}

/// Approximate logical payload size of a controller→worker message, for
/// the in-process wire counters (channels move pointers, so this models
/// what the bytes *would* be on a wire; small fixed overheads stand in
/// for headers).
fn ctrl_msg_bytes(msg: &CtrlMsg) -> u64 {
    match msg {
        CtrlMsg::Data { buf, .. } => 24 + buf.bytes(),
        CtrlMsg::LoadKernel { name, source, .. } => 24 + (name.len() + source.len()) as u64,
        CtrlMsg::Exec(spec) => {
            48 + 16 * (spec.args.len() + spec.needs.len() + spec.bumps.len()) as u64
        }
        CtrlMsg::Send { .. } => 32,
        CtrlMsg::Probe { payload, .. } => 16 + payload.len() as u64,
        CtrlMsg::ProbePeer { .. } => 32,
        CtrlMsg::PeerProbe { payload, .. } => 24 + payload.len() as u64,
        CtrlMsg::PeerProbeEcho { payload, .. } => 16 + payload.len() as u64,
        CtrlMsg::Observe { .. } => 8,
        CtrlMsg::Shutdown => 8,
        CtrlMsg::ShipInit { .. } => 64,
        CtrlMsg::ShipOp { .. } => 48,
        CtrlMsg::Leave => 8,
        CtrlMsg::Peers { addrs } => 16 + addrs.iter().map(|a| 4 + a.len() as u64).sum::<u64>(),
        // One frame header amortized over the whole tick's messages.
        CtrlMsg::Batch(msgs) => 8 + msgs.iter().map(ctrl_msg_bytes).sum::<u64>(),
        CtrlMsg::Reclaim { arrays, kernels } => 16 + 8 * (arrays.len() + kernels.len()) as u64,
    }
}

/// Approximate logical payload size of a worker→controller message (see
/// [`ctrl_msg_bytes`]).
fn worker_msg_bytes(msg: &WorkerMsg) -> u64 {
    match msg {
        WorkerMsg::Done { .. } => 32,
        WorkerMsg::Data { buf, .. } => 24 + buf.bytes(),
        WorkerMsg::Failed { .. } => 32,
        WorkerMsg::Heartbeat { .. } => 8,
        WorkerMsg::ProbeEcho { payload, .. } => 24 + payload.len() as u64,
        WorkerMsg::ProbeReport { .. } => 40,
        WorkerMsg::Telemetry { spans, .. } => {
            64 + spans.iter().map(|s| 41 + s.name.len() as u64).sum::<u64>()
        }
        WorkerMsg::ShipAck { .. } => 24,
        WorkerMsg::Leave { .. } => 8,
    }
}

/// The in-process transport: one OS thread per worker, crossbeam channels
/// for all three logical channels (the original `LocalRuntime` mesh).
/// Tracks the same per-peer wire counters as the TCP transport (with
/// modeled byte sizes) so the merge/metrics seam is exercised in-process;
/// clock offsets are exactly 0 because every thread shares
/// [`monotonic_ns`]'s process-global epoch.
pub struct ChannelTransport {
    workers: Vec<ChannelWorker>,
    from_workers: Receiver<WorkerMsg>,
    /// Retained for [`Transport::reconnect`]: a respawned worker thread
    /// needs a fresh clone of the controller-bound sender. (Holding this
    /// keeps the channel connected even with every thread dead; the
    /// runtime still detects that via liveness probing, and all-dead runs
    /// end in `NoHealthyWorkers` through the planner.)
    to_controller: Sender<WorkerMsg>,
    /// The peer mesh, shared by reference with every worker thread so an
    /// elastic [`Transport::join`] extends it for already-running threads
    /// too (a cloned `Vec` would leave them with a stale snapshot).
    peer_txs: Arc<Mutex<Vec<Sender<CtrlMsg>>>>,
    failures: Vec<(usize, String)>,
    wire: Vec<PeerWireStats>,
    /// Deterministic network chaos (see [`NetFaultPlan`]). The channel
    /// transport has no real wire, so injected omissions are *modeled*:
    /// the reliable-session layer the TCP transport implements (sequence
    /// numbers, ack-driven retransmit, resume-with-replay) would absorb
    /// every one of them, so delivery stays exactly one in-order copy per
    /// frame and only the wire counters change — which is precisely the
    /// chaos-differential invariant (bit-identical state, visible resume
    /// stats).
    net_faults: NetFaultPlan,
    /// Logical per-peer control-frame counters keying [`Self::net_faults`]
    /// events. Separate from `wire.frames_sent`, which counts modeled
    /// retransmits/duplicates too: fault injection points must not shift
    /// when earlier faults fire.
    ctrl_frames: Vec<u64>,
}

impl ChannelTransport {
    /// Spawns `n` worker threads and wires the channel mesh (controller to
    /// each worker, worker to worker for P2P, workers back to controller).
    /// A worker whose thread fails to spawn is recorded in
    /// [`Transport::spawn_failures`] instead of failing the construction.
    pub fn new(n: usize) -> Self {
        ChannelTransport::with_spawner(n, |i, rx, back, peers| {
            std::thread::Builder::new()
                .name(format!("grout-worker-{i}"))
                .spawn(move || run_worker(i, rx, back, peers))
        })
    }

    /// Startup with an injectable thread spawner (tests force spawn
    /// failures through this without exhausting OS resources).
    pub fn with_spawner<F>(n: usize, mut spawn: F) -> Self
    where
        F: FnMut(
            usize,
            Receiver<CtrlMsg>,
            Sender<WorkerMsg>,
            Arc<Mutex<Vec<Sender<CtrlMsg>>>>,
        ) -> std::io::Result<JoinHandle<()>>,
    {
        let (to_controller, from_workers) = unbounded::<WorkerMsg>();
        let channels: Vec<(Sender<CtrlMsg>, Receiver<CtrlMsg>)> =
            (0..n).map(|_| unbounded()).collect();
        let txs: Arc<Mutex<Vec<Sender<CtrlMsg>>>> = Arc::new(Mutex::new(
            channels.iter().map(|(t, _)| t.clone()).collect(),
        ));
        let mut failures: Vec<(usize, String)> = Vec::new();
        let workers: Vec<ChannelWorker> = channels
            .into_iter()
            .enumerate()
            .map(|(i, (tx, rx))| {
                let peers = Arc::clone(&txs);
                let back = to_controller.clone();
                match spawn(i, rx.clone(), back, peers) {
                    Ok(join) => ChannelWorker {
                        tx,
                        rx,
                        join: Some(join),
                    },
                    Err(e) => {
                        failures.push((i, e.to_string()));
                        ChannelWorker { tx, rx, join: None }
                    }
                }
            })
            .collect();
        ChannelTransport {
            workers,
            from_workers,
            to_controller,
            peer_txs: txs,
            failures,
            wire: vec![PeerWireStats::default(); n],
            net_faults: NetFaultPlan::none(),
            ctrl_frames: vec![0; n],
        }
    }

    /// Installs a deterministic network-chaos plan (typically
    /// [`NetFaultPlan::seeded`]). Must be set before traffic flows for the
    /// frame counts to line up with the plan's injection points.
    pub fn set_net_faults(&mut self, plan: NetFaultPlan) {
        self.net_faults = plan;
    }

    /// Attribute a received message to its worker's wire counters.
    /// `WorkerMsg::Data` carries no sender field and stays unattributed
    /// (the TCP transport, which knows the socket, does count it).
    fn note_recv(&mut self, msg: &WorkerMsg) {
        let worker = match msg {
            WorkerMsg::Done { worker, .. }
            | WorkerMsg::Failed { worker, .. }
            | WorkerMsg::Heartbeat { worker }
            | WorkerMsg::ProbeEcho { worker, .. }
            | WorkerMsg::ProbeReport { worker, .. }
            | WorkerMsg::Telemetry { worker, .. }
            | WorkerMsg::Leave { worker } => *worker,
            WorkerMsg::Data { .. } | WorkerMsg::ShipAck { .. } => return,
        };
        let Some(w) = self.wire.get_mut(worker) else {
            return;
        };
        w.frames_recv += 1;
        w.bytes_recv += worker_msg_bytes(msg);
        if let WorkerMsg::Telemetry { backlog, spans, .. } = msg {
            w.telemetry_batches += 1;
            w.telemetry_spans += spans.len() as u64;
            w.telemetry_backlog = *backlog;
        }
    }
}

impl Transport for ChannelTransport {
    fn workers(&self) -> usize {
        self.workers.len()
    }

    fn kind(&self) -> &'static str {
        "channel"
    }

    fn send(&mut self, worker: usize, msg: CtrlMsg) -> Result<(), SendLost> {
        let bytes = ctrl_msg_bytes(&msg);
        if !self.net_faults.is_empty() {
            let frame = self.ctrl_frames.get(worker).copied().unwrap_or(0);
            // Model the reliable session absorbing each injected fault:
            // a dropped frame is retransmitted, a duplicate deduped by
            // the receive cursor, a delay reordered back by sequencing,
            // a sever/partition healed by resume-with-replay. Delivery
            // below is unconditional and exactly-once either way.
            for kind in self.net_faults.at(worker, frame) {
                let Some(w) = self.wire.get_mut(worker) else {
                    break;
                };
                match kind {
                    NetFaultKind::DropFrame | NetFaultKind::DupFrame => {
                        // One extra copy crosses the modeled wire
                        // (retransmit of the lost frame / the duplicate).
                        w.frames_sent += 1;
                        w.bytes_sent += bytes;
                    }
                    NetFaultKind::DelayFrame { .. } => {}
                    NetFaultKind::Sever | NetFaultKind::Partition { .. } => {
                        w.resumes += 1;
                        // Resume replays the unacked frame.
                        w.frames_sent += 1;
                        w.bytes_sent += bytes;
                    }
                }
            }
        }
        if let Some(f) = self.ctrl_frames.get_mut(worker) {
            *f += 1;
        }
        if let Some(w) = self.wire.get_mut(worker) {
            w.frames_sent += 1;
            w.bytes_sent += bytes;
        }
        self.workers[worker].tx.send(msg).map_err(|_| SendLost)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<WorkerMsg, TransportRecvError> {
        let msg = self
            .from_workers
            .recv_timeout(timeout)
            .map_err(|e| match e {
                RecvTimeoutError::Timeout => TransportRecvError::Timeout,
                RecvTimeoutError::Disconnected => TransportRecvError::Disconnected,
            })?;
        self.note_recv(&msg);
        Ok(msg)
    }

    fn try_recv(&mut self) -> Option<WorkerMsg> {
        let msg = self.from_workers.try_recv().ok()?;
        self.note_recv(&msg);
        Some(msg)
    }

    fn is_alive(&mut self, worker: usize) -> bool {
        match &self.workers[worker].join {
            None => false,
            Some(j) => !j.is_finished(),
        }
    }

    fn reconnect(&mut self, worker: usize) -> bool {
        let Some(w) = self.workers.get_mut(worker) else {
            return false;
        };
        if w.join.as_ref().is_some_and(|j| !j.is_finished()) {
            return true; // still up — nothing to re-establish
        }
        if let Some(j) = w.join.take() {
            let _ = j.join();
        }
        // Drain frames queued while the worker was down: a rejoining node
        // re-enters with an empty store and must not see stale plan
        // traffic addressed to its previous incarnation.
        while w.rx.try_recv().is_ok() {}
        let rx = w.rx.clone();
        let back = self.to_controller.clone();
        let peers = Arc::clone(&self.peer_txs);
        match std::thread::Builder::new()
            .name(format!("grout-worker-{worker}"))
            .spawn(move || run_worker(worker, rx, back, peers))
        {
            Ok(join) => {
                w.join = Some(join);
                true
            }
            Err(_) => false,
        }
    }

    fn join(&mut self, _addr: &str) -> Result<usize, String> {
        // In-process elastic join: extend the shared mesh (running threads
        // see the newcomer immediately through the Arc) and spawn it.
        let i = self.workers.len();
        let (tx, rx) = unbounded::<CtrlMsg>();
        self.peer_txs
            .lock()
            .expect("peer mesh lock")
            .push(tx.clone());
        let back = self.to_controller.clone();
        let peers = Arc::clone(&self.peer_txs);
        let rx2 = rx.clone();
        match std::thread::Builder::new()
            .name(format!("grout-worker-{i}"))
            .spawn(move || run_worker(i, rx2, back, peers))
        {
            Ok(join) => {
                self.workers.push(ChannelWorker {
                    tx,
                    rx,
                    join: Some(join),
                });
                self.wire.push(PeerWireStats::default());
                self.ctrl_frames.push(0);
                Ok(i)
            }
            Err(e) => {
                self.peer_txs.lock().expect("peer mesh lock").pop();
                Err(e.to_string())
            }
        }
    }

    fn shutdown(&mut self, worker: usize) {
        let _ = self.workers[worker].tx.send(CtrlMsg::Shutdown);
        if let Some(j) = self.workers[worker].join.take() {
            let _ = j.join();
        }
    }

    fn spawn_failures(&self) -> &[(usize, String)] {
        &self.failures
    }

    fn measured_links(&self) -> Option<&LinkMatrix> {
        None
    }

    fn wire_stats(&self) -> Vec<PeerWireStats> {
        self.wire.clone()
    }
}

impl Drop for ChannelTransport {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.tx.send(CtrlMsg::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(j) = w.join.take() {
                let _ = j.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::NetFaultEvent;

    fn probe_echo(t: &mut ChannelTransport, worker: usize, token: u64) -> Vec<u8> {
        t.send(
            worker,
            CtrlMsg::Probe {
                token,
                payload: vec![0xAB; 8],
            },
        )
        .expect("send probe");
        loop {
            match t.recv_timeout(Duration::from_secs(5)).expect("echo") {
                WorkerMsg::ProbeEcho {
                    worker: w,
                    token: tk,
                    payload,
                } if w == worker && tk == token => return payload,
                _ => {}
            }
        }
    }

    #[test]
    fn reconnect_respawns_a_shut_down_worker() {
        let mut t = ChannelTransport::new(2);
        t.shutdown(0);
        assert!(!t.is_alive(0));
        assert_eq!(t.liveness(0), Liveness::Dead);
        assert!(t.reconnect(0), "respawn should succeed");
        assert!(t.is_alive(0));
        assert_eq!(t.liveness(0), Liveness::Alive);
        // The respawned thread serves traffic over the original channel.
        assert_eq!(probe_echo(&mut t, 0, 7), vec![0xAB; 8]);
        // Reconnecting a live worker is a no-op that reports success.
        assert!(t.reconnect(0));
        assert_eq!(probe_echo(&mut t, 0, 8), vec![0xAB; 8]);
    }

    #[test]
    fn modeled_net_faults_leave_delivery_exact_and_count_resumes() {
        let mut t = ChannelTransport::new(1);
        t.set_net_faults(NetFaultPlan::with_events(vec![
            NetFaultEvent {
                peer: 0,
                at_frame: 0,
                kind: NetFaultKind::DropFrame,
            },
            NetFaultEvent {
                peer: 0,
                at_frame: 1,
                kind: NetFaultKind::Sever,
            },
        ]));
        // Both faulted frames still arrive exactly once, in order.
        assert_eq!(probe_echo(&mut t, 0, 1), vec![0xAB; 8]);
        assert_eq!(probe_echo(&mut t, 0, 2), vec![0xAB; 8]);
        assert_eq!(probe_echo(&mut t, 0, 3), vec![0xAB; 8]);
        let stats = &t.wire_stats()[0];
        assert_eq!(stats.resumes, 1, "the sever models one session resume");
        // 3 logical frames + 1 modeled retransmit + 1 modeled replay.
        assert_eq!(stats.frames_sent, 5);
    }
}
